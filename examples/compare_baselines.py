#!/usr/bin/env python3
"""Compare InstaMeasure against the classic measurement baselines.

Runs the same trace through InstaMeasure, single-layer RCC, CSM (randomized
counter sharing), a NetFlow-style exact cache, Count-Min, and Space-Saving,
then compares top-flow accuracy and — the paper's central axis — how many
table operations per packet each design demands from the flow store.

Every system is driven by the same :func:`repro.pipeline.run_pipeline`
loop: they all satisfy the streaming protocol (``ingest`` / ``finalize`` /
``estimates``), so swapping one for another is a one-line change.

Run:  python examples/compare_baselines.py
"""

from __future__ import annotations

import numpy as np

from repro import InstaMeasure, InstaMeasureConfig
from repro.analysis import mean_relative_error, print_table
from repro.baselines import (
    CSMSketch,
    CountMinSketch,
    CounterTree,
    NetFlowTable,
    RCCRegulatorMeasurer,
    SpaceSaving,
)
from repro.pipeline import run_pipeline
from repro.traffic import CaidaLikeConfig, build_caida_like_trace

SKETCH_BYTES = 16 * 1024


def main() -> None:
    print("Generating traffic ...")
    trace = build_caida_like_trace(
        CaidaLikeConfig(num_flows=15_000, duration=20.0, seed=29)
    )
    truth = trace.ground_truth_packets().astype(float)
    top100 = np.argsort(-truth)[:100]
    keys_top100 = trace.flows.key64[top100]

    def top100_packets(measurer) -> "np.ndarray":
        """Estimated packet counts via the common ``estimates`` protocol."""
        table = measurer.estimates(keys_top100)
        return np.array([table[int(k)][0] for k in keys_top100])

    rows = []

    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=SKETCH_BYTES // 4, wsaf_entries=1 << 16)
    )
    result = run_pipeline(engine, trace).result
    est, _ = engine.estimates_for(trace)
    rows.append(
        [
            "InstaMeasure",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(est[top100], truth[top100]):7.2%}",
            f"{result.regulation_rate:8.3%}",
            "online (WSAF)",
        ]
    )

    rcc_measurer = RCCRegulatorMeasurer(memory_bytes=SKETCH_BYTES)
    rcc = run_pipeline(rcc_measurer, trace).result
    rows.append(
        [
            "RCC (1 layer)",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(top100_packets(rcc_measurer), truth[top100]):7.2%}",
            f"{rcc.regulation_rate:8.3%}",
            "online (WSAF)",
        ]
    )

    csm = CSMSketch(memory_bytes=SKETCH_BYTES, counters_per_flow=16)
    run_pipeline(csm, trace)
    rows.append(
        [
            "CSM",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(top100_packets(csm), truth[top100]):7.2%}",
            "   0.000%",
            "offline decode",
        ]
    )

    tree = CounterTree(memory_bytes=SKETCH_BYTES, counter_bits=8, num_layers=3)
    run_pipeline(tree, trace)
    rows.append(
        [
            "Counter Tree",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(top100_packets(tree), truth[top100]):7.2%}",
            "   0.000%",
            "offline decode",
        ]
    )

    cms = CountMinSketch(memory_bytes=SKETCH_BYTES, depth=4)
    run_pipeline(cms, trace)
    rows.append(
        [
            "Count-Min",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(top100_packets(cms), truth[top100]):7.2%}",
            "   0.000%",
            "offline query",
        ]
    )

    netflow = NetFlowTable(max_entries=4096)
    stats = run_pipeline(netflow, trace).result
    rows.append(
        [
            "NetFlow (4K entries)",
            "exact",
            f"{mean_relative_error(top100_packets(netflow), truth[top100]):7.2%}",
            f"{stats.operations_per_packet:8.3%}",
            "exact cache",
        ]
    )

    ss = SpaceSaving(capacity=SKETCH_BYTES // 32)  # ~32 B per monitored flow
    run_pipeline(ss, trace)
    rows.append(
        [
            "Space-Saving",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(top100_packets(ss), truth[top100]):7.2%}",
            f"{1.0:8.3%}",
            "counter summary",
        ]
    )

    print_table(
        ["system", "memory", "top-100 error", "flow-store ips/pps", "decoding"],
        rows,
        "Baselines at equal sketch memory",
    )
    print(
        "\n'flow-store ips/pps' is the insertion pressure on the per-flow\n"
        "table: NetFlow and Space-Saving pay one operation per packet\n"
        "({ips = pps}); InstaMeasure's FlowRegulator cuts it to ~1%."
    )


if __name__ == "__main__":
    main()
