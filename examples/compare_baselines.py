#!/usr/bin/env python3
"""Compare InstaMeasure against the classic measurement baselines.

Runs the same trace through InstaMeasure, single-layer RCC, CSM (randomized
counter sharing), a NetFlow-style exact cache, Count-Min, and Space-Saving,
then compares top-flow accuracy and — the paper's central axis — how many
table operations per packet each design demands from the flow store.

Run:  python examples/compare_baselines.py
"""

from __future__ import annotations

import numpy as np

from repro import InstaMeasure, InstaMeasureConfig
from repro.analysis import mean_relative_error, print_table
from repro.baselines import (
    CSMSketch,
    CountMinSketch,
    CounterTree,
    NetFlowTable,
    SpaceSaving,
    run_rcc_regulator,
)
from repro.traffic import CaidaLikeConfig, build_caida_like_trace

SKETCH_BYTES = 16 * 1024


def main() -> None:
    print("Generating traffic ...")
    trace = build_caida_like_trace(
        CaidaLikeConfig(num_flows=15_000, duration=20.0, seed=29)
    )
    truth = trace.ground_truth_packets().astype(float)
    top100 = np.argsort(-truth)[:100]
    keys_top100 = trace.flows.key64[top100]

    rows = []

    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=SKETCH_BYTES // 4, wsaf_entries=1 << 16)
    )
    result = engine.process_trace(trace)
    est, _ = engine.estimates_for(trace)
    rows.append(
        [
            "InstaMeasure",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(est[top100], truth[top100]):7.2%}",
            f"{result.regulation_rate:8.3%}",
            "online (WSAF)",
        ]
    )

    rcc = run_rcc_regulator(trace, memory_bytes=SKETCH_BYTES)
    est_rcc = np.array([rcc.estimates.get(int(k), 0.0) for k in keys_top100])
    rows.append(
        [
            "RCC (1 layer)",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(est_rcc, truth[top100]):7.2%}",
            f"{rcc.regulation_rate:8.3%}",
            "online (WSAF)",
        ]
    )

    csm = CSMSketch(memory_bytes=SKETCH_BYTES, counters_per_flow=16)
    csm.encode_trace(trace)
    est_csm = csm.decode_flows(keys_top100)
    rows.append(
        [
            "CSM",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(est_csm, truth[top100]):7.2%}",
            "   0.000%",
            "offline decode",
        ]
    )

    tree = CounterTree(memory_bytes=SKETCH_BYTES, counter_bits=8, num_layers=3)
    tree.encode_trace(trace)
    est_tree = tree.decode_flows(keys_top100)
    rows.append(
        [
            "Counter Tree",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(est_tree, truth[top100]):7.2%}",
            "   0.000%",
            "offline decode",
        ]
    )

    cms = CountMinSketch(memory_bytes=SKETCH_BYTES, depth=4)
    cms.encode_trace(trace)
    est_cms = cms.query_flows(keys_top100).astype(float)
    rows.append(
        [
            "Count-Min",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(est_cms, truth[top100]):7.2%}",
            "   0.000%",
            "offline query",
        ]
    )

    netflow = NetFlowTable(max_entries=4096)
    stats = netflow.process_trace(trace)
    nf_est = netflow.estimates()
    est_nf = np.array([nf_est.get(int(k), (0.0, 0.0))[0] for k in keys_top100])
    rows.append(
        [
            "NetFlow (4K entries)",
            "exact",
            f"{mean_relative_error(est_nf, truth[top100]):7.2%}",
            f"{stats.operations_per_packet:8.3%}",
            "exact cache",
        ]
    )

    ss = SpaceSaving(capacity=SKETCH_BYTES // 32)  # ~32 B per monitored flow
    ss.process_trace(trace)
    est_ss = np.array([float(ss.estimate(int(k))) for k in keys_top100])
    rows.append(
        [
            "Space-Saving",
            f"{SKETCH_BYTES // 1024}KB",
            f"{mean_relative_error(est_ss, truth[top100]):7.2%}",
            f"{1.0:8.3%}",
            "counter summary",
        ]
    )

    print_table(
        ["system", "memory", "top-100 error", "flow-store ips/pps", "decoding"],
        rows,
        "Baselines at equal sketch memory",
    )
    print(
        "\n'flow-store ips/pps' is the insertion pressure on the per-flow\n"
        "table: NetFlow and Space-Saving pay one operation per packet\n"
        "({ips = pps}); InstaMeasure's FlowRegulator cuts it to ~1%."
    )


if __name__ == "__main__":
    main()
