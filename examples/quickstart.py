#!/usr/bin/env python3
"""Quickstart: measure a synthetic internet mix with InstaMeasure.

Builds a CAIDA-like trace, runs the single-core engine, and prints the
regulation statistics, per-band accuracy, and the packet Top-10 — the
30-second tour of the public API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import InstaMeasure, InstaMeasureConfig
from repro.analysis import band_errors, print_table
from repro.pipeline import run_pipeline
from repro.traffic import CaidaLikeConfig, build_caida_like_trace, summarize_trace


def main() -> None:
    print("Generating a CAIDA-like trace ...")
    trace = build_caida_like_trace(
        CaidaLikeConfig(num_flows=20_000, duration=30.0, seed=7)
    )
    print_table(["statistic", "value"], summarize_trace(trace).rows(), "Trace")

    print("\nRunning InstaMeasure (8 KB L1 sketch -> 32 KB total, 2^16 WSAF) ...")
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=8 * 1024, wsaf_entries=1 << 16)
    )
    pipeline_result = run_pipeline(engine, trace)
    result = pipeline_result.result
    print(f"  packets processed : {result.packets:,}")
    print(f"  pipeline chunks   : {len(pipeline_result.chunks):,}")
    print(f"  WSAF insertions   : {result.insertions:,}")
    print(f"  regulation rate   : {result.regulation_rate:.2%}  (paper: ~1.02%)")
    print(f"  L1 saturation rate: {result.regulator_stats.l1_saturation_rate:.2%}")
    print(f"  python throughput : {result.python_pps / 1e6:.2f} Mpps")
    print(f"  WSAF load factor  : {engine.wsaf.load_factor:.2%}")

    est_packets, est_bytes = engine.estimates_for(trace)
    truth_packets = trace.ground_truth_packets().astype(float)
    truth_bytes = trace.ground_truth_bytes().astype(float)

    active = truth_packets > 0
    bands = band_errors(
        est_packets[active],
        truth_packets[active],
        [(1e3, np.inf), (5e3, np.inf)],
    )
    print_table(
        ["flow band", "flows", "mean error"],
        [[b.label(), b.num_flows, f"{b.mean_error:.2%}"] for b in bands],
        "Packet-count accuracy",
    )

    top = np.argsort(-truth_packets)[:10]
    print_table(
        ["rank", "true pkts", "est pkts", "true MB", "est MB"],
        [
            [
                i + 1,
                f"{truth_packets[flow]:,.0f}",
                f"{est_packets[flow]:,.0f}",
                f"{truth_bytes[flow] / 1e6:.1f}",
                f"{est_bytes[flow] / 1e6:.1f}",
            ]
            for i, flow in enumerate(top)
        ],
        "Top-10 flows (packets)",
    )


if __name__ == "__main__":
    main()
