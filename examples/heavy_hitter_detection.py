#!/usr/bin/env python3
"""Heavy-hitter detection with instant (saturation-based) decoding.

Injects volumetric attack flows of varying rates into background traffic
and shows how quickly InstaMeasure flags each one compared with the exact
(packet-arrival-based) crossing time and a delegation-based remote
collector — the Fig 9(b) scenario as an application.

Run:  python examples/heavy_hitter_detection.py
"""

from __future__ import annotations

from repro import InstaMeasureConfig
from repro.analysis import print_table
from repro.detection import DelegationModel, detection_latency_experiment
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


def main() -> None:
    print("Generating background traffic ...")
    background = build_caida_like_trace(
        CaidaLikeConfig(num_flows=8_000, duration=10.0, seed=11)
    )

    rates = [5_000.0, 20_000.0, 60_000.0, 150_000.0]
    print(f"Injecting {len(rates)} attack flows and detecting (threshold: 500 pkts) ...")
    samples = detection_latency_experiment(
        background,
        rates_pps=rates,
        threshold_packets=500,
        engine_config=InstaMeasureConfig(
            l1_memory_bytes=16 * 1024, wsaf_entries=1 << 16
        ),
        delegation=DelegationModel(epoch_seconds=0.02, network_delay_seconds=0.02),
        attack_duration=1.5,
        attack_start=0.5,
    )

    rows = []
    for sample in samples:
        lag = sample.saturation_latency
        rows.append(
            [
                f"{sample.rate_pps / 1e3:.0f} kpps",
                f"{sample.ground_truth_time * 1e3:.1f} ms",
                f"{lag * 1e3:+.2f} ms" if lag is not None else "missed",
                f"{sample.delegation_latency * 1e3:+.2f} ms",
            ]
        )
    print_table(
        ["attack rate", "true crossing", "InstaMeasure lag", "delegation lag"],
        rows,
        "Detection latency by decoding strategy",
    )
    print(
        "\nHeavier attackers are caught sooner (the lag is ~one retention\n"
        "quantum of ~95 packets at the flow's own rate); delegation-based\n"
        "decoding pays the epoch + network delay regardless of rate."
    )


if __name__ == "__main__":
    main()
