#!/usr/bin/env python3
"""Aggregate anomaly detection: volumetric attacks and link failures.

The paper motivates instant measurement with "anomalies (e.g., congestion,
link failure, DDoS attack, and so on)".  This example injects both shapes
into background traffic and runs the EWMA change detector over the
per-second volume series, alongside InstaMeasure pinpointing *which* flow
caused the spike.

Run:  python examples/change_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import InstaMeasure, InstaMeasureConfig
from repro.analysis import print_table, sparkline
from repro.detection import (
    HeavyHitterDetector,
    detect_volume_changes,
)
from repro.pipeline import run_pipeline
from repro.traffic import (
    AttackConfig,
    CaidaLikeConfig,
    build_caida_like_trace,
    inject_attack_flows,
)
from repro.traffic.packet import Trace


def _drop_window(trace: Trace, start: float, end: float) -> Trace:
    """Simulate a link failure: all packets in [start, end) vanish."""
    keep = (trace.timestamps < start) | (trace.timestamps >= end)
    return Trace(
        timestamps=trace.timestamps[keep],
        flow_ids=trace.flow_ids[keep],
        sizes=trace.sizes[keep],
        flows=trace.flows,
    )


def main() -> None:
    print("Generating 60 s of background traffic ...")
    background = build_caida_like_trace(
        CaidaLikeConfig(num_flows=12_000, duration=60.0, seed=37)
    )

    print("Injecting a DDoS burst at t=20 s and a link failure at t=40-44 s ...")
    attacked, injected = inject_attack_flows(
        background,
        AttackConfig(rates_pps=[120_000.0], duration=3.0, start_time=20.0),
    )
    trace = _drop_window(attacked, 40.0, 44.0)

    _times, volumes = trace.packets_per_bucket(1.0)
    print("\nper-second volume: " + sparkline(volumes.tolist()))

    events = detect_volume_changes(trace, bucket_seconds=1.0, threshold_sigmas=4.0)
    rows = [
        [
            f"{event.time:5.0f}",
            "spike" if event.is_spike else "collapse",
            f"{event.observed:10.0f}",
            f"{event.expected:10.0f}",
            f"{event.sigmas:6.1f}",
        ]
        for event in events
    ]
    print_table(
        ["t (s)", "kind", "observed pps", "expected pps", "sigmas"],
        rows,
        "EWMA change events",
    )

    # Attribute the spike: InstaMeasure names the flow within milliseconds.
    detector = HeavyHitterDetector(threshold_packets=5000)
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=16 * 1024, wsaf_entries=1 << 16)
    )
    run_pipeline(engine, trace, on_accumulate=detector.on_accumulate)
    attack_key = int(trace.flows.key64[injected[0]])
    detected_at = detector.packet_detections.get(attack_key)
    if detected_at is not None:
        print(
            f"\nattack flow identified by InstaMeasure at t={detected_at:.3f}s "
            f"(onset was t=20.000s)"
        )
    else:
        print("\nattack flow not identified (unexpected)")

    spikes = [event for event in events if event.is_spike]
    collapses = [event for event in events if event.is_collapse]
    print(
        f"summary: {len(spikes)} spike bucket(s), {len(collapses)} collapse "
        f"bucket(s) — both anomaly shapes caught from one volume series."
    )


if __name__ == "__main__":
    main()
