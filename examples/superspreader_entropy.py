#!/usr/bin/env python3
"""Anomaly signals beyond heavy hitters: superspreaders and entropy.

The paper notes that the WSAF's sample of mice flows is what enables
applications like "DDoS attack, SuperSpreader and entropy" detection.
This example shows both on synthetic incidents:

* a scanner (one source, many destinations) surfacing in the WSAF's
  per-source fan-out, and
* a volumetric attack collapsing the normalized flow-size entropy.

Run:  python examples/superspreader_entropy.py
"""

from __future__ import annotations

import numpy as np

from repro import InstaMeasure, InstaMeasureConfig
from repro.analysis import print_table
from repro.detection import (
    detect_superspreaders,
    ground_truth_fanout,
    normalized_entropy,
)
from repro.pipeline import run_pipeline
from repro.traffic import (
    AttackConfig,
    CaidaLikeConfig,
    FiveTuple,
    FlowTable,
    build_caida_like_trace,
    inject_attack_flows,
    merge_traces,
)
from repro.traffic.packet import Trace


def _scan_trace(scanner_ip, num_targets, packets_per_flow, hash_seed, seed=5):
    """A port-scan-like burst: one source, many destinations."""
    rng = np.random.default_rng(seed)
    tuples = [
        FiveTuple(scanner_ip, int(rng.integers(1 << 32)), 40_000 + t, 80, 6)
        for t in range(num_targets)
    ]
    flows = FlowTable.from_five_tuples(tuples, hash_seed=hash_seed)
    flow_ids = np.repeat(np.arange(num_targets), packets_per_flow)
    timestamps = np.sort(rng.random(len(flow_ids)) * 10.0)
    return Trace(
        timestamps=timestamps,
        flow_ids=flow_ids,
        sizes=np.full(len(flow_ids), 60, dtype=np.int64),
        flows=flows,
    )


def main() -> None:
    scanner_ip = 0x0A0B0C0D
    print("Generating background traffic + a 60-target scan ...")
    background = build_caida_like_trace(
        CaidaLikeConfig(num_flows=6_000, duration=10.0, seed=31)
    )
    scan = _scan_trace(
        scanner_ip, num_targets=60, packets_per_flow=150,
        hash_seed=background.flows.hash_seed,
    )
    trace = merge_traces(background, scan)

    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=8 * 1024, wsaf_entries=1 << 14)
    )
    run_pipeline(engine, trace)

    spreaders = detect_superspreaders(engine.wsaf, min_destinations=20)
    truth = ground_truth_fanout(trace)
    rows = [
        [f"{src:#010x}", fanout, truth.get(src, 0)]
        for src, fanout in sorted(spreaders.items(), key=lambda kv: -kv[1])
    ]
    print_table(
        ["source", "WSAF fan-out", "true fan-out"],
        rows,
        "Superspreaders (>= 20 distinct destinations observed)",
    )
    found = scanner_ip in spreaders
    print(f"scanner {'DETECTED' if found else 'missed'} at {scanner_ip:#010x}")

    # Entropy: before vs during a volumetric attack.
    print("\nInjecting a volumetric flow and comparing entropy ...")
    attacked, _ = inject_attack_flows(
        background,
        AttackConfig(rates_pps=[60_000.0], duration=5.0, start_time=2.0),
    )
    before = normalized_entropy(background.ground_truth_packets())
    after = normalized_entropy(attacked.ground_truth_packets())

    engine2 = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=8 * 1024, wsaf_entries=1 << 14)
    )
    run_pipeline(engine2, attacked)
    est, _ = engine2.estimates_for(attacked, include_residual=True)
    estimated = normalized_entropy(est[est > 0])
    print_table(
        ["signal", "value"],
        [
            ["normalized entropy, normal traffic (exact)", f"{before:.3f}"],
            ["normalized entropy, under attack (exact)", f"{after:.3f}"],
            ["normalized entropy, under attack (InstaMeasure)", f"{estimated:.3f}"],
        ],
        "Entropy collapse under volumetric attack",
    )
    print(
        "\nThe attack concentrates traffic into one flow, so normalized\n"
        "entropy collapses — and the estimate from the WSAF (elephants +\n"
        "leaked mice sample + sketch residuals) tracks the collapse."
    )


if __name__ == "__main__":
    main()
