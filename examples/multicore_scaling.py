#!/usr/bin/env python3
"""Multi-core scaling: popcount dispatch, load balance, modelled throughput.

Runs the manager/worker system of Section IV-C with 1-4 workers and shows
how the popcount(srcIP) dispatcher balances load, how the shared WSAF
collects all workers' insertions, and what throughput the calibrated cycle
cost model predicts for each core count (the Fig 9(a) experiment as an
application).

Run:  python examples/multicore_scaling.py
"""

from __future__ import annotations


from repro import InstaMeasureConfig, MultiCoreInstaMeasure
from repro.analysis import print_table
from repro.pipeline import run_pipeline
from repro.simulate import CycleCostModel
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


def main() -> None:
    print("Generating traffic ...")
    trace = build_caida_like_trace(
        CaidaLikeConfig(num_flows=25_000, duration=30.0, seed=23)
    )
    model = CycleCostModel()

    rows = []
    for workers in (1, 2, 3, 4):
        system = MultiCoreInstaMeasure(
            workers,
            InstaMeasureConfig(l1_memory_bytes=4 * 1024, wsaf_entries=1 << 16),
        )
        result = run_pipeline(system, trace).result
        l1_rate = sum(
            r.regulator_stats.l1_saturations for r in result.worker_results
        ) / max(1, result.packets)
        modelled_mpps = (
            model.multicore_pps(
                workers, result.max_load_share, l1_rate, result.regulation_rate
            )
            / 1e6
        )
        shares = "/".join(f"{share:.2f}" for share in result.load_shares)
        rows.append(
            [
                workers,
                shares,
                f"{result.parallel_speedup:.2f}x",
                f"{modelled_mpps:.1f}",
                f"{len(system.wsaf):,}",
            ]
        )
    print_table(
        ["workers", "load shares", "balance speedup", "model Mpps", "WSAF flows"],
        rows,
        "Multi-core InstaMeasure (popcount dispatch, shared WSAF)",
    )
    print(
        "\nScaling is sublinear because real source addresses are skewed —\n"
        "the busiest worker's share bounds the system, exactly the mechanism\n"
        "behind the paper's 18.88/25.48/36.19/46.32 Mpps curve."
    )


if __name__ == "__main__":
    main()
