#!/usr/bin/env python3
"""Long-run gateway monitoring (the paper's 113-hour campus deployment).

Plays a diurnal campus trace through a mirror port, measures every flow in
packets and bytes with a single-core engine, and reports the overheads and
accuracy the paper reports in Fig 12-14: traffic pattern vs core
utilization, standard error by flow-size band, and heavy-hitter detection
quality.

Run:  python examples/campus_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import InstaMeasure, InstaMeasureConfig
from repro.analysis import print_table
from repro.analysis.metrics import standard_error
from repro.detection import (
    HeavyHitterDetector,
    classify_detections,
    ground_truth_heavy_hitters,
    keys_to_flow_indices,
)
from repro.pipeline import run_pipeline
from repro.simulate import MirrorPort, simulate_queues
from repro.traffic import CampusConfig, build_campus_trace


def main() -> None:
    print("Generating 113 modelled hours of campus gateway traffic ...")
    trace = build_campus_trace(
        CampusConfig(hours=113, seconds_per_hour=4.0, num_flows=25_000, seed=17)
    )
    port = MirrorPort(capacity_bps=150e6, buffer_bytes=1 << 20)
    delivered, port_stats = port.apply(trace)
    print(
        f"  mirror port: {port_stats.offered_packets:,} offered, "
        f"{port_stats.drop_rate:.2%} dropped"
    )

    detector = HeavyHitterDetector(threshold_packets=1000, threshold_bytes=1e6)
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=8 * 1024, wsaf_entries=1 << 16)
    )
    result = run_pipeline(
        engine, delivered, on_accumulate=detector.on_accumulate
    ).result
    print(
        f"  measured {result.packets:,} packets; regulation rate "
        f"{result.regulation_rate:.2%}; WSAF holds {len(engine.wsaf):,} flows"
    )

    # Overheads: utilization follows the diurnal pattern, queue stays flat.
    bucket = 4.0  # one modelled hour
    _s, per_bucket = delivered.packets_per_bucket(bucket)
    series = simulate_queues(
        delivered,
        np.zeros(delivered.num_packets, dtype=np.int64),
        num_workers=1,
        service_pps=2.5 * per_bucket.max() / bucket,
        bucket_seconds=bucket,
    )
    print(
        f"  peak core utilization {series.peak_utilization():.1%} "
        f"(paper: <=40%); peak queue {series.peak_queue_depth():.0f} packets"
    )

    # Accuracy by band (Fig 13).
    est_packets, est_bytes = engine.estimates_for(delivered)
    truth_packets = delivered.ground_truth_packets().astype(float)
    truth_bytes = delivered.ground_truth_bytes().astype(float)
    rows = []
    for lo, label in [(1e3, "1K+ pkts"), (5e3, "5K+ pkts")]:
        mask = truth_packets >= lo
        rows.append(
            [label, int(mask.sum()),
             f"{standard_error(est_packets[mask], truth_packets[mask]):.2%}"]
        )
    for lo, label in [(1e6, "1MB+"), (5e6, "5MB+")]:
        mask = truth_bytes >= lo
        rows.append(
            [label, int(mask.sum()),
             f"{standard_error(est_bytes[mask], truth_bytes[mask]):.2%}"]
        )
    print_table(["band", "flows", "standard error"], rows, "Estimation accuracy")

    # Heavy hitters (Fig 14).
    truth_pkt_hh, truth_byte_hh = ground_truth_heavy_hitters(
        delivered, threshold_packets=1000, threshold_bytes=1e6
    )
    pkt_outcome = classify_detections(
        keys_to_flow_indices(delivered, set(detector.packet_detections)),
        truth_pkt_hh,
        delivered.num_flows,
    )
    byte_outcome = classify_detections(
        keys_to_flow_indices(delivered, set(detector.byte_detections)),
        truth_byte_hh,
        delivered.num_flows,
    )
    print_table(
        ["metric", "packet HH", "byte HH"],
        [
            ["true heavy hitters", len(truth_pkt_hh), len(truth_byte_hh)],
            ["FPR", f"{pkt_outcome.false_positive_rate:.3%}",
             f"{byte_outcome.false_positive_rate:.3%}"],
            ["FNR", f"{pkt_outcome.false_negative_rate:.3%}",
             f"{byte_outcome.false_negative_rate:.3%}"],
        ],
        "Heavy-hitter detection",
    )


if __name__ == "__main__":
    main()
