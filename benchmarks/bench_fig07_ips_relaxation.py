"""Fig 7 — WSAF ips relaxation: FlowRegulator vs RCC over the trace timeline.

Paper claim: on the CAIDA timeline, RCC feeds the WSAF at ~12 % of pps while
the FlowRegulator passes only ~1.02 % with 128 KB of DRAM — comfortably
inside the SRAM-over-DRAM speed margin, so the WSAF can live in DRAM.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.baselines import run_rcc_regulator
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.core.regulator import required_l1_bytes
from repro.memmodel import DRAM, SRAM, ips_margin

BUCKET_SECONDS = 5.0
TOTAL_MEMORY = 16 * 1024  # scaled stand-in for the paper's 128 KB


def _flowregulator_series(trace):
    """(per-bucket ips array, regulation rate) for the two-layer regulator."""
    insert_times = []
    engine = InstaMeasure(
        InstaMeasureConfig(
            l1_memory_bytes=required_l1_bytes(TOTAL_MEMORY),
            wsaf_entries=1 << 16,
        )
    )
    result = engine.process_trace(
        trace, on_accumulate=lambda k, p, b, t: insert_times.append(t)
    )
    start = float(trace.timestamps[0])
    buckets = ((np.asarray(insert_times) - start) / BUCKET_SECONDS).astype(int)
    num_buckets = int((trace.timestamps[-1] - start) / BUCKET_SECONDS) + 1
    ips = np.bincount(buckets, minlength=num_buckets) / BUCKET_SECONDS
    return ips, result.regulation_rate


def test_fig07_ips_relaxation(benchmark, caida_trace, write_report):
    fr_ips, fr_rate = benchmark.pedantic(
        _flowregulator_series, args=(caida_trace,), rounds=1, iterations=1
    )
    rcc = run_rcc_regulator(
        caida_trace,
        memory_bytes=TOTAL_MEMORY,  # same total memory as the regulator
        vector_bits=8,
        bucket_seconds=BUCKET_SECONDS,
    )

    rows = []
    for i in range(min(len(fr_ips), len(rcc.bucket_times))):
        pps = rcc.bucket_pps[i]
        if pps == 0:
            continue
        rows.append(
            [
                f"{rcc.bucket_times[i]:6.1f}",
                f"{pps:10.0f}",
                f"{rcc.bucket_ips[i]:9.0f}",
                f"{rcc.bucket_ips[i] / pps:7.2%}",
                f"{fr_ips[i]:8.1f}",
                f"{fr_ips[i] / pps:7.2%}",
            ]
        )
    table = format_table(
        ["t (s)", "pps", "RCC ips", "RCC rate", "FR ips", "FR rate"],
        rows,
        title="Fig 7 — WSAF ips relaxation (equal total memory)",
    )
    summary = (
        f"\noverall: RCC {rcc.regulation_rate:.2%} vs FlowRegulator {fr_rate:.2%} "
        f"(paper: 12% vs 1.02%)\n"
        f"SRAM/DRAM speed ratio {SRAM.speed_ratio(DRAM):.0f}x; "
        f"DRAM margin at 100 Mpps: {ips_margin(DRAM, 100e6):.1%}"
    )
    write_report("fig07_ips_relaxation", table + summary)

    # Shape: FR is ~an order of magnitude below RCC and inside the margin.
    assert fr_rate < rcc.regulation_rate / 5
    assert fr_rate < ips_margin(DRAM, 100e6)
    assert rcc.regulation_rate > ips_margin(DRAM, 100e6) / 2
