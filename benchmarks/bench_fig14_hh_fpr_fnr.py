"""Fig 14 — heavy-hitter detection false positive / false negative rates.

Paper claims (campus run): false negative rates for both packet and byte
heavy hitters are negligible; false positive rates stay below 0.1 %
(packets) and 0.2 % (bytes) across thresholds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import (
    HeavyHitterDetector,
    classify_detections,
    ground_truth_heavy_hitters,
    keys_to_flow_indices,
)

PACKET_THRESHOLDS = [500.0, 1000.0, 2000.0]
BYTE_THRESHOLDS = [5e5, 1e6, 2e6]


def _detect(trace, threshold_packets, threshold_bytes):
    detector = HeavyHitterDetector(
        threshold_packets=threshold_packets, threshold_bytes=threshold_bytes
    )
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=8192, wsaf_entries=1 << 16, seed=14)
    )
    engine.process_trace(trace, on_accumulate=detector.on_accumulate)
    return detector


def test_fig14_hh_fpr_fnr(benchmark, campus_trace, write_report):
    rows = []
    outcomes = []
    for i, (pkt_threshold, byte_threshold) in enumerate(
        zip(PACKET_THRESHOLDS, BYTE_THRESHOLDS)
    ):
        if i == 0:
            detector = benchmark.pedantic(
                _detect,
                args=(campus_trace, pkt_threshold, byte_threshold),
                rounds=1,
                iterations=1,
            )
        else:
            detector = _detect(campus_trace, pkt_threshold, byte_threshold)
        truth_pkt, truth_byte = ground_truth_heavy_hitters(
            campus_trace,
            threshold_packets=pkt_threshold,
            threshold_bytes=byte_threshold,
        )
        detected_pkt = keys_to_flow_indices(
            campus_trace, set(detector.packet_detections)
        )
        detected_byte = keys_to_flow_indices(
            campus_trace, set(detector.byte_detections)
        )
        pkt_outcome = classify_detections(
            detected_pkt, truth_pkt, campus_trace.num_flows
        )
        byte_outcome = classify_detections(
            detected_byte, truth_byte, campus_trace.num_flows
        )
        outcomes.append((pkt_outcome, byte_outcome))
        rows.append(
            [
                f"{pkt_threshold:.0f}p/{byte_threshold / 1e6:.1f}MB",
                len(truth_pkt),
                f"{pkt_outcome.false_positive_rate:8.3%}",
                f"{pkt_outcome.false_negative_rate:8.3%}",
                len(truth_byte),
                f"{byte_outcome.false_positive_rate:8.3%}",
                f"{byte_outcome.false_negative_rate:8.3%}",
            ]
        )
    table = format_table(
        ["threshold", "pkt HH", "pkt FPR", "pkt FNR", "byte HH", "byte FPR", "byte FNR"],
        rows,
        title="Fig 14 — heavy-hitter detection FPR/FNR (campus trace)",
    )
    note = "\npaper anchors: FNR negligible; FPR < 0.1% (pkt) / < 0.2% (byte)"
    write_report("fig14_hh_fpr_fnr", table + note)

    for pkt_outcome, byte_outcome in outcomes:
        # FPR stays sub-percent; FNR small (borderline flows only).
        assert pkt_outcome.false_positive_rate < 0.005
        assert byte_outcome.false_positive_rate < 0.005
        assert pkt_outcome.false_negative_rate < 0.15
        assert byte_outcome.false_negative_rate < 0.15
        assert pkt_outcome.recall > 0.85
