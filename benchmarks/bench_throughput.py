"""Throughput regression harness: batched engine vs the scalar loop.

Runs the full packet pipeline on the main CAIDA-like lab trace under both
engines and writes a machine-readable report to ``BENCH_throughput.json``
at the repo root::

    [{"engine": ..., "pps": ..., "packets": ..., "chunk_size": ..., "timestamp": ...}]

Timing is external wall-clock (``perf_counter`` around ``process_trace``)
rather than the engine's own ``elapsed_seconds``, which starts *after*
per-run setup (array conversions, RNG draws, placement) and would flatter
the scalar path.  Rounds are interleaved scalar/batched and the best round
wins, so a transient stall (this runs on shared machines) penalizes one
reading, not one engine.

The test *fails* if the batched engine's packets-per-second drops below
``MIN_SPEEDUP``× scalar — the regression bar that keeps the fast path fast.
(The measured speedup on the reference machine is ~3.3×; the bar sits below
it to absorb machine noise, not to excuse real regressions.)
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core import InstaMeasure, InstaMeasureConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_throughput.json"

#: Timed rounds per engine (interleaved); best round wins.
ROUNDS = 5
CHUNK_SIZE = 1 << 20
#: Regression bar: batched must stay at least this many times faster.
MIN_SPEEDUP = 2.0

ENGINES = ("scalar", "batched")


def _timed_run(config: InstaMeasureConfig, trace) -> "tuple[float, int]":
    """Wall-clock seconds and packet count for one fresh-engine run."""
    engine = InstaMeasure(config)
    start = time.perf_counter()
    result = engine.process_trace(trace)
    return time.perf_counter() - start, result.packets


def test_throughput_regression(caida_trace, write_report):
    """Batched vs scalar pps on the lab trace; writes BENCH_throughput.json."""
    configs = {
        name: InstaMeasureConfig(seed=1, engine=name, chunk_size=CHUNK_SIZE)
        for name in ENGINES
    }
    # Warm-up pass each: CPU frequency ramp + LUT/layout caches, unmeasured.
    for config in configs.values():
        InstaMeasure(config).process_trace(caida_trace)

    best = {name: float("inf") for name in ENGINES}
    packets = {name: 0 for name in ENGINES}
    for _ in range(ROUNDS):
        for name, config in configs.items():
            elapsed, count = _timed_run(config, caida_trace)
            best[name] = min(best[name], elapsed)
            packets[name] = count

    rows = [
        {
            "engine": name,
            "pps": packets[name] / best[name],
            "packets": packets[name],
            "chunk_size": CHUNK_SIZE,
            "timestamp": time.time(),
        }
        for name in ENGINES
    ]
    OUTPUT_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    by_engine = {row["engine"]: row for row in rows}
    speedup = by_engine["batched"]["pps"] / by_engine["scalar"]["pps"]
    lines = ["engine     pps          speedup"]
    for row in rows:
        ratio = row["pps"] / by_engine["scalar"]["pps"]
        lines.append(f"{row['engine']:<10} {row['pps']:>12,.0f} {ratio:>7.2f}x")
    lines.append(f"report: {OUTPUT_PATH.name}")
    write_report("bench_throughput", "\n".join(lines))

    assert by_engine["batched"]["packets"] == caida_trace.num_packets
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine is only {speedup:.2f}x scalar "
        f"(regression bar: {MIN_SPEEDUP}x)"
    )
