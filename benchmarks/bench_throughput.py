"""Throughput regression harness: scalar loop vs the batched engines.

Runs the full packet pipeline on the main CAIDA-like lab trace under four
variants — the scalar reference loop, the PR-1 batched regulator feeding the
scalar WSAF, and the delegated pipeline (batch-probed array-backed WSAF)
with both contested-stretch replays, the PR-2 per-stretch FSM ``loop`` and
the PR-3 vectorized segmented-FSM ``scan`` — and *appends* a
machine-readable report to ``BENCH_throughput.json`` at the repo root.

Rows are keyed by ``(git_sha, engine, wsaf_engine, regulator_replay,
shards, backend)``: re-running on the same commit replaces that commit's
rows, while rows from other commits are preserved, so the file
accumulates a throughput history across the PR stack.  On every write the
whole history is normalized: legacy rows missing ``wsaf_engine`` /
``regulator_replay`` / ``backend`` are backfilled with the values they
actually ran ("scalar" / "loop" / "flat"), the two pre-keying seed rows
without a ``git_sha`` are stamped with the commit that introduced the
harness (and then superseded by that commit's keyed rows under the
dedupe), and duplicate keys keep only the latest timestamp.

Timing is external wall-clock (``perf_counter`` around ``process_trace``)
rather than the engine's own ``elapsed_seconds``, which starts *after*
per-run setup (array conversions, RNG draws, placement) and would flatter
the scalar path.  Rounds are interleaved across variants and the best round
wins, so a transient stall (this runs on shared machines) penalizes one
reading, not one engine.

Besides end-to-end packets-per-second the harness measures a per-stage
breakdown:

* **WSAF stage** — the delegated event stream is captured from a real run
  (by wrapping the table's ``accumulate_batch_arrays``), then replayed
  against fresh tables both ways: the scalar ``accumulate_batch`` path the
  PR-1 engine uses (including its list-of-tuples staging) and the
  batch-probed ``accumulate_batch_arrays`` path.
* **Hashing stage** — ``TabulationHash.hash_many`` vs the scalar
  ``hash`` loop over the trace's flow keys.
* **Regulator stage** — each delegated variant's end-to-end time minus the
  batch-probed WSAF stage (the regulator kernel dominates; see
  docs/PERFORMANCE.md).  Comparing the two delegated variants isolates the
  replay change: everything else in the pipeline is shared code.

Regression bars (the test *fails* below them):

* PR-1 batched engine >= ``MIN_SPEEDUP`` x scalar end-to-end.
* Delegated loop engine >= ``MIN_DELEGATED_SPEEDUP`` x the PR-1 engine
  end-to-end (strict no-regression — its honest ~1.15-1.25x margin is
  within shared-machine jitter; see PR 2).
* Batch-probed WSAF stage >= ``MIN_WSAF_STAGE_SPEEDUP`` x the scalar
  replay of the same event stream.
* Scan replay >= ``MIN_SCAN_SPEEDUP`` x the loop replay end-to-end and
  >= ``MIN_SCAN_REGULATOR_SPEEDUP`` x its regulator stage, measured
  same-run so both sides see the same machine state.  The bars are set
  below the observed margin (~2.4-2.9x e2e, ~2.7-3.1x stage on the
  reference machine) to absorb VM jitter; the headline >= 3x regulator /
  >= 2x end-to-end numbers vs the *recorded* PR-2 baseline row are
  computed against the history file and printed in the report.

``python benchmarks/bench_throughput.py --quick`` runs a reduced smoke
version (small trace, one timed round) for CI: it skips writing the
history file and enforces only the scan-vs-loop bar, falling back to
strict no-regression when the small-trace margin lands under the 2x
target (VM jitter; same policy PR 2 used for the delegated bar).

The sharded scaling benchmark (:func:`run_sharded_benchmark`) measures
the streaming :class:`~repro.pipeline.ShardedPipeline` at
``SHARD_COUNTS`` shards on the delegated/scan variant — fork-parallel
headline numbers plus the in-process run and the unsharded pipeline as
baselines — and records one row per shard count (``shards: N`` joins the
row key) with the per-stage breakdown (``route_s`` / ``ipc_s`` /
``ingest_s`` / ``merge_s``).  Every sharded run is checked bit-exact
against the single-process estimates before any timing is trusted.  The
4-shard >= ``MIN_SHARD_SPEEDUP`` x 1-shard bar only applies where the
machine has >= 4 CPUs; below that, parallel speedup is physically
impossible and the bar degrades to the ``MIN_SHARD_SPEEDUP_FALLBACK``
no-collapse floor with a printed note (same policy as the smoke-mode
scan bar).  ``--quick --shards N`` is the CI smoke: exactness is always
enforced, timing only against the no-collapse floor.

The backend benchmark (:func:`run_backend_benchmark`) measures the
non-flat WSAF backends under both engines: for each of ``tiered`` and
``icebuckets`` it times the delegated/scan pipeline end-to-end with
``wsaf_engine="scalar"`` vs ``"batched"`` — everything else shared —
after checking the two runs produce identical estimates (the
bit-identity contract, enforced before any timing is trusted), and then
replays the backend's real delegated event stream against fresh tables
both ways for the measured WSAF-stage speedup (the regulator admits few
packets to the WSAF, so the stage is where the engine change shows).
One row per ``(backend, wsaf_engine)`` joins the history (``backend``
joins the row key; flat rows are backfilled with ``backend: "flat"``).
Bars on the stage speedup: batched-tiered >=
``MIN_BACKEND_SPEEDUP["tiered"]`` x scalar-tiered, batched-icebuckets
>= ``MIN_BACKEND_SPEEDUP["icebuckets"]`` x scalar-icebuckets (below 1 —
ICE's quantized add chains are order-serial, so most cohorts replay
through scalar arithmetic and the bar only guards against collapse;
``wsaf_engine="auto"`` accordingly keeps the scalar table for ICE).
All stage timings take a ``gc.collect()`` immediately before each
timed region: a collection landing inside the (allocation-heavy,
pointer-rich) scalar replay otherwise inflates it several-fold and
manufactures speedups that vanish under a fair protocol.  In
``--quick`` mode only the ``MIN_BACKEND_SPEEDUP_SMOKE`` no-regression
floor is enforced, with a printed note when the small-trace margin
lands under the full targets.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import subprocess
import time

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.core.wsaf import WSAFTable
from repro.hashing.tabulation import TabulationHash
from repro.kernels.wsaf_batched import BatchedWSAFTable
from repro.pipeline import Pipeline, ShardedPipeline, TraceChunkSource
from repro.pipeline.sharded import _fork_available

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_throughput.json"

#: Timed rounds per variant (interleaved); best round wins.
ROUNDS = 5
#: Timed rounds per stage microbench; best round wins.
STAGE_ROUNDS = 5
CHUNK_SIZE = 1 << 20
#: Regression bar: the PR-1 batched engine vs the scalar loop.
MIN_SPEEDUP = 2.0
#: Regression bar: the delegated loop engine must not fall behind the
#: PR-1 batched engine end-to-end (strict no-regression; see PR 2).
MIN_DELEGATED_SPEEDUP = 1.0
#: Regression bar: batch-probed WSAF stage vs scalar replay of one stream.
MIN_WSAF_STAGE_SPEEDUP = 1.5
#: Regression bar: scan replay vs loop replay, end-to-end (same run).
MIN_SCAN_SPEEDUP = 2.0
#: Regression bar: scan replay vs loop replay, regulator stage (same run).
#: Conservative floor under VM jitter — the >= 3x claim is carried by the
#: recorded rows vs the PR-2 baseline in BENCH_throughput.json.
MIN_SCAN_REGULATOR_SPEEDUP = 2.0
#: Smoke-mode floor: strict no-regression when jitter eats the 2x target.
MIN_SCAN_SPEEDUP_SMOKE = 1.0

#: Shard counts the scaling benchmark measures (each becomes one row).
SHARD_COUNTS = (1, 2, 4, 8)
#: Timed rounds per shard count; best round wins.
SHARD_ROUNDS = 3
#: Regression bar: 4-shard fork-parallel vs 1-shard fork-parallel, on
#: machines with >= 4 CPUs (parallel speedup needs parallel hardware).
MIN_SHARD_SPEEDUP = 2.5
#: No-collapse floor where the 2.5x bar cannot physically hold (< 4
#: CPUs): 4 time-shared workers must not cost more than 2.5x one.
MIN_SHARD_SPEEDUP_FALLBACK = 0.4
#: Smoke-mode no-collapse floor: on the tiny CI trace the per-worker
#: fixed costs (fork + engine construction + pipe ping-pong) dominate
#: the sub-second run, so only outright collapse fails the smoke.
MIN_SHARD_SMOKE_FLOOR = 0.1
#: In-process 1-shard streaming (routing + positional gathers included)
#: must stay within 10% of the plain unsharded pipeline.
MAX_INPROC_OVERHEAD = 1.10

#: Non-flat backends measured by :func:`run_backend_benchmark`.
BACKENDS = ("tiered", "icebuckets")
#: Timed rounds per backend variant; best round wins.
BACKEND_ROUNDS = 3
#: Regression bars: batched vs scalar measured WSAF-stage pps (the
#: delegated event stream replayed against fresh backend tables both
#: ways), per backend, under the GC-controlled protocol (collect before
#: every timed region; without it a gen-2 collection landing inside the
#: scalar replay inflates its time several-fold and once suggested
#: 8-9x tiered "wins" that do not survive a fair timer).  The tiered
#: bar is the compounding claim (observed ~1.6x cold: vectorized cache
#: probe + lexsort maintenance tick + batch-probed backing table vs the
#: per-event facade; the tier_interval segment split caps the
#: vectorized run length, so it cannot reach the flat table's ~2.5x).
#: The ICE bar is a no-collapse floor below 1x (observed ~0.7x): the
#: quantized add chain re-rounds at the bucket scale on every add, so
#: chains are order-serial, a cold table's upscale screening demotes
#: most hot cohorts to the scalar replay path, and the cohort planning
#: is overhead on top — which is exactly why ``wsaf_engine="auto"``
#: resolves ICE to the scalar table.
MIN_BACKEND_SPEEDUP = {"tiered": 1.35, "icebuckets": 0.55}
#: Smoke-mode no-collapse floor: on the tiny CI trace the delegated
#: stream is a few hundred events, where cohort planning plus the ICE
#: overflow screen cost more than they save (and the scalar replay of
#: demoted cohorts runs on numpy columns, pricier per event than the
#: scalar table's list columns) — only outright collapse fails the
#: smoke; the real bars are carried by the full-trace run.
MIN_BACKEND_SPEEDUP_SMOKE = 0.15

#: Commit that introduced this harness; the two pre-keying seed rows
#: (no ``git_sha``) were measured on its working tree and are stamped
#: with it during normalization (then superseded by its keyed rows).
PRE_KEYING_SHA = "24c248f"
#: The PR-2 commit whose recorded delegated/loop row is the baseline for
#: the headline scan speedups reported (not asserted) by the harness.
PR2_BASELINE_SHA = "e62b8d3"

#: (engine, wsaf_engine, regulator_replay) pipeline variants, slowest first.
VARIANTS = (
    ("scalar", "scalar", "loop"),
    ("batched", "scalar", "loop"),
    ("batched", "batched", "loop"),
    ("batched", "batched", "scan"),
)
DELEGATED_LOOP = ("batched", "batched", "loop")
DELEGATED_SCAN = ("batched", "batched", "scan")


def _variant_label(engine: str, wsaf_engine: str, replay: str) -> str:
    if engine == "scalar":
        return "scalar"
    if wsaf_engine == "scalar":
        return "batched/wsaf-scalar"
    return f"delegated/{replay}"


def _environment() -> "dict":
    """Hardware/software context stamped onto every recorded row.

    Throughput history spans machines and library versions; without the
    context a row's pps number cannot be compared honestly against
    another commit's.  Legacy rows predating this stamp are backfilled
    with ``null`` values during normalization so consumers can filter.
    """
    import numpy

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "numpy_version": numpy.__version__,
    }


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _config(engine: str, wsaf_engine: str, replay: str) -> InstaMeasureConfig:
    return InstaMeasureConfig(
        seed=1,
        engine=engine,
        wsaf_engine=wsaf_engine,
        regulator_replay=replay,
        chunk_size=CHUNK_SIZE,
    )


def _timed_run(config: InstaMeasureConfig, source) -> "tuple[float, int]":
    """Wall-clock seconds and packet count for one fresh-engine run.

    The run goes through the :class:`~repro.pipeline.Pipeline` driver — the
    same loop the CLI and the examples use — over a pre-built chunk source,
    so chunk slicing happens once, outside the timed region, and only
    ingestion + finalization are measured.
    """
    engine = InstaMeasure(config)
    gc.collect()
    start = time.perf_counter()
    result = Pipeline(engine).run(source).result
    return time.perf_counter() - start, result.packets


def _capture_event_batches(source, config=None) -> "list[tuple]":
    """The delegated WSAF event stream, one array batch per chunk.

    Wraps the live table's ``accumulate_batch_arrays`` so the kernel's real
    delegation batches (keys, estimates, stamps, packed tuples) are recorded
    while the run proceeds normally.
    """
    engine = InstaMeasure(config or _config(*DELEGATED_SCAN))
    real = engine.wsaf.accumulate_batch_arrays
    batches: "list[tuple]" = []

    def recorder(keys, pkts, byts, stamps, tuples, on_accumulate=None, **kw):
        batches.append(
            (keys.copy(), pkts.copy(), byts.copy(), stamps.copy(), list(tuples))
        )
        return real(keys, pkts, byts, stamps, tuples, on_accumulate, **kw)

    engine.wsaf.accumulate_batch_arrays = recorder
    Pipeline(engine).run(source)
    return batches


def _wsaf_stage_times(batches, entries: int, rounds: int) -> "tuple[float, float]":
    """Best-of replay seconds: (scalar accumulate_batch, batch-probed)."""
    best_scalar = best_batched = float("inf")
    for _ in range(rounds):
        table = WSAFTable(num_entries=entries)
        gc.collect()
        start = time.perf_counter()
        for keys, pkts, byts, stamps, tuples in batches:
            # The PR-1 engine's exact staging: list-of-tuples into the
            # scalar probe loop.
            table.accumulate_batch(
                list(
                    zip(
                        keys.tolist(),
                        pkts.tolist(),
                        byts.tolist(),
                        stamps.tolist(),
                        tuples,
                    )
                )
            )
        best_scalar = min(best_scalar, time.perf_counter() - start)

        batched = BatchedWSAFTable(num_entries=entries)
        gc.collect()
        start = time.perf_counter()
        for keys, pkts, byts, stamps, tuples in batches:
            batched.accumulate_batch_arrays(
                keys, pkts, byts, stamps, tuples, collect_totals=False
            )
        best_batched = min(best_batched, time.perf_counter() - start)
    return best_scalar, best_batched


def _hash_stage_times(keys, rounds: int) -> "tuple[float, float]":
    """Best-of seconds hashing the flow keys: (scalar loop, hash_many)."""
    hasher = TabulationHash(seed=1)
    key_list = keys.tolist()
    best_scalar = best_vector = float("inf")
    for _ in range(rounds):
        hash_one = hasher.hash
        gc.collect()
        start = time.perf_counter()
        for key in key_list:
            hash_one(key)
        best_scalar = min(best_scalar, time.perf_counter() - start)

        gc.collect()
        start = time.perf_counter()
        hasher.hash_many(keys)
        best_vector = min(best_vector, time.perf_counter() - start)
    return best_scalar, best_vector


def _row_key(row: "dict") -> "tuple":
    return (
        row.get("git_sha"),
        row.get("engine"),
        row.get("wsaf_engine", "scalar"),
        row.get("regulator_replay", "loop"),
        row.get("shards", 1),
        row.get("backend", "flat"),
    )


def _normalize_history(history: "list[dict]") -> "list[dict]":
    """Backfill legacy rows and dedupe per key, keeping the latest.

    * Rows without ``git_sha`` are the two pre-keying seed rows; they ran
      on :data:`PRE_KEYING_SHA`'s tree and are stamped with it (after
      which that commit's keyed re-measurements supersede them).
    * Rows without ``wsaf_engine`` / ``regulator_replay`` predate those
      knobs and ran the scalar WSAF / loop replay — backfill explicitly
      so every row carries the full key.
    * Rows without ``shards`` predate the sharded scaling benchmark and
      all ran a single unsharded pipeline — backfill ``shards: 1``.
    * Rows without ``backend`` predate the WSAF storage seam and all ran
      the flat table — backfill ``backend: "flat"``.
    * Rows without the environment stamp (``cpu_count`` / ``platform`` /
      ``numpy_version``) predate it and their machine context is
      unknowable — backfill ``null`` so every row carries the fields and
      consumers can filter on them.
    * One row per ``(git_sha, engine, wsaf_engine, regulator_replay,
      shards)``, latest ``timestamp`` wins; output sorted by timestamp
      so the file reads as a history.
    """
    best: "dict[tuple, dict]" = {}
    for row in history:
        if not row.get("git_sha"):
            row["git_sha"] = PRE_KEYING_SHA
        row.setdefault("wsaf_engine", "scalar")
        row.setdefault("regulator_replay", "loop")
        row.setdefault("shards", 1)
        row.setdefault("backend", "flat")
        row.setdefault("cpu_count", None)
        row.setdefault("platform", None)
        row.setdefault("numpy_version", None)
        key = _row_key(row)
        kept = best.get(key)
        if kept is None or row.get("timestamp", 0) >= kept.get("timestamp", 0):
            best[key] = row
    return sorted(best.values(), key=lambda r: r.get("timestamp", 0))


def _load_history() -> "list[dict]":
    """The history rows of BENCH_throughput.json, defensively.

    A bench run must never die on its own report file.  A missing file is
    an empty history; an unreadable, unparseable, or wrong-shaped one
    (anything but a list of dicts) is moved aside to
    ``BENCH_throughput.json.corrupt`` — preserved for inspection — and
    the run starts a fresh history.
    """
    if not OUTPUT_PATH.exists():
        return []
    try:
        history = json.loads(OUTPUT_PATH.read_text())
        if not isinstance(history, list) or not all(
            isinstance(row, dict) for row in history
        ):
            raise ValueError("history must be a list of row dicts")
    except (json.JSONDecodeError, OSError, ValueError) as error:
        backup = OUTPUT_PATH.with_suffix(OUTPUT_PATH.suffix + ".corrupt")
        try:
            OUTPUT_PATH.replace(backup)
            print(
                f"warning: {OUTPUT_PATH.name} is corrupt ({error}); "
                f"moved to {backup.name}, starting a fresh history"
            )
        except OSError:
            print(
                f"warning: {OUTPUT_PATH.name} is corrupt ({error}) and "
                "could not be moved aside; starting a fresh history"
            )
        return []
    return history


def _append_report(rows: "list[dict]") -> None:
    """Append ``rows`` to BENCH_throughput.json and normalize the file."""
    history = _load_history()
    history.extend(rows)
    OUTPUT_PATH.write_text(
        json.dumps(_normalize_history(history), indent=2) + "\n"
    )


def _baseline_row(replay: str) -> "dict | None":
    """The PR-2 baseline delegated row from the history file, if present."""
    for row in _load_history():
        key = (PR2_BASELINE_SHA, "batched", "batched", replay, 1, "flat")
        if _row_key(row) == key:
            return row
    return None


def run_benchmark(
    trace, rounds: int, stage_rounds: int, record: bool = True
) -> "dict":
    """Measure every variant plus the stage breakdown.

    Appends the normalized report to BENCH_throughput.json unless
    ``record`` is false (smoke runs must not clobber full-trace rows).
    Returns ``{"rows": [...], "report": str, "speedups": {...}}``.
    """
    configs = {variant: _config(*variant) for variant in VARIANTS}
    # One shared chunk source: slicing happens here, outside any timed
    # region, and the same Chunk objects are replayed every round so the
    # per-(chunk, stream-offset) kernel caches stay warm across rounds.
    source = TraceChunkSource(trace, chunk_size=CHUNK_SIZE)
    # Warm-up pass each: CPU frequency ramp + LUT/layout/stream caches.
    for config in configs.values():
        Pipeline(InstaMeasure(config)).run(source)

    best = {variant: float("inf") for variant in VARIANTS}
    packets = {variant: 0 for variant in VARIANTS}
    for _ in range(rounds):
        for variant, config in configs.items():
            elapsed, count = _timed_run(config, source)
            best[variant] = min(best[variant], elapsed)
            packets[variant] = count

    batches = _capture_event_batches(source)
    num_events = sum(batch[0].size for batch in batches)
    wsaf_scalar_s, wsaf_batched_s = _wsaf_stage_times(
        batches, configs[VARIANTS[0]].wsaf_entries, stage_rounds
    )
    hash_scalar_s, hash_vector_s = _hash_stage_times(
        trace.flows.key64, stage_rounds
    )

    def stage_breakdown(variant) -> "dict":
        return {
            "regulator_s": best[variant] - wsaf_batched_s,
            "wsaf_scalar_s": wsaf_scalar_s,
            "wsaf_batched_s": wsaf_batched_s,
            "wsaf_stage_speedup": wsaf_scalar_s / wsaf_batched_s,
            "hash_scalar_s": hash_scalar_s,
            "hash_vector_s": hash_vector_s,
            "hash_speedup": hash_scalar_s / hash_vector_s,
            "delegated_events": num_events,
        }

    stages = {
        DELEGATED_LOOP: stage_breakdown(DELEGATED_LOOP),
        DELEGATED_SCAN: stage_breakdown(DELEGATED_SCAN),
    }

    sha = _git_sha()
    now = time.time()
    environment = _environment()
    rows = []
    for variant in VARIANTS:
        engine, wsaf_engine, replay = variant
        row = {
            "git_sha": sha,
            "engine": engine,
            "wsaf_engine": wsaf_engine,
            "regulator_replay": replay,
            "backend": "flat",
            "pps": packets[variant] / best[variant],
            "seconds": best[variant],
            "packets": packets[variant],
            "chunk_size": CHUNK_SIZE,
            "timestamp": now,
            **environment,
        }
        if variant in stages:
            row["stages"] = stages[variant]
        rows.append(row)
    if record:
        _append_report(rows)

    scalar_pps = rows[0]["pps"]
    pr1_pps = rows[1]["pps"]
    loop_row = rows[VARIANTS.index(DELEGATED_LOOP)]
    scan_row = rows[VARIANTS.index(DELEGATED_SCAN)]
    loop_reg_s = stages[DELEGATED_LOOP]["regulator_s"]
    scan_reg_s = stages[DELEGATED_SCAN]["regulator_s"]

    lines = [f"commit {sha}  ({num_events} delegated WSAF events)"]
    lines.append("variant              pps          speedup")
    for row in rows:
        label = _variant_label(
            row["engine"], row["wsaf_engine"], row["regulator_replay"]
        )
        lines.append(
            f"{label:<20} {row['pps']:>12,.0f} "
            f"{row['pps'] / scalar_pps:>7.2f}x"
        )
    for variant in (DELEGATED_LOOP, DELEGATED_SCAN):
        st = stages[variant]
        lines.append(
            f"stages ({variant[2]}): "
            f"regulator {st['regulator_s'] * 1e3:.1f} ms, "
            f"wsaf {wsaf_batched_s * 1e3:.1f} ms "
            f"(scalar {wsaf_scalar_s * 1e3:.1f} ms, "
            f"{st['wsaf_stage_speedup']:.2f}x), "
            f"hashing {hash_vector_s * 1e3:.2f} ms "
            f"(scalar {hash_scalar_s * 1e3:.2f} ms, "
            f"{st['hash_speedup']:.2f}x)"
        )
    lines.append(
        "scan vs loop (same run): "
        f"e2e {loop_row['seconds'] / scan_row['seconds']:.2f}x, "
        f"regulator stage {loop_reg_s / scan_reg_s:.2f}x"
    )
    baseline = _baseline_row("loop")
    if baseline is not None and baseline.get("packets") != scan_row["packets"]:
        baseline = None  # different trace (smoke mode) — not comparable
    scan_vs_pr2 = {}
    if baseline is not None and baseline.get("seconds"):
        base_reg = baseline.get("stages", {}).get("regulator_s")
        scan_vs_pr2 = {
            "e2e": baseline["seconds"] / scan_row["seconds"],
            "regulator": (
                base_reg / scan_reg_s if base_reg else None
            ),
        }
        reg_txt = (
            f"{scan_vs_pr2['regulator']:.2f}x"
            if scan_vs_pr2["regulator"]
            else "n/a"
        )
        lines.append(
            f"scan vs PR-2 baseline ({PR2_BASELINE_SHA}): "
            f"e2e {scan_vs_pr2['e2e']:.2f}x (target 2x), "
            f"regulator stage {reg_txt} (target 3x)"
        )
    lines.append(f"report: {OUTPUT_PATH.name}")

    return {
        "rows": rows,
        "report": "\n".join(lines),
        "speedups": {
            "batched_vs_scalar": pr1_pps / scalar_pps,
            "delegated_vs_batched": loop_row["pps"] / pr1_pps,
            "wsaf_stage": stages[DELEGATED_LOOP]["wsaf_stage_speedup"],
            "scan_vs_loop": loop_row["seconds"] / scan_row["seconds"],
            "scan_regulator_stage": loop_reg_s / scan_reg_s,
            "scan_vs_pr2": scan_vs_pr2,
        },
    }


def run_sharded_benchmark(
    trace,
    rounds: int = SHARD_ROUNDS,
    shard_counts: "tuple[int, ...]" = SHARD_COUNTS,
    record: bool = True,
) -> "dict":
    """Measure streaming sharded ingestion at each shard count.

    Uses the fastest variant (delegated/scan) throughout.  Per shard
    count, times the fork-parallel pool (where the platform can fork)
    and the bit-identical in-process mode, best-of ``rounds`` each, and
    checks the merged estimates against a single unsharded run before
    trusting any number.  One row per shard count goes into
    BENCH_throughput.json (``record=True``), carrying the fork-parallel
    headline ``seconds``/``pps`` plus ``inproc_seconds``,
    ``unsharded_seconds``, ``cpu_count``, and the ``route_s`` / ``ipc_s``
    / ``ingest_s`` / ``merge_s`` stage breakdown of the best round.
    Returns ``{"rows", "report", "scaling", "inproc_overhead"}``.
    """
    config = _config(*DELEGATED_SCAN)
    source = TraceChunkSource(trace, chunk_size=CHUNK_SIZE)
    use_fork = _fork_available()

    # Unsharded baseline + the exactness reference, warm caches first.
    # Unlike _timed_run, engine construction is INSIDE the timed region:
    # a sharded run necessarily builds its engines per run, so the
    # within-10% comparison must charge the unsharded side the same way.
    reference = InstaMeasure(config)
    Pipeline(reference).run(source)
    reference_estimates = reference.estimates()
    unsharded_s = float("inf")
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        Pipeline(InstaMeasure(config)).run(source)
        unsharded_s = min(unsharded_s, time.perf_counter() - start)

    sha = _git_sha()
    now = time.time()
    environment = _environment()
    rows = []
    for num_shards in shard_counts:
        # One pipeline per count, reused across rounds: the router's
        # split cache and the sub-traces' kernel caches stay warm, so
        # timed rounds measure steady-state streaming, not first-touch
        # layout work.  Shard counts run back-to-back for the same
        # reason (the split cache keys on the routing function).
        pipeline = ShardedPipeline(config, num_shards=num_shards)

        inproc = pipeline.run(source, parallel=False)
        assert inproc.estimates() == reference_estimates, (
            f"{num_shards}-shard in-process estimates diverged from the "
            "single-process run"
        )
        inproc_s = inproc.elapsed_seconds
        best = inproc
        for _ in range(rounds - 1):
            gc.collect()
            outcome = pipeline.run(source, parallel=False)
            if outcome.elapsed_seconds < inproc_s:
                inproc_s = outcome.elapsed_seconds
                best = outcome

        fork_s = None
        if use_fork:
            for index in range(rounds):
                gc.collect()
                outcome = pipeline.run(source, parallel=True)
                if index == 0:
                    assert outcome.estimates() == reference_estimates, (
                        f"{num_shards}-shard fork-parallel estimates "
                        "diverged from the single-process run"
                    )
                if fork_s is None or outcome.elapsed_seconds < fork_s:
                    fork_s = outcome.elapsed_seconds
                    best = outcome
        headline_s = fork_s if fork_s is not None else inproc_s
        rows.append(
            {
                "git_sha": sha,
                "engine": "batched",
                "wsaf_engine": "batched",
                "regulator_replay": "scan",
                "backend": "flat",
                "shards": num_shards,
                "parallel": fork_s is not None,
                "pps": trace.num_packets / headline_s,
                "seconds": headline_s,
                "inproc_seconds": inproc_s,
                "unsharded_seconds": unsharded_s,
                "packets": trace.num_packets,
                "chunk_size": CHUNK_SIZE,
                "timestamp": now,
                **environment,
                "stages": dict(best.stage_seconds),
            }
        )
    if record:
        _append_report(rows)

    base_s = rows[0]["seconds"]
    scaling = {row["shards"]: base_s / row["seconds"] for row in rows}
    inproc_overhead = rows[0]["inproc_seconds"] / unsharded_s

    mode = "fork-parallel" if use_fork else "in-process (no fork)"
    lines = [
        f"commit {sha}  sharded scaling, {mode}, "
        f"{os.cpu_count()} cpu(s), {trace.num_packets} packets"
    ]
    lines.append(f"unsharded baseline: {unsharded_s * 1e3:8.1f} ms")
    lines.append(
        "shards      seconds      pps    vs 1-shard   "
        "route/ipc/ingest/merge (ms)"
    )
    for row in rows:
        st = row["stages"]
        lines.append(
            f"{row['shards']:>6} {row['seconds'] * 1e3:>9.1f} ms "
            f"{row['pps']:>11,.0f} {scaling[row['shards']]:>8.2f}x   "
            f"{st['route_s'] * 1e3:.1f}/{st['ipc_s'] * 1e3:.1f}/"
            f"{st['ingest_s'] * 1e3:.1f}/{st['merge_s'] * 1e3:.1f}"
        )
    lines.append(
        f"1-shard in-process vs unsharded: "
        f"{inproc_overhead:.3f}x (bar: <= {MAX_INPROC_OVERHEAD}x)"
    )
    lines.append(f"report: {OUTPUT_PATH.name}")

    return {
        "rows": rows,
        "report": "\n".join(lines),
        "scaling": scaling,
        "inproc_overhead": inproc_overhead,
    }


def _assert_sharded_bars(result: "dict") -> None:
    """The sharded scaling regression bars, core-count aware."""
    overhead = result["inproc_overhead"]
    assert overhead <= MAX_INPROC_OVERHEAD, (
        f"1-shard in-process streaming costs {overhead:.3f}x the "
        f"unsharded pipeline (bar: {MAX_INPROC_OVERHEAD}x)"
    )
    scaling4 = result["scaling"].get(4)
    if scaling4 is None or not _fork_available():
        return
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert scaling4 >= MIN_SHARD_SPEEDUP, (
            f"4-shard fork-parallel is only {scaling4:.2f}x 1-shard "
            f"(regression bar: {MIN_SHARD_SPEEDUP}x on {cpus} CPUs)"
        )
    else:
        assert scaling4 >= MIN_SHARD_SPEEDUP_FALLBACK, (
            f"4-shard fork-parallel collapsed to {scaling4:.2f}x 1-shard "
            f"(no-collapse floor: {MIN_SHARD_SPEEDUP_FALLBACK}x)"
        )
        print(
            f"note: {scaling4:.2f}x 4-shard scaling is under the "
            f"{MIN_SHARD_SPEEDUP}x target — accepted: this machine has "
            f"{cpus} CPU(s), so parallel speedup is physically impossible "
            "and only the no-collapse floor applies"
        )


def _backend_config(backend: str, wsaf_engine: str) -> InstaMeasureConfig:
    return InstaMeasureConfig(
        seed=1,
        engine="batched",
        wsaf_engine=wsaf_engine,
        regulator_replay="scan",
        chunk_size=CHUNK_SIZE,
        wsaf_backend=backend,
    )


def _backend_stage_times(
    batches, config: InstaMeasureConfig, rounds: int
) -> "tuple[float, float]":
    """Best-of replay seconds for one backend: (scalar table, batched).

    Replays the captured delegated stream against fresh backend tables
    built through the storage seam — ``wsaf_engine="scalar"`` fed via
    the per-event ``accumulate_batch`` facade (the path the scalar
    engine uses), ``"batched"`` via ``accumulate_batch_arrays``.
    """
    from dataclasses import replace

    from repro.core.wsaf_storage import build_wsaf_storage

    scalar_config = replace(config, wsaf_engine="scalar")
    batched_config = replace(config, wsaf_engine="batched")
    best_scalar = best_batched = float("inf")
    for _ in range(rounds):
        table = build_wsaf_storage(scalar_config)
        gc.collect()
        start = time.perf_counter()
        for keys, pkts, byts, stamps, tuples in batches:
            table.accumulate_batch(
                list(
                    zip(
                        keys.tolist(),
                        pkts.tolist(),
                        byts.tolist(),
                        stamps.tolist(),
                        tuples,
                    )
                )
            )
        best_scalar = min(best_scalar, time.perf_counter() - start)

        batched = build_wsaf_storage(batched_config)
        gc.collect()
        start = time.perf_counter()
        for keys, pkts, byts, stamps, tuples in batches:
            batched.accumulate_batch_arrays(
                keys, pkts, byts, stamps, tuples, collect_totals=False
            )
        best_batched = min(best_batched, time.perf_counter() - start)
    assert table.estimates() == batched.estimates(), (
        "stage replay: batched estimates diverged from scalar"
    )
    return best_scalar, best_batched


def run_backend_benchmark(
    trace,
    rounds: int = BACKEND_ROUNDS,
    record: bool = True,
    backends: "tuple[str, ...]" = BACKENDS,
) -> "dict":
    """Measure the non-flat backends under the scalar vs batched engine.

    For each backend in :data:`BACKENDS`:

    * End-to-end: the delegated/scan pipeline with ``wsaf_engine=
      "scalar"`` vs ``"batched"``, every other knob shared, best of
      ``rounds``.  The warm-up pass doubles as the bit-identity check —
      both engines must produce identical estimates on the full trace
      before any timing is trusted.
    * WSAF stage: the backend's real delegated event stream (captured
      from a live run) replayed against fresh tables both ways.  This is
      where the compounding claim lives — the regulator admits only a
      small fraction of packets to the WSAF, so the backend engine can
      move the stage pps by far more than the end-to-end pps.

    One row per ``(backend, wsaf_engine)`` joins BENCH_throughput.json
    (``record=True``); the batched row carries the stage breakdown.
    Returns ``{"rows", "report", "speedups"}`` with
    ``speedups[backend]`` = stage scalar seconds / batched seconds.
    """
    source = TraceChunkSource(trace, chunk_size=CHUNK_SIZE)
    sha = _git_sha()
    now = time.time()
    environment = _environment()
    rows = []
    speedups: "dict[str, float]" = {}
    lines = [f"commit {sha}  non-flat backends, scalar vs batched engine"]
    lines.append(
        "backend      engine      e2e pps      wsaf stage    stage speedup"
    )
    for backend in backends:
        configs = {
            engine: _backend_config(backend, engine)
            for engine in ("scalar", "batched")
        }
        estimates = {}
        for engine, config in configs.items():
            warm = InstaMeasure(config)
            Pipeline(warm).run(source)
            estimates[engine] = warm.estimates()
        assert estimates["scalar"] == estimates["batched"], (
            f"{backend}: batched-engine estimates diverged from the "
            "scalar engine on the bench trace"
        )

        batches = _capture_event_batches(source, configs["batched"])
        num_events = sum(batch[0].size for batch in batches)
        stage_scalar_s, stage_batched_s = _backend_stage_times(
            batches, configs["batched"], rounds
        )
        speedups[backend] = stage_scalar_s / stage_batched_s
        stage_seconds = {
            "scalar": stage_scalar_s,
            "batched": stage_batched_s,
        }

        best = {engine: float("inf") for engine in configs}
        packets = {engine: 0 for engine in configs}
        for _ in range(rounds):
            for engine, config in configs.items():
                elapsed, count = _timed_run(config, source)
                best[engine] = min(best[engine], elapsed)
                packets[engine] = count
        for engine in ("scalar", "batched"):
            pps = packets[engine] / best[engine]
            stage_s = stage_seconds[engine]
            rows.append(
                {
                    "git_sha": sha,
                    "engine": "batched",
                    "wsaf_engine": engine,
                    "regulator_replay": "scan",
                    "backend": backend,
                    "pps": pps,
                    "seconds": best[engine],
                    "packets": packets[engine],
                    "chunk_size": CHUNK_SIZE,
                    "timestamp": now,
                    **environment,
                    "stages": {
                        "wsaf_scalar_s": stage_scalar_s,
                        "wsaf_batched_s": stage_batched_s,
                        "wsaf_stage_speedup": speedups[backend],
                        "wsaf_stage_pps": num_events / stage_s,
                        "delegated_events": num_events,
                    },
                }
            )
            ratio = (
                f"{speedups[backend]:>9.2f}x"
                if engine == "batched"
                else "     1.00x"
            )
            lines.append(
                f"{backend:<12} {engine:<10} {pps:>12,.0f} "
                f"{num_events / stage_s:>12,.0f} {ratio}"
            )
    if record:
        _append_report(rows)
    lines.append(f"report: {OUTPUT_PATH.name}")
    return {"rows": rows, "report": "\n".join(lines), "speedups": speedups}


def _assert_backend_bars(result: "dict") -> None:
    for backend, ratio in result["speedups"].items():
        floor = MIN_BACKEND_SPEEDUP[backend]
        assert ratio >= floor, (
            f"batched {backend} WSAF stage is only {ratio:.2f}x the "
            f"scalar engine's (regression bar: {floor}x)"
        )


def test_backend_throughput(caida_trace, write_report):
    """Non-flat backend pps, scalar vs batched; appends the history."""
    result = run_backend_benchmark(caida_trace)
    write_report("bench_backend_throughput", result["report"])
    for row in result["rows"]:
        assert row["packets"] == caida_trace.num_packets
    _assert_backend_bars(result)


def test_sharded_scaling(caida_trace, write_report):
    """Sharded pps at 1/2/4/8 shards; appends BENCH_throughput.json."""
    result = run_sharded_benchmark(caida_trace)
    write_report("bench_sharded_scaling", result["report"])
    for row in result["rows"]:
        assert row["packets"] == caida_trace.num_packets
    _assert_sharded_bars(result)


def test_throughput_regression(caida_trace, write_report):
    """Four-variant pps + stage breakdown; appends BENCH_throughput.json."""
    result = run_benchmark(caida_trace, ROUNDS, STAGE_ROUNDS)
    write_report("bench_throughput", result["report"])

    for row in result["rows"]:
        assert row["packets"] == caida_trace.num_packets
    speedups = result["speedups"]
    assert speedups["batched_vs_scalar"] >= MIN_SPEEDUP, (
        f"batched engine is only {speedups['batched_vs_scalar']:.2f}x scalar "
        f"(regression bar: {MIN_SPEEDUP}x)"
    )
    assert speedups["delegated_vs_batched"] >= MIN_DELEGATED_SPEEDUP, (
        f"delegated engine is only {speedups['delegated_vs_batched']:.2f}x "
        f"the PR-1 batched engine (regression bar: {MIN_DELEGATED_SPEEDUP}x)"
    )
    assert speedups["wsaf_stage"] >= MIN_WSAF_STAGE_SPEEDUP, (
        f"batch-probed WSAF stage is only {speedups['wsaf_stage']:.2f}x the "
        f"scalar replay (regression bar: {MIN_WSAF_STAGE_SPEEDUP}x)"
    )
    assert speedups["scan_vs_loop"] >= MIN_SCAN_SPEEDUP, (
        f"scan replay is only {speedups['scan_vs_loop']:.2f}x the loop "
        f"replay end-to-end (regression bar: {MIN_SCAN_SPEEDUP}x)"
    )
    assert speedups["scan_regulator_stage"] >= MIN_SCAN_REGULATOR_SPEEDUP, (
        f"scan regulator stage is only "
        f"{speedups['scan_regulator_stage']:.2f}x the loop stage "
        f"(regression bar: {MIN_SCAN_REGULATOR_SPEEDUP}x)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small trace, one timed round, scan bar only "
        "(no-regression fallback), history file untouched",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the sharded scaling benchmark; with --quick, a smoke "
        "pass at 1 and N shards (exactness enforced, timing only "
        "against the no-collapse floor)",
    )
    parser.add_argument(
        "--backends",
        action="store_true",
        help="run the non-flat backend benchmark (tiered / icebuckets, "
        "scalar vs batched engine); with --quick, exactness is enforced "
        "and timing only against the no-regression floor",
    )
    args = parser.parse_args()

    from repro.traffic import CaidaLikeConfig, build_caida_like_trace

    if args.quick:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=4_000, duration=10.0, seed=1)
        )
        if args.backends:
            result = run_backend_benchmark(trace, rounds=1, record=False)
            print(result["report"])
            for backend, ratio in result["speedups"].items():
                target = MIN_BACKEND_SPEEDUP[backend]
                assert ratio >= MIN_BACKEND_SPEEDUP_SMOKE, (
                    f"batched {backend} WSAF stage collapsed: {ratio:.2f}x "
                    f"the scalar engine's (no-collapse floor: "
                    f"{MIN_BACKEND_SPEEDUP_SMOKE}x)"
                )
                if ratio < target:
                    print(
                        f"note: batched {backend} stage at {ratio:.2f}x is "
                        f"under the {target}x target — accepted above the "
                        "no-collapse floor (tiny smoke stream: planning "
                        "and overflow-screen overhead dominate a few "
                        "hundred events; the bar is enforced by the "
                        "full-trace bench)"
                    )
            return
        if args.shards is not None:
            result = run_sharded_benchmark(
                trace,
                rounds=1,
                shard_counts=(1, args.shards),
                record=False,
            )
            print(result["report"])
            smoke = result["scaling"][args.shards]
            assert smoke >= MIN_SHARD_SMOKE_FLOOR, (
                f"{args.shards}-shard run collapsed to {smoke:.2f}x "
                f"1-shard (no-collapse floor: {MIN_SHARD_SMOKE_FLOOR}x)"
            )
            if smoke < 1.0:
                print(
                    f"note: {args.shards}-shard smoke at {smoke:.2f}x "
                    "1-shard — accepted above the no-collapse floor "
                    "(tiny trace: per-worker fork/construction costs "
                    "dominate the sub-second run)"
                )
            if result["inproc_overhead"] > MAX_INPROC_OVERHEAD:
                print(
                    "note: the in-process overhead bar is only enforced "
                    "by the full best-of-rounds bench; the single cold "
                    "round here includes routing-cache warmup"
                )
            return
        result = run_benchmark(trace, rounds=1, stage_rounds=2, record=False)
    else:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=30_000, duration=60.0, seed=1)
        )
        if args.backends:
            result = run_backend_benchmark(trace)
            print(result["report"])
            _assert_backend_bars(result)
            return
        if args.shards is not None:
            result = run_sharded_benchmark(trace)
            print(result["report"])
            _assert_sharded_bars(result)
            return
        result = run_benchmark(trace, ROUNDS, STAGE_ROUNDS)
    print(result["report"])
    for row in result["rows"]:
        assert row["packets"] == trace.num_packets, "packet count mismatch"
    if args.quick:
        scan_ratio = result["speedups"]["scan_vs_loop"]
        assert scan_ratio >= MIN_SCAN_SPEEDUP_SMOKE, (
            f"scan replay regressed: {scan_ratio:.2f}x the loop replay "
            f"(strict no-regression floor: {MIN_SCAN_SPEEDUP_SMOKE}x)"
        )
        if scan_ratio < MIN_SCAN_SPEEDUP:
            print(
                f"note: scan {scan_ratio:.2f}x loop is under the "
                f"{MIN_SCAN_SPEEDUP}x target — accepted as no-regression "
                "(small-trace smoke under VM jitter)"
            )


if __name__ == "__main__":
    main()
