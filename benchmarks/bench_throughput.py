"""Throughput regression harness: scalar loop vs the two batched engines.

Runs the full packet pipeline on the main CAIDA-like lab trace under three
variants — the scalar reference loop, the PR-1 batched regulator feeding the
scalar WSAF (``wsaf_engine="scalar"``), and the delegated pipeline feeding
the batch-probed array-backed WSAF (``wsaf_engine="batched"``) — and
*appends* a machine-readable report to ``BENCH_throughput.json`` at the repo
root.  Rows are keyed by ``(git_sha, engine, wsaf_engine)``: re-running on
the same commit replaces that commit's rows, while rows from other commits
(and the pre-keying seed rows) are preserved, so the file accumulates a
throughput history across the PR stack.

Timing is external wall-clock (``perf_counter`` around ``process_trace``)
rather than the engine's own ``elapsed_seconds``, which starts *after*
per-run setup (array conversions, RNG draws, placement) and would flatter
the scalar path.  Rounds are interleaved across variants and the best round
wins, so a transient stall (this runs on shared machines) penalizes one
reading, not one engine.

Besides end-to-end packets-per-second the harness measures a per-stage
breakdown:

* **WSAF stage** — the delegated event stream is captured from a real run
  (by wrapping the table's ``accumulate_batch_arrays``), then replayed
  against fresh tables both ways: the scalar ``accumulate_batch`` path the
  PR-1 engine uses (including its list-of-tuples staging) and the
  batch-probed ``accumulate_batch_arrays`` path.
* **Hashing stage** — ``TabulationHash.hash_many`` vs the scalar
  ``hash`` loop over the trace's flow keys.
* **Regulator stage** — the delegated end-to-end time minus its WSAF stage
  (the regulator kernel dominates; see docs/PERFORMANCE.md).

Regression bars (the test *fails* below them):

* PR-1 batched engine >= ``MIN_SPEEDUP`` x scalar end-to-end.
* Delegated engine >= ``MIN_DELEGATED_SPEEDUP`` x the PR-1 engine
  end-to-end (strict no-regression).  The honest end-to-end gain is
  bounded by Amdahl's law — the regulator kernel, not the WSAF, is ~85%
  of the pipeline — and its ~1.15-1.25x margin is within shared-machine
  jitter, so the bar guards against regression while the WSAF-stage bar
  carries the positive claim.
* Batch-probed WSAF stage >= ``MIN_WSAF_STAGE_SPEEDUP`` x the scalar
  replay of the same event stream.

``python benchmarks/bench_throughput.py --quick`` runs a reduced smoke
version (small trace, one timed round, no perf bars) for CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import subprocess
import time

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.core.wsaf import WSAFTable
from repro.hashing.tabulation import TabulationHash
from repro.kernels.wsaf_batched import BatchedWSAFTable

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_throughput.json"

#: Timed rounds per variant (interleaved); best round wins.
ROUNDS = 5
#: Timed rounds per stage microbench; best round wins.
STAGE_ROUNDS = 5
CHUNK_SIZE = 1 << 20
#: Regression bar: the PR-1 batched engine vs the scalar loop.
MIN_SPEEDUP = 2.0
#: Regression bar: the delegated engine must not fall behind the PR-1
#: batched engine end-to-end.  Its true margin (~1.15-1.25x on the
#: reference machine) is within shared-VM timing jitter of 1, so the bar
#: is strict no-regression; the WSAF-stage bar below carries the
#: positive claim from a far more stable microbench.
MIN_DELEGATED_SPEEDUP = 1.0
#: Regression bar: batch-probed WSAF stage vs scalar replay of one stream.
MIN_WSAF_STAGE_SPEEDUP = 1.5

#: (engine, wsaf_engine) pipeline variants, slowest first.
VARIANTS = (
    ("scalar", "scalar"),
    ("batched", "scalar"),
    ("batched", "batched"),
)


def _variant_label(engine: str, wsaf_engine: str) -> str:
    if engine == "scalar":
        return "scalar"
    return f"batched/wsaf-{wsaf_engine}"


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _config(engine: str, wsaf_engine: str) -> InstaMeasureConfig:
    return InstaMeasureConfig(
        seed=1, engine=engine, wsaf_engine=wsaf_engine, chunk_size=CHUNK_SIZE
    )


def _timed_run(config: InstaMeasureConfig, trace) -> "tuple[float, int]":
    """Wall-clock seconds and packet count for one fresh-engine run."""
    engine = InstaMeasure(config)
    gc.collect()
    start = time.perf_counter()
    result = engine.process_trace(trace)
    return time.perf_counter() - start, result.packets


def _capture_event_batches(trace) -> "list[tuple]":
    """The delegated WSAF event stream, one array batch per chunk.

    Wraps the live table's ``accumulate_batch_arrays`` so the kernel's real
    delegation batches (keys, estimates, stamps, packed tuples) are recorded
    while the run proceeds normally.
    """
    engine = InstaMeasure(_config("batched", "batched"))
    real = engine.wsaf.accumulate_batch_arrays
    batches: "list[tuple]" = []

    def recorder(keys, pkts, byts, stamps, tuples, on_accumulate=None, **kw):
        batches.append(
            (keys.copy(), pkts.copy(), byts.copy(), stamps.copy(), list(tuples))
        )
        return real(keys, pkts, byts, stamps, tuples, on_accumulate, **kw)

    engine.wsaf.accumulate_batch_arrays = recorder
    engine.process_trace(trace)
    return batches


def _wsaf_stage_times(batches, entries: int, rounds: int) -> "tuple[float, float]":
    """Best-of replay seconds: (scalar accumulate_batch, batch-probed)."""
    best_scalar = best_batched = float("inf")
    for _ in range(rounds):
        table = WSAFTable(num_entries=entries)
        gc.collect()
        start = time.perf_counter()
        for keys, pkts, byts, stamps, tuples in batches:
            # The PR-1 engine's exact staging: list-of-tuples into the
            # scalar probe loop.
            table.accumulate_batch(
                list(
                    zip(
                        keys.tolist(),
                        pkts.tolist(),
                        byts.tolist(),
                        stamps.tolist(),
                        tuples,
                    )
                )
            )
        best_scalar = min(best_scalar, time.perf_counter() - start)

        batched = BatchedWSAFTable(num_entries=entries)
        gc.collect()
        start = time.perf_counter()
        for keys, pkts, byts, stamps, tuples in batches:
            batched.accumulate_batch_arrays(
                keys, pkts, byts, stamps, tuples, collect_totals=False
            )
        best_batched = min(best_batched, time.perf_counter() - start)
    return best_scalar, best_batched


def _hash_stage_times(keys, rounds: int) -> "tuple[float, float]":
    """Best-of seconds hashing the flow keys: (scalar loop, hash_many)."""
    hasher = TabulationHash(seed=1)
    key_list = keys.tolist()
    best_scalar = best_vector = float("inf")
    for _ in range(rounds):
        hash_one = hasher.hash
        gc.collect()
        start = time.perf_counter()
        for key in key_list:
            hash_one(key)
        best_scalar = min(best_scalar, time.perf_counter() - start)

        gc.collect()
        start = time.perf_counter()
        hasher.hash_many(keys)
        best_vector = min(best_vector, time.perf_counter() - start)
    return best_scalar, best_vector


def _append_report(rows: "list[dict]") -> None:
    """Append ``rows`` to BENCH_throughput.json, replacing same-key rows.

    The key is ``(git_sha, engine, wsaf_engine)``; historical rows (other
    commits, or the pre-keying seed rows without a ``git_sha``) stay put.
    """
    history: "list[dict]" = []
    if OUTPUT_PATH.exists():
        try:
            history = json.loads(OUTPUT_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []

    def row_key(row: "dict") -> "tuple":
        return (
            row.get("git_sha"),
            row.get("engine"),
            row.get("wsaf_engine", "scalar"),
        )

    fresh = {row_key(row) for row in rows}
    history = [row for row in history if row_key(row) not in fresh]
    history.extend(rows)
    OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n")


def run_benchmark(trace, rounds: int, stage_rounds: int) -> "dict":
    """Measure every variant plus the stage breakdown; append the report.

    Returns ``{"rows": [...], "report": str, "speedups": {...}}``.
    """
    configs = {variant: _config(*variant) for variant in VARIANTS}
    # Warm-up pass each: CPU frequency ramp + LUT/layout/stream caches.
    for config in configs.values():
        InstaMeasure(config).process_trace(trace)

    best = {variant: float("inf") for variant in VARIANTS}
    packets = {variant: 0 for variant in VARIANTS}
    for _ in range(rounds):
        for variant, config in configs.items():
            elapsed, count = _timed_run(config, trace)
            best[variant] = min(best[variant], elapsed)
            packets[variant] = count

    batches = _capture_event_batches(trace)
    num_events = sum(batch[0].size for batch in batches)
    wsaf_scalar_s, wsaf_batched_s = _wsaf_stage_times(
        batches, configs[VARIANTS[0]].wsaf_entries, stage_rounds
    )
    hash_scalar_s, hash_vector_s = _hash_stage_times(
        trace.flows.key64, stage_rounds
    )

    delegated_s = best[("batched", "batched")]
    stages = {
        "regulator_s": delegated_s - wsaf_batched_s,
        "wsaf_scalar_s": wsaf_scalar_s,
        "wsaf_batched_s": wsaf_batched_s,
        "wsaf_stage_speedup": wsaf_scalar_s / wsaf_batched_s,
        "hash_scalar_s": hash_scalar_s,
        "hash_vector_s": hash_vector_s,
        "hash_speedup": hash_scalar_s / hash_vector_s,
        "delegated_events": num_events,
    }

    sha = _git_sha()
    now = time.time()
    rows = []
    for variant in VARIANTS:
        engine, wsaf_engine = variant
        row = {
            "git_sha": sha,
            "engine": engine,
            "wsaf_engine": wsaf_engine,
            "pps": packets[variant] / best[variant],
            "seconds": best[variant],
            "packets": packets[variant],
            "chunk_size": CHUNK_SIZE,
            "timestamp": now,
        }
        if variant == ("batched", "batched"):
            row["stages"] = stages
        rows.append(row)
    _append_report(rows)

    scalar_pps = rows[0]["pps"]
    pr1_pps = rows[1]["pps"]
    lines = [f"commit {sha}  ({num_events} delegated WSAF events)"]
    lines.append("variant              pps          speedup")
    for row in rows:
        label = _variant_label(row["engine"], row["wsaf_engine"])
        lines.append(
            f"{label:<20} {row['pps']:>12,.0f} "
            f"{row['pps'] / scalar_pps:>7.2f}x"
        )
    lines.append(
        "stages (delegated): "
        f"regulator {stages['regulator_s'] * 1e3:.1f} ms, "
        f"wsaf {wsaf_batched_s * 1e3:.1f} ms "
        f"(scalar {wsaf_scalar_s * 1e3:.1f} ms, "
        f"{stages['wsaf_stage_speedup']:.2f}x), "
        f"hashing {hash_vector_s * 1e3:.2f} ms "
        f"(scalar {hash_scalar_s * 1e3:.2f} ms, "
        f"{stages['hash_speedup']:.2f}x)"
    )
    lines.append(f"report: {OUTPUT_PATH.name}")

    return {
        "rows": rows,
        "report": "\n".join(lines),
        "speedups": {
            "batched_vs_scalar": pr1_pps / scalar_pps,
            "delegated_vs_batched": rows[2]["pps"] / pr1_pps,
            "wsaf_stage": stages["wsaf_stage_speedup"],
        },
    }


def test_throughput_regression(caida_trace, write_report):
    """Three-variant pps + stage breakdown; appends BENCH_throughput.json."""
    result = run_benchmark(caida_trace, ROUNDS, STAGE_ROUNDS)
    write_report("bench_throughput", result["report"])

    for row in result["rows"]:
        assert row["packets"] == caida_trace.num_packets
    speedups = result["speedups"]
    assert speedups["batched_vs_scalar"] >= MIN_SPEEDUP, (
        f"batched engine is only {speedups['batched_vs_scalar']:.2f}x scalar "
        f"(regression bar: {MIN_SPEEDUP}x)"
    )
    assert speedups["delegated_vs_batched"] >= MIN_DELEGATED_SPEEDUP, (
        f"delegated engine is only {speedups['delegated_vs_batched']:.2f}x "
        f"the PR-1 batched engine (regression bar: {MIN_DELEGATED_SPEEDUP}x)"
    )
    assert speedups["wsaf_stage"] >= MIN_WSAF_STAGE_SPEEDUP, (
        f"batch-probed WSAF stage is only {speedups['wsaf_stage']:.2f}x the "
        f"scalar replay (regression bar: {MIN_WSAF_STAGE_SPEEDUP}x)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small trace, one timed round, no perf bars",
    )
    args = parser.parse_args()

    from repro.traffic import CaidaLikeConfig, build_caida_like_trace

    if args.quick:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=4_000, duration=10.0, seed=1)
        )
        result = run_benchmark(trace, rounds=1, stage_rounds=2)
    else:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=30_000, duration=60.0, seed=1)
        )
        result = run_benchmark(trace, ROUNDS, STAGE_ROUNDS)
    print(result["report"])
    for row in result["rows"]:
        assert row["packets"] == trace.num_packets, "packet count mismatch"


if __name__ == "__main__":
    main()
