"""Fig 11 — byte-counter accuracy vs memory, and byte Top-K recall.

Paper claims: the sampling-based byte counter tracks the packet counter's
accuracy almost exactly — e.g. 128 KB: 3.47 % (10MB+), 1.57 % (100MB+),
0.54 % (1GB+); byte Top-K recall mostly above 95 %.  The byte estimate is
``est_pkt × len(triggering packet)``, so its error is the packet error plus
packet-size sampling noise (Section III-C).

Scale note: bands are cumulative byte thresholds scaled to the reproduction
trace (1MB+/3MB+/10MB+), mirroring Fig 10's packet bands.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import band_errors, format_table, mean_relative_error
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import topk_recall

L1_SWEEP_BYTES = [128, 512, 2048, 16 * 1024]
BYTE_BANDS = [(1e6, np.inf), (3e6, np.inf), (1e7, np.inf)]
TOPK_KS = [10, 100, 300]


def _run_engine(trace, l1_bytes):
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=l1_bytes, wsaf_entries=1 << 16, seed=11)
    )
    engine.process_trace(trace)
    return engine


def test_fig11_byte_accuracy(benchmark, caida_trace, write_report):
    truth_bytes = caida_trace.ground_truth_bytes().astype(float)
    truth_packets = caida_trace.ground_truth_packets().astype(float)
    positive = truth_bytes > 0

    sweep_rows = []
    errors_by_memory = {}
    final_engine = None
    for l1_bytes in L1_SWEEP_BYTES:
        if l1_bytes == L1_SWEEP_BYTES[0]:
            engine = benchmark.pedantic(
                _run_engine, args=(caida_trace, l1_bytes), rounds=1, iterations=1
            )
        else:
            engine = _run_engine(caida_trace, l1_bytes)
        final_engine = engine
        _est_packets, est_bytes = engine.estimates_for(caida_trace)
        bands = band_errors(est_bytes[positive], truth_bytes[positive], BYTE_BANDS)
        errors_by_memory[l1_bytes] = bands
        memory_label = (
            f"{l1_bytes}B/{4 * l1_bytes}B"
            if l1_bytes < 1024
            else f"{l1_bytes // 1024}KB/{4 * l1_bytes // 1024}KB"
        )
        sweep_rows.append(
            [memory_label, *(f"{band.mean_error:7.2%}" for band in bands)]
        )
    table_a = format_table(
        ["L1/total mem", "1MB+", "3MB+", "10MB+"],
        sweep_rows,
        title="Fig 11(a) — byte-count mean error vs memory (scaled bands)",
    )

    est_packets, est_bytes = final_engine.estimates_for(caida_trace)
    recalls = {k: topk_recall(est_bytes, truth_bytes, k) for k in TOPK_KS}
    recall_rows = [[k, f"{recalls[k]:6.1%}"] for k in TOPK_KS]
    table_b = format_table(
        ["K", "byte Top-K recall"],
        recall_rows,
        title="Fig 11(b) — byte Top-K recall",
    )

    # Section III-C: byte counting is within ~1 % of packet counting.
    big = truth_packets >= 1e4
    packet_err = mean_relative_error(est_packets[big], truth_packets[big])
    byte_err = mean_relative_error(est_bytes[big], truth_bytes[big])
    note = (
        f"\nbyte vs packet error on 10K+ pkt flows: {byte_err:.2%} vs "
        f"{packet_err:.2%} (paper: byte counting tracks packet counting <1% apart)"
    )
    write_report("fig11_byte_accuracy", table_a + "\n\n" + table_b + note)

    smallest = errors_by_memory[L1_SWEEP_BYTES[0]]
    largest = errors_by_memory[L1_SWEEP_BYTES[-1]]
    assert largest[0].mean_error < smallest[0].mean_error  # memory helps
    assert largest[2].mean_error < largest[0].mean_error  # elephants better
    assert largest[2].mean_error < 0.04
    assert recalls[10] >= 0.9
    assert recalls[100] >= 0.9
    assert abs(byte_err - packet_err) < 0.02  # byte tracks packet accuracy
