"""Overload accuracy: closed-loop load policies vs oblivious tail drops.

Closes the loop the backpressure control plane opens
(:mod:`repro.pipeline.control`): replay the lab trace at offered rates
*above* the sustainable capacity and score what each overload response
does to detection accuracy.

Three responses per overload factor, all observing the same offered
stream and all ingesting at (or below) the same effective rate:

* **oblivious** — the open-loop baseline: a
  :class:`~repro.simulate.linkmodel.MirrorPort` at the capacity rate
  drops whatever exceeds the line, and the measurer ingests the
  post-drop stream.  The drop rate is unknown at the observation point
  (that is what "oblivious" means), so estimates cannot be compensated
  — the paper's campus deployment lives with exactly this loss model.
  An ``oracle_hh_recall`` column records what compensation *would*
  recover if the drop rate were magically known, keeping the headline
  honest.
* **shed** — :class:`~repro.pipeline.control.ShedController` thins
  overloaded chunks with deterministic seed-stable packet sampling down
  to a target just under the mirror port's delivered rate.  The keep
  rate is *known* (``ControllerStats`` carries exact counts), so
  estimates are scaled back up by it.
* **degrade** — :class:`~repro.pipeline.control.DegradeController`
  switches to coalesced batch ingests (the cheaper mode) and thins to a
  boosted budget chosen so its kept packets also stay at or below the
  mirror port's delivered count.

The headline regression bar: at equal-or-lower effective ingest rate,
policy-driven shedding must beat the oblivious drop baseline on
heavy-hitter recall for at least one offered rate (both ``shed`` and
``degrade``).  ``--quick`` is the CI smoke — a small trace, one
overload factor, history untouched, and the bar relaxed to a
no-collapse floor (policy recall >= oblivious recall).

Rows land in ``BENCH_overload.json`` keyed by ``(git_sha, policy,
overload)``: re-running on a commit replaces that commit's rows and
keeps other commits', with legacy rows backfilled by
``_normalize_history`` — the same history policy as
``BENCH_throughput.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import time

import numpy as np

from repro.analysis.metrics import mean_relative_error
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import classify_detections, ground_truth_heavy_hitters
from repro.pipeline import DegradeController, ShedController, run_pipeline
from repro.simulate import MirrorPort
from repro.state.codec import to_bytes
from repro.traffic import CaidaLikeConfig, build_caida_like_trace
from repro.traffic.replay import scale_rate

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_overload.json"

#: Offered-rate multiples of the sustainable capacity swept by the full
#: bench; the smoke sweeps only the middle one.
OVERLOADS = (1.5, 2.5, 4.0)
SMOKE_OVERLOADS = (2.5,)
#: Chunk granularity of the controlled runs — small enough that one run
#: makes many control decisions.
CHUNK_SIZE = 2048
#: Shed/degrade targets sit this far under the mirror port's delivered
#: rate, so sampling noise cannot push kept packets above delivered.
TARGET_SAFETY = 0.95
#: Degrade-mode batching: chunks per coalesced ingest, and the assumed
#: batching speedup that sets the boosted thinning budget.  The budget
#: is ``target * boost`` and the target is scaled down by the same
#: boost, so degrade's kept packets obey the same delivered-rate cap as
#: shed's.
DEGRADE_BATCH = 8
DEGRADE_BOOST = 1.25
#: Mirror-port buffer: small enough that overload engages the drop path
#: within the first epoch of the trace.
BUFFER_BYTES = 256 * 1024
#: Controller sampling seed (stamped into rows; shed determinism).
CONTROL_SEED = 11

#: Heavy-hitter threshold (packets, on the offered trace's ground
#: truth) and the ARE band, full and smoke trace scales.
HH_THRESHOLD = 1_000.0
SMOKE_HH_THRESHOLD = 300.0


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _environment() -> "dict":
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "numpy_version": np.__version__,
    }


def _engine() -> InstaMeasure:
    return InstaMeasure(
        InstaMeasureConfig(
            l1_memory_bytes=8192, wsaf_entries=1 << 16, seed=1
        )
    )


def _score(offered, est_packets, compensation, threshold) -> "dict":
    """HH precision/recall and banded ARE of compensated estimates."""
    est = est_packets * compensation
    truth = offered.ground_truth_packets().astype(float)
    truth_hh, _ = ground_truth_heavy_hitters(
        offered, threshold_packets=threshold
    )
    assert truth_hh, (
        f"no ground-truth heavy hitters at threshold {threshold} — "
        "the bench trace is too small for its threshold"
    )
    detected = set(np.flatnonzero(est >= threshold).tolist())
    outcome = classify_detections(detected, truth_hh, offered.num_flows)
    band = truth >= threshold
    return {
        "hh_threshold": threshold,
        "hh_truth": len(truth_hh),
        "hh_detected": len(detected),
        "hh_precision": outcome.precision,
        "hh_recall": outcome.recall,
        "are_band": mean_relative_error(est[band], truth[band]),
    }


def _run_oblivious(offered, capacity_pps: float, threshold: float) -> "dict":
    """MirrorPort drops at capacity; estimator ingests the survivors."""
    mean_bits = float(offered.sizes.mean()) * 8.0
    port = MirrorPort(
        capacity_bps=capacity_pps * mean_bits, buffer_bytes=BUFFER_BYTES
    )
    delivered, port_stats = port.apply(offered)
    engine = _engine()
    run_pipeline(engine, delivered, chunk_size=CHUNK_SIZE)
    est_packets, _ = engine.estimates_for(offered)
    row = {
        "policy": "oblivious",
        "measured_packets": port_stats.delivered_packets,
        "keep_rate": 1.0 - port_stats.drop_rate,
        "compensation": 1.0,
        "target_pps": None,
    }
    # The open-loop baseline cannot know its drop rate; score it as
    # deployed (uncompensated), but record the oracle column too.
    row.update(_score(offered, est_packets, 1.0, threshold))
    oracle = _score(
        offered,
        est_packets,
        1.0 / max(1.0 - port_stats.drop_rate, 1e-12),
        threshold,
    )
    row["oracle_hh_recall"] = oracle["hh_recall"]
    row["_delivered_packets"] = port_stats.delivered_packets
    return row


def _run_policy(offered, policy: str, target_pps: float, threshold: float):
    """One controlled run; returns (row, snapshot_bytes)."""
    if policy == "shed":
        controller = ShedController(target_pps, seed=CONTROL_SEED)
    else:
        controller = DegradeController(
            target_pps / DEGRADE_BOOST,
            batch_chunks=DEGRADE_BATCH,
            boost=DEGRADE_BOOST,
            seed=CONTROL_SEED,
        )
    engine = _engine()
    result = run_pipeline(
        engine, offered, chunk_size=CHUNK_SIZE, controller=controller
    )
    stats = result.controller_stats
    est_packets, _ = engine.estimates_for(offered)
    compensation = 1.0 / max(stats["keep_rate"], 1e-12)
    row = {
        "policy": policy,
        "measured_packets": stats["kept_packets"],
        "keep_rate": stats["keep_rate"],
        "compensation": compensation,
        "target_pps": target_pps,
        "thinned_chunks": stats["thinned_chunks"],
        "dropped_chunks": stats["dropped_chunks"],
        "degraded_chunks": stats["degraded_chunks"],
        "batched_ingests": stats["batched_ingests"],
    }
    row.update(_score(offered, est_packets, compensation, threshold))
    return row, to_bytes(engine.snapshot())


def _sweep_one(base, overload: float, capacity_pps: float, threshold: float):
    """All three responses at one offered rate; returns the row group."""
    offered = scale_rate(base, overload)
    duration = float(offered.timestamps[-1] - offered.timestamps[0])
    offered_pps = offered.num_packets / duration

    oblivious = _run_oblivious(offered, capacity_pps, threshold)
    delivered = oblivious.pop("_delivered_packets")
    delivered_pps = delivered / duration
    target = TARGET_SAFETY * delivered_pps

    shed, shed_snapshot = _run_policy(offered, "shed", target, threshold)
    shed_again, again_snapshot = _run_policy(
        offered, "shed", target, threshold
    )
    assert shed_snapshot == again_snapshot, (
        "shed is not deterministic: two runs over the same trace and "
        "schedule produced different snapshots"
    )
    assert shed == shed_again, "shed rows diverged across identical runs"
    degrade, _ = _run_policy(offered, "degrade", target, threshold)

    rows = []
    for row in (oblivious, shed, degrade):
        row.update(
            overload=overload,
            capacity_pps=capacity_pps,
            offered_pps=offered_pps,
            offered_packets=offered.num_packets,
            effective_pps=row["measured_packets"] / duration,
        )
        rows.append(row)
    return rows


# -- history file --------------------------------------------------------------


def _row_key(row: "dict") -> "tuple":
    return (
        row.get("git_sha"),
        row.get("policy"),
        row.get("overload"),
    )


def _normalize_history(history: "list[dict]") -> "list[dict]":
    """Backfill legacy rows and dedupe per key, keeping the latest.

    * Rows without ``git_sha`` predate keying; stamp ``"unknown"`` so
      they stay distinguishable from (and replaceable by) keyed rows.
    * Rows without ``policy`` predate the control plane and measured
      the open-loop drop path — backfill ``"oblivious"``.
    * Rows without ``overload`` ran at the sustainable rate — backfill
      ``1.0`` so every row carries the full key.
    * Rows without the environment stamp get explicit ``null`` fields
      so consumers can filter on them.
    * One row per ``(git_sha, policy, overload)``, latest ``timestamp``
      wins; output sorted by timestamp so the file reads as a history.
    """
    best: "dict[tuple, dict]" = {}
    for row in history:
        if not row.get("git_sha"):
            row["git_sha"] = "unknown"
        row.setdefault("policy", "oblivious")
        row.setdefault("overload", 1.0)
        row.setdefault("cpu_count", None)
        row.setdefault("platform", None)
        row.setdefault("numpy_version", None)
        key = _row_key(row)
        kept = best.get(key)
        if kept is None or row.get("timestamp", 0) >= kept.get("timestamp", 0):
            best[key] = row
    return sorted(
        best.values(),
        key=lambda r: (r.get("timestamp", 0), str(r.get("policy"))),
    )


def _load_history() -> "list[dict]":
    """BENCH_overload.json rows, defensively (corrupt file moved aside)."""
    if not OUTPUT_PATH.exists():
        return []
    try:
        history = json.loads(OUTPUT_PATH.read_text())
        if not isinstance(history, list) or not all(
            isinstance(row, dict) for row in history
        ):
            raise ValueError("history must be a list of row dicts")
    except (json.JSONDecodeError, OSError, ValueError) as error:
        backup = OUTPUT_PATH.with_suffix(OUTPUT_PATH.suffix + ".corrupt")
        try:
            OUTPUT_PATH.replace(backup)
            print(
                f"warning: {OUTPUT_PATH.name} is corrupt ({error}); "
                f"moved to {backup.name}, starting a fresh history"
            )
        except OSError:
            print(
                f"warning: {OUTPUT_PATH.name} is corrupt ({error}) and "
                "could not be moved aside; starting a fresh history"
            )
        return []
    return history


def _append_report(rows: "list[dict]") -> None:
    history = _load_history()
    history.extend(rows)
    OUTPUT_PATH.write_text(
        json.dumps(_normalize_history(history), indent=2) + "\n"
    )


# -- the sweep -----------------------------------------------------------------


def run_overload(
    base,
    overloads: "tuple[float, ...]" = OVERLOADS,
    threshold: float = HH_THRESHOLD,
    record: bool = True,
) -> "dict":
    """Sweep every overload factor; return ``{"rows", "report"}``."""
    sha = _git_sha()
    now = time.time()
    environment = _environment()
    duration = float(base.timestamps[-1] - base.timestamps[0])
    capacity_pps = base.num_packets / duration

    rows = []
    for overload in overloads:
        rows.extend(_sweep_one(base, overload, capacity_pps, threshold))
    for row in rows:
        row.update(
            git_sha=sha,
            timestamp=now,
            control_seed=CONTROL_SEED,
            chunk_size=CHUNK_SIZE,
            **environment,
        )
    if record:
        _append_report(rows)

    lines = [
        f"commit {sha}  overload sweep: capacity {capacity_pps:,.0f} pps, "
        f"{base.num_packets:,} packets, HH threshold {threshold:,.0f}"
    ]
    lines.append(
        "overload  policy     effective pps  keep     hh recall  "
        "hh precision  ARE(band)  extra"
    )
    for row in rows:
        extra = ""
        if row["policy"] == "oblivious":
            extra = f"oracle recall {row['oracle_hh_recall']:.2f}"
        elif row["policy"] == "degrade":
            extra = (
                f"batched {row['batched_ingests']}, "
                f"degraded {row['degraded_chunks']} chunks"
            )
        lines.append(
            f"{row['overload']:>7.1f}x  "
            f"{row['policy']:<9} "
            f"{row['effective_pps']:>13,.0f}  "
            f"{row['keep_rate']:>6.1%}  "
            f"{row['hh_recall']:>9.2f}  "
            f"{row['hh_precision']:>12.2f}  "
            f"{row['are_band']:>9.4f}  "
            f"{extra}"
        )
    lines.append(f"report: {OUTPUT_PATH.name}")
    return {"rows": rows, "report": "\n".join(lines)}


def assert_overload_bars(result: "dict", smoke: bool = False) -> None:
    """The overload regression bars; ``smoke`` relaxes "beat" to "match".

    * Fairness everywhere: shed and degrade keep at most as many
      packets as the mirror port delivers (equal-or-lower effective
      ingest rate).
    * Full mode: at least one offered rate where shed AND degrade
      each *strictly* beat oblivious on heavy-hitter recall.
    * Smoke mode: shed and degrade recall never collapse below
      oblivious recall at any swept rate.
    """
    by_overload: "dict[float, dict[str, dict]]" = {}
    for row in result["rows"]:
        by_overload.setdefault(row["overload"], {})[row["policy"]] = row

    beaten = []
    for overload, group in sorted(by_overload.items()):
        oblivious, shed, degrade = (
            group["oblivious"], group["shed"], group["degrade"]
        )
        for row in (shed, degrade):
            assert row["measured_packets"] <= oblivious["measured_packets"], (
                f"{row['policy']} at {overload}x ingested "
                f"{row['measured_packets']:,} packets, more than the "
                f"{oblivious['measured_packets']:,} the mirror port "
                "delivered — the accuracy comparison would be unfair"
            )
            assert row["hh_recall"] >= oblivious["hh_recall"], (
                f"{row['policy']} at {overload}x recall "
                f"{row['hh_recall']:.2f} collapsed below the oblivious "
                f"baseline's {oblivious['hh_recall']:.2f}"
            )
        if (
            shed["hh_recall"] > oblivious["hh_recall"]
            and degrade["hh_recall"] > oblivious["hh_recall"]
        ):
            beaten.append(overload)
    if not smoke:
        assert beaten, (
            "no offered rate where both shed and degrade strictly beat "
            "the oblivious baseline on heavy-hitter recall"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small trace, one overload factor, no-collapse "
        "floor, history file untouched",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing BENCH_overload.json (quick implies this)",
    )
    args = parser.parse_args()

    if args.quick:
        base = build_caida_like_trace(
            CaidaLikeConfig(num_flows=3_000, duration=8.0, seed=7)
        )
        result = run_overload(
            base,
            overloads=SMOKE_OVERLOADS,
            threshold=SMOKE_HH_THRESHOLD,
            record=False,
        )
    else:
        base = build_caida_like_trace(
            CaidaLikeConfig(num_flows=20_000, duration=30.0, seed=7)
        )
        result = run_overload(base, record=not args.no_record)
    print(result["report"])
    assert_overload_bars(result, smoke=args.quick)


if __name__ == "__main__":
    main()
