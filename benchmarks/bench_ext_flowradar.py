"""Extension — InstaMeasure vs FlowRadar (the paper's closest relative).

Related Work: "FlowRadar's view on WSAF is similar to InstaMeasure,
although it tried to solve non-deterministic insertion time by IBLT's
constant time insertion, instead of relaxing the {ips = pps} constraint."

The architectural trade this bench makes concrete:

* FlowRadar touches memory ~7-11 times on *every* packet (Bloom check +
  IBLT cells) but recovers exact counters — until the epoch holds more
  flows than the IBLT can peel, where decode fails outright;
* InstaMeasure touches 1-2 sketch words per packet and ~1 % of packets
  touch the WSAF; accuracy degrades gracefully with memory instead of
  cliff-ing.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, mean_relative_error
from repro.baselines import FlowRadar
from repro.core import InstaMeasure, InstaMeasureConfig


def _run_flowradar(trace, iblt_cells):
    radar = FlowRadar(iblt_cells=iblt_cells, seed=21)
    radar.encode_trace(trace)
    return radar.decode()


def test_ext_flowradar_comparison(benchmark, caida_small, write_report):
    trace = caida_small
    truth = trace.ground_truth_packets().astype(float)
    big = truth >= 2000
    keys = trace.flows.key64

    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 15, seed=21)
    )
    insta_result = engine.process_trace(trace)
    insta_est, _ = engine.estimates_for(trace)
    insta_error = mean_relative_error(insta_est[big], truth[big])

    rows = [
        [
            "InstaMeasure (16KB sketch)",
            f"{2 + 3 * insta_result.regulation_rate:5.2f}",
            f"{insta_result.regulation_rate:8.3%}",
            f"{insta_error:7.2%}",
            "graceful",
        ]
    ]

    # FlowRadar sized comfortably (2 cells/flow) and undersized (cliff).
    generous_cells = 2 * trace.num_flows
    recovered, stats = benchmark.pedantic(
        _run_flowradar, args=(trace, generous_cells), rounds=1, iterations=1
    )
    radar_est = np.array(
        [recovered.get(int(keys[flow]), 0.0) for flow in np.flatnonzero(big)]
    )
    radar_error = mean_relative_error(radar_est, truth[big])
    rows.append(
        [
            f"FlowRadar ({generous_cells} cells)",
            f"{stats.updates_per_packet:5.2f}",
            "100.000%",
            f"{radar_error:7.2%}",
            "exact" if not stats.decode_failed else "FAILED",
        ]
    )

    tight_cells = trace.num_flows // 3
    _recovered2, stats2 = _run_flowradar(trace, tight_cells)
    rows.append(
        [
            f"FlowRadar ({tight_cells} cells)",
            f"{stats2.updates_per_packet:5.2f}",
            "100.000%",
            "   n/a",
            "decode FAILED" if stats2.decode_failed else "exact",
        ]
    )

    table = format_table(
        ["system", "mem updates/pkt", "flow-store ips/pps", "elephant err", "decode"],
        rows,
        title="Extension — InstaMeasure vs FlowRadar (IBLT)",
    )
    note = (
        "\nFlowRadar buys exact epoch counters with ~an order of magnitude"
        "\nmore per-packet memory traffic and a hard capacity cliff;"
        "\nInstaMeasure regulates the flow store to ~1% of pps and degrades"
        "\ngracefully when memory is short."
    )
    write_report("ext_flowradar", table + note)

    assert not stats.decode_failed
    assert stats2.decode_failed  # the cliff is real
    assert radar_error < 0.02  # exact up to Bloom merges
    assert stats.updates_per_packet > 3.0
    assert insta_result.regulation_rate < 0.03
