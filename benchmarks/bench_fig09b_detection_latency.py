"""Fig 9(b) — heavy-hitter detection latency vs attacker rate.

Paper claim: with a fixed threshold (0.05 % of link capacity) the
saturation-based detection lag behind packet-arrival-based decoding is
≈10 ms for a 10 kpps flow, falling to ≈1 ms at 130 kpps (heavier attackers
are caught sooner); delegation-based decoding costs tens of ms regardless.
The mechanism is exact: the lag is the time to accumulate roughly one
retention quantum (≈95 packets), i.e. ``capacity / rate``.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import InstaMeasureConfig
from repro.detection import DelegationModel, detection_latency_experiment

RATES_PPS = [10_000.0, 30_000.0, 50_000.0, 90_000.0, 130_000.0, 200_000.0]
THRESHOLD_PACKETS = 500  # ≈ 0.05 % of a 1 Mpps link over the window


def _experiment(background):
    return detection_latency_experiment(
        background,
        rates_pps=RATES_PPS,
        threshold_packets=THRESHOLD_PACKETS,
        engine_config=InstaMeasureConfig(
            l1_memory_bytes=16 * 1024, wsaf_entries=1 << 16, seed=9
        ),
        delegation=DelegationModel(epoch_seconds=0.02, network_delay_seconds=0.02),
        attack_duration=1.5,
        attack_start=0.5,
    )


def test_fig09b_detection_latency(benchmark, caida_small, write_report):
    samples = benchmark.pedantic(
        _experiment, args=(caida_small,), rounds=1, iterations=1
    )
    assert len(samples) == len(RATES_PPS)

    rows = []
    for sample in samples:
        saturation_ms = (
            f"{sample.saturation_latency * 1e3:8.2f}"
            if sample.saturation_latency is not None
            else "   (n/a)"
        )
        rows.append(
            [
                f"{sample.rate_pps / 1e3:6.0f}",
                saturation_ms,
                f"{sample.delegation_latency * 1e3:8.2f}",
            ]
        )
    table = format_table(
        ["rate (kpps)", "saturation lag (ms)", "delegation lag (ms)"],
        rows,
        title="Fig 9(b) — detection latency vs attacker rate",
    )
    note = (
        "\npaper anchors: ~10 ms @ 10 kpps, ~1 ms @ 130 kpps;"
        "\ndelegation-based decoding costs tens of ms at every rate"
    )
    write_report("fig09b_detection_latency", table + note)

    by_rate = {s.rate_pps: s for s in samples}
    slow = by_rate[10_000.0]
    fast = by_rate[130_000.0]
    assert slow.saturation_latency is not None
    assert fast.saturation_latency is not None
    # ≈10 ms at 10 kpps (one retention quantum), ≈1 ms at 130 kpps.
    assert 0.003 <= slow.saturation_latency <= 0.03
    assert -0.003 <= fast.saturation_latency <= 0.004
    # Heavier attackers caught sooner; saturation beats delegation everywhere.
    assert fast.saturation_latency < slow.saturation_latency
    for sample in samples:
        assert sample.saturation_latency < sample.delegation_latency
