"""Fig 13 — real-world (campus) estimation accuracy by standard error.

Paper claims (113 hours, 128 KB sketch, 33 MB WSAF, all in DRAM): packet
counting standard error 0.54 % over 1000K+ flows, 1.61 % over 100K+,
3.46 % over 10K+; byte counting 0.63 % / 1.74 % / 3.65 % — matching the lab
(CAIDA) accuracy.

Scale note: bands are cumulative thresholds scaled to the reproduction
trace (1K+/3K+/10K+ packets and the byte analogues); the claims under test
are the ordering (bigger flows → smaller standard error) and magnitude
(percent-level), plus ground truth being computed on the post-mirror-drop
stream exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.analysis.metrics import standard_error
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.simulate import MirrorPort

PACKET_BANDS = [(1e3, "1K+"), (3e3, "3K+"), (1e4, "10K+")]
BYTE_BANDS = [(1e6, "1MB+"), (3e6, "3MB+"), (1e7, "10MB+")]


def _run(campus_trace):
    port = MirrorPort(capacity_bps=150e6, buffer_bytes=1024 * 1024)
    delivered, port_stats = port.apply(campus_trace)
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=8192, wsaf_entries=1 << 16, seed=13)
    )
    engine.process_trace(delivered)
    est_packets, est_bytes = engine.estimates_for(delivered)
    return delivered, est_packets, est_bytes, port_stats


def test_fig13_realworld_accuracy(benchmark, campus_trace, write_report):
    delivered, est_packets, est_bytes, port_stats = benchmark.pedantic(
        _run, args=(campus_trace,), rounds=1, iterations=1
    )
    truth_packets = delivered.ground_truth_packets().astype(float)
    truth_bytes = delivered.ground_truth_bytes().astype(float)

    rows = []
    packet_errors = {}
    byte_errors = {}
    for (pkt_lo, pkt_label), (byte_lo, byte_label) in zip(PACKET_BANDS, BYTE_BANDS):
        pkt_mask = truth_packets >= pkt_lo
        byte_mask = truth_bytes >= byte_lo
        pkt_err = standard_error(est_packets[pkt_mask], truth_packets[pkt_mask])
        byte_err = standard_error(est_bytes[byte_mask], truth_bytes[byte_mask])
        packet_errors[pkt_label] = pkt_err
        byte_errors[byte_label] = byte_err
        rows.append(
            [
                pkt_label,
                int(pkt_mask.sum()),
                f"{pkt_err:6.2%}",
                byte_label,
                int(byte_mask.sum()),
                f"{byte_err:6.2%}",
            ]
        )
    table = format_table(
        ["pkt band", "n", "pkt std err", "byte band", "n", "byte std err"],
        rows,
        title="Fig 13 — campus run: standard error by flow-size band",
    )
    note = (
        f"\nmirror-port drop rate: {port_stats.drop_rate:.3%} "
        f"({port_stats.dropped_packets:,} of {port_stats.offered_packets:,} "
        "offered; estimator and ground truth both observe the post-drop "
        "stream)"
        "\npaper anchors (full scale): pkts 3.46%/1.61%/0.54% for"
        " 10K+/100K+/1000K+; bytes 3.65%/1.74%/0.63%"
    )
    write_report("fig13_realworld_accuracy", table + note)

    # Shape: percent-level standard errors, decreasing with flow size, and
    # byte accuracy tracking packet accuracy.
    assert packet_errors["10K+"] < packet_errors["1K+"]
    assert byte_errors["10MB+"] < byte_errors["1MB+"]
    assert packet_errors["10K+"] < 0.05
    assert byte_errors["10MB+"] < 0.06
