"""Fig 12 — monitoring in the wild: traffic pattern, CPU workload, queue.

Paper claims (113-hour campus run, one Atom core, 128 KB sketch, 33 MB
WSAF): traffic peaks in the daytime and sags at night/weekends; the worker
core's utilization tracks the traffic pattern and never exceeds 40 %; the
packet queue never grows noticeably.

Substitution: the timeline is compressed (6 simulated seconds per modelled
hour) and the per-worker service rate is set to 2.5× the observed peak so
the modelled peak utilization lands in the paper's ≤40 % regime; the claim
under test is the *shape* (utilization follows traffic; queues stay flat),
not the absolute rate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.simulate import MirrorPort, simulate_queues


def _simulate(campus_trace, bucket_seconds):
    port = MirrorPort(capacity_bps=150e6, buffer_bytes=1024 * 1024)
    delivered, port_stats = port.apply(campus_trace)
    assignment = np.zeros(delivered.num_packets, dtype=np.int64)
    _starts, per_bucket = delivered.packets_per_bucket(bucket_seconds)
    peak_pps = per_bucket.max() / bucket_seconds
    series = simulate_queues(
        delivered,
        assignment,
        num_workers=1,
        service_pps=2.5 * peak_pps,
        bucket_seconds=bucket_seconds,
    )
    return delivered, port_stats, series


def test_fig12_campus_overheads(benchmark, campus_trace, write_report):
    bucket_seconds = 6.0  # one modelled hour
    delivered, port_stats, series = benchmark.pedantic(
        _simulate, args=(campus_trace, bucket_seconds), rounds=1, iterations=1
    )

    offered = series.offered[0]
    utilization = series.utilization[0]
    queue = series.queue_depth[0]
    rows = []
    for hour in range(0, len(offered), 12):  # every 12 modelled hours
        rows.append(
            [
                hour,
                f"{offered[hour] / bucket_seconds:9.0f}",
                f"{utilization[hour]:6.1%}",
                f"{queue[hour]:7.0f}",
            ]
        )
    table = format_table(
        ["hour", "offered pps", "core util", "queue depth"],
        rows,
        title="Fig 12 — campus monitoring: traffic, CPU workload, queue",
    )
    summary = (
        f"\nmirror-port drop rate: {port_stats.drop_rate:.3%}; "
        f"peak utilization {series.peak_utilization():.1%} "
        f"(paper: <=40%); peak queue depth {series.peak_queue_depth():.0f} pkts"
    )
    write_report("fig12_campus_overheads", table + summary)

    # Shape: utilization tracks traffic, stays under ~50 %, queue flat.
    busy = offered > 0
    assert np.corrcoef(offered[busy], utilization[busy])[0, 1] > 0.99
    assert series.peak_utilization() <= 0.5
    assert series.peak_queue_depth() == 0.0  # never backlogged
    assert port_stats.drop_rate < 0.05
    # Diurnal shape: the quietest active hour is far below the busiest.
    assert offered[busy].min() < 0.25 * offered.max()
