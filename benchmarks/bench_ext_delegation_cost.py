"""Extension — the full cost of delegation-based decoding.

Section II argues that shipping sketches to a remote collector costs both
latency (Fig 9(b)) and network bandwidth ("for a software switch … remote
decoding undoubtedly increases the network congestion").  This bench runs
the concrete delegation pipeline (epoch CSM + flow-ID shipping + collector
decode) against InstaMeasure on the same trace and reports both costs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.baselines import DelegatingMeasurer
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import HeavyHitterDetector, ground_truth_detection_times

THRESHOLD = 1000.0
EPOCHS_SECONDS = (0.25, 1.0, 4.0)


def _delegation_run(trace, epoch_seconds):
    measurer = DelegatingMeasurer(
        sketch_memory_bytes=64 * 1024,
        epoch_seconds=epoch_seconds,
        network_delay_seconds=0.02,
        seed=25,
    )
    return measurer.process_trace(trace, threshold_packets=THRESHOLD)


def _mean_delay(detections, truth_times, trace):
    delays = []
    for flow, truth_time in truth_times.items():
        when = detections.get(flow)
        if when is not None:
            delays.append(when - truth_time)
    return float(np.mean(delays)) if delays else float("nan")


def test_ext_delegation_cost(benchmark, caida_small, write_report):
    trace = caida_small
    truth_times, _ = ground_truth_detection_times(trace, threshold_packets=THRESHOLD)
    assert truth_times

    # InstaMeasure: saturation-based decoding, no shipping at all.
    detector = HeavyHitterDetector(threshold_packets=THRESHOLD)
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=16 * 1024, wsaf_entries=1 << 15, seed=25)
    )
    engine.process_trace(trace, on_accumulate=detector.on_accumulate)
    key_of = {int(trace.flows.key64[flow]): flow for flow in truth_times}
    insta_detections = {
        key_of[key]: when
        for key, when in detector.packet_detections.items()
        if key in key_of
    }
    insta_delay = _mean_delay(insta_detections, truth_times, trace)

    rows = [
        [
            "InstaMeasure (saturation)",
            "-",
            f"{insta_delay * 1e3:8.2f}",
            "0",
            "0.0",
        ]
    ]

    delegation_delays = {}
    for epoch_seconds in EPOCHS_SECONDS:
        if epoch_seconds == EPOCHS_SECONDS[0]:
            _est, stats = benchmark.pedantic(
                _delegation_run, args=(trace, epoch_seconds), rounds=1, iterations=1
            )
        else:
            _est, stats = _delegation_run(trace, epoch_seconds)
        delay = _mean_delay(stats.detections, truth_times, trace)
        delegation_delays[epoch_seconds] = delay
        rows.append(
            [
                f"delegation, epoch {epoch_seconds:g}s",
                stats.epochs,
                f"{delay * 1e3:8.2f}",
                f"{stats.bytes_shipped:,}",
                f"{stats.shipping_overhead_bps(trace.duration) / 1e6:.2f}",
            ]
        )
    table = format_table(
        ["strategy", "epochs", "mean detect delay (ms)", "bytes shipped", "Mbps to collector"],
        rows,
        title="Extension — saturation-based vs delegation-based decoding",
    )
    note = (
        "\ndelegation trades a fundamental dial: short epochs cut latency"
        "\nbut multiply collector bandwidth; saturation-based decoding has"
        "\nneither cost (decoding happens in the switch's own DRAM)."
    )
    write_report("ext_delegation_cost", table + note)

    # InstaMeasure detects faster than every delegation configuration.
    for delay in delegation_delays.values():
        assert insta_delay < delay
    # Short epochs ship more bytes than long ones (measured above).
    _e, stats_fast = _delegation_run(trace, EPOCHS_SECONDS[0])
    _e, stats_slow = _delegation_run(trace, EPOCHS_SECONDS[-1])
    assert stats_fast.bytes_shipped > stats_slow.bytes_shipped
    # And longer epochs mean later detections.
    assert delegation_delays[4.0] > delegation_delays[0.25]
