"""Fig 1 — RCC saturation rate vs packet arrival rate.

Paper claim: plain RCC's saturation (= WSAF insertion) rate is 12-19 % of
the packet arrival rate for 8-bit vectors (~12 % for 16-bit), far above the
5-10 % speed margin SRAM has over DRAM — so RCC alone cannot front an
In-DRAM WSAF.
"""

from __future__ import annotations


from repro.analysis import format_table
from repro.baselines import run_rcc_regulator
from repro.memmodel import DRAM, ips_margin


def _series(trace, vector_bits, memory_bytes=4096):
    result = run_rcc_regulator(
        trace, memory_bytes=memory_bytes, vector_bits=vector_bits, bucket_seconds=2.0
    )
    return result


def test_fig01_rcc_saturation_rate(benchmark, caida_small, write_report):
    result8 = benchmark(_series, caida_small, 8)
    result16 = _series(caida_small, 16)

    rows = []
    for i in range(len(result8.bucket_times)):
        pps = result8.bucket_pps[i]
        if pps == 0:
            continue
        rows.append(
            [
                f"{result8.bucket_times[i]:6.1f}",
                f"{pps:10.0f}",
                f"{result8.bucket_ips[i]:9.0f}",
                f"{result8.bucket_ips[i] / pps:7.1%}",
                f"{result16.bucket_ips[i]:9.0f}",
                f"{result16.bucket_ips[i] / pps:7.1%}",
            ]
        )
    table = format_table(
        ["t (s)", "pps", "ips 8b", "rate 8b", "ips 16b", "rate 16b"],
        rows,
        title="Fig 1 — RCC saturation rate vs packet arrival rate",
    )
    margin = ips_margin(DRAM, reference_pps=100e6)
    summary = (
        f"\noverall: 8-bit rate {result8.regulation_rate:.1%}, "
        f"16-bit rate {result16.regulation_rate:.1%}; "
        f"DRAM margin at 100 Mpps line rate: {margin:.1%}\n"
        f"paper: 19% (8-bit) / 12% (16-bit), margin 5-10% -> RCC infeasible"
    )
    write_report("fig01_rcc_saturation", table + summary)

    # Shape assertions: RCC saturates around 10-20+ % of pps, above margin.
    assert 0.08 <= result8.regulation_rate <= 0.30
    assert result16.regulation_rate < result8.regulation_rate
    assert result8.regulation_rate > margin
