"""Ablation — number of FlowRegulator layers.

The paper's design choice under study: one layer (plain RCC) cannot push
the WSAF insertion rate inside DRAM's margin; two layers (the paper's
FlowRegulator) reach ~1 %; Section V-B notes that a TCAM-backed WSAF could
use "even the number of layers" as the knob.  This ablation measures, for
1-3 layers on the same trace: regulation rate, retention capacity, memory
multiplier, and elephant-flow accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, mean_relative_error
from repro.core import MultiLayerRegulator

L1_BYTES = 4096
LAYERS = (1, 2, 3)


def _run_layers(trace, num_layers, seed=17):
    """Drive a multi-layer regulator over a trace with a dict WSAF."""
    regulator = MultiLayerRegulator(L1_BYTES, num_layers=num_layers, seed=seed)
    idx_by_flow, off_by_flow = regulator.l1.place_array(trace.flows.key64)
    idx_by_flow = idx_by_flow.tolist()
    off_by_flow = off_by_flow.tolist()
    rng = np.random.default_rng(seed)
    bits = rng.integers(
        0, regulator.vector_bits, size=(trace.num_packets, num_layers)
    ).tolist()
    flow_ids = trace.flow_ids.tolist()

    estimates: "dict[int, float]" = {}
    process_at = regulator.process_at
    for p in range(trace.num_packets):
        flow = flow_ids[p]
        est = process_at(idx_by_flow[flow], off_by_flow[flow], bits[p])
        if est is not None:
            estimates[flow] = estimates.get(flow, 0.0) + est
    return regulator, estimates


def test_ablation_layers(benchmark, caida_small, write_report):
    truth = caida_small.ground_truth_packets().astype(float)
    big = truth >= 2000

    rows = []
    rates = {}
    errors = {}
    for num_layers in LAYERS:
        if num_layers == 2:
            regulator, estimates = benchmark.pedantic(
                _run_layers, args=(caida_small, 2), rounds=1, iterations=1
            )
        else:
            regulator, estimates = _run_layers(caida_small, num_layers)
        est = np.array(
            [estimates.get(flow, 0.0) for flow in np.flatnonzero(big)]
        )
        error = mean_relative_error(est, truth[big])
        rates[num_layers] = regulator.stats.regulation_rate
        errors[num_layers] = error
        rows.append(
            [
                num_layers,
                f"{regulator.retention_capacity:8.1f}",
                f"{regulator.num_sketches}x",
                f"{regulator.stats.regulation_rate:8.3%}",
                f"{error:7.2%}",
            ]
        )
    table = format_table(
        ["layers", "retention", "memory", "WSAF ips/pps", "elephant err"],
        rows,
        title="Ablation — FlowRegulator depth (same trace, same L1 size)",
    )
    note = (
        "\neach layer divides the insertion rate by ~9.7 (the single-layer"
        "\ncapacity) at the cost of more truncation error for mid flows;"
        "\n2 layers fit DRAM's ~5-10% margin, 3 fit TCAM-class margins"
    )
    write_report("ablation_layers", table + note)

    # Each extra layer buys roughly an order of magnitude of regulation.
    assert rates[2] < rates[1] / 5
    assert rates[3] < rates[2] / 5
    # Accuracy cost stays bounded for elephants.
    assert errors[2] < 0.15
    assert errors[3] < 0.4
