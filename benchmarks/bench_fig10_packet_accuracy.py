"""Fig 10 — packet-counter accuracy vs memory, and packet Top-K recall.

Paper claims (one-hour CAIDA, single core, L1 memory 32-512 KB):
  * average error falls as memory grows and as flows get larger —
    e.g. 128 KB: 3.48 % (10K+ pkts), 1.54 % (100K+), 0.56 % (1000K+);
    2048 KB total: 1.76 % / 0.58 % / 0.19 %.
  * packet Top-K recall mostly above 95 %.

Scale note: the reproduction trace is ~1/4000 of the paper's (625 K packets,
30 K flows), so the sketch sweep (128 B - 16 KB L1) and the cumulative size
bands (1K+/3K+/10K+ packets) are scaled accordingly.  The claims under test
are the monotone trends (more memory → less error; bigger flows → less
error) and the magnitudes (single-digit percent, ~1-2 % for elephants).
Top-K is evaluated at K/num_flows ratios comparable to the paper's Top-1M
out of 78 M flows (≈1 %).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import band_errors, format_table
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import topk_recall

L1_SWEEP_BYTES = [128, 512, 2048, 16 * 1024]
BANDS = [(1e3, np.inf), (3e3, np.inf), (1e4, np.inf)]
TOPK_KS = [10, 100, 300, 1000]


def _run_engine(trace, l1_bytes):
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=l1_bytes, wsaf_entries=1 << 16, seed=10)
    )
    engine.process_trace(trace)
    return engine


def test_fig10_packet_accuracy(benchmark, caida_trace, write_report):
    truth = caida_trace.ground_truth_packets().astype(float)
    positive = truth > 0

    sweep_rows = []
    errors_by_memory = {}
    engines = {}
    for l1_bytes in L1_SWEEP_BYTES:
        if l1_bytes == L1_SWEEP_BYTES[0]:
            engine = benchmark.pedantic(
                _run_engine, args=(caida_trace, l1_bytes), rounds=1, iterations=1
            )
        else:
            engine = _run_engine(caida_trace, l1_bytes)
        engines[l1_bytes] = engine
        est, _ = engine.estimates_for(caida_trace)
        bands = band_errors(est[positive], truth[positive], BANDS)
        errors_by_memory[l1_bytes] = bands
        memory_label = (
            f"{l1_bytes}B/{4 * l1_bytes}B"
            if l1_bytes < 1024
            else f"{l1_bytes // 1024}KB/{4 * l1_bytes // 1024}KB"
        )
        sweep_rows.append(
            [
                memory_label,
                *(f"{band.mean_error:7.2%}" for band in bands),
            ]
        )
    table_a = format_table(
        ["L1/total mem", "1K+ pkts", "3K+ pkts", "10K+ pkts"],
        sweep_rows,
        title="Fig 10(a) — packet-count mean error vs memory (scaled bands)",
    )

    # Top-K recall with the largest configuration (the paper fixes 10 MB);
    # the residual closes the truncation gap for sub-retention flows, as the
    # paper's periodic list updates read the live structure.
    est_big, _ = engines[L1_SWEEP_BYTES[-1]].estimates_for(
        caida_trace, include_residual=True
    )
    recalls = {k: topk_recall(est_big, truth, k) for k in TOPK_KS}
    recall_rows = [[k, f"{recalls[k]:6.1%}"] for k in TOPK_KS]
    table_b = format_table(
        ["K", "packet Top-K recall"],
        recall_rows,
        title="Fig 10(b) — packet Top-K recall",
    )
    note = (
        "\npaper anchors (full scale): 128KB -> 3.48%/1.54%/0.56%;"
        "\n2048KB -> 1.76%/0.58%/0.19%; Top-K recall mostly > 95%."
        "\nNote: at reproduction scale, rank-1000 flows are sub-retention"
        "\n(~100 pkts < ~95-pkt quantum), so Top-1000 recall degrades by design."
    )
    write_report("fig10_packet_accuracy", table_a + "\n\n" + table_b + note)

    # Shape assertions: error falls with memory and with flow size.
    smallest = errors_by_memory[L1_SWEEP_BYTES[0]]
    largest = errors_by_memory[L1_SWEEP_BYTES[-1]]
    assert largest[0].mean_error < smallest[0].mean_error  # memory helps (1K+)
    assert largest[2].mean_error < smallest[2].mean_error  # memory helps (10K+)
    assert largest[2].mean_error < largest[0].mean_error  # elephants better
    assert largest[2].mean_error < 0.03  # elephants: low single digits
    assert recalls[10] >= 0.9
    assert recalls[100] >= 0.9
    assert recalls[300] >= 0.7
