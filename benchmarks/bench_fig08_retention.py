"""Fig 8 — retention capacity, saturation frequency, and the accuracy cost.

Paper claims:
  (a) RCC's retention capacity grows only additively with vector size (77
      packets even at 64 bits); FlowRegulator's grows multiplicatively (a
      16-bit FR — 8 bits per layer — retains ≈100 packets).
  (b) Saturation frequency (WSAF insertions per packet of one flow) is
      correspondingly an order of magnitude lower for FR.
  (c) The two-layer design pays a small accuracy penalty, shrinking as the
      vector grows (worst at 8 total bits = 4 per layer).

Vector sizes are compared at equal *total* bits: FR with b bits per layer is
compared against RCC with 2b bits, as the paper prescribes ("it would be
twice of L1 counter's virtual vector size").
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import FlowRegulator, RCCSketch

TOTAL_BITS = (8, 16, 32, 64)
SINGLE_FLOW_PACKETS = 30_000


def _empirical_error(total_bits: int, seed: int) -> "tuple[float, float]":
    """(FR error, RCC error) counting one flow of SINGLE_FLOW_PACKETS pkts."""
    rng = np.random.default_rng(seed)
    half = total_bits // 2
    regulator = FlowRegulator(256, vector_bits=half, word_bits=64, seed=seed)
    total = 0.0
    for _ in range(SINGLE_FLOW_PACKETS):
        est = regulator.process(1, int(rng.integers(half)), int(rng.integers(half)))
        if est is not None:
            total += est
    total += regulator.residual_estimate(1)
    fr_error = abs(total - SINGLE_FLOW_PACKETS) / SINGLE_FLOW_PACKETS

    rng = np.random.default_rng(seed + 1000)
    sketch = RCCSketch(256, vector_bits=total_bits, word_bits=64, seed=seed)
    total = 0.0
    for _ in range(SINGLE_FLOW_PACKETS):
        noise = sketch.encode(1, int(rng.integers(total_bits)))
        if noise is not None:
            total += sketch.decode(noise)
    total += sketch.partial_estimate(1)
    rcc_error = abs(total - SINGLE_FLOW_PACKETS) / SINGLE_FLOW_PACKETS
    return fr_error, rcc_error


def _capacity_table():
    rows = []
    capacities = {}
    for total_bits in TOTAL_BITS:
        half = total_bits // 2
        rcc = RCCSketch(256, vector_bits=total_bits, word_bits=64)
        fr = FlowRegulator(256, vector_bits=half, word_bits=64)
        capacities[total_bits] = (rcc.retention_capacity, fr.retention_capacity)
        rows.append(
            [
                total_bits,
                f"{rcc.retention_capacity:8.1f}",
                f"{fr.retention_capacity:8.1f}",
                f"{1.0 / rcc.retention_capacity:8.4f}",
                f"{1.0 / fr.retention_capacity:8.4f}",
            ]
        )
    return rows, capacities


def test_fig08_retention_and_accuracy(benchmark, write_report):
    rows, capacities = benchmark(_capacity_table)

    error_rows = []
    for total_bits in TOTAL_BITS:
        fr_errors, rcc_errors = zip(
            *(_empirical_error(total_bits, seed) for seed in range(3))
        )
        error_rows.append(
            [
                total_bits,
                f"{np.mean(rcc_errors):7.2%}",
                f"{np.mean(fr_errors):7.2%}",
            ]
        )

    table_ab = format_table(
        ["total bits", "RCC cap", "FR cap", "RCC sat freq", "FR sat freq"],
        rows,
        title="Fig 8(a,b) — retention capacity & saturation frequency per flow",
    )
    table_c = format_table(
        ["total bits", "RCC err", "FR err"],
        error_rows,
        title="Fig 8(c) — single-flow counting error (accuracy cost)",
    )
    notes = (
        "\npaper anchors: RCC cap 9.7@8b, 77@64b; FR(8+8) cap ~95-100;\n"
        "FR accuracy cost small except at 8 total bits (4 per layer)"
    )
    write_report("fig08_retention", table_ab + "\n\n" + table_c + notes)

    # Shape assertions.
    rcc8, fr8 = capacities[8]
    rcc64, fr64 = capacities[64]
    assert 9.0 <= rcc8 <= 10.0  # "can only count up to 9 packets"
    assert 76.0 <= rcc64 <= 78.0  # "only 77 packets even with 64-bit"
    assert 90.0 <= capacities[16][1] <= 100.0  # FR 16-bit ≈ 100
    # Multiplicative vs additive growth: FR exceeds RCC at every size and
    # pulls away as the vector grows.
    assert fr8 > rcc8
    assert capacities[16][1] > capacities[16][0]
    assert fr64 / capacities[16][1] > rcc64 / capacities[16][0]
    assert fr64 / fr8 > rcc64 / rcc8
