"""The WSAF storage frontier: memory × accuracy × modelled-pps.

Sweeps the three storage backends — the flat baseline, the tiered
hot-cache store at several cache sizes, and the ICE-Buckets compressed
counters at several bucket geometries — over the Zipf-skewed CAIDA-like
lab trace, and records one frontier row per variant in
``BENCH_frontier.json`` at the repo root:

* **memory** — the backend's modelled footprint (``memory_bytes``) and
  its counter-plane share (``counter_memory_bytes``).
* **accuracy** — mean relative packet error over the 1K+ packet flows
  (the band the paper reports) plus heavy-hitter precision/recall at
  the 1 000-packet threshold.
* **modelled pps** — packets divided by the WSAF stage's modelled time
  from :class:`~repro.memmodel.AccessAccountant` with the tiered
  technology map (cache accesses priced at SRAM, table accesses at
  DRAM).  This is the number the tiering exists to move: wall-clock on
  a Python simulator cannot show a DRAM-latency win, the access model
  can.
* **wall-clock** — best-of-rounds ingest seconds and the measured pps
  (``wall_pps``), to keep the modelled claim honest about simulator
  overhead.  Every timed round takes a ``gc.collect()`` first, so a
  stray gen-2 collection cannot inflate one variant's wall time.  Each
  row also records the ``wsaf_engine`` the variant resolved to —
  ``"auto"`` is backend-aware (batched for flat/tiered, scalar for
  ICE-Buckets, whose serial quantized adds measure faster scalar).

Rows are keyed by ``(git_sha, label)``: re-running on a commit replaces
that commit's rows and keeps other commits', same policy as
``BENCH_throughput.json``.  Each row carries the environment stamp
(``cpu_count`` / ``platform`` / ``numpy_version``).

Regression bars (the run *fails* below them):

* The flat row is the baseline; the tiered backend is lossless, so when
  neither run evicts, tiered estimates must equal flat *exactly*.
* At least one tiered variant reaches ``MIN_TIERED_MODELLED_SPEEDUP``
  (1.3×) the flat modelled pps while spending at most
  ``MAX_TIERED_MEMORY_OVERHEAD`` (10 %) extra memory.
* Every ICE variant shows ≥ ``MIN_ICE_COUNTER_REDUCTION`` (2×) counter
  memory reduction at ≤ ``MAX_ICE_ARE_RATIO`` (2×) the flat ARE.
* Every non-flat variant sustains ≥ ``MIN_WALL_PPS_RATIO`` (0.5×) the
  flat row's *measured* pps — a no-collapse floor keeping the modelled
  frontier honest: a backend may not buy its modelled win by wrecking
  the simulator's real ingest rate.  ``--quick`` relaxes it to
  ``MIN_WALL_PPS_RATIO_SMOKE``.

``--quick`` is the CI smoke: a small trace, one timed round, no history
write, and the tiered pps bar relaxed to the
``MIN_TIERED_SMOKE_FLOOR`` no-collapse floor (on a tiny trace the cache
barely warms before the run ends, so the 1.3× target is carried by the
recorded full-trace rows, not the smoke).  The memory and ICE-error
bars are structural and stay enforced in both modes.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import subprocess
import time

import numpy as np

from repro.analysis.metrics import mean_relative_error
from repro.core import InstaMeasure, InstaMeasureConfig, default_technologies
from repro.detection import (
    classify_detections,
    ground_truth_heavy_hitters,
)
from repro.memmodel import DRAM, AccessAccountant

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_frontier.json"

#: Timed ingest rounds per variant; best wall-clock wins (modelled time
#: is deterministic and identical every round).
ROUNDS = 3
#: Heavy-hitter threshold (packets) and the ARE band floor.
HH_THRESHOLD = 1_000.0
#: Regression bar: some tiered variant must model >= this x flat pps...
MIN_TIERED_MODELLED_SPEEDUP = 1.3
#: ...while costing at most this x flat memory.
MAX_TIERED_MEMORY_OVERHEAD = 1.10
#: Smoke-mode no-collapse floor for the tiered modelled-pps ratio: a
#: cold cache costs one extra SRAM read per miss, which models ~7% over
#: flat; anything under this floor means the tier logic itself broke.
MIN_TIERED_SMOKE_FLOOR = 0.8
#: Regression bar: ICE counter planes at <= half the flat 16 B/entry.
MIN_ICE_COUNTER_REDUCTION = 2.0
#: Regression bar: ICE ARE at most this x the flat ARE (plus epsilon
#: for a zero-error baseline).
MAX_ICE_ARE_RATIO = 2.0
#: No-collapse floor on each non-flat variant's *measured* ingest rate
#: vs the flat row; 0.5x only trips on a real collapse, not timing
#: noise.
MIN_WALL_PPS_RATIO = 0.5
#: Smoke-mode wall floor: the quick trace runs one round with
#: ``tier_interval=64``, so maintenance ticks and per-delegated-event
#: Python overhead weigh far more than on the recorded full trace.
MIN_WALL_PPS_RATIO_SMOKE = 0.2

#: The swept variants: (label, config overrides).
VARIANTS = (
    ("flat", {}),
    ("tiered/c64", {"wsaf_backend": "tiered", "tier_cache_entries": 64}),
    ("tiered/c256", {"wsaf_backend": "tiered", "tier_cache_entries": 256}),
    ("tiered/c1024", {"wsaf_backend": "tiered", "tier_cache_entries": 1024}),
    (
        "ice/b64w16",
        {"wsaf_backend": "icebuckets", "ice_bucket_slots": 64,
         "ice_counter_bits": 16},
    ),
    (
        "ice/b32w8",
        {"wsaf_backend": "icebuckets", "ice_bucket_slots": 32,
         "ice_counter_bits": 8},
    ),
)
#: The WSAF-stage labels modelled time is summed over (the cache label
#: simply never appears for flat/ice rows).
WSAF_LABELS = ("wsaf", "wsaf.cache")


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _environment() -> "dict":
    """Hardware/software context stamped onto every recorded row."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "numpy_version": np.__version__,
    }


def _config(overrides: "dict", tier_interval: int) -> InstaMeasureConfig:
    merged = dict(seed=1, **overrides)
    if merged.get("wsaf_backend") == "tiered":
        merged.setdefault("tier_interval", tier_interval)
    return InstaMeasureConfig(**merged)


def _measure_variant(
    label: str, overrides: "dict", trace, rounds: int, tier_interval: int
) -> "dict":
    """One frontier row: ingest ``rounds`` times, keep the best wall."""
    config = _config(overrides, tier_interval)
    best_wall = float("inf")
    engine = accountant = None
    for _ in range(rounds):
        accountant = AccessAccountant(
            DRAM, technologies=default_technologies()
        )
        engine = InstaMeasure(config, accountant)
        gc.collect()
        start = time.perf_counter()
        result = engine.process_trace(trace)
        best_wall = min(best_wall, time.perf_counter() - start)

    est_packets, _est_bytes = engine.estimates_for(trace)
    truth = trace.ground_truth_packets().astype(float)
    band = truth >= HH_THRESHOLD
    are = (
        mean_relative_error(est_packets[band], truth[band])
        if band.any()
        else 0.0
    )
    truth_hh, _ = ground_truth_heavy_hitters(
        trace, threshold_packets=HH_THRESHOLD
    )
    detected = set(np.flatnonzero(est_packets >= HH_THRESHOLD).tolist())
    outcome = classify_detections(detected, truth_hh, trace.num_flows)

    from repro.core.instameasure import resolved_wsaf_engine

    modelled_s = accountant.modelled_seconds(labels=WSAF_LABELS)
    row = {
        "label": label,
        "backend": config.wsaf_backend,
        "wsaf_engine": resolved_wsaf_engine(config),
        "config": {key: overrides[key] for key in sorted(overrides)},
        "packets": result.packets,
        "insertions": result.insertions,
        "memory_bytes": engine.wsaf.memory_bytes(),
        "counter_memory_bytes": engine.wsaf.counter_memory_bytes(),
        "wall_seconds": best_wall,
        "wall_pps": result.packets / best_wall,
        "modelled_wsaf_seconds": modelled_s,
        "modelled_pps": result.packets / modelled_s if modelled_s else None,
        "wsaf_accesses": {
            name: count
            for name, count in accountant.by_label().items()
            if name in WSAF_LABELS
        },
        "are_1k": are,
        "hh_precision": outcome.precision,
        "hh_recall": outcome.recall,
        "evictions": engine.wsaf.evictions,
    }
    if config.wsaf_backend == "tiered":
        row["config"]["tier_interval"] = config.tier_interval
        row["cache_hit_rate"] = engine.wsaf.cache_hit_rate
        row["promotions"] = engine.wsaf.promotions
        row["demotions"] = engine.wsaf.demotions
    if config.wsaf_backend == "icebuckets":
        row["upscales"] = engine.wsaf.upscales
    row["estimates"] = engine.estimates()  # dropped before recording
    return row


def _load_history() -> "list[dict]":
    if not OUTPUT_PATH.exists():
        return []
    try:
        history = json.loads(OUTPUT_PATH.read_text())
        if not isinstance(history, list) or not all(
            isinstance(row, dict) for row in history
        ):
            raise ValueError("history must be a list of row dicts")
    except (json.JSONDecodeError, OSError, ValueError) as error:
        backup = OUTPUT_PATH.with_suffix(OUTPUT_PATH.suffix + ".corrupt")
        try:
            OUTPUT_PATH.replace(backup)
            print(
                f"warning: {OUTPUT_PATH.name} is corrupt ({error}); "
                f"moved to {backup.name}, starting a fresh history"
            )
        except OSError:
            print(
                f"warning: {OUTPUT_PATH.name} is corrupt ({error}) and "
                "could not be moved aside; starting a fresh history"
            )
        return []
    return history


def _append_report(rows: "list[dict]") -> None:
    """Append to BENCH_frontier.json, one row per (git_sha, label)."""
    best: "dict[tuple, dict]" = {}
    for row in _load_history() + rows:
        key = (row.get("git_sha"), row.get("label"))
        kept = best.get(key)
        if kept is None or row.get("timestamp", 0) >= kept.get("timestamp", 0):
            best[key] = row
    OUTPUT_PATH.write_text(
        json.dumps(
            sorted(
                best.values(),
                key=lambda r: (r.get("timestamp", 0), r.get("label", "")),
            ),
            indent=2,
        )
        + "\n"
    )


def run_frontier(
    trace, rounds: int = ROUNDS, tier_interval: int = 512, record: bool = True
) -> "dict":
    """Sweep every variant; return ``{"rows", "report", "by_label"}``.

    ``rows`` is what lands in BENCH_frontier.json (estimates stripped);
    ``by_label`` keeps the in-memory rows including estimates for the
    exactness assertions.
    """
    sha = _git_sha()
    now = time.time()
    environment = _environment()
    # One untimed pass before the sweep: the first ingest of a fresh
    # trace pays lazy array materialization and import costs that none
    # of the later variants see, which would make whichever variant
    # runs first (flat, the measured-pps baseline) look several times
    # slower than the rest.
    InstaMeasure(_config({}, tier_interval)).process_trace(trace)
    by_label: "dict[str, dict]" = {}
    rows = []
    for label, overrides in VARIANTS:
        measured = _measure_variant(
            label, overrides, trace, rounds, tier_interval
        )
        by_label[label] = measured
        row = {k: v for k, v in measured.items() if k != "estimates"}
        row.update(git_sha=sha, timestamp=now, **environment)
        rows.append(row)
    if record:
        _append_report(rows)

    flat = by_label["flat"]
    lines = [
        f"commit {sha}  frontier on {flat['packets']:,} packets "
        f"({flat['insertions']:,} WSAF insertions)"
    ]
    lines.append(
        "variant        memory KB  ctr KB  modelled pps   vs flat  "
        "  measured pps  vs flat  ARE(1K+)  hh P/R     extra"
    )
    for row in rows:
        extra = ""
        if "cache_hit_rate" in row:
            extra = f"hit {row['cache_hit_rate']:.1%}"
        elif "upscales" in row:
            extra = f"upscales {row['upscales']}"
        lines.append(
            f"{row['label']:<14} "
            f"{row['memory_bytes'] / 1024:>8.1f} "
            f"{row['counter_memory_bytes'] / 1024:>7.1f} "
            f"{row['modelled_pps']:>13,.0f} "
            f"{row['modelled_pps'] / flat['modelled_pps']:>8.2f}x "
            f"{row['wall_pps']:>13,.0f} "
            f"{row['wall_pps'] / flat['wall_pps']:>8.2f}x "
            f"{row['are_1k']:>8.4f}  "
            f"{row['hh_precision']:.2f}/{row['hh_recall']:.2f}  "
            f"{extra}"
        )
    lines.append(f"report: {OUTPUT_PATH.name}")
    return {"rows": rows, "report": "\n".join(lines), "by_label": by_label}


def assert_frontier_bars(result: "dict", smoke: bool = False) -> None:
    """The frontier regression bars; ``smoke`` relaxes the tiered pps bar."""
    by_label = result["by_label"]
    flat = by_label["flat"]

    # Losslessness: when neither side evicts, tiering must not move a
    # single estimate.
    for label, row in by_label.items():
        if row["backend"] != "tiered":
            continue
        if flat["evictions"] == 0 and row["evictions"] == 0:
            assert row["estimates"] == flat["estimates"], (
                f"{label} estimates diverged from flat despite zero "
                "evictions — tiering lost or corrupted records"
            )

    tiered_rows = [r for r in by_label.values() if r["backend"] == "tiered"]
    assert tiered_rows, "no tiered variants swept"
    in_budget = [
        r
        for r in tiered_rows
        if r["memory_bytes"]
        <= MAX_TIERED_MEMORY_OVERHEAD * flat["memory_bytes"]
    ]
    assert in_budget, (
        f"every tiered variant exceeds {MAX_TIERED_MEMORY_OVERHEAD}x the "
        f"flat memory ({flat['memory_bytes']} B)"
    )
    best = max(in_budget, key=lambda r: r["modelled_pps"])
    ratio = best["modelled_pps"] / flat["modelled_pps"]
    floor = MIN_TIERED_SMOKE_FLOOR if smoke else MIN_TIERED_MODELLED_SPEEDUP
    assert ratio >= floor, (
        f"best in-budget tiered variant ({best['label']}) models only "
        f"{ratio:.2f}x flat pps (bar: {floor}x)"
    )
    if smoke and ratio < MIN_TIERED_MODELLED_SPEEDUP:
        print(
            f"note: tiered {ratio:.2f}x flat modelled pps is under the "
            f"{MIN_TIERED_MODELLED_SPEEDUP}x target — accepted above the "
            "no-collapse floor (smoke trace: the cache barely warms; the "
            "target is carried by the recorded full-trace rows)"
        )

    wall_floor = MIN_WALL_PPS_RATIO_SMOKE if smoke else MIN_WALL_PPS_RATIO
    for label, row in by_label.items():
        if row["backend"] == "flat":
            continue
        wall_ratio = row["wall_pps"] / flat["wall_pps"]
        assert wall_ratio >= wall_floor, (
            f"{label} measured ingest collapsed to {wall_ratio:.2f}x the "
            f"flat row's pps (no-collapse floor: {wall_floor}x)"
        )

    for label, row in by_label.items():
        if row["backend"] != "icebuckets":
            continue
        reduction = flat["counter_memory_bytes"] / row["counter_memory_bytes"]
        assert reduction >= MIN_ICE_COUNTER_REDUCTION, (
            f"{label} counter memory reduction is only {reduction:.2f}x "
            f"(bar: {MIN_ICE_COUNTER_REDUCTION}x)"
        )
        are_bound = MAX_ICE_ARE_RATIO * flat["are_1k"] + 1e-9
        assert row["are_1k"] <= are_bound, (
            f"{label} ARE {row['are_1k']:.4f} exceeds "
            f"{MAX_ICE_ARE_RATIO}x the flat ARE ({flat['are_1k']:.4f})"
        )


def test_frontier(caida_trace, write_report):
    """Full frontier sweep; appends BENCH_frontier.json."""
    result = run_frontier(caida_trace)
    write_report("bench_frontier", result["report"])
    assert_frontier_bars(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small trace, one round, relaxed tiered pps floor, "
        "history file untouched",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing BENCH_frontier.json (quick implies this)",
    )
    args = parser.parse_args()

    from repro.traffic import CaidaLikeConfig, build_caida_like_trace

    if args.quick:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=4_000, duration=10.0, seed=1)
        )
        result = run_frontier(
            trace, rounds=1, tier_interval=64, record=False
        )
    else:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=30_000, duration=60.0, seed=1)
        )
        result = run_frontier(trace, record=not args.no_record)
    print(result["report"])
    assert_frontier_bars(result, smoke=args.quick)


if __name__ == "__main__":
    main()
