"""Fig 9(a) — processing speed vs number of worker cores.

Paper claim: 18.88 / 25.48 / 36.19 / 46.32 Mpps on 1-4 Atom cores —
monotonic but sublinear scaling (popcount dispatch imbalance + shared-memory
contention).

Substitution (DESIGN.md §1): Python cannot execute at line rate, so the
modelled Mpps comes from the cycle cost model fed with *measured* algorithmic
rates (L1 saturation rate, regulation rate, per-worker load shares) from the
real data path.  The real pure-Python throughput is reported alongside,
honestly labelled.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import InstaMeasureConfig, MultiCoreInstaMeasure
from repro.simulate import CycleCostModel

PAPER_MPPS = {1: 18.88, 2: 25.48, 3: 36.19, 4: 46.32}


def _run_workers(trace, num_workers):
    system = MultiCoreInstaMeasure(
        num_workers,
        InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 15, seed=5),
    )
    return system.process_trace(trace)


def test_fig09a_multicore_speed(benchmark, caida_trace, write_report):
    model = CycleCostModel()
    rows = []
    modelled = {}
    for workers in (1, 2, 3, 4):
        if workers == 1:
            result = benchmark.pedantic(
                _run_workers, args=(caida_trace, 1), rounds=1, iterations=1
            )
        else:
            result = _run_workers(caida_trace, workers)
        stats = [r.regulator_stats for r in result.worker_results]
        l1_rate = sum(s.l1_saturations for s in stats) / max(1, result.packets)
        mpps = (
            model.multicore_pps(
                workers, result.max_load_share, l1_rate, result.regulation_rate
            )
            / 1e6
        )
        modelled[workers] = mpps
        python_mpps = (
            result.packets
            / max(1e-9, sum(r.elapsed_seconds for r in result.worker_results))
            / 1e6
        )
        rows.append(
            [
                workers,
                f"{result.max_load_share:6.2f}",
                f"{mpps:7.2f}",
                f"{PAPER_MPPS[workers]:7.2f}",
                f"{python_mpps:7.3f}",
            ]
        )
    table = format_table(
        ["cores", "max share", "model Mpps", "paper Mpps", "python Mpps"],
        rows,
        title="Fig 9(a) — processing speed vs cores",
    )
    note = (
        "\nmodel Mpps: cycle cost model fed with measured saturation/dispatch"
        "\nrates; python Mpps: actual pure-Python throughput (not line rate)"
    )
    write_report("fig09a_multicore_speed", table + note)

    # Shape: monotonic, sublinear, single core in the paper's ballpark.
    assert 14.0 <= modelled[1] <= 25.0
    assert modelled[1] < modelled[2] < modelled[3] < modelled[4]
    assert modelled[4] < 4 * modelled[1]
    # Within ~35 % of every paper point.
    for workers, paper in PAPER_MPPS.items():
        assert abs(modelled[workers] - paper) / paper < 0.35
