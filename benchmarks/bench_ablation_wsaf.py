"""Ablation — WSAF eviction policy and probe limit under table pressure.

Section III-B motivates the probe-limit second-chance design: leaked mice
flows waste WSAF space, so the table must evict mice under pressure without
losing elephants.  This ablation squeezes the same trace into a deliberately
undersized WSAF (512 entries for thousands of regulated flows) and compares
the paper's policy against plain minimum-eviction and no-eviction across
probe limits: elephant accuracy, evictions/rejections, and load factor.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, mean_relative_error
from repro.core import InstaMeasure, InstaMeasureConfig

POLICIES = ("second-chance", "min", "reject")
PROBE_LIMITS = (4, 16)
# Deliberately undersized: the regulator lets ~150 distinct flows through
# for this trace, so a 128-entry table must evict.
WSAF_ENTRIES = 128


def _run(trace, policy, probe_limit):
    engine = InstaMeasure(
        InstaMeasureConfig(
            l1_memory_bytes=4096,
            wsaf_entries=WSAF_ENTRIES,
            probe_limit=probe_limit,
            eviction_policy=policy,
            seed=19,
        )
    )
    engine.process_trace(trace)
    return engine


def test_ablation_wsaf_policies(benchmark, caida_small, write_report):
    truth = caida_small.ground_truth_packets().astype(float)
    top = np.argsort(-truth)[:50]

    rows = []
    errors = {}
    first = True
    for policy in POLICIES:
        for probe_limit in PROBE_LIMITS:
            if first:
                engine = benchmark.pedantic(
                    _run,
                    args=(caida_small, policy, probe_limit),
                    rounds=1,
                    iterations=1,
                )
                first = False
            else:
                engine = _run(caida_small, policy, probe_limit)
            est, _ = engine.estimates_for(caida_small)
            error = mean_relative_error(est[top], truth[top])
            errors[(policy, probe_limit)] = error
            rows.append(
                [
                    policy,
                    probe_limit,
                    f"{engine.wsaf.load_factor:6.1%}",
                    engine.wsaf.evictions,
                    engine.wsaf.rejected,
                    f"{error:7.2%}",
                ]
            )
    table = format_table(
        ["policy", "probe limit", "load", "evictions", "rejected", "top-50 err"],
        rows,
        title=f"Ablation — WSAF policy under pressure ({WSAF_ENTRIES} entries)",
    )
    note = (
        "\nthe paper's probe-limit second-chance policy keeps elephants"
        "\naccurate under pressure by spending evictions on cold mice"
    )
    write_report("ablation_wsaf", table + note)

    # Under pressure, evicting (either policy) must not destroy elephant
    # accuracy; the table must actually be under pressure to mean anything.
    sc16 = errors[("second-chance", 16)]
    assert sc16 < 0.2
    engine = _run(caida_small, "second-chance", 16)
    assert engine.wsaf.load_factor > 0.9  # genuinely full
    assert engine.wsaf.evictions + engine.wsaf.rejected > 0
    # Rejecting instead of evicting strands late-arriving elephants, so the
    # paper's policy must be at least as accurate as plain rejection.
    assert sc16 <= errors[("reject", 16)] + 0.02
