"""Ablation — the 70 % saturation-fill rule.

The paper fixes saturation at 70 % of the virtual vector ("a single flow
can set at most three bits (i.e., 70%) of the 8-bit virtual vector").  The
threshold trades three quantities against each other:

* higher fill → larger retention capacity (better regulation) …
* … but more noise levels collapse into fewer zero-bits cases, and the
  coupon-collector tail makes each quantum noisier;
* lower fill → cheap saturations but almost no retention.

This ablation sweeps the fill factor and reports capacity, L2 bank count
(= memory multiplier), measured regulation rate, and single-flow accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import FlowRegulator

FILLS = (0.5, 0.6, 0.7, 0.8, 0.9)
SINGLE_FLOW_PACKETS = 60_000


def _single_flow_run(fill, seed=23):
    regulator = FlowRegulator(64, vector_bits=8, saturation_fill=fill, seed=seed)
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(SINGLE_FLOW_PACKETS):
        est = regulator.process(1, int(rng.integers(8)), int(rng.integers(8)))
        if est is not None:
            total += est
    total += regulator.residual_estimate(1)
    error = abs(total - SINGLE_FLOW_PACKETS) / SINGLE_FLOW_PACKETS
    return regulator, error


def _loaded_run(trace, fill):
    """Regulation rate and elephant error on a full trace at this fill."""
    from repro.core import InstaMeasure, InstaMeasureConfig
    from repro.analysis import mean_relative_error

    engine = InstaMeasure(
        InstaMeasureConfig(
            l1_memory_bytes=4096,
            wsaf_entries=1 << 14,
            saturation_fill=fill,
            seed=19,
        )
    )
    result = engine.process_trace(trace)
    truth = trace.ground_truth_packets().astype(float)
    big = truth >= 2000
    est, _ = engine.estimates_for(trace)
    return result.regulation_rate, mean_relative_error(est[big], truth[big])


def test_ablation_saturation_fill(benchmark, caida_small, write_report):
    rows = []
    capacities = {}
    single_errors = {}
    loaded_rates = {}
    loaded_errors = {}
    for fill in FILLS:
        if fill == 0.7:
            regulator, single_error = benchmark.pedantic(
                _single_flow_run, args=(fill,), rounds=1, iterations=1
            )
        else:
            regulator, single_error = _single_flow_run(fill)
        rate, loaded_error = _loaded_run(caida_small, fill)
        capacities[fill] = regulator.retention_capacity
        single_errors[fill] = single_error
        loaded_rates[fill] = rate
        loaded_errors[fill] = loaded_error
        rows.append(
            [
                f"{fill:.0%}",
                f"{regulator.retention_capacity:8.1f}",
                len(regulator.l2) + 1,
                f"{single_error:7.2%}",
                f"{rate:8.3%}",
                f"{loaded_error:7.2%}",
            ]
        )
    table = format_table(
        ["fill", "retention", "banks", "1-flow err", "trace ips/pps", "elephant err"],
        rows,
        title="Ablation — saturation fill threshold (8-bit vectors)",
    )
    note = (
        "\nhigher fill multiplies retention (better regulation, fewer banks)"
        "\nbut strands more of each flow inside the sketch: on the loaded"
        "\ntrace, elephant error grows with fill while ips/pps falls."
        "\nThe paper's 70% is the knee: ~1% ips/pps at percent-level error."
    )
    write_report("ablation_fill", table + note)

    # Capacity grows monotonically with fill; regulation rate falls.
    sorted_fills = sorted(capacities)
    assert [capacities[f] for f in sorted_fills] == sorted(capacities.values())
    assert [loaded_rates[f] for f in sorted_fills] == sorted(
        loaded_rates.values(), reverse=True
    )
    # The trade-off: the extremes are worse than the paper's 70 % on one
    # axis each — 50 % regulates 3-4x worse, 90 % is 2x+ less accurate.
    assert loaded_rates[0.5] > 3 * loaded_rates[0.7]
    assert loaded_errors[0.9] > 2 * loaded_errors[0.7]
    # All configurations still count a single flow to within ~10 %.
    assert all(error < 0.1 for error in single_errors.values())
    # 70 % retains ~95 packets (the paper's quantum).
    assert 90 <= capacities[0.7] <= 100
