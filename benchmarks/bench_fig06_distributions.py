"""Fig 6 — distributions of the CAIDA and campus datasets.

Paper claim: both traces are Zipf-like and mice-dominated (1-10 packet
flows are the majority), which is what makes WSAF cache pressure a problem
and flow regulation effective.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.traffic import summarize_trace
from repro.traffic.stats import flow_size_ccdf


def test_fig06_dataset_distributions(benchmark, caida_trace, campus_trace, write_report):
    caida_summary = benchmark(summarize_trace, caida_trace)
    campus_summary = summarize_trace(campus_trace)

    rows = [
        [name, caida_value, campus_value]
        for (name, caida_value), (_name2, campus_value) in zip(
            caida_summary.rows(), campus_summary.rows()
        )
    ]
    table = format_table(
        ["statistic", "CAIDA-like (a)", "campus (b)"],
        rows,
        title="Fig 6 — dataset distributions",
    )

    ccdf_rows = []
    sizes, ccdf = flow_size_ccdf(caida_trace.ground_truth_packets())
    for probe in (1, 2, 5, 10, 100, 1000, 10000):
        index = np.searchsorted(sizes, probe)
        if index < len(sizes):
            ccdf_rows.append([probe, f"{ccdf[index]:.4f}"])
    ccdf_table = format_table(
        ["flow size >= (pkts)", "CCDF"],
        ccdf_rows,
        title="CAIDA-like flow-size CCDF",
    )
    write_report("fig06_distributions", table + "\n\n" + ccdf_table)

    # Shape: Zipf-like, mice-dominated, heavy top-1 % share — both traces.
    for summary in (caida_summary, campus_summary):
        assert summary.mice_fraction > 0.6
        assert summary.top_1pct_packet_share > 0.5
        assert summary.zipf_exponent > 0.7
