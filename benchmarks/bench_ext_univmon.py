"""Extension — InstaMeasure vs UnivMon (the universal-sketch relative).

Related Work cites "UnivMon, which uses a single universal sketch".  The
comparison axes that matter to the paper's argument:

* per-packet work: UnivMon updates `depth` counters in every sampled level
  (≈ 2·depth expected), all offline-decoded; InstaMeasure touches 1-2 words
  and decodes online;
* versatility vs immediacy: UnivMon answers many statistics from one
  structure *after* decode; InstaMeasure's WSAF already holds per-flow
  answers mid-stream.

This bench scores both on heavy hitters and entropy against ground truth.
"""

from __future__ import annotations


from repro.analysis import format_table
from repro.baselines import UnivMon
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import (
    HeavyHitterDetector,
    classify_detections,
    flow_size_entropy,
    ground_truth_heavy_hitters,
    keys_to_flow_indices,
)

THRESHOLD = 2000.0


def _run_univmon(trace):
    univmon = UnivMon(256 * 1024, num_levels=6, heavy_candidates=128, seed=27)
    univmon.encode_trace(trace)
    return univmon


def test_ext_univmon_comparison(benchmark, caida_small, write_report):
    trace = caida_small
    truth = trace.ground_truth_packets().astype(float)
    truth_hh, _ = ground_truth_heavy_hitters(trace, threshold_packets=THRESHOLD)
    true_entropy = flow_size_entropy(truth)

    univmon = benchmark.pedantic(_run_univmon, args=(trace,), rounds=1, iterations=1)
    univmon_hh_keys = set(univmon.heavy_hitters(THRESHOLD))
    univmon_hh = keys_to_flow_indices(trace, univmon_hh_keys)
    univmon_outcome = classify_detections(univmon_hh, truth_hh, trace.num_flows)
    univmon_entropy = univmon.entropy_estimate()

    detector = HeavyHitterDetector(threshold_packets=THRESHOLD)
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=16 * 1024, wsaf_entries=1 << 15, seed=27)
    )
    engine.process_trace(trace, on_accumulate=detector.on_accumulate)
    insta_hh = keys_to_flow_indices(trace, set(detector.packet_detections))
    insta_outcome = classify_detections(insta_hh, truth_hh, trace.num_flows)
    est, _ = engine.estimates_for(trace, include_residual=True)
    insta_entropy = flow_size_entropy(est[est > 0])

    rows = [
        [
            "InstaMeasure",
            f"{insta_outcome.recall:6.1%}",
            f"{insta_outcome.false_positive_rate:7.3%}",
            f"{insta_entropy:6.2f}",
            "online (mid-stream)",
        ],
        [
            "UnivMon",
            f"{univmon_outcome.recall:6.1%}",
            f"{univmon_outcome.false_positive_rate:7.3%}",
            f"{univmon_entropy:6.2f}",
            "offline (end of epoch)",
        ],
        ["ground truth", "100.0%", "  0.000%", f"{true_entropy:6.2f}", "-"],
    ]
    table = format_table(
        ["system", "HH recall", "HH FPR", "entropy (bits)", "decoding"],
        rows,
        title="Extension — InstaMeasure vs UnivMon (universal sketch)",
    )
    note = (
        "\nboth find the heavy hitters; UnivMon's entropy covers the whole"
        "\ndistribution from one structure but only after offline decode,"
        "\nwhile InstaMeasure's WSAF view is live (and elephant-weighted)."
    )
    write_report("ext_univmon", table + note)

    assert truth_hh
    assert insta_outcome.recall >= 0.8
    assert univmon_outcome.recall >= 0.8
    assert univmon_outcome.false_positive_rate < 0.01
    # UnivMon's entropy estimate lands near truth; InstaMeasure's WSAF-only
    # entropy is biased toward elephants (mice are regulated away) — both
    # facts the table shows.
    assert abs(univmon_entropy - true_entropy) / true_entropy < 0.4
