"""Micro-benchmarks of the data-plane primitives (pytest-benchmark).

Real wall-clock cost of each per-packet operation in this pure-Python
implementation — the honest counterpart of the paper's Mpps numbers (which
Fig 9(a)'s bench reproduces through the cycle model).  These use
pytest-benchmark's statistics properly: many rounds of a small fixed batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FlowRegulator, RCCSketch, WSAFTable
from repro.hashing import hash_u64, popcount32

BATCH = 1000


@pytest.fixture(scope="module")
def packet_bits():
    rng = np.random.default_rng(0)
    return rng.integers(0, 8, size=2 * BATCH, dtype=np.int64).tolist()


def test_micro_hash_u64(benchmark):
    def run():
        acc = 0
        for value in range(BATCH):
            acc ^= hash_u64(value, 7)
        return acc

    benchmark(run)


def test_micro_popcount_dispatch(benchmark):
    ips = list(range(0xC0A80000, 0xC0A80000 + BATCH))

    def run():
        acc = 0
        for ip in ips:
            acc += popcount32(ip) % 4
        return acc

    benchmark(run)


def test_micro_rcc_encode(benchmark, packet_bits):
    sketch = RCCSketch(4096, seed=1)
    idx, offset = sketch.place(42)

    def run():
        for p in range(BATCH):
            sketch.encode_at(idx, offset, packet_bits[p])

    benchmark(run)


def test_micro_regulator_process(benchmark, packet_bits):
    regulator = FlowRegulator(4096, seed=2)
    idx, offset = regulator.place(42)

    def run():
        for p in range(BATCH):
            regulator.process_at(idx, offset, packet_bits[p], packet_bits[p + BATCH])

    benchmark(run)


def test_micro_wsaf_accumulate(benchmark):
    table = WSAFTable(num_entries=1 << 14)
    keys = [hash_u64(k, 3) for k in range(BATCH)]

    def run():
        for i, key in enumerate(keys):
            table.accumulate(key, 95.0, 9500.0, float(i))

    benchmark(run)


def test_micro_wsaf_update_hot_entry(benchmark):
    table = WSAFTable(num_entries=1 << 14)
    key = hash_u64(7, 3)
    table.accumulate(key, 1.0, 1.0, 0.0)

    def run():
        for i in range(BATCH):
            table.accumulate(key, 95.0, 9500.0, float(i))

    benchmark(run)
