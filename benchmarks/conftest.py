"""Shared fixtures for the benchmark harness.

Scale note (see DESIGN.md §1): the paper's datasets are billions of packets;
the reproduction runs the same algorithms on scaled-down synthetic traces
with sketch memory scaled by the same factor.  Every bench prints the
paper-shaped rows/series for its figure and also writes them to
``results/<experiment>.txt`` so the report survives pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.traffic import (
    CaidaLikeConfig,
    CampusConfig,
    build_caida_like_trace,
    build_campus_trace,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def caida_trace():
    """The main lab trace (stands in for the 1-hour CAIDA dataset)."""
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=30_000, duration=60.0, seed=1)
    )


@pytest.fixture(scope="session")
def caida_small():
    """A smaller mix for iterated experiments (latency sweeps, timing)."""
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=8_000, duration=20.0, seed=2)
    )


@pytest.fixture(scope="session")
def campus_trace():
    """The 113-hour campus gateway stand-in (compressed timeline)."""
    return build_campus_trace(
        CampusConfig(hours=113, seconds_per_hour=6.0, num_flows=40_000, seed=3)
    )


@pytest.fixture(scope="session")
def write_report():
    """Persist an experiment report under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _write
