"""Section V-C "Comparison" — InstaMeasure vs CSM at double the memory.

Paper claims: CSM with 60 MB (≈2× InstaMeasure's largest memory) could not
even finish decoding the one-hour dataset; restricted to one minute of data
and the top flows, its error was 2.4 % (top-100) and 8.53 % (top-1000) —
much worse than InstaMeasure.  Two claims to reproduce at scale:

  1. accuracy: CSM's top-flow error is several times InstaMeasure's despite
     2× the sketch memory;
  2. decode cost: CSM decodes offline over the whole flow population, while
     InstaMeasure's estimates are already materialized in the WSAF.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table, mean_relative_error
from repro.baselines import CSMSketch
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection.topk import topk_flows

INSTA_L1_BYTES = 8 * 1024  # 32 KB total sketch memory
CSM_MEMORY_BYTES = 2 * 4 * INSTA_L1_BYTES  # 2× InstaMeasure's sketch total


def _run_instameasure(trace):
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=INSTA_L1_BYTES, wsaf_entries=1 << 16, seed=15)
    )
    engine.process_trace(trace)
    return engine.estimates_for(trace)[0]


def test_csm_comparison(benchmark, caida_trace, write_report):
    truth = caida_trace.ground_truth_packets().astype(float)

    insta_estimates = benchmark.pedantic(
        _run_instameasure, args=(caida_trace,), rounds=1, iterations=1
    )

    csm = CSMSketch(memory_bytes=CSM_MEMORY_BYTES, counters_per_flow=16, seed=15)
    csm.encode_trace(caida_trace)
    decode_start = time.perf_counter()
    csm_estimates = csm.decode_flows(caida_trace.flows.key64)
    decode_seconds = time.perf_counter() - decode_start

    rows = []
    errors = {}
    for k in (100, 1000):
        top = np.array(sorted(topk_flows(truth, k)))
        insta_err = mean_relative_error(insta_estimates[top], truth[top])
        csm_err = mean_relative_error(csm_estimates[top], truth[top])
        errors[k] = (insta_err, csm_err)
        rows.append([f"top-{k}", f"{insta_err:7.2%}", f"{csm_err:7.2%}"])
    table = format_table(
        ["flow set", "InstaMeasure", f"CSM ({CSM_MEMORY_BYTES // 1024}KB = 2x mem)"],
        rows,
        title="Section V-C — InstaMeasure vs CSM (top-flow mean error)",
    )
    note = (
        f"\nCSM offline decode of {caida_trace.num_flows:,} flows took "
        f"{decode_seconds * 1e3:.1f} ms (vectorized); InstaMeasure's estimates"
        f"\nare already in the WSAF (online decoding)."
        f"\npaper anchors: CSM 2.4% top-100, 8.53% top-1000, and decoding the"
        f"\nfull hour did not terminate"
    )
    write_report("table_csm_comparison", table + note)

    # Shape: InstaMeasure beats CSM on both lists despite half the memory,
    # and CSM degrades sharply from top-100 to top-1000 (noise ∝ 1/size).
    insta100, csm100 = errors[100]
    insta1000, csm1000 = errors[1000]
    assert insta100 < csm100
    assert insta1000 < csm1000
    assert csm1000 > 2 * csm100
