"""Fig 10/11 (Top-K panels) — periodic Top-K list updates over time.

The paper evaluates Top-K "with updates done every 10 minutes" over the
one-hour trace: the operator repeatedly refreshes the Top-K list from the
running WSAF, and recall stays high at every refresh.  This bench runs the
windowed version of that protocol on the reproduction trace (10-second
windows over the 60-second trace ≈ the paper's 10-minute windows over one
hour) and reports the recall trajectory.
"""

from __future__ import annotations

from repro.analysis import format_table, sparkline
from repro.core import InstaMeasureConfig
from repro.detection import windowed_topk_recall

WINDOW_SECONDS = 10.0
KS = [10, 100]


def _run(trace):
    return windowed_topk_recall(
        trace,
        window_seconds=WINDOW_SECONDS,
        ks=KS,
        config=InstaMeasureConfig(
            l1_memory_bytes=16 * 1024, wsaf_entries=1 << 16, seed=12
        ),
    )


def test_fig10c_windowed_topk(benchmark, caida_trace, write_report):
    snapshots = benchmark.pedantic(_run, args=(caida_trace,), rounds=1, iterations=1)
    assert len(snapshots) >= 5

    rows = [
        [
            f"{snap.end_time:6.0f}",
            f"{snap.packets_so_far:,}",
            snap.wsaf_flows,
            *(f"{snap.recalls[k]:6.1%}" for k in KS),
        ]
        for snap in snapshots
    ]
    table = format_table(
        ["t (s)", "packets seen", "WSAF flows", "Top-10 recall", "Top-100 recall"],
        rows,
        title="Fig 10/11 panels — periodic Top-K updates (10 s windows)",
    )
    trend = "\nTop-100 recall over time: " + sparkline(
        [snap.recalls[100] for snap in snapshots]
    )
    note = "\npaper: recall mostly > 95% at every 10-minute refresh"
    write_report("fig10c_windowed_topk", table + trend + note)

    # Recall is high at every refresh once the working set warms up.
    warm = snapshots[1:]
    assert all(snap.recalls[10] >= 0.8 for snap in warm)
    assert all(snap.recalls[100] >= 0.8 for snap in warm)
    # The WSAF keeps growing as new elephants appear (long-term measurement).
    assert snapshots[-1].wsaf_flows > snapshots[0].wsaf_flows