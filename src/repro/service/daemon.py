"""The always-on measurement daemon.

:class:`MeasurementDaemon` wraps the incremental :class:`~repro.
pipeline.driver.Pipeline` loop in a background ingest thread and keeps
the engine continuously queryable: packets stream in from any unbounded
:class:`~repro.pipeline.source.ChunkSource` (a tailed pcap-lite file, a
socket feed), epochs rotate on the stream's own clock, and every N
chunks the complete engine state — per-shard mid-stream snapshots plus
stream bookkeeping — is checkpointed atomically through
:class:`~repro.service.checkpoint.CheckpointStore`.

Crash recovery is the point: :meth:`MeasurementDaemon.start` looks for
the newest complete checkpoint, restores the measurer bit-identically
(unknown-length stream cursors resume mid-block), seeks the source back
to the checkpointed packet position, and continues the epoch cadence
where it left off.  Re-feeding the tail of the capture then reproduces
*exactly* the estimates and regulator words of a run that never died —
the invariant ``tests/test_service.py`` pins.

Crash semantics are deliberate: a clean :meth:`stop` writes a final
checkpoint and finalizes the stream, but an ingest error does *not*
checkpoint — the on-disk state stays at the last periodic checkpoint,
exactly what a hard kill would leave.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.core import InstaMeasureConfig
from repro.errors import ConfigurationError
from repro.pipeline.control import build_load_controller
from repro.pipeline.driver import Pipeline
from repro.pipeline.sharded import ShardedStreamingMeasurer
from repro.service.checkpoint import CheckpointStore

#: How many (wall_time, packets) samples back the "recent" pps window
#: reaches (one sample per ingested chunk).
_RECENT_WINDOW = 32


class MeasurementDaemon:
    """Run a measurer over an unbounded source, checkpointed and queryable.

    Args:
        source: an unbounded :class:`~repro.pipeline.source.ChunkSource`
            (``total_packets is None``).  For recovery it must support
            ``seek_packets(offset)`` — the pcap-lite file source does; a
            live socket feed runs fine but restarts from the live stream.
        config: engine configuration (default
            :class:`~repro.core.instameasure.InstaMeasureConfig`), used
            for a fresh start; a recovered daemon takes its config from
            the checkpoint instead.
        num_shards: shard the engine by flow key (in-process).  ``1``
            keeps a single engine; either way the checkpoint format is a
            list of per-shard snapshots.
        epoch_seconds: rotation period on the stream clock; ``None``
            disables epoch bookkeeping and rotation.
        checkpoint_dir: where to persist checkpoints; ``None`` disables
            checkpointing (the daemon is then purely in-memory).
        checkpoint_every: checkpoint after this many ingested chunks.
        keep_checkpoints: retention passed to :class:`CheckpointStore`.
        max_packets: stop the source once this many packets have been
            measured (recovered packets count) — a test/CI convenience.
        history: bound on the driver's per-chunk/per-epoch records.
        load_policy: backpressure policy (``none`` / ``shed`` /
            ``degrade``, see :mod:`repro.pipeline.control`) — the
            daemon's rate-limit knob.  Non-``none`` policies require
            ``target_pps`` and surface their live
            :class:`~repro.pipeline.control.ControllerStats` under
            ``stats()["controller"]`` (and so through the control
            protocol's ``stats`` and ``metrics`` verbs).
        target_pps: the sustained stream-clock rate the policy defends.
    """

    def __init__(
        self,
        source,
        config: "InstaMeasureConfig | None" = None,
        num_shards: int = 1,
        epoch_seconds: "float | None" = None,
        checkpoint_dir: "str | None" = None,
        checkpoint_every: int = 50,
        keep_checkpoints: int = 3,
        max_packets: "int | None" = None,
        history: int = 256,
        load_policy: str = "none",
        target_pps: "float | None" = None,
    ) -> None:
        if getattr(source, "total_packets", None) is not None:
            raise ConfigurationError(
                "the daemon serves unbounded sources; for a bounded trace "
                "use Pipeline.run"
            )
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.source = source
        self.config = config or InstaMeasureConfig()
        self.num_shards = num_shards
        self.epoch_seconds = epoch_seconds
        self.checkpoint_every = checkpoint_every
        self.max_packets = max_packets
        self.load_policy = load_policy
        self.target_pps = target_pps
        # Validate the policy/target combination at construction time
        # (the controller itself is rebuilt in start(), after recovery
        # may have replaced the config whose seed it samples with).
        build_load_controller(load_policy, target_pps, seed=self.config.seed)
        self.store = (
            CheckpointStore(checkpoint_dir, keep=keep_checkpoints)
            if checkpoint_dir is not None
            else None
        )
        self.history = history
        self.measurer: "ShardedStreamingMeasurer | None" = None
        self.pipeline: "Pipeline | None" = None
        self.result = None
        self.error: "BaseException | None" = None
        self.recovered_from: "int | None" = None

        self._lock = threading.RLock()
        self._thread: "threading.Thread | None" = None
        self._finished = threading.Event()
        self._position = 0  # stream position after the last ingested chunk
        self._base_packets = 0  # packets restored from a checkpoint
        self._run_packets = 0  # packets offered to this process
        self._base_measured = 0  # measured packets restored from a checkpoint
        self._run_measured = 0  # packets actually measured (post-shedding)
        self._epoch = 0
        self._chunks = 0
        self._chunks_since_checkpoint = 0
        self._ingest_seconds = 0.0
        self._stream_time: "float | None" = None
        self._started_at: "float | None" = None
        self._recent: "deque[tuple[float, int]]" = deque(maxlen=_RECENT_WINDOW)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "MeasurementDaemon":
        """Recover from the latest checkpoint (if any), then start the
        ingest thread.  Returns ``self`` for chaining."""
        if self._thread is not None:
            raise ConfigurationError("the daemon is already running")
        first_epoch = 0
        start_time = None
        if self.store is not None:
            info = self.store.latest()
            if info is not None:
                snapshots = self.store.load(info)
                self.measurer = ShardedStreamingMeasurer.from_snapshots(snapshots)
                self.config = self.measurer.config
                self.num_shards = self.measurer.num_shards
                self._position = int(info.meta.get("position", 0))
                self._base_packets = int(info.meta.get("packets", 0))
                self._base_measured = int(
                    info.meta.get("measured_packets", self._base_packets)
                )
                first_epoch = self._epoch = int(info.meta.get("epoch", 0))
                start_time = info.meta.get("start_time")
                self._stream_time = info.meta.get("stream_time")
                self.recovered_from = info.seq
                self.source.seek_packets(self._position)
                if start_time is not None and self.source.start_time is None:
                    # Pin the epoch origin: the re-opened source must
                    # grid its epochs exactly as the dead run did.
                    self.source.start_time = start_time
        if self.measurer is None:
            self.measurer = ShardedStreamingMeasurer(
                self.config, num_shards=self.num_shards
            )
        self.pipeline = Pipeline(
            self.measurer,
            epoch_seconds=self.epoch_seconds,
            rotate=self.epoch_seconds is not None,
            history=self.history,
            controller=build_load_controller(
                self.load_policy, self.target_pps, seed=self.config.seed
            ),
        )
        self.pipeline.begin(
            self.source, start_time=start_time, first_epoch=first_epoch
        )
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._ingest_loop, name="measurement-daemon", daemon=True
        )
        self._thread.start()
        return self

    def _ingest_loop(self) -> None:
        try:
            for chunk in self.source:
                with self._lock:
                    # step may return None (chunk staged toward a batch,
                    # or shed entirely); the pipeline's cumulative
                    # counters are authoritative either way.
                    self.pipeline.step(chunk)
                    self._position = chunk.end
                    self._run_packets += chunk.num_packets
                    self._epoch = self.pipeline.active_epoch
                    self._chunks += 1
                    self._chunks_since_checkpoint += 1
                    self._run_measured = self.pipeline.ingested_packets
                    self._ingest_seconds = self.pipeline.run_ingest_seconds
                    if chunk.num_packets:
                        self._stream_time = float(chunk.trace.timestamps[-1])
                    self._recent.append((time.monotonic(), self.packets))
                    due = (
                        self.store is not None
                        and self._chunks_since_checkpoint >= self.checkpoint_every
                    )
                    if due:
                        self._checkpoint_locked()
                if (
                    self.max_packets is not None
                    and self.packets >= self.max_packets
                ):
                    self.source.stop()
            with self._lock:
                # Clean end of stream: commit the final state, then
                # close the stream so estimates read a finished run.
                if self.store is not None:
                    self._checkpoint_locked()
                finished = self.pipeline.finish()
                self.result = finished
                self._run_measured = finished.packets
                self._ingest_seconds = finished.elapsed_seconds
        except BaseException as exc:  # crash path: NO final checkpoint
            self.error = exc
            with self._lock:
                self.pipeline.abort()
        finally:
            self._finished.set()

    def stop(self) -> None:
        """Ask the source to wind down; :meth:`wait` for completion."""
        stop = getattr(self.source, "stop", None)
        if callable(stop):
            stop()

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the ingest thread exits; ``True`` when it did."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> "MeasurementDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
        self.wait(timeout=30.0)

    # -- checkpointing ---------------------------------------------------------

    def _checkpoint_locked(self):
        if self.pipeline is not None and self.pipeline.active_epoch is not None:
            # The checkpointed stream position covers every stepped
            # chunk, so any batch the controller staged must reach the
            # measurer before the state is persisted — otherwise a
            # recovery would skip those packets.
            self.pipeline.flush_pending()
            self._run_measured = self.pipeline.ingested_packets
            self._ingest_seconds = self.pipeline.run_ingest_seconds
        info = self.store.save(
            self.measurer.snapshot_shards(),
            meta={
                "position": self._position,
                "packets": self.packets,
                "measured_packets": self.measured_packets,
                "chunks": self._chunks,
                "epoch": self._epoch,
                "start_time": self.source.start_time,
                "stream_time": self._stream_time,
                "epoch_seconds": self.epoch_seconds,
                "num_shards": self.num_shards,
                "load_policy": self.load_policy,
            },
        )
        self._chunks_since_checkpoint = 0
        return info

    def checkpoint_now(self):
        """Force a checkpoint immediately; returns its info."""
        if self.store is None:
            raise ConfigurationError("the daemon has no checkpoint directory")
        with self._lock:
            return self._checkpoint_locked()

    # -- queries ---------------------------------------------------------------

    @property
    def packets(self) -> int:
        """Packets the stream offered so far, including recovered ones."""
        return self._base_packets + self._run_packets

    @property
    def measured_packets(self) -> int:
        """Packets that actually reached the measurer (equals
        :attr:`packets` unless a load policy shed some)."""
        return self._base_measured + self._run_measured

    @property
    def running(self) -> bool:
        return self._thread is not None and not self._finished.is_set()

    def query(self, key: int) -> "tuple[float, float] | None":
        """Current ``(packets, bytes)`` estimate for one flow key."""
        with self._lock:
            return self.measurer.estimates(flow_keys=[int(key)]).get(int(key))

    def top(self, k: int) -> "list[tuple[int, float, float]]":
        """The ``k`` largest flows by packet estimate:
        ``[(key64, packets, bytes), ...]`` descending."""
        with self._lock:
            table = self.measurer.estimates()
        ranked = sorted(table.items(), key=lambda item: item[1][0], reverse=True)
        return [(key, est[0], est[1]) for key, est in ranked[: max(0, int(k))]]

    def rotate_now(self):
        """Rotate every shard at the current stream time; returns the
        pre-expiry snapshot (union across shards)."""
        with self._lock:
            now = self._stream_time if self._stream_time is not None else 0.0
            return self.measurer.rotate(now)

    def stats(self) -> "dict":
        """Live operational counters (what the control ``stats`` verb
        serves)."""
        with self._lock:
            recent = list(self._recent)
            active_epoch = self._epoch
            wsaf_entries = (
                self.measurer.wsaf_size if self.measurer is not None else 0
            )
            packets = self.packets
            measured = self.measured_packets
            ingest_seconds = self._ingest_seconds
            controller = (
                self.pipeline.controller_stats
                if self.pipeline is not None
                else None
            )
            if controller is None and self.result is not None:
                # Finished runs keep their final controller tally.
                controller = self.result.controller_stats
        pps_recent = 0.0
        if len(recent) >= 2:
            dt = recent[-1][0] - recent[0][0]
            dp = recent[-1][1] - recent[0][1]
            pps_recent = dp / dt if dt > 0 else 0.0
        return {
            "running": self.running,
            "packets": packets,
            "measured_packets": measured,
            "position": self._position,
            "chunks": self._chunks,
            "epoch": active_epoch,
            "epoch_seconds": self.epoch_seconds,
            "num_shards": self.num_shards,
            "wsaf_entries": wsaf_entries,
            "load_policy": self.load_policy,
            "target_pps": self.target_pps,
            "controller": controller,
            "pps_total": (
                (measured - self._base_measured) / ingest_seconds
                if ingest_seconds > 0
                else 0.0
            ),
            "pps_recent": pps_recent,
            "stream_time": self._stream_time,
            "start_time": self.source.start_time,
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "recovered_from": self.recovered_from,
            "error": repr(self.error) if self.error is not None else None,
        }
