"""Crash-safe checkpoint storage for the measurement service.

A checkpoint is the complete resumable state of a running daemon: one
mid-stream snapshot per shard (the IMSNAP wire format of
:mod:`repro.state.codec`, whose stream cursors make unknown-length
ingestion bit-identically resumable) plus a small JSON manifest of
stream bookkeeping — position, epoch, origin — the daemon needs to
re-open its source at the right packet.

Atomicity is by write-then-rename: every shard file and the manifest
are written to a ``.tmp`` sibling and ``os.replace``d into place, and
the *manifest* rename comes last, making it the commit point.  A crash
mid-checkpoint leaves either a complete checkpoint or dangling shard
files that no manifest references; :meth:`CheckpointStore.latest` also
skips any checkpoint whose manifest is unreadable or whose shard files
are missing, so recovery always lands on the newest *complete* one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.state import load as load_snapshot
from repro.state import save as save_snapshot

#: Manifest key recording the wire version of the checkpoint layout.
CHECKPOINT_VERSION = 1


@dataclass
class CheckpointInfo:
    """One complete checkpoint on disk."""

    seq: int
    manifest_path: str
    shard_paths: "list[str]"
    meta: "dict" = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        return len(self.shard_paths)


class CheckpointStore:
    """Numbered checkpoints in one directory, newest wins.

    Layout (``seq`` zero-padded so lexical order is numeric order)::

        ckpt-00000007.shard0.imsnap
        ckpt-00000007.shard1.imsnap
        ckpt-00000007.json          <- commit point, written last

    ``keep`` bounds how many checkpoints survive a :meth:`save`; older
    ones are pruned (manifest deleted first, so a prune interrupted
    mid-way never leaves a manifest pointing at deleted shards).
    """

    def __init__(self, directory: "str | os.PathLike[str]", keep: int = 3) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)

    # -- naming ----------------------------------------------------------------

    def _manifest_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"ckpt-{seq:08d}.json")

    def _shard_path(self, seq: int, shard: int) -> str:
        return os.path.join(self.directory, f"ckpt-{seq:08d}.shard{shard}.imsnap")

    def _sequences(self) -> "list[int]":
        seqs = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt-") and name.endswith(".json"):
                try:
                    seqs.append(int(name[5:-5]))
                except ValueError:
                    continue
        return sorted(seqs)

    # -- writing ---------------------------------------------------------------

    def save(self, snapshots, meta: "dict | None" = None) -> CheckpointInfo:
        """Write one checkpoint atomically; returns its info.

        ``snapshots`` is the per-shard snapshot list (one entry for an
        unsharded daemon); ``meta`` is merged into the manifest.
        """
        if not snapshots:
            raise ConfigurationError("a checkpoint needs at least one snapshot")
        seqs = self._sequences()
        seq = (seqs[-1] + 1) if seqs else 0
        shard_paths = []
        for shard, snapshot in enumerate(snapshots):
            path = self._shard_path(seq, shard)
            save_snapshot(snapshot, path + ".tmp")
            os.replace(path + ".tmp", path)
            shard_paths.append(path)
        manifest = {
            "version": CHECKPOINT_VERSION,
            "seq": seq,
            "shards": [os.path.basename(path) for path in shard_paths],
        }
        manifest.update(meta or {})
        manifest_path = self._manifest_path(seq)
        with open(manifest_path + ".tmp", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_path + ".tmp", manifest_path)
        self.prune()
        return CheckpointInfo(
            seq=seq, manifest_path=manifest_path, shard_paths=shard_paths, meta=manifest
        )

    def prune(self, keep: "int | None" = None) -> int:
        """Delete all but the newest ``keep`` checkpoints; returns count."""
        keep = self.keep if keep is None else keep
        doomed = self._sequences()[:-keep] if keep else self._sequences()
        for seq in doomed:
            self._delete(seq)
        return len(doomed)

    def _delete(self, seq: int) -> None:
        # Manifest first: without it the shard files are dead weight, not
        # a half-valid checkpoint.
        for path in [self._manifest_path(seq)] + [
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if name.startswith(f"ckpt-{seq:08d}.shard")
        ]:
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    # -- reading ---------------------------------------------------------------

    def _info(self, seq: int) -> "CheckpointInfo | None":
        manifest_path = self._manifest_path(seq)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            shard_paths = [
                os.path.join(self.directory, name) for name in manifest["shards"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if not shard_paths or not all(os.path.exists(p) for p in shard_paths):
            return None
        return CheckpointInfo(
            seq=seq,
            manifest_path=manifest_path,
            shard_paths=shard_paths,
            meta=manifest,
        )

    def list(self) -> "list[CheckpointInfo]":
        """All complete checkpoints, oldest first."""
        infos = (self._info(seq) for seq in self._sequences())
        return [info for info in infos if info is not None]

    def latest(self) -> "CheckpointInfo | None":
        """The newest complete checkpoint, or ``None`` when there is no
        usable one (empty directory, or every manifest corrupt)."""
        for seq in reversed(self._sequences()):
            info = self._info(seq)
            if info is not None:
                return info
        return None

    def load(self, info: CheckpointInfo):
        """The checkpoint's per-shard snapshots, in shard order."""
        return [load_snapshot(path) for path in info.shard_paths]
