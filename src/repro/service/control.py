"""TCP control surface for the measurement daemon.

A deliberately tiny line protocol — one UTF-8 request line in, one
response line out — so shell tooling (CI smoke jobs, ``nc``) can drive
a live daemon without a client library::

    ping                 -> ok "pong"
    stats                -> ok {"packets": ..., "pps_recent": ..., ...}
    metrics              -> ok "# TYPE instameasure_packets counter\n..."
                            (daemon.stats() as Prometheus text exposition)
    query <key64>        -> ok {"key": ..., "packets": ..., "bytes": ...}
                            (estimate null when the flow is not resident)
    top <k>              -> ok [[key64, packets, bytes], ...]
    rotate               -> ok {"expired": <count>}
    snapshot             -> ok {"seq": ..., "path": ...}   (checkpoint now)
    stop                 -> ok "stopping"

Responses are ``ok <json>`` or ``err <message>``; the payload is a
single JSON document so every reply is exactly one line.  Connections
are persistent — a client may send many commands — and each connection
is served by its own daemon thread, with all real work delegated to the
:class:`~repro.service.daemon.MeasurementDaemon` (which does its own
locking).
"""

from __future__ import annotations

import json
import math
import re
import socket
import threading

from repro.errors import ConfigurationError

#: Cap on one request line, defensive against garbage connections.
_MAX_LINE = 4096

#: Stats keys that are monotone over a daemon's life — exported as
#: Prometheus ``counter``; everything else numeric is a ``gauge``.
_COUNTER_KEYS = frozenset(
    {
        "packets",
        "measured_packets",
        "position",
        "chunks",
        "offered_packets",
        "kept_packets",
        "dropped_packets",
        "thinned_chunks",
        "dropped_chunks",
        "degraded_chunks",
        "batched_ingests",
    }
)

_NAME_SAFE = re.compile(r"[^a-zA-Z0-9_]")


def render_metrics(stats: "dict", prefix: str = "instameasure") -> str:
    """``daemon.stats()`` as a Prometheus-style text exposition.

    One ``# TYPE`` line plus one value line per stat.  Numeric values
    export as-is, booleans as 0/1, nested dicts (the controller stats)
    flatten with an underscore-joined prefix, and non-numeric values
    (strings, ``None``) are skipped — Prometheus samples are numbers.
    """
    lines: "list[str]" = []

    def emit(path: "list[str]", value) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                emit(path + [str(key)], value[key])
            return
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            return
        name = _NAME_SAFE.sub("_", "_".join([prefix] + path))
        kind = "counter" if path[-1] in _COUNTER_KEYS else "gauge"
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value}")

    for key in sorted(stats):
        emit([str(key)], stats[key])
    return "\n".join(lines) + "\n"


class ControlServer:
    """Serve the control protocol for one daemon.

    ``port=0`` binds an ephemeral port; read the actual one back from
    :attr:`address` — how tests and the CLI avoid port collisions.
    """

    def __init__(self, daemon, host: str = "127.0.0.1", port: int = 0) -> None:
        self.daemon = daemon
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self.address: "tuple[str, int]" = self._sock.getsockname()[:2]
        self._closing = threading.Event()
        self._thread = threading.Thread(
            target=self._accept_loop, name="control-server", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop accepting connections and release the port."""
        self._closing.set()
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ControlServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- serving ---------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="control-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("rwb") as stream:
                while True:
                    line = stream.readline(_MAX_LINE)
                    if not line:
                        return
                    try:
                        reply = "ok " + json.dumps(
                            self._dispatch(line.decode("utf-8", "replace").strip())
                        )
                    except Exception as exc:
                        reply = "err " + str(exc).replace("\n", " ")
                    stream.write(reply.encode("utf-8") + b"\n")
                    stream.flush()
        except (OSError, ValueError):
            return  # client went away mid-reply

    def _dispatch(self, line: str):
        parts = line.split()
        if not parts:
            raise ConfigurationError("empty command")
        verb, args = parts[0].lower(), parts[1:]
        daemon = self.daemon
        if verb == "ping":
            return "pong"
        if verb == "stats":
            return daemon.stats()
        if verb == "metrics":
            return render_metrics(daemon.stats())
        if verb == "query":
            if len(args) != 1:
                raise ConfigurationError("usage: query <key64>")
            key = int(args[0], 0)
            estimate = daemon.query(key)
            return {
                "key": key,
                "packets": estimate[0] if estimate else None,
                "bytes": estimate[1] if estimate else None,
            }
        if verb == "top":
            k = int(args[0], 0) if args else 10
            return [
                [key, packets, bytes_] for key, packets, bytes_ in daemon.top(k)
            ]
        if verb == "rotate":
            return {"expired": len(daemon.rotate_now())}
        if verb == "snapshot":
            info = daemon.checkpoint_now()
            return {"seq": info.seq, "path": info.manifest_path}
        if verb == "stop":
            daemon.stop()
            return "stopping"
        raise ConfigurationError(f"unknown command {verb!r}")


def send_command(
    address: "tuple[str, int]", line: str, timeout: float = 10.0
) -> "tuple[bool, object]":
    """One-shot client: send ``line``, return ``(ok, payload)``.

    ``payload`` is the decoded JSON document on success, the error
    message string on failure.
    """
    with socket.create_connection(address, timeout=timeout) as conn:
        conn.sendall(line.strip().encode("utf-8") + b"\n")
        with conn.makefile("rb") as stream:
            reply = stream.readline(_MAX_LINE).decode("utf-8", "replace").strip()
    if reply.startswith("ok "):
        return True, json.loads(reply[3:])
    if reply.startswith("err "):
        return False, reply[4:]
    raise ConfigurationError(f"malformed control reply: {reply!r}")
