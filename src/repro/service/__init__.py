"""The always-on measurement service.

The batch pipeline answers "what happened in this trace"; this package
answers "what is happening right now".  Three pieces:

* :class:`~repro.service.daemon.MeasurementDaemon` — an ingest thread
  driving the incremental :class:`~repro.pipeline.driver.Pipeline` loop
  over an unbounded source, continuously queryable and periodically
  checkpointed.
* :class:`~repro.service.checkpoint.CheckpointStore` — atomic,
  numbered, self-pruning on-disk checkpoints (per-shard IMSNAP
  snapshots + a JSON manifest as the commit point), from which a
  restarted daemon resumes bit-identically.
* :class:`~repro.service.control.ControlServer` — a one-line-in /
  one-line-out TCP protocol (``query``, ``top``, ``stats``,
  ``metrics``, ``rotate``, ``snapshot``, ``stop``) for live operation,
  with :func:`~repro.service.control.send_command` as the matching
  client; ``metrics`` renders ``daemon.stats()`` as a Prometheus-style
  text exposition (:func:`~repro.service.control.render_metrics`).

``instameasure serve`` (:mod:`repro.cli`) wires all three together; see
``docs/STREAMING.md`` ("Service mode") for the operational story.
"""

from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointInfo,
    CheckpointStore,
)
from repro.service.control import ControlServer, render_metrics, send_command
from repro.service.daemon import MeasurementDaemon

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointInfo",
    "CheckpointStore",
    "ControlServer",
    "MeasurementDaemon",
    "render_metrics",
    "send_command",
]
