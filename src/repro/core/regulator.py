"""FlowRegulator — the two-layer probabilistic counter (Section III).

The regulator sits in front of the WSAF table and retains a fraction of
every flow's count so that only ~1 % of packets become WSAF insertions:

* **L1** is one RCC sketch.  A packet encodes into L1; most packets stop
  there.
* **L2** is a bank of RCC sketches, one per L1 noise level (three for the
  paper's 8-bit vectors).  When L1 saturates at noise level ``z``, one
  random bit is set in the flow's vector inside ``L2[z]`` — "the second
  (higher) layer's one bit encodes multiple packets of a flow".
* When the L2 vector saturates, the flow's retained count is decoded as
  ``est_pkt = RCC_Decode(z) × RCC_Decode(z2)`` (Algorithm 1, lines 13-14)
  and handed to the WSAF; the byte estimate is ``est_pkt × len(pkt)``
  (the saturation-sampling byte counter of Section III-C).

All L2 sketches share L1's word index and bit offset (the paper's "hash
function reuse"), so the whole regulator costs one hash and at most two
memory accesses per packet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.rcc import RCCSketch, coupon_partial_sum
from repro.errors import ConfigurationError
from repro.memmodel import AccessAccountant


@dataclass
class RegulatorStats:
    """Counters describing a regulator's observed behaviour."""

    packets: int = 0
    l1_saturations: int = 0
    insertions: int = 0

    @property
    def l1_saturation_rate(self) -> float:
        """L1 saturations per packet (RCC's would-be regulation rate)."""
        return self.l1_saturations / self.packets if self.packets else 0.0

    @property
    def regulation_rate(self) -> float:
        """WSAF insertions per packet — the paper's output-ips / input-pps."""
        return self.insertions / self.packets if self.packets else 0.0


class FlowRegulator:
    """Two-layer RCC counter with saturation-based decoding.

    Args:
        l1_memory_bytes: word-array size of the L1 sketch.  Each L2 bank
            member is the same size, so total memory is
            ``(1 + noise_levels) * l1_memory_bytes`` (4× for 8-bit vectors,
            matching the paper's "32KB L1 counter → 128KB total").
        vector_bits: virtual-vector width of each layer (paper: 8).
        word_bits: machine word size (32 or 64).
        saturation_fill: per-layer saturation threshold (paper: 70 %).
        seed: placement seed (shared by both layers by design).
        accountant: optional access accountant.
    """

    def __init__(
        self,
        l1_memory_bytes: int,
        vector_bits: int = 8,
        word_bits: int = 32,
        saturation_fill: float = 0.7,
        seed: int = 0,
        accountant: "AccessAccountant | None" = None,
    ) -> None:
        self.l1 = RCCSketch(
            l1_memory_bytes,
            vector_bits=vector_bits,
            word_bits=word_bits,
            saturation_fill=saturation_fill,
            seed=seed,
            accountant=accountant,
            label="flowregulator.l1",
        )
        # One L2 sketch per L1 noise level; identical geometry and placement
        # seed so (idx, offset) can be reused across layers.
        self.l2 = [
            RCCSketch(
                l1_memory_bytes,
                vector_bits=vector_bits,
                word_bits=word_bits,
                saturation_fill=saturation_fill,
                seed=seed,
                accountant=accountant,
                label=f"flowregulator.l2[{noise}]",
            )
            for noise in range(self.l1.noise_levels)
        ]
        self.stats = RegulatorStats()

    # -- geometry ----------------------------------------------------------

    @property
    def vector_bits(self) -> int:
        return self.l1.vector_bits

    @property
    def total_memory_bytes(self) -> int:
        """L1 plus the whole L2 bank."""
        return self.l1.memory_bytes * (1 + len(self.l2))

    @property
    def retention_capacity(self) -> float:
        """Expected packets retained between WSAF insertions (≈ L1 cap²).

        For the paper's 8-bit layers this is ≈ 9.7² ≈ 95 — "up to around 100
        packets for a single flow, 10 times more than that of RCC".
        """
        return self.l1.retention_capacity * self.l1.retention_capacity

    def place(self, flow_key: int) -> "tuple[int, int]":
        """Shared (word index, bit offset) used by L1 and every L2 bank."""
        return self.l1.place(flow_key)

    # -- data path ---------------------------------------------------------

    def process_at(
        self, idx: int, offset: int, bit1: int, bit2: int
    ) -> "float | None":
        """Encode one packet at a precomputed placement.

        Args:
            idx, offset: the flow's placement (from :meth:`place`).
            bit1, bit2: the packet's random bit choices for L1 and (if L1
                saturates) L2, each uniform in ``[0, vector_bits)``.

        Returns:
            ``est_pkt`` if this packet saturated L2 (the caller must
            accumulate it — and ``est_pkt × packet_len`` — into the WSAF),
            else ``None``.
        """
        self.stats.packets += 1
        noise1 = self.l1.encode_at(idx, offset, bit1)
        if noise1 is None:
            return None
        self.stats.l1_saturations += 1
        noise2 = self.l2[noise1].encode_at(idx, offset, bit2)
        if noise2 is None:
            return None
        self.stats.insertions += 1
        unit = self.l1.decode(noise1)
        return unit * self.l2[noise1].decode(noise2)

    def process(self, flow_key: int, bit1: int, bit2: int) -> "float | None":
        """Hash-place ``flow_key`` and encode one packet (see :meth:`process_at`)."""
        idx, offset = self.place(flow_key)
        return self.process_at(idx, offset, bit1, bit2)

    # -- evaluation helpers --------------------------------------------------

    def residual_estimate(self, flow_key: int) -> float:
        """Decode the count still retained (not yet flushed to the WSAF).

        Evaluation-only: attributes all set bits in the flow's windows to the
        flow, so it over-estimates under heavy word sharing.  The deployed
        system never reads this; accuracy harnesses may add it to reduce
        truncation error for flows that ended mid-retention.
        """
        idx, offset = self.place(flow_key)
        window_l1 = self.l1._window_masks[offset]
        fill_l1 = (self.l1.words[idx] & window_l1).bit_count()
        total = coupon_partial_sum(self.vector_bits, fill_l1)
        for noise, sketch in enumerate(self.l2):
            fill_l2 = (sketch.words[idx] & window_l1).bit_count()
            if fill_l2:
                total += self.l1.decode(noise) * coupon_partial_sum(
                    self.vector_bits, fill_l2
                )
        return total

    def reset(self) -> None:
        """Clear both layers and statistics."""
        self.l1.reset()
        for sketch in self.l2:
            sketch.reset()
        self.stats = RegulatorStats()


def required_l1_bytes(total_memory_bytes: int, vector_bits: int = 8) -> int:
    """L1 size such that L1 + L2 bank fit ``total_memory_bytes``.

    Inverse of :attr:`FlowRegulator.total_memory_bytes` for a given vector
    width (e.g. the paper's 128 KB total → 32 KB L1 for 8-bit vectors).
    """
    noise_levels = vector_bits - math.ceil(0.7 * vector_bits) + 1
    banks = 1 + noise_levels
    l1_bytes = total_memory_bytes // banks
    if l1_bytes <= 0:
        raise ConfigurationError(
            f"{total_memory_bytes} bytes cannot hold a {banks}-bank regulator"
        )
    return l1_bytes
