"""Tiered WSAF — a hot top-K SRAM cache in front of the DRAM table.

PriMe's observation applied to the working set: the regulated insertion
stream is even more skewed than the packet stream (elephants saturate the
regulator again and again), so a small exact cache of the hottest flows
absorbs most accumulations at SRAM latency while the full table stays in
DRAM.  :class:`TieredWSAFTable` keeps the two tiers **exclusive** — a
flow's record lives in exactly one tier — and re-tiers periodically:

* Every accumulate first probes the cache (one SRAM read, recorded under
  the ``"wsaf.cache"`` accountant label); a hit updates in place (one
  SRAM write) and never touches DRAM.
* A miss takes the normal DRAM path through the backing
  :class:`~repro.core.wsaf.WSAFTable` (label ``"wsaf"``), and the flow's
  recent-miss count is bumped.
* Every ``tier_interval`` accumulates, a maintenance tick ranks all
  recently-active flows by their recent hit/miss counts (count
  descending, key ascending — fully deterministic) and rebuilds the
  top-``cache_entries`` cache set: newly-hot flows are *promoted* (their
  record moves out of the table via :meth:`~repro.core.wsaf.WSAFTable.
  remove`), cooled flows are *demoted* back (:meth:`~repro.core.wsaf.
  WSAFTable.place_record` — no event counters; a full probe window falls
  back to the eviction policy).  Heat counts then reset, so the cache
  tracks the *current* head of the distribution, not all-time totals.

Costing: price the tiers separately by building the engine's accountant
as ``AccessAccountant(DRAM, technologies=default_technologies())`` (see
:mod:`repro.core.wsaf_storage`); ``modelled_seconds(labels=("wsaf",
"wsaf.cache"))`` then isolates the WSAF stage, which is what the frontier
bench's modelled-pps figures report.

Estimates/lookup/sweeps see the union of both tiers; counters
(``insertions``/``evictions``/``gc_reclaimed``/``rejected``) live on the
backing table, with cache-hit updates tracked separately and folded into
the facade's ``updates``.  Snapshots carry the cache (records, heat
counts, tick phase) in a ``tier`` section and round-trip bit-exactly —
including mid-interval heat state; loading a snapshot *without* a tier
section (a flat capture, or a merged one) starts with a cold cache.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError
from repro.memmodel import AccessAccountant

from repro.core.wsaf import ENTRY_BYTES, WSAFEntry, WSAFTable

#: Bytes one cache entry occupies: the 33-byte record plus a 4-byte
#: recent-heat counter (the promote/demote bookkeeping lives with it).
CACHE_ENTRY_BYTES = ENTRY_BYTES + 4

#: Index positions inside a cache record list.
_PACKETS, _BYTES, _STAMP, _CHANCE, _TUPLE = range(5)


class TieredWSAFTable:
    """Exclusive two-tier working set: exact hot cache + backing table.

    Satisfies the :class:`~repro.core.wsaf_storage.WSAFStorage` protocol
    by composition around a scalar :class:`WSAFTable` (compressed and
    tiered backends store scalar columns; the batch-probed array table
    pairs only with the flat backend).
    """

    def __init__(
        self,
        num_entries: int = 1 << 20,
        probe_limit: int = 16,
        gc_timeout: "float | None" = None,
        accountant: "AccessAccountant | None" = None,
        eviction_policy: str = "second-chance",
        cache_entries: int = 256,
        tier_interval: int = 1024,
    ) -> None:
        if cache_entries < 1:
            raise ConfigurationError(
                f"cache_entries must be >= 1, got {cache_entries}"
            )
        if tier_interval < 1:
            raise ConfigurationError(
                f"tier_interval must be >= 1, got {tier_interval}"
            )
        self.table = WSAFTable(
            num_entries=num_entries,
            probe_limit=probe_limit,
            gc_timeout=gc_timeout,
            accountant=accountant,
            eviction_policy=eviction_policy,
        )
        self.accountant = accountant
        self.cache_entries = cache_entries
        self.tier_interval = tier_interval
        #: key -> [packets, bytes, last_update, chance, packed_tuple]
        self._cache: "dict[int, list]" = {}
        #: Recent accumulates per key since the last tick; a key lives in
        #: exactly one of the two maps (cache membership decides which).
        self._hits: "dict[int, int]" = {}
        self._misses: "dict[int, int]" = {}
        self.op_count = 0
        self.cache_updates = 0
        self.promotions = 0
        self.demotions = 0

    # -- geometry / counters (facade over the backing table) ---------------

    @property
    def num_entries(self) -> int:
        return self.table.num_entries

    @property
    def probe_limit(self) -> int:
        return self.table.probe_limit

    @property
    def eviction_policy(self) -> str:
        return self.table.eviction_policy

    @property
    def gc_timeout(self) -> "float | None":
        return self.table.gc_timeout

    @property
    def size(self) -> int:
        return self.table.size + len(self._cache)

    @property
    def insertions(self) -> int:
        return self.table.insertions

    @property
    def updates(self) -> int:
        return self.table.updates + self.cache_updates

    @property
    def evictions(self) -> int:
        return self.table.evictions

    @property
    def gc_reclaimed(self) -> int:
        return self.table.gc_reclaimed

    @property
    def rejected(self) -> int:
        return self.table.rejected

    def __len__(self) -> int:
        return self.size

    @property
    def load_factor(self) -> float:
        return self.size / self.num_entries

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of accumulates served by the hot cache so far."""
        return self.cache_updates / self.op_count if self.op_count else 0.0

    def memory_bytes(self) -> int:
        """Backing-table DRAM plus the SRAM cache footprint."""
        return self.table.memory_bytes() + self.cache_memory_bytes()

    def cache_memory_bytes(self) -> int:
        """SRAM the hot tier occupies (capacity, not occupancy)."""
        return self.cache_entries * CACHE_ENTRY_BYTES

    def counter_memory_bytes(self) -> int:
        """Counter bytes of the backing table (the cache stores exact floats)."""
        return self.table.counter_memory_bytes()

    # -- hot path -----------------------------------------------------------

    def accumulate(
        self,
        key: int,
        est_packets: float,
        est_bytes: float,
        timestamp: float,
        five_tuple_packed: "int | None" = None,
    ) -> "tuple[float, float]":
        """Fold one insertion in: cache hit at SRAM cost, else the DRAM path.

        Every call first probes the hot cache (one ``"wsaf.cache"`` read);
        a hit updates in place without touching DRAM, a miss delegates to
        the backing table and bumps the flow's recent-miss count.  Every
        ``tier_interval`` calls a maintenance tick re-ranks the tiers.
        """
        self.op_count += 1
        record = self._cache.get(key)
        if record is not None:
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", reads=1, writes=1)
            record[_PACKETS] += est_packets
            record[_BYTES] += est_bytes
            record[_STAMP] = timestamp
            record[_CHANCE] = True
            self.cache_updates += 1
            self._hits[key] = self._hits.get(key, 0) + 1
            totals = (record[_PACKETS], record[_BYTES])
        else:
            # The cache probe itself is one SRAM read, hit or miss.
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", reads=1)
            totals = self.table.accumulate(
                key, est_packets, est_bytes, timestamp, five_tuple_packed
            )
            self._misses[key] = self._misses.get(key, 0) + 1
        if self.op_count % self.tier_interval == 0:
            self._retier(timestamp)
        return totals

    def accumulate_batch(
        self, events, on_accumulate=None
    ) -> "list[tuple[float, float]]":
        """Accumulate a chunk of events, one :meth:`accumulate` each.

        Maintenance ticks fire at their usual cadence inside the chunk, so
        chunked and per-event ingestion produce identical state.
        """
        accumulate = self.accumulate
        totals: "list[tuple[float, float]]" = []
        for key, est_packets, est_bytes, timestamp, five_tuple_packed in events:
            result = accumulate(
                key, est_packets, est_bytes, timestamp, five_tuple_packed
            )
            if on_accumulate is not None:
                on_accumulate(key, result[0], result[1], timestamp)
            totals.append(result)
        return totals

    # -- promote / demote ---------------------------------------------------

    def _retier(self, now: float) -> None:
        """Rebuild the cache as the top-K recently-hottest flows.

        Deterministic: flows rank by (recent count desc, key asc);
        resident cache flows compete with their recent hit counts, table
        flows with their recent miss counts.  Demotions run before
        promotions so the cache never overflows.
        """
        scores = {key: self._hits.get(key, 0) for key in self._cache}
        scores.update(self._misses)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        target = {key for key, _ in ranked[: self.cache_entries]}
        for key in sorted(key for key in self._cache if key not in target):
            self._demote(key, now)
        for key in sorted(
            key for key in target if key not in self._cache
        ):
            entry = self.table.remove(key)
            if entry is None:
                # Evicted or GC'd from the table since its last miss.
                continue
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", writes=1)
            self._cache[key] = [
                entry.packets,
                entry.bytes,
                entry.last_update,
                True,
                entry.five_tuple_packed,
            ]
            self.promotions += 1
        self._hits.clear()
        self._misses.clear()

    def _demote(self, key: int, now: float) -> None:
        record = self._cache.pop(key)
        if self.accountant is not None:
            self.accountant.record("wsaf.cache", reads=1)
        self.table.place_record(
            key,
            record[_PACKETS],
            record[_BYTES],
            record[_STAMP],
            record[_CHANCE],
            record[_TUPLE],
            now,
        )
        self.demotions += 1

    # -- reads --------------------------------------------------------------

    def lookup(self, key: int) -> "WSAFEntry | None":
        """The live record for ``key`` from whichever tier holds it."""
        record = self._cache.get(key)
        if record is not None:
            return WSAFEntry(
                key=key,
                packets=record[_PACKETS],
                bytes=record[_BYTES],
                last_update=record[_STAMP],
                five_tuple_packed=record[_TUPLE],
            )
        return self.table.lookup(key)

    def remove(self, key: int) -> "WSAFEntry | None":
        """Drop ``key``'s record from whichever tier holds it; return it."""
        record = self._cache.pop(key, None)
        if record is not None:
            self._hits.pop(key, None)
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", reads=1, writes=1)
            return WSAFEntry(
                key=key,
                packets=record[_PACKETS],
                bytes=record[_BYTES],
                last_update=record[_STAMP],
                five_tuple_packed=record[_TUPLE],
            )
        return self.table.remove(key)

    def entries(self) -> Iterator[WSAFEntry]:
        """All records of both tiers: table in slot order, then the cache
        in key order."""
        yield from self.table.entries()
        for key in sorted(self._cache):
            record = self._cache[key]
            yield WSAFEntry(
                key=key,
                packets=record[_PACKETS],
                bytes=record[_BYTES],
                last_update=record[_STAMP],
                five_tuple_packed=record[_TUPLE],
            )

    def estimates(
        self, flow_keys=None
    ) -> "dict[int, tuple[float, float]]":
        """Per-flow ``(packets, bytes)`` across both tiers, optionally filtered."""
        if flow_keys is not None:
            found: "dict[int, tuple[float, float]]" = {}
            residual = []
            for key in flow_keys:
                key = int(key)
                record = self._cache.get(key)
                if record is not None:
                    found[key] = (record[_PACKETS], record[_BYTES])
                else:
                    residual.append(key)
            found.update(self.table.estimates(flow_keys=residual))
            return found
        merged = self.table.estimates()
        for key in sorted(self._cache):
            record = self._cache[key]
            merged[key] = (record[_PACKETS], record[_BYTES])
        return merged

    def active_entries(self, now: float, window: float) -> Iterator[WSAFEntry]:
        """Records of either tier updated within ``window`` seconds of ``now``."""
        if window <= 0:
            raise ConfigurationError("window must be positive")
        for entry in self.entries():
            if now - entry.last_update <= window:
                yield entry

    # -- lifecycle -----------------------------------------------------------

    def expire_older_than(self, cutoff: float) -> int:
        """Bulk-reclaim idle records from both tiers."""
        reclaimed = self.table.expire_older_than(cutoff)
        stale = [
            key
            for key, record in self._cache.items()
            if record[_STAMP] < cutoff
        ]
        for key in sorted(stale):
            del self._cache[key]
            self._hits.pop(key, None)
        # Cache reclaims count on the shared (table-resident) counter.
        self.table.gc_reclaimed += len(stale)
        return reclaimed + len(stale)

    # -- state transfer -------------------------------------------------------

    def export_state(self):
        """Both tiers as a :class:`~repro.state.snapshot.WSAFState`.

        The main columns are the backing table's records (slot-exact);
        the cache rides in a ``tier`` section (records in key order plus
        the heat counts and tick phase), so the round trip is bit-exact
        even mid-interval.  The top-level counters are the facade's
        totals — a flat consumer that flushes the tier section sees the
        same ``size``/``updates`` it would read off this object.
        """
        import numpy as np

        from repro.state.snapshot import TierState, pack_tuple_columns

        state = self.table.export_state()
        state.size = self.size
        state.updates = self.updates

        cache_keys = sorted(self._cache)
        records = [self._cache[key] for key in cache_keys]
        lo, hi, present = pack_tuple_columns(
            [record[_TUPLE] for record in records]
        )
        heat_keys = sorted(set(self._hits) | set(self._misses))
        state.tier = TierState(
            cache_entries=self.cache_entries,
            tier_interval=self.tier_interval,
            op_count=self.op_count,
            cache_updates=self.cache_updates,
            promotions=self.promotions,
            demotions=self.demotions,
            keys=np.array(cache_keys, dtype=np.uint64),
            packets=np.array(
                [record[_PACKETS] for record in records], dtype=np.float64
            ),
            bytes=np.array(
                [record[_BYTES] for record in records], dtype=np.float64
            ),
            timestamps=np.array(
                [record[_STAMP] for record in records], dtype=np.float64
            ),
            chance=np.array(
                [record[_CHANCE] for record in records], dtype=bool
            ),
            tuple_lo=lo,
            tuple_hi=hi,
            tuple_present=present,
            heat_keys=np.array(heat_keys, dtype=np.uint64),
            heat_counts=np.array(
                [
                    self._hits.get(key, 0) + self._misses.get(key, 0)
                    for key in heat_keys
                ],
                dtype=np.int64,
            ),
        )
        return state

    def load_state(self, state) -> None:
        """Restore both tiers from an :meth:`export_state` snapshot.

        A snapshot without a ``tier`` section (flat capture, or a merged
        one — merging flattens tiers) restores with every record in the
        backing table and a cold cache; the next maintenance ticks warm
        it back up.
        """
        from dataclasses import replace

        tier = getattr(state, "tier", None)
        if tier is None:
            self.table.load_state(state)
            self._cache.clear()
            self._hits.clear()
            self._misses.clear()
            self.op_count = 0
            self.cache_updates = 0
            self.promotions = 0
            self.demotions = 0
            return
        table_state = replace(
            state,
            tier=None,
            size=state.size - tier.num_records,
            updates=state.updates - tier.cache_updates,
        )
        self.table.load_state(table_state)
        self._cache.clear()
        tuples = tier.tuples()
        for i, key in enumerate(tier.keys.tolist()):
            self._cache[key] = [
                float(tier.packets[i]),
                float(tier.bytes[i]),
                float(tier.timestamps[i]),
                bool(tier.chance[i]),
                tuples[i],
            ]
        self._hits.clear()
        self._misses.clear()
        for key, count in zip(
            tier.heat_keys.tolist(), tier.heat_counts.tolist()
        ):
            if key in self._cache:
                self._hits[key] = count
            else:
                self._misses[key] = count
        self.op_count = tier.op_count
        self.cache_updates = tier.cache_updates
        self.promotions = tier.promotions
        self.demotions = tier.demotions
