"""Tiered WSAF — a hot top-K SRAM cache in front of the DRAM table.

PriMe's observation applied to the working set: the regulated insertion
stream is even more skewed than the packet stream (elephants saturate the
regulator again and again), so a small exact cache of the hottest flows
absorbs most accumulations at SRAM latency while the full table stays in
DRAM.  :class:`TieredWSAFTable` keeps the two tiers **exclusive** — a
flow's record lives in exactly one tier — and re-tiers periodically:

* Every accumulate first probes the cache (one SRAM read, recorded under
  the ``"wsaf.cache"`` accountant label); a hit updates in place (one
  SRAM write) and never touches DRAM.
* A miss takes the normal DRAM path through the backing
  :class:`~repro.core.wsaf.WSAFTable` (label ``"wsaf"``), and the flow's
  recent-miss count is bumped.
* Every ``tier_interval`` accumulates, a maintenance tick ranks all
  recently-active flows by their recent hit/miss counts (count
  descending, key ascending — fully deterministic) and rebuilds the
  top-``cache_entries`` cache set: newly-hot flows are *promoted* (their
  record moves out of the table via :meth:`~repro.core.wsaf.WSAFTable.
  remove`), cooled flows are *demoted* back (:meth:`~repro.core.wsaf.
  WSAFTable.place_record` — no event counters; a full probe window falls
  back to the eviction policy).  Heat counts then reset, so the cache
  tracks the *current* head of the distribution, not all-time totals.

Costing: price the tiers separately by building the engine's accountant
as ``AccessAccountant(DRAM, technologies=default_technologies())`` (see
:mod:`repro.core.wsaf_storage`); ``modelled_seconds(labels=("wsaf",
"wsaf.cache"))`` then isolates the WSAF stage, which is what the frontier
bench's modelled-pps figures report.

Estimates/lookup/sweeps see the union of both tiers; counters
(``insertions``/``evictions``/``gc_reclaimed``/``rejected``) live on the
backing table, with cache-hit updates tracked separately and folded into
the facade's ``updates``.  Snapshots carry the cache (records, heat
counts, tick phase) in a ``tier`` section and round-trip bit-exactly —
including mid-interval heat state; loading a snapshot *without* a tier
section (a flat capture, or a merged one) starts with a cold cache.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.memmodel import AccessAccountant

from repro.core.wsaf import ENTRY_BYTES, WSAFEntry, WSAFTable

#: Below this many events the vectorized membership probe costs more
#: than it saves (mirrors the batched table's cutoff).
_BATCH_CUTOFF = 8

#: Bytes one cache entry occupies: the 33-byte record plus a 4-byte
#: recent-heat counter (the promote/demote bookkeeping lives with it).
CACHE_ENTRY_BYTES = ENTRY_BYTES + 4

#: Index positions inside a cache record list.
_PACKETS, _BYTES, _STAMP, _CHANCE, _TUPLE = range(5)


class TieredWSAFTable:
    """Exclusive two-tier working set: exact hot cache + backing table.

    Satisfies the :class:`~repro.core.wsaf_storage.WSAFStorage` protocol
    by composition around a :class:`WSAFTable`.  ``table_engine`` picks
    the backing columns: ``"scalar"`` (list columns) or ``"batched"``
    (the batch-probed :class:`~repro.kernels.wsaf_batched.
    BatchedWSAFTable`), in which case :meth:`accumulate_batch_arrays`
    vectorizes the hot path — a bulk cache-membership probe splits each
    chunk into cache-hit and DRAM sub-batches, with maintenance ticks
    still firing on exact interval boundaries via chunk splitting.  Both
    engines are bit-identical; only throughput differs.
    """

    def __init__(
        self,
        num_entries: int = 1 << 20,
        probe_limit: int = 16,
        gc_timeout: "float | None" = None,
        accountant: "AccessAccountant | None" = None,
        eviction_policy: str = "second-chance",
        cache_entries: int = 256,
        tier_interval: int = 1024,
        table_engine: str = "scalar",
    ) -> None:
        if cache_entries < 1:
            raise ConfigurationError(
                f"cache_entries must be >= 1, got {cache_entries}"
            )
        if tier_interval < 1:
            raise ConfigurationError(
                f"tier_interval must be >= 1, got {tier_interval}"
            )
        if table_engine not in ("scalar", "batched"):
            raise ConfigurationError(
                f"unknown table_engine {table_engine!r}; "
                "known: ('scalar', 'batched')"
            )
        if table_engine == "batched":
            from repro.kernels.wsaf_batched import BatchedWSAFTable

            table_class: "type[WSAFTable]" = BatchedWSAFTable
        else:
            table_class = WSAFTable
        self.table = table_class(
            num_entries=num_entries,
            probe_limit=probe_limit,
            gc_timeout=gc_timeout,
            accountant=accountant,
            eviction_policy=eviction_policy,
        )
        self.table_engine = table_engine
        self.accountant = accountant
        self.cache_entries = cache_entries
        self.tier_interval = tier_interval
        #: key -> [packets, bytes, last_update, chance, packed_tuple]
        self._cache: "dict[int, list]" = {}
        #: Recent accumulates per key since the last tick; a key lives in
        #: exactly one of the two maps (cache membership decides which).
        self._hits: "dict[int, int]" = {}
        self._misses: "dict[int, int]" = {}
        #: Cached uint64 view of the cache's key set for bulk membership
        #: probes; invalidated whenever cache membership changes.
        self._cache_keys_arr: "np.ndarray | None" = None
        self.op_count = 0
        self.cache_updates = 0
        self.promotions = 0
        self.demotions = 0

    # -- geometry / counters (facade over the backing table) ---------------

    @property
    def num_entries(self) -> int:
        return self.table.num_entries

    @property
    def probe_limit(self) -> int:
        return self.table.probe_limit

    @property
    def eviction_policy(self) -> str:
        return self.table.eviction_policy

    @property
    def gc_timeout(self) -> "float | None":
        return self.table.gc_timeout

    @property
    def size(self) -> int:
        return self.table.size + len(self._cache)

    @property
    def insertions(self) -> int:
        return self.table.insertions

    @property
    def updates(self) -> int:
        return self.table.updates + self.cache_updates

    @property
    def evictions(self) -> int:
        return self.table.evictions

    @property
    def gc_reclaimed(self) -> int:
        return self.table.gc_reclaimed

    @property
    def rejected(self) -> int:
        return self.table.rejected

    def __len__(self) -> int:
        return self.size

    @property
    def load_factor(self) -> float:
        return self.size / self.num_entries

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of accumulates served by the hot cache so far."""
        return self.cache_updates / self.op_count if self.op_count else 0.0

    def memory_bytes(self) -> int:
        """Backing-table DRAM plus the SRAM cache footprint."""
        return self.table.memory_bytes() + self.cache_memory_bytes()

    def cache_memory_bytes(self) -> int:
        """SRAM the hot tier occupies (capacity, not occupancy)."""
        return self.cache_entries * CACHE_ENTRY_BYTES

    def counter_memory_bytes(self) -> int:
        """Counter bytes of the backing table (the cache stores exact floats)."""
        return self.table.counter_memory_bytes()

    # -- hot path -----------------------------------------------------------

    def accumulate(
        self,
        key: int,
        est_packets: float,
        est_bytes: float,
        timestamp: float,
        five_tuple_packed: "int | None" = None,
    ) -> "tuple[float, float]":
        """Fold one insertion in: cache hit at SRAM cost, else the DRAM path.

        Every call first probes the hot cache (one ``"wsaf.cache"`` read);
        a hit updates in place without touching DRAM, a miss delegates to
        the backing table and bumps the flow's recent-miss count.  Every
        ``tier_interval`` calls a maintenance tick re-ranks the tiers.
        """
        self.op_count += 1
        record = self._cache.get(key)
        if record is not None:
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", reads=1, writes=1)
            record[_PACKETS] += est_packets
            record[_BYTES] += est_bytes
            record[_STAMP] = timestamp
            record[_CHANCE] = True
            self.cache_updates += 1
            self._hits[key] = self._hits.get(key, 0) + 1
            totals = (record[_PACKETS], record[_BYTES])
        else:
            # The cache probe itself is one SRAM read, hit or miss.
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", reads=1)
            totals = self.table.accumulate(
                key, est_packets, est_bytes, timestamp, five_tuple_packed
            )
            self._misses[key] = self._misses.get(key, 0) + 1
        if self.op_count % self.tier_interval == 0:
            self._retier(timestamp)
        return totals

    def accumulate_batch(
        self, events, on_accumulate=None
    ) -> "list[tuple[float, float]]":
        """Accumulate a chunk of events, one :meth:`accumulate` each.

        Maintenance ticks fire at their usual cadence inside the chunk, so
        chunked and per-event ingestion produce identical state.
        """
        accumulate = self.accumulate
        totals: "list[tuple[float, float]]" = []
        for key, est_packets, est_bytes, timestamp, five_tuple_packed in events:
            result = accumulate(
                key, est_packets, est_bytes, timestamp, five_tuple_packed
            )
            if on_accumulate is not None:
                on_accumulate(key, result[0], result[1], timestamp)
            totals.append(result)
        return totals

    def _cache_keys_array(self) -> "np.ndarray":
        """The cache's key set as a uint64 array (cached between retiers)."""
        arr = self._cache_keys_arr
        if arr is None:
            arr = np.fromiter(
                self._cache.keys(), dtype=np.uint64, count=len(self._cache)
            )
            self._cache_keys_arr = arr
        return arr

    def accumulate_batch_arrays(
        self,
        keys,
        packets,
        bytes_,
        timestamps,
        tuples,
        on_accumulate=None,
        collect_totals: bool = True,
    ) -> "list[tuple[float, float]] | None":
        """Column-array accumulation (same contract as the batched table's).

        Bit-identical to calling :meth:`accumulate` per event: the chunk is
        cut at maintenance-tick boundaries, and within each segment — where
        cache membership is provably fixed — a bulk ``np.isin`` membership
        probe splits the events into a cache-hit sub-batch (vectorized
        in-place add chains, heat counted per key) and a DRAM sub-batch
        (delegated, in original relative order, to the backing table's own
        batch kernel).  Hit and miss sub-batches touch disjoint keys and
        disjoint state, so applying them group-wise preserves the exact
        sequential result, and the accountant's order-insensitive totals
        make the bulk ``"wsaf.cache"`` records equivalent to per-event
        ones.  Promote/demote ticks fire on exact interval boundaries with
        the triggering event's timestamp, exactly as the scalar path does.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        pkts = np.ascontiguousarray(packets, dtype=np.float64)
        byts = np.ascontiguousarray(bytes_, dtype=np.float64)
        stamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        n = len(keys)
        table_arrays = getattr(self.table, "accumulate_batch_arrays", None)
        if table_arrays is None or n < _BATCH_CUTOFF:
            accumulate = self.accumulate
            totals = []
            for key, est_p, est_b, stamp, packed in zip(
                keys.tolist(),
                pkts.tolist(),
                byts.tolist(),
                stamps.tolist(),
                tuples,
            ):
                total = accumulate(key, est_p, est_b, stamp, packed)
                totals.append(total)
                if on_accumulate is not None:
                    on_accumulate(key, total[0], total[1], stamp)
            return totals if collect_totals else None

        need_totals = collect_totals or on_accumulate is not None
        totals_packets = np.empty(n, dtype=np.float64) if need_totals else None
        totals_bytes = np.empty(n, dtype=np.float64) if need_totals else None
        interval = self.tier_interval
        pos = 0
        while pos < n:
            # Segments end at the next maintenance tick, so ticks fire at
            # exactly the op counts (and with the timestamps) the scalar
            # path would use.
            end = min(n, pos + interval - (self.op_count % interval))
            nseg = end - pos
            seg_keys = keys[pos:end]
            cache_keys = self._cache_keys_array()
            if cache_keys.size:
                member = np.isin(seg_keys, cache_keys)
            else:
                member = np.zeros(nseg, dtype=bool)
            hit_rel = np.flatnonzero(member)
            nhit = hit_rel.size
            if self.accountant is not None:
                # Every accumulate probes the cache (one SRAM read); hits
                # add one SRAM write each.
                self.accountant.record("wsaf.cache", reads=nseg, writes=nhit)
            if nhit:
                self._accumulate_cache_hits(
                    hit_rel + pos,
                    keys,
                    pkts,
                    byts,
                    stamps,
                    totals_packets,
                    totals_bytes,
                )
                self.cache_updates += nhit
            if nhit < nseg:
                miss_idx = np.flatnonzero(~member) + pos
                miss_keys = keys[miss_idx]
                sub_totals = table_arrays(
                    miss_keys,
                    pkts[miss_idx],
                    byts[miss_idx],
                    stamps[miss_idx],
                    [tuples[i] for i in miss_idx.tolist()],
                    None,
                    collect_totals=need_totals,
                )
                miss_unique, miss_counts = np.unique(
                    miss_keys, return_counts=True
                )
                misses = self._misses
                for key, count in zip(
                    miss_unique.tolist(), miss_counts.tolist()
                ):
                    misses[key] = misses.get(key, 0) + count
                if need_totals:
                    sub = np.asarray(sub_totals, dtype=np.float64)
                    totals_packets[miss_idx] = sub[:, 0]
                    totals_bytes[miss_idx] = sub[:, 1]
            self.op_count += nseg
            if self.op_count % interval == 0:
                self._retier(float(stamps[end - 1]))
            pos = end

        if on_accumulate is not None:
            for key, stamp, total_p, total_b in zip(
                keys.tolist(),
                stamps.tolist(),
                totals_packets.tolist(),
                totals_bytes.tolist(),
            ):
                on_accumulate(key, total_p, total_b, stamp)
        if not collect_totals:
            return None
        return list(zip(totals_packets.tolist(), totals_bytes.tolist()))

    def _accumulate_cache_hits(
        self,
        hit_idx,
        keys,
        pkts,
        byts,
        stamps,
        totals_packets,
        totals_bytes,
    ) -> None:
        """Bulk-apply cache-hit accumulates with exact add chains.

        Groups the hit events by key (stable sort keeps within-key event
        order) and runs each key's sequential float adds from its cached
        base — the zero-padded accumulate-matrix trick from the batched
        table, with the same giant-cohort position-walk fallback — so the
        cached values and per-event totals are bit-identical to one
        :meth:`accumulate` per event.
        """
        hkeys = keys[hit_idx]
        order = np.argsort(hkeys, kind="stable")
        skeys = hkeys[order]
        m = len(skeys)
        run_starts = np.flatnonzero(
            np.concatenate(([True], skeys[1:] != skeys[:-1]))
        )
        counts = np.diff(np.append(run_starts, m))
        ukeys = skeys[run_starts].tolist()
        k = len(ukeys)
        cache = self._cache
        base_p = np.fromiter(
            (cache[key][_PACKETS] for key in ukeys), dtype=np.float64, count=k
        )
        base_b = np.fromiter(
            (cache[key][_BYTES] for key in ukeys), dtype=np.float64, count=k
        )
        sorted_p = pkts[hit_idx][order]
        sorted_b = byts[hit_idx][order]
        tot_p = np.empty(m, dtype=np.float64)
        tot_b = np.empty(m, dtype=np.float64)
        max_count = int(counts.max())
        budget = max(16 * m, 1 << 16)
        final_p = base_p.copy()
        final_b = base_b.copy()

        def matrix_chains(sub: "np.ndarray") -> None:
            starts_sub = run_starts[sub]
            counts_sub = counts[sub]
            width = int(counts_sub.max())
            row_of = np.repeat(np.arange(sub.size), counts_sub)
            within = np.arange(len(row_of)) - np.repeat(
                np.cumsum(counts_sub) - counts_sub, counts_sub
            )
            member_pos = np.repeat(starts_sub, counts_sub) + within
            chain_p = np.zeros((sub.size, width), dtype=np.float64)
            chain_b = np.zeros((sub.size, width), dtype=np.float64)
            chain_p[row_of, within] = sorted_p[member_pos]
            chain_b[row_of, within] = sorted_b[member_pos]
            chain_p[:, 0] += base_p[sub]
            chain_b[:, 0] += base_b[sub]
            np.add.accumulate(chain_p, axis=1, out=chain_p)
            np.add.accumulate(chain_b, axis=1, out=chain_b)
            tot_p[member_pos] = chain_p[row_of, within]
            tot_b[member_pos] = chain_b[row_of, within]
            rows = np.arange(sub.size)
            final_p[sub] = chain_p[rows, counts_sub - 1]
            final_b[sub] = chain_b[rows, counts_sub - 1]

        if k * max_count <= budget:
            matrix_chains(np.arange(k))
        else:
            # Heavy-tailed hit batch: run the few giant chains in plain
            # Python (identical C-double adds, contiguous slice stores)
            # and keep the one-shot matrix for the small cohorts.
            from itertools import accumulate as _accumulate

            cutoff = max(budget // k, 8)
            giant = counts > cutoff
            small = np.flatnonzero(~giant)
            if small.size:
                matrix_chains(small)
            pkts_list = sorted_p.tolist()
            byts_list = sorted_b.tolist()
            for j in np.flatnonzero(giant).tolist():
                start = int(run_starts[j])
                end = start + int(counts[j])
                chain = list(
                    _accumulate(
                        pkts_list[start:end], initial=float(base_p[j])
                    )
                )[1:]
                tot_p[start:end] = chain
                final_p[j] = chain[-1]
                chain = list(
                    _accumulate(
                        byts_list[start:end], initial=float(base_b[j])
                    )
                )[1:]
                tot_b[start:end] = chain
                final_b[j] = chain[-1]
        last_stamp = stamps[hit_idx][order][run_starts + counts - 1]
        hits = self._hits
        for j, key in enumerate(ukeys):
            record = cache[key]
            record[_PACKETS] = float(final_p[j])
            record[_BYTES] = float(final_b[j])
            record[_STAMP] = float(last_stamp[j])
            record[_CHANCE] = True
            hits[key] = hits.get(key, 0) + int(counts[j])
        if totals_packets is not None:
            orig = hit_idx[order]
            totals_packets[orig] = tot_p
            totals_bytes[orig] = tot_b

    # -- promote / demote ---------------------------------------------------

    def _retier(self, now: float) -> None:
        """Rebuild the cache as the top-K recently-hottest flows.

        Deterministic: flows rank by (recent count desc, key asc);
        resident cache flows compete with their recent hit counts, table
        flows with their recent miss counts.  Demotions run before
        promotions so the cache never overflows.
        """
        if self.table_engine == "batched":
            self._retier_arrays(now)
            return
        scores = {key: self._hits.get(key, 0) for key in self._cache}
        scores.update(self._misses)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        target = {key for key, _ in ranked[: self.cache_entries]}
        for key in sorted(key for key in self._cache if key not in target):
            self._demote(key, now)
        promote = sorted(key for key in target if key not in self._cache)
        remove_batch = getattr(self.table, "remove_batch", None)
        if remove_batch is not None and len(promote) > 8:
            # One probe matrix instead of a walk per key; distinct-key
            # removals commute, so the records (and accountant tally)
            # are exactly the sequential ones.
            records = remove_batch(promote)
        else:
            table_remove = self.table.remove
            records = []
            for key in promote:
                entry = table_remove(key)
                records.append(
                    None
                    if entry is None
                    else (
                        entry.packets,
                        entry.bytes,
                        entry.last_update,
                        entry.five_tuple_packed,
                    )
                )
        for key, record in zip(promote, records):
            if record is None:
                # Evicted or GC'd from the table since its last miss.
                continue
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", writes=1)
            self._cache[key] = [record[0], record[1], record[2], True, record[3]]
            self.promotions += 1
        self._hits.clear()
        self._misses.clear()
        self._cache_keys_arr = None

    def _retier_arrays(self, now: float) -> None:
        """The maintenance tick on array rails (batched engine only).

        Produces exactly the scalar :meth:`_retier` outcome: cache keys
        score by recent hits, table keys by recent misses (the two maps
        are disjoint — membership is fixed between ticks, and both reset
        at every tick), and ``np.lexsort((keys, -counts))`` realises the
        same (count desc, key asc) total order as the scalar sort.  The
        demote set then places back through the backing table's bulk
        :meth:`~repro.kernels.wsaf_batched.BatchedWSAFTable.
        place_record_batch` and the promote set lifts out through
        ``remove_batch`` — both sequential-identical primitives — with
        the accountant fed the same (order-insensitive) totals.
        """
        cache = self._cache
        misses = self._misses
        nc = len(cache)
        nm = len(misses)
        total = nc + nm
        if total:
            hits = self._hits
            allk = np.empty(total, dtype=np.uint64)
            allv = np.empty(total, dtype=np.int64)
            allk[:nc] = self._cache_keys_array()
            allv[:nc] = np.fromiter(
                (hits.get(key, 0) for key in cache), dtype=np.int64, count=nc
            )
            allk[nc:] = np.fromiter(misses, dtype=np.uint64, count=nm)
            allv[nc:] = np.fromiter(
                misses.values(), dtype=np.int64, count=nm
            )
            top = np.lexsort((allk, -allv))[: self.cache_entries]
            in_top = np.zeros(total, dtype=bool)
            in_top[top] = True
            demote = np.sort(allk[:nc][~in_top[:nc]]).tolist()
            promote = np.sort(allk[nc:][in_top[nc:]]).tolist()
            if demote:
                if self.accountant is not None:
                    self.accountant.record("wsaf.cache", reads=len(demote))
                batch = []
                for key in demote:
                    record = cache.pop(key)
                    batch.append(
                        (
                            key,
                            record[_PACKETS],
                            record[_BYTES],
                            record[_STAMP],
                            record[_CHANCE],
                            record[_TUPLE],
                        )
                    )
                self.table.place_record_batch(batch, now)
                self.demotions += len(demote)
            if promote:
                placed = 0
                for key, record in zip(
                    promote, self.table.remove_batch(promote)
                ):
                    if record is None:
                        # Evicted or GC'd from the table since its last miss.
                        continue
                    cache[key] = [
                        record[0], record[1], record[2], True, record[3]
                    ]
                    placed += 1
                self.promotions += placed
                if self.accountant is not None and placed:
                    self.accountant.record("wsaf.cache", writes=placed)
        self._hits.clear()
        self._misses.clear()
        self._cache_keys_arr = None

    def _demote(self, key: int, now: float) -> None:
        record = self._cache.pop(key)
        self._cache_keys_arr = None
        if self.accountant is not None:
            self.accountant.record("wsaf.cache", reads=1)
        self.table.place_record(
            key,
            record[_PACKETS],
            record[_BYTES],
            record[_STAMP],
            record[_CHANCE],
            record[_TUPLE],
            now,
        )
        self.demotions += 1

    # -- reads --------------------------------------------------------------

    def lookup(self, key: int) -> "WSAFEntry | None":
        """The live record for ``key`` from whichever tier holds it."""
        record = self._cache.get(key)
        if record is not None:
            return WSAFEntry(
                key=key,
                packets=record[_PACKETS],
                bytes=record[_BYTES],
                last_update=record[_STAMP],
                five_tuple_packed=record[_TUPLE],
            )
        return self.table.lookup(key)

    def remove(self, key: int) -> "WSAFEntry | None":
        """Drop ``key``'s record from whichever tier holds it; return it."""
        record = self._cache.pop(key, None)
        if record is not None:
            self._cache_keys_arr = None
            self._hits.pop(key, None)
            if self.accountant is not None:
                self.accountant.record("wsaf.cache", reads=1, writes=1)
            return WSAFEntry(
                key=key,
                packets=record[_PACKETS],
                bytes=record[_BYTES],
                last_update=record[_STAMP],
                five_tuple_packed=record[_TUPLE],
            )
        return self.table.remove(key)

    def entries(self) -> Iterator[WSAFEntry]:
        """All records of both tiers: table in slot order, then the cache
        in key order."""
        yield from self.table.entries()
        for key in sorted(self._cache):
            record = self._cache[key]
            yield WSAFEntry(
                key=key,
                packets=record[_PACKETS],
                bytes=record[_BYTES],
                last_update=record[_STAMP],
                five_tuple_packed=record[_TUPLE],
            )

    def estimates(
        self, flow_keys=None
    ) -> "dict[int, tuple[float, float]]":
        """Per-flow ``(packets, bytes)`` across both tiers, optionally filtered."""
        if flow_keys is not None:
            found: "dict[int, tuple[float, float]]" = {}
            residual = []
            for key in flow_keys:
                key = int(key)
                record = self._cache.get(key)
                if record is not None:
                    found[key] = (record[_PACKETS], record[_BYTES])
                else:
                    residual.append(key)
            found.update(self.table.estimates(flow_keys=residual))
            return found
        merged = self.table.estimates()
        for key in sorted(self._cache):
            record = self._cache[key]
            merged[key] = (record[_PACKETS], record[_BYTES])
        return merged

    def active_entries(self, now: float, window: float) -> Iterator[WSAFEntry]:
        """Records of either tier updated within ``window`` seconds of ``now``."""
        if window <= 0:
            raise ConfigurationError("window must be positive")
        for entry in self.entries():
            if now - entry.last_update <= window:
                yield entry

    # -- lifecycle -----------------------------------------------------------

    def expire_older_than(self, cutoff: float) -> int:
        """Bulk-reclaim idle records from both tiers."""
        reclaimed = self.table.expire_older_than(cutoff)
        stale = [
            key
            for key, record in self._cache.items()
            if record[_STAMP] < cutoff
        ]
        for key in sorted(stale):
            del self._cache[key]
            self._hits.pop(key, None)
        if stale:
            self._cache_keys_arr = None
        # Cache reclaims count on the shared (table-resident) counter.
        self.table.gc_reclaimed += len(stale)
        return reclaimed + len(stale)

    # -- state transfer -------------------------------------------------------

    def export_state(self):
        """Both tiers as a :class:`~repro.state.snapshot.WSAFState`.

        The main columns are the backing table's records (slot-exact);
        the cache rides in a ``tier`` section (records in key order plus
        the heat counts and tick phase), so the round trip is bit-exact
        even mid-interval.  The top-level counters are the facade's
        totals — a flat consumer that flushes the tier section sees the
        same ``size``/``updates`` it would read off this object.
        """
        import numpy as np

        from repro.state.snapshot import TierState, pack_tuple_columns

        state = self.table.export_state()
        state.size = self.size
        state.updates = self.updates

        cache_keys = sorted(self._cache)
        records = [self._cache[key] for key in cache_keys]
        lo, hi, present = pack_tuple_columns(
            [record[_TUPLE] for record in records]
        )
        heat_keys = sorted(set(self._hits) | set(self._misses))
        state.tier = TierState(
            cache_entries=self.cache_entries,
            tier_interval=self.tier_interval,
            op_count=self.op_count,
            cache_updates=self.cache_updates,
            promotions=self.promotions,
            demotions=self.demotions,
            keys=np.array(cache_keys, dtype=np.uint64),
            packets=np.array(
                [record[_PACKETS] for record in records], dtype=np.float64
            ),
            bytes=np.array(
                [record[_BYTES] for record in records], dtype=np.float64
            ),
            timestamps=np.array(
                [record[_STAMP] for record in records], dtype=np.float64
            ),
            chance=np.array(
                [record[_CHANCE] for record in records], dtype=bool
            ),
            tuple_lo=lo,
            tuple_hi=hi,
            tuple_present=present,
            heat_keys=np.array(heat_keys, dtype=np.uint64),
            heat_counts=np.array(
                [
                    self._hits.get(key, 0) + self._misses.get(key, 0)
                    for key in heat_keys
                ],
                dtype=np.int64,
            ),
        )
        return state

    def load_state(self, state) -> None:
        """Restore both tiers from an :meth:`export_state` snapshot.

        A snapshot without a ``tier`` section (flat capture, or a merged
        one — merging flattens tiers) restores with every record in the
        backing table and a cold cache; the next maintenance ticks warm
        it back up.
        """
        from dataclasses import replace

        self._cache_keys_arr = None
        tier = getattr(state, "tier", None)
        if tier is None:
            self.table.load_state(state)
            self._cache.clear()
            self._hits.clear()
            self._misses.clear()
            self.op_count = 0
            self.cache_updates = 0
            self.promotions = 0
            self.demotions = 0
            return
        table_state = replace(
            state,
            tier=None,
            size=state.size - tier.num_records,
            updates=state.updates - tier.cache_updates,
        )
        self.table.load_state(table_state)
        self._cache.clear()
        tuples = tier.tuples()
        for i, key in enumerate(tier.keys.tolist()):
            self._cache[key] = [
                float(tier.packets[i]),
                float(tier.bytes[i]),
                float(tier.timestamps[i]),
                bool(tier.chance[i]),
                tuples[i],
            ]
        self._hits.clear()
        self._misses.clear()
        for key, count in zip(
            tier.heat_keys.tolist(), tier.heat_counts.tolist()
        ):
            if key in self._cache:
                self._hits[key] = count
            else:
                self._misses[key] = count
        self.op_count = tier.op_count
        self.cache_updates = tier.cache_updates
        self.promotions = tier.promotions
        self.demotions = tier.demotions
