"""InstaMeasure — the single-core measurement engine (Algorithm 1).

Ties a :class:`FlowRegulator` to a :class:`WSAFTable`: every packet encodes
into the regulator; on L2 saturation the decoded ``(est_pkt, est_byte)``
pair is accumulated into the WSAF under the flow's ID.  Callers can observe
accumulations through a callback (that is where saturation-based heavy-
hitter detection hooks in).

Three equivalent data paths are provided:

* :meth:`InstaMeasure.process_packet` — the literal per-packet API, one call
  per packet, the shape a real pipeline would use.
* :meth:`InstaMeasure.process_trace` with ``engine="scalar"`` — a
  trace-driven loop with hoisted placement hashing and a pre-drawn
  randomness stream.  It produces bit-identical state to the per-packet
  path given the same random bits (tested).
* :meth:`InstaMeasure.process_trace` with ``engine="batched"`` (the
  default via ``"auto"`` for the 2-layer FlowRegulator) — the chunked
  NumPy/LUT kernel in :mod:`repro.kernels`, bit-identical to the scalar
  loop and several times faster (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.multilayer import MultiLayerRegulator
from repro.core.regulator import FlowRegulator, RegulatorStats
from repro.core.wsaf import WSAFTable
from repro.errors import ConfigurationError
from repro.memmodel import AccessAccountant
from repro.traffic.packet import FlowTable, Trace

#: Callback fired after each WSAF accumulation:
#: (flow_key, total_packets, total_bytes, timestamp).
AccumulateCallback = Callable[[int, float, float, float], None]


def packed_five_tuples(flows: FlowTable) -> "list[int]":
    """Per-flow 104-bit packed 5-tuples (what the WSAF record stores).

    Delegates to :meth:`FlowTable.packed_tuples`, which caches the list on
    the flow table so repeated runs over one trace pay for it once.
    """
    return flows.packed_tuples()


#: Valid ``InstaMeasureConfig.engine`` values.
ENGINE_CHOICES = ("auto", "batched", "scalar")

#: Valid ``InstaMeasureConfig.wsaf_engine`` values.
WSAF_ENGINE_CHOICES = ("auto", "batched", "scalar")

#: Valid ``InstaMeasureConfig.regulator_replay`` values.
REGULATOR_REPLAY_CHOICES = ("auto", "scan", "loop")


def resolved_regulator_replay(config: "InstaMeasureConfig") -> str:
    """Which contested-stretch replay ``config`` gets: "scan" or "loop".

    ``"auto"`` picks the vectorized segmented-FSM scan
    (:mod:`repro.kernels.regulator_scan`) whenever the batched trace
    engine runs with a batch-probed WSAF — or with the scalar table that
    ICE-Buckets' backend-aware ``wsaf_engine="auto"`` picks on purely
    measured grounds — and keeps the per-stretch FSM loop otherwise,
    preserving the PR-2 loop variants as A/B baselines (an explicit
    ``wsaf_engine="scalar"`` still means "give me the scalar-era
    pipeline").  Both replays are bit-identical; only throughput
    differs.
    """
    if config.regulator_replay in ("scan", "loop"):
        return config.regulator_replay
    if config.engine == "scalar":
        return "loop"
    if resolved_wsaf_engine(config) == "batched":
        return "scan"
    if config.wsaf_engine == "auto" and config.wsaf_backend == "icebuckets":
        # ICE-Buckets' ``auto`` keeps the *scalar table* purely because
        # its serial quantized adds measure faster that way — not as an
        # A/B baseline request — and the scan replay composes with a
        # scalar WSAF through the per-event facade, so the batched trace
        # path keeps its vectorized regulator.
        return "scan"
    return "loop"


def resolved_wsaf_engine(config: "InstaMeasureConfig") -> str:
    """Which WSAF column layout ``config`` gets: "batched" or "scalar".

    ``"auto"`` picks the array-backed :class:`~repro.kernels.wsaf_batched.
    BatchedWSAFTable` whenever the trace path itself batches (the batched
    regulator kernel delegates whole update batches, which is where cohort
    probing pays); a scalar trace path keeps the scalar table, whose
    per-event ``accumulate`` is faster on plain Python lists.  The choice
    is backend-aware: every storage backend has both a scalar and a
    batch-probed form (see :mod:`repro.core.wsaf_storage`), bit-identical
    by contract, but their measured throughput differs.  Flat and tiered
    batch-probe faster than they accumulate per-event; ICE-Buckets does
    not — its quantized add chains are order-serial (each add re-rounds
    at the bucket scale), so the batched form replays most cohorts
    through scalar arithmetic anyway and the cohort machinery is pure
    overhead.  ``"auto"`` therefore keeps the scalar table for
    ``wsaf_backend="icebuckets"``; forcing ``wsaf_engine="batched"``
    still composes (bit-identical, pinned by goldens), it is just
    slower on this simulator.
    """
    if config.wsaf_engine in ("batched", "scalar"):
        return config.wsaf_engine
    if config.engine == "scalar":
        return "scalar"
    if config.wsaf_backend == "icebuckets":
        return "scalar"
    if config.num_layers == 2 and config.vector_bits <= 8:
        return "batched"
    return "scalar"


def build_wsaf_table(
    config: "InstaMeasureConfig",
    accountant: "AccessAccountant | None" = None,
) -> WSAFTable:
    """The WSAF storage ``config`` asks for.

    Delegates to :func:`repro.core.wsaf_storage.build_wsaf_storage` — the
    backend seam: ``wsaf_backend`` picks flat/tiered/icebuckets storage,
    and for flat the ``wsaf_engine`` knob still picks scalar vs
    batch-probed columns.
    """
    from repro.core.wsaf_storage import build_wsaf_storage

    return build_wsaf_storage(config, accountant)


@dataclass
class InstaMeasureConfig:
    """Engine parameters (defaults follow Section IV-D, scaled knobs exposed).

    Attributes:
        l1_memory_bytes: L1 sketch size; total regulator memory is 4× this
            for 8-bit vectors (paper: 32 KB L1 → 128 KB total).
        num_layers: regulator depth.  2 is the paper's FlowRegulator and
            runs on the specialized fast path; other depths (1, 3, 4) use
            the generic :class:`MultiLayerRegulator` path.
        vector_bits / word_bits / saturation_fill: RCC geometry.
        wsaf_entries: WSAF capacity, a power of two (paper: 2^20).
        probe_limit: WSAF probe window.
        gc_timeout: WSAF inactivity timeout in seconds (None disables).
        eviction_policy: WSAF overflow policy (see :class:`WSAFTable`).
        seed: seed for placement hashing and the per-packet bit stream.
        engine: trace-processing engine — ``"auto"`` picks the batched
            kernel whenever the regulator supports it (2-layer
            FlowRegulator, ``vector_bits <= 8``) and the scalar loop
            otherwise; ``"batched"`` requires the fast path (configuration
            error if unsupported); ``"scalar"`` always runs the per-packet
            Python loop.  All engines are bit-identical.
        chunk_size: packets per batched-kernel chunk (bounds the working
            set of the vectorized stage; irrelevant to the scalar path).
        wsaf_engine: WSAF backing store — ``"auto"`` pairs the batch-probed
            array table with the batched trace engine for the flat and
            tiered backends (and keeps the scalar table otherwise,
            including for ``wsaf_backend="icebuckets"``, whose serial
            quantized adds measure faster scalar), ``"batched"`` /
            ``"scalar"`` force one.  Both stores are state-identical;
            only throughput differs.
        regulator_replay: contested-stretch replay inside the batched
            kernel — ``"auto"`` uses the vectorized segmented-FSM scan when
            the fully batched pipeline runs and the per-stretch FSM loop
            otherwise; ``"scan"`` / ``"loop"`` force one (A/B knob).  Both
            replays are bit-identical; ignored by ``engine="scalar"``.
        wsaf_backend: working-set storage algorithm — ``"flat"`` (the
            paper's table, bit-identical to pre-backend behaviour),
            ``"tiered"`` (hot top-K SRAM cache in front of the DRAM
            table; see :mod:`repro.core.wsaf_tiered`), or
            ``"icebuckets"`` (bucket-scaled compressed counters; see
            :mod:`repro.core.wsaf_icebuckets`).  Every backend composes
            with either ``wsaf_engine`` (batched forms are bit-identical
            to scalar ones; only throughput differs).
        tier_cache_entries / tier_interval: tiered backend geometry —
            hot-cache capacity and accumulates between promote/demote
            maintenance ticks.
        ice_bucket_slots / ice_counter_bits: compressed backend geometry
            — table slots sharing one scale exponent, and stored bits
            per counter.
    """

    l1_memory_bytes: int = 32 * 1024
    num_layers: int = 2
    vector_bits: int = 8
    word_bits: int = 32
    saturation_fill: float = 0.7
    wsaf_entries: int = 1 << 20
    probe_limit: int = 16
    gc_timeout: "float | None" = None
    eviction_policy: str = "second-chance"
    seed: int = 0
    engine: str = "auto"
    chunk_size: int = 1 << 20
    wsaf_engine: str = "auto"
    regulator_replay: str = "auto"
    wsaf_backend: str = "flat"
    tier_cache_entries: int = 256
    tier_interval: int = 1024
    ice_bucket_slots: int = 64
    ice_counter_bits: int = 16

    def __post_init__(self) -> None:
        """Validate every enumerated/bounded knob in one place.

        Construction is the single choke point all engines, workers, and
        helpers pass through, so invalid configurations fail before any
        state is built (instead of in whichever code path first consults
        the knob).
        """
        if self.engine not in ENGINE_CHOICES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {ENGINE_CHOICES}"
            )
        if self.wsaf_engine not in WSAF_ENGINE_CHOICES:
            raise ConfigurationError(
                f"unknown wsaf_engine {self.wsaf_engine!r}; "
                f"known: {WSAF_ENGINE_CHOICES}"
            )
        if self.regulator_replay not in REGULATOR_REPLAY_CHOICES:
            raise ConfigurationError(
                f"unknown regulator_replay {self.regulator_replay!r}; "
                f"known: {REGULATOR_REPLAY_CHOICES}"
            )
        if self.wsaf_entries < 2:
            raise ConfigurationError(
                f"wsaf_entries must be >= 2, got {self.wsaf_entries}"
            )
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        from repro.core.wsaf_storage import WSAF_BACKEND_CHOICES

        if self.wsaf_backend not in WSAF_BACKEND_CHOICES:
            raise ConfigurationError(
                f"unknown wsaf_backend {self.wsaf_backend!r}; "
                f"known: {WSAF_BACKEND_CHOICES}"
            )
        if self.tier_cache_entries < 1:
            raise ConfigurationError(
                f"tier_cache_entries must be >= 1, got {self.tier_cache_entries}"
            )
        if self.tier_interval < 1:
            raise ConfigurationError(
                f"tier_interval must be >= 1, got {self.tier_interval}"
            )
        if self.ice_bucket_slots < 1:
            raise ConfigurationError(
                f"ice_bucket_slots must be >= 1, got {self.ice_bucket_slots}"
            )
        if not 2 <= self.ice_counter_bits <= 32:
            raise ConfigurationError(
                f"ice_counter_bits must be in [2, 32], got {self.ice_counter_bits}"
            )


@dataclass
class MeasurementResult:
    """Outcome of processing a trace through an engine.

    All counters (and ``regulator_stats``) are **per-call deltas**: a
    second ``process_trace`` on the same engine reports only that call's
    packets and insertions, so derived rates like :attr:`python_pps` stay
    consistent with :attr:`elapsed_seconds`.  Cumulative state lives on
    ``engine.regulator.stats`` and the WSAF itself.
    """

    packets: int
    insertions: int
    elapsed_seconds: float
    regulator_stats: RegulatorStats
    wsaf: WSAFTable

    @property
    def regulation_rate(self) -> float:
        """WSAF insertions per processed packet (ips/pps)."""
        return self.insertions / self.packets if self.packets else 0.0

    @property
    def python_pps(self) -> float:
        """Measured pure-Python packet throughput (not the paper's Mpps —
        see the cycle cost model for the modelled figure)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.packets / self.elapsed_seconds


#: Monotone id for positioned streams that cover only part of the global
#: draw; their slices are gathers, not plain offsets, so their
#: kernel-cache stream tags must never alias across streams.
_STREAM_NONCE = iter(range(1 << 62)).__next__

#: Draw granularity for unknown-length streams.  Bits are drawn in
#: fixed-size blocks from one persistent generator and served out in
#: slices, so the choices a packet at stream offset ``k`` sees are a pure
#: function of the seed and ``k`` — independent of how the stream
#: happened to be chunked.  That makes unbounded ingestion
#: chunking-invariant, and it makes ``(generator state at block start,
#: entries consumed)`` a complete resume cursor for mid-flight
#: checkpoints (see :mod:`repro.state.snapshot`).
UNKNOWN_STREAM_BLOCK = 1 << 16


class _BitStream:
    """Per-packet random bit choices for one measurement stream.

    When the stream's total packet count is known up front, the whole
    sequence is drawn in one call — exactly the draw the whole-trace path
    makes — and handed out in slices, which is what makes chunked
    ingestion bit-identical (NumPy's narrow-dtype ``integers`` draws are
    buffered per call, so N small draws do *not* equal one big draw).
    Unknown-length streams draw fixed-size ``UNKNOWN_STREAM_BLOCK``
    blocks from one persistent generator instead: not identical to the
    known-length draw (the layers interleave differently), but a pure
    function of the stream offset, so every chunking of an unbounded
    stream sees the same bits and a checkpoint can resume the stream
    from the block cursor alone (:meth:`unknown_cursor`).

    ``positions`` opens a *positioned* stream: ``total`` is the global
    stream length the full draw covers, and the stream consumes only the
    packets at those global positions, in order.  A sharded worker whose
    packets sit at positions ``P`` of the global trace therefore sees
    exactly the bits the single-process run would hand those packets —
    the randomness half of the sharded-equals-single guarantee.
    """

    def __init__(
        self,
        config,
        flow_regulator: bool,
        total: "int | None",
        positions: "np.ndarray | None" = None,
    ) -> None:
        self._rng = np.random.default_rng(config.seed ^ 0xB17)
        self._vector_bits = config.vector_bits
        self._num_layers = config.num_layers
        self._flow_regulator = flow_regulator
        self._total = total
        self.positions = positions
        self.offset = 0
        #: Set once :meth:`take_at` hands out a non-contiguous gather; the
        #: cursor then no longer describes the consumed prefix, so the
        #: stream cannot be captured mid-flight (see ``capture_engine``).
        self.positional = False
        if positions is not None:
            if total is None:
                raise ConfigurationError(
                    "a positioned stream needs the global total to draw from"
                )
            self.positions = np.ascontiguousarray(positions, dtype=np.int64)
            if self.positions.size and (
                int(self.positions[0]) < 0
                or int(self.positions[-1]) >= total
            ):
                raise ConfigurationError(
                    f"stream positions must lie in [0, {total})"
                )
        if total is not None:
            self._draw(total)
            # A positioned stream's slices are gathers, not plain offsets
            # of the global draw, so they get their own cache identity —
            # unless it covers the whole stream (identity positions).
            covers_all = self.positions is None or len(self.positions) == total
            self._nonce = None if covers_all else _STREAM_NONCE()
        else:
            self._bits1 = self._bits2 = self._matrix = None
            self._nonce = None
        #: Generator state captured immediately before the current block
        #: draw (unknown-length streams only; None before the first draw).
        self._block_state = None
        #: Entries of the current block already handed out.
        self._block_used = 0

    @property
    def length(self) -> "int | None":
        """Packets this stream will hand out (None when unknown)."""
        if self.positions is not None:
            return len(self.positions)
        return self._total

    def _draw(self, count: int) -> None:
        if self._flow_regulator:
            self._bits1 = self._rng.integers(
                0, self._vector_bits, size=count, dtype=np.uint8
            )
            self._bits2 = self._rng.integers(
                0, self._vector_bits, size=count, dtype=np.uint8
            )
        else:
            self._matrix = self._rng.integers(
                0,
                self._vector_bits,
                size=(count, self._num_layers),
                dtype=np.int64,
            )

    def take(self, count: int):
        """The next ``count`` packets' bit choices, advancing the cursor."""
        begin = self.offset
        limit = self.length
        if limit is None:
            self.offset += count
            return self._take_unknown(count)
        if begin + count > limit:
            raise ConfigurationError(
                f"stream overran its declared total of {limit} "
                f"packets at offset {begin} (+{count})"
            )
        end = begin + count
        self.offset += count
        if self.positions is not None:
            index = self.positions[begin:end]
            if self._flow_regulator:
                return (self._bits1[index], self._bits2[index])
            return self._matrix[index]
        if self._flow_regulator:
            return (self._bits1[begin:end], self._bits2[begin:end])
        return self._matrix[begin:end]

    def _draw_block(self) -> None:
        # Record the generator state *before* drawing: (state, used) is
        # then the whole resume cursor for an unknown-length stream.
        self._block_state = self._rng.bit_generator.state
        self._draw(UNKNOWN_STREAM_BLOCK)
        self._block_used = 0

    def _take_unknown(self, count: int):
        """Assemble ``count`` entries from the fixed-size block draws.

        Requests that fit inside the current block come back as views;
        block-crossing requests are stitched into fresh arrays.  Either
        way the entries depend only on the stream offset, never on the
        chunk sizes that consumed it.
        """
        flow = self._flow_regulator
        block = UNKNOWN_STREAM_BLOCK
        if self._block_state is not None and self._block_used + count <= block:
            lo = self._block_used
            hi = lo + count
            self._block_used = hi
            if flow:
                return (self._bits1[lo:hi], self._bits2[lo:hi])
            return self._matrix[lo:hi]
        if flow:
            out1 = np.empty(count, dtype=np.uint8)
            out2 = np.empty(count, dtype=np.uint8)
        else:
            out = np.empty((count, self._num_layers), dtype=np.int64)
        filled = 0
        while filled < count:
            if self._block_state is None or self._block_used >= block:
                self._draw_block()
            step = min(count - filled, block - self._block_used)
            lo = self._block_used
            hi = lo + step
            if flow:
                out1[filled : filled + step] = self._bits1[lo:hi]
                out2[filled : filled + step] = self._bits2[lo:hi]
            else:
                out[filled : filled + step] = self._matrix[lo:hi]
            self._block_used = hi
            filled += step
        if flow:
            return (out1, out2)
        return out

    def unknown_cursor(self) -> "tuple[dict, int]":
        """``(generator state at block start, entries consumed)``.

        The randomness half of a mid-flight unknown-length snapshot:
        :meth:`seek_unknown` with these values (plus the offset) lands a
        fresh stream on the exact next bit this one would hand out.
        """
        if self._total is not None:
            raise ConfigurationError(
                "unknown_cursor only applies to unknown-length streams"
            )
        if self._block_state is None:
            return self._rng.bit_generator.state, 0
        return self._block_state, self._block_used

    def seek_unknown(self, rng_state: dict, block_used: int, offset: int) -> None:
        """Resume an unknown-length stream at a captured cursor."""
        if self._total is not None:
            raise ConfigurationError(
                "seek_unknown only applies to unknown-length streams"
            )
        if not 0 <= block_used <= UNKNOWN_STREAM_BLOCK:
            raise ConfigurationError(
                f"block cursor {block_used} outside [0, {UNKNOWN_STREAM_BLOCK}]"
            )
        self._rng.bit_generator.state = rng_state
        self._block_state = None
        self._block_used = 0
        self._bits1 = self._bits2 = self._matrix = None
        if block_used:
            self._draw_block()
            self._block_used = block_used
        self.offset = offset

    def take_at(self, positions: np.ndarray):
        """Bit choices for the packets at global ``positions`` (ascending).

        The streaming-sharded gather: a routed sub-chunk's packets sit at
        arbitrary global stream positions, so their bits are fancy-indexed
        out of the one global draw rather than sliced.  Requires a
        known-length stream (the draw must already cover every position)
        that was *not* opened with its own position list — the two
        position mechanisms compose with themselves, not each other.
        """
        if self._total is None:
            raise ConfigurationError(
                "positional bit gathers need a known-length stream "
                "(the global draw must exist up front)"
            )
        if self.positions is not None:
            raise ConfigurationError(
                "stream already has fixed positions; take_at cannot re-route it"
            )
        positions = np.ascontiguousarray(positions, dtype=np.int64)
        if positions.size and (
            int(positions[0]) < 0 or int(positions[-1]) >= self._total
        ):
            raise ConfigurationError(
                f"chunk positions must lie in [0, {self._total})"
            )
        self.positional = True
        self.offset += positions.size
        if self._flow_regulator:
            return (self._bits1[positions], self._bits2[positions])
        return self._matrix[positions]

    def tag(self, count: int) -> "tuple":
        """Kernel-cache stream tag for the next ``count``-packet slice."""
        if self._nonce is not None:
            return (self.offset, self._nonce)
        return (self.offset, self._total)

    def tag_at(self, positions: np.ndarray) -> "tuple":
        """Kernel-cache stream tag for a :meth:`take_at` gather.

        Deterministic across runs (routing is a pure function of the
        chunk and the router), so repeated sharded runs over the same
        chunk source share warm kernel caches.  The (first, last, count)
        triple pins the gather: a given routed sub-trace object always
        carries the same position vector.
        """
        if positions.size == 0:
            return ("pos", self._total, -1, -1, 0)
        return (
            "pos",
            self._total,
            int(positions[0]),
            int(positions[-1]),
            int(positions.size),
        )


@dataclass
class _StreamState:
    """Bookkeeping for one in-progress ingest stream."""

    bits: _BitStream
    packets: int = 0
    insertions: int = 0
    l1_saturations: int = 0
    elapsed: float = 0.0


class InstaMeasure:
    """Single-core InstaMeasure engine."""

    def __init__(
        self,
        config: "InstaMeasureConfig | None" = None,
        accountant: "AccessAccountant | None" = None,
    ) -> None:
        self.config = config or InstaMeasureConfig()
        if self.config.num_layers == 2:
            self.regulator: "FlowRegulator | MultiLayerRegulator" = FlowRegulator(
                self.config.l1_memory_bytes,
                vector_bits=self.config.vector_bits,
                word_bits=self.config.word_bits,
                saturation_fill=self.config.saturation_fill,
                seed=self.config.seed,
                accountant=accountant,
            )
        else:
            self.regulator = MultiLayerRegulator(
                self.config.l1_memory_bytes,
                num_layers=self.config.num_layers,
                vector_bits=self.config.vector_bits,
                word_bits=self.config.word_bits,
                saturation_fill=self.config.saturation_fill,
                seed=self.config.seed,
                accountant=accountant,
            )
        if self.config.engine == "batched":
            from repro.kernels.batched import supports_batched

            if not supports_batched(self):
                raise ConfigurationError(
                    "engine='batched' requires the 2-layer FlowRegulator "
                    "with vector_bits <= 8; use engine='auto' to fall back"
                )
        self.wsaf = build_wsaf_table(self.config, accountant)
        self.wsaf_engine = resolved_wsaf_engine(self.config)
        self.regulator_replay = resolved_regulator_replay(self.config)
        self._rng = random.Random(self.config.seed ^ 0x5EED)
        self._stream: "_StreamState | None" = None

    # -- per-packet path -----------------------------------------------------

    def process_packet(
        self,
        flow_key: int,
        size: int,
        timestamp: float,
        five_tuple_packed: "int | None" = None,
        bit1: "int | None" = None,
        bit2: "int | None" = None,
        on_accumulate: "AccumulateCallback | None" = None,
    ) -> "tuple[float, float] | None":
        """Process one packet.

        ``bit1``/``bit2`` override the per-packet random bit choices (used
        by tests to pin the randomness stream); by default they are drawn
        from the engine's own RNG.

        Returns:
            The flow's accumulated WSAF ``(packets, bytes)`` if this packet
            caused an accumulation, else ``None``.
        """
        bits = self.config.vector_bits
        if bit1 is None:
            bit1 = self._rng.randrange(bits)
        if bit2 is None:
            bit2 = self._rng.randrange(bits)
        if isinstance(self.regulator, FlowRegulator):
            est_pkt = self.regulator.process(flow_key, bit1, bit2)
        else:
            extra = [
                self._rng.randrange(bits)
                for _ in range(self.config.num_layers - 2)
            ]
            est_pkt = self.regulator.process(
                flow_key, [bit1, bit2][: self.config.num_layers] + extra
            )
        if est_pkt is None:
            return None
        est_byte = est_pkt * size
        totals = self.wsaf.accumulate(
            flow_key, est_pkt, est_byte, timestamp, five_tuple_packed
        )
        if on_accumulate is not None:
            on_accumulate(flow_key, totals[0], totals[1], timestamp)
        return totals

    # -- trace path ------------------------------------------------------------

    def process_trace(
        self,
        trace: Trace,
        on_accumulate: "AccumulateCallback | None" = None,
        bits=None,
        stream_tag=None,
    ) -> MeasurementResult:
        """Process every packet of ``trace`` in timestamp order.

        Equivalent to calling :meth:`process_packet` per packet; the loop is
        manually specialized (placement hoisted per flow, randomness drawn
        up front, sketch state bound to locals) for pure-Python speed.
        Unless ``config.engine`` says ``"scalar"``, supported
        configurations run the chunked batched kernel
        (:mod:`repro.kernels`) instead — bit-identical, several times
        faster.  Non-default regulator depths take a generic (slower) loop.

        ``bits``/``stream_tag`` are the streaming-ingest override: a
        pre-drawn slice of the stream's randomness (``(bits1, bits2)``
        uint8 arrays for the FlowRegulator, an ``(n, num_layers)`` int64
        matrix otherwise) plus a cache-disambiguation tag.  Callers other
        than :meth:`ingest` normally leave both unset and get the
        engine's own whole-trace draw.
        """
        if not isinstance(self.regulator, FlowRegulator):
            return self._process_trace_generic(trace, on_accumulate, bits)
        if self.config.engine != "scalar":
            from repro.kernels.batched import supports_batched

            if supports_batched(self):
                return self._process_trace_batched(
                    trace, on_accumulate, bits, stream_tag
                )
        num_packets = trace.num_packets
        regulator = self.regulator
        l1 = regulator.l1
        vector_bits = l1.vector_bits

        idx_by_flow, off_by_flow = l1.place_array(trace.flows.key64)
        idx_by_flow = idx_by_flow.tolist()
        off_by_flow = off_by_flow.tolist()
        keys = trace.flows.key64.tolist()
        packed_tuples = packed_five_tuples(trace.flows)

        if bits is None:
            # uint8 draws: the batched kernel replays this exact stream, and
            # the narrow dtype roughly halves generation cost for both paths.
            rng = np.random.default_rng(self.config.seed ^ 0xB17)
            bits1 = rng.integers(
                0, vector_bits, size=num_packets, dtype=np.uint8
            ).tolist()
            bits2 = rng.integers(
                0, vector_bits, size=num_packets, dtype=np.uint8
            ).tolist()
        else:
            bits1 = bits[0].tolist()
            bits2 = bits[1].tolist()

        flow_ids = trace.flow_ids.tolist()
        sizes = trace.sizes.tolist()
        timestamps = trace.timestamps.tolist()

        words1 = l1.words
        l2_words = [sketch.words for sketch in regulator.l2]
        bit_masks = l1._bit_masks
        window_masks = l1._window_masks
        noise_max = l1.noise_max
        decode = l1._decode_table
        accumulate = self.wsaf.accumulate

        packets = 0
        l1_saturations = 0
        insertions = 0
        l2_encoded = [0] * len(l2_words)
        l2_saturated = [0] * len(l2_words)

        start = time.perf_counter()
        for p in range(num_packets):
            flow = flow_ids[p]
            idx = idx_by_flow[flow]
            offset = off_by_flow[flow]
            window = window_masks[offset]
            masks = bit_masks[offset]
            packets += 1

            word = words1[idx] | masks[bits1[p]]
            zeros = vector_bits - (word & window).bit_count()
            if zeros > noise_max:
                words1[idx] = word
                continue
            # L1 saturated: recycle and push one bit into L2[noise].
            words1[idx] = word & ~window
            l1_saturations += 1
            words2 = l2_words[zeros]
            l2_encoded[zeros] += 1
            word2 = words2[idx] | masks[bits2[p]]
            zeros2 = vector_bits - (word2 & window).bit_count()
            if zeros2 > noise_max:
                words2[idx] = word2
                continue
            words2[idx] = word2 & ~window
            l2_saturated[zeros] += 1
            insertions += 1
            est_pkt = decode[zeros] * decode[zeros2]
            timestamp = timestamps[p]
            key = keys[flow]
            totals = accumulate(
                key, est_pkt, est_pkt * sizes[p], timestamp, packed_tuples[flow]
            )
            if on_accumulate is not None:
                on_accumulate(key, totals[0], totals[1], timestamp)
        elapsed = time.perf_counter() - start

        # Fold the loop's counters into the shared sketch/regulator stats so
        # both data paths leave identical state behind.
        stats = regulator.stats
        stats.packets += packets
        stats.l1_saturations += l1_saturations
        stats.insertions += insertions
        l1.packets_encoded += packets
        l1.saturations += l1_saturations
        for noise, sketch in enumerate(regulator.l2):
            sketch.packets_encoded += l2_encoded[noise]
            sketch.saturations += l2_saturated[noise]
        # The specialized loop bypasses per-access accounting; settle the
        # sketch accesses in bulk (WSAF accesses were recorded live by
        # accumulate).  One read+write per packet on L1, plus one per L1
        # saturation on the chosen L2 bank.
        if l1.accountant is not None:
            l1.accountant.record(l1.label, reads=packets, writes=packets)
            for noise, sketch in enumerate(regulator.l2):
                sketch.accountant.record(
                    sketch.label,
                    reads=l2_encoded[noise],
                    writes=l2_encoded[noise],
                )

        return MeasurementResult(
            packets=packets,
            insertions=insertions,
            elapsed_seconds=elapsed,
            regulator_stats=RegulatorStats(
                packets=packets,
                l1_saturations=l1_saturations,
                insertions=insertions,
            ),
            wsaf=self.wsaf,
        )

    def _process_trace_batched(
        self,
        trace: Trace,
        on_accumulate: "AccumulateCallback | None" = None,
        bits=None,
        stream_tag=None,
    ) -> MeasurementResult:
        """Chunked NumPy/LUT path (:mod:`repro.kernels`), bit-identical
        to the scalar loop."""
        from repro.kernels.batched import process_trace_batched

        regulator = self.regulator
        l1 = regulator.l1

        start = time.perf_counter()
        counters = process_trace_batched(
            self,
            trace,
            on_accumulate=on_accumulate,
            delegate=self.wsaf_engine == "batched",
            regulator_replay=self.regulator_replay,
            bits=bits,
            stream_tag=stream_tag,
        )
        elapsed = time.perf_counter() - start

        # Fold the kernel's counters into the shared sketch/regulator stats
        # and settle accounting in bulk, mirroring the scalar fast path.
        stats = regulator.stats
        stats.packets += counters.packets
        stats.l1_saturations += counters.l1_saturations
        stats.insertions += counters.insertions
        l1.packets_encoded += counters.packets
        l1.saturations += counters.l1_saturations
        for noise, sketch in enumerate(regulator.l2):
            sketch.packets_encoded += counters.l2_encoded[noise]
            sketch.saturations += counters.l2_saturated[noise]
        if l1.accountant is not None:
            l1.accountant.record(
                l1.label, reads=counters.packets, writes=counters.packets
            )
            for noise, sketch in enumerate(regulator.l2):
                sketch.accountant.record(
                    sketch.label,
                    reads=counters.l2_encoded[noise],
                    writes=counters.l2_encoded[noise],
                )

        return MeasurementResult(
            packets=counters.packets,
            insertions=counters.insertions,
            elapsed_seconds=elapsed,
            regulator_stats=RegulatorStats(
                packets=counters.packets,
                l1_saturations=counters.l1_saturations,
                insertions=counters.insertions,
            ),
            wsaf=self.wsaf,
        )

    def _process_trace_generic(
        self,
        trace: Trace,
        on_accumulate: "AccumulateCallback | None" = None,
        bits=None,
    ) -> MeasurementResult:
        """Trace loop for :class:`MultiLayerRegulator` depths (1, 3, 4)."""
        regulator = self.regulator
        num_packets = trace.num_packets
        vector_bits = self.config.vector_bits
        num_layers = self.config.num_layers

        idx_by_flow, off_by_flow = regulator.l1.place_array(trace.flows.key64)
        idx_by_flow = idx_by_flow.tolist()
        off_by_flow = off_by_flow.tolist()
        keys = trace.flows.key64.tolist()
        packed_tuples = packed_five_tuples(trace.flows)

        if bits is None:
            rng = np.random.default_rng(self.config.seed ^ 0xB17)
            bit_choices = rng.integers(
                0, vector_bits, size=(num_packets, num_layers), dtype=np.int64
            ).tolist()
        else:
            bit_choices = bits.tolist()
        flow_ids = trace.flow_ids.tolist()
        sizes = trace.sizes.tolist()
        timestamps = trace.timestamps.tolist()
        process_at = regulator.process_at
        accumulate = self.wsaf.accumulate

        stats = regulator.stats
        packets_before = stats.packets
        saturations_before = stats.l1_saturations
        insertions_before = stats.insertions

        start = time.perf_counter()
        for p in range(num_packets):
            flow = flow_ids[p]
            est_pkt = process_at(
                idx_by_flow[flow], off_by_flow[flow], bit_choices[p]
            )
            if est_pkt is None:
                continue
            timestamp = timestamps[p]
            key = keys[flow]
            totals = accumulate(
                key, est_pkt, est_pkt * sizes[p], timestamp, packed_tuples[flow]
            )
            if on_accumulate is not None:
                on_accumulate(key, totals[0], totals[1], timestamp)
        elapsed = time.perf_counter() - start

        run_stats = RegulatorStats(
            packets=stats.packets - packets_before,
            l1_saturations=stats.l1_saturations - saturations_before,
            insertions=stats.insertions - insertions_before,
        )
        return MeasurementResult(
            packets=run_stats.packets,
            insertions=run_stats.insertions,
            elapsed_seconds=elapsed,
            regulator_stats=run_stats,
            wsaf=self.wsaf,
        )

    # -- streaming ingestion (pipeline protocol) ---------------------------------

    def begin_stream(
        self,
        total: "int | None" = None,
        positions: "np.ndarray | None" = None,
    ) -> None:
        """Open an ingest stream explicitly, before the first chunk.

        Normally :meth:`ingest` opens the stream lazily from the first
        chunk's metadata; sharded workers and snapshot restore open it up
        front instead — ``total`` is the *global* stream length and
        ``positions`` (optional) the global packet positions this engine
        will consume, which pins the randomness to the global draw (see
        :class:`_BitStream`).
        """
        if self._stream is not None:
            raise ConfigurationError(
                "a stream is already in progress; finalize() it first"
            )
        self._stream = _StreamState(
            bits=_BitStream(
                self.config,
                isinstance(self.regulator, FlowRegulator),
                total,
                positions=positions,
            )
        )

    def snapshot(self, key_range: "tuple[int, int] | None" = None):
        """This engine's complete state as a serializable
        :class:`~repro.state.snapshot.MeasurementSnapshot`.

        Captures regulator words/counters, every WSAF record with its
        bookkeeping, and — when a known-length stream is in progress —
        the RNG cursor, so ``InstaMeasure.from_snapshot(engine.snapshot())``
        resumes bit-identically.  See :mod:`repro.state`.
        """
        from repro.state.snapshot import capture_engine

        return capture_engine(self, key_range=key_range)

    @classmethod
    def from_snapshot(
        cls, snapshot, accountant: "AccessAccountant | None" = None
    ) -> "InstaMeasure":
        """Rebuild an engine from :meth:`snapshot` output (exact restore)."""
        from repro.state.snapshot import restore_engine

        return restore_engine(snapshot, accountant=accountant)

    def ingest(
        self,
        chunk,
        on_accumulate: "AccumulateCallback | None" = None,
        positions: "np.ndarray | None" = None,
    ) -> MeasurementResult:
        """Process one chunk of a stream, bit-identical to the whole trace.

        Implements the :class:`repro.pipeline.protocol.StreamingMeasurer`
        protocol.  The first chunk fixes the stream's randomness: when the
        source knows the stream length up front, the full bit sequence is
        drawn once — the exact draw :meth:`process_trace` would make on
        the concatenated trace — and consumed in slices, so regulator,
        WSAF, and kernel-cache state cross chunk boundaries with the same
        counters, records, and event order as the whole-trace path.

        ``positions`` is the streaming-sharded entry point: the chunk's
        packets sit at those global stream positions (ascending), and
        their bits are gathered out of the global draw rather than taken
        from the cursor — exactly the bits a single-process run would
        hand those packets.  Requires an explicitly opened known-length
        stream (:meth:`begin_stream` with ``total``).
        """
        from repro.pipeline.protocol import chunk_total, chunk_trace

        trace = chunk_trace(chunk)
        if self._stream is None:
            if positions is not None:
                raise ConfigurationError(
                    "positional ingest needs an explicit begin_stream(total=...)"
                )
            self._stream = _StreamState(
                bits=_BitStream(
                    self.config,
                    isinstance(self.regulator, FlowRegulator),
                    chunk_total(chunk),
                )
            )
        stream = self._stream
        count = trace.num_packets
        if positions is not None:
            positions = np.ascontiguousarray(positions, dtype=np.int64)
            if positions.size != count:
                raise ConfigurationError(
                    f"chunk has {count} packets but {positions.size} positions"
                )
            tag = stream.bits.tag_at(positions)
            bits = stream.bits.take_at(positions)
        elif stream.bits._total is not None and (
            stream.bits.offset == 0 and count == stream.bits._total
        ):
            # Single-chunk stream: same bits as a direct process_trace
            # call, so share its kernel-cache entries.
            tag = None
            bits = stream.bits.take(count)
        else:
            tag = stream.bits.tag(count)
            bits = stream.bits.take(count)
        result = self.process_trace(
            trace, on_accumulate=on_accumulate, bits=bits, stream_tag=tag
        )
        stream.packets += result.packets
        stream.insertions += result.insertions
        stream.l1_saturations += result.regulator_stats.l1_saturations
        stream.elapsed += result.elapsed_seconds
        return result

    def finalize(self) -> MeasurementResult:
        """End the current stream and return its aggregate result.

        Resets only the stream bookkeeping; sketch and WSAF state stay
        live, so :meth:`estimates` and :meth:`estimates_for` read the
        finished measurement and a new stream continues on warm state.
        """
        stream = self._stream
        self._stream = None
        if stream is None:
            return MeasurementResult(
                packets=0,
                insertions=0,
                elapsed_seconds=0.0,
                regulator_stats=RegulatorStats(),
                wsaf=self.wsaf,
            )
        return MeasurementResult(
            packets=stream.packets,
            insertions=stream.insertions,
            elapsed_seconds=stream.elapsed,
            regulator_stats=RegulatorStats(
                packets=stream.packets,
                l1_saturations=stream.l1_saturations,
                insertions=stream.insertions,
            ),
            wsaf=self.wsaf,
        )

    def estimates(
        self, flow_keys=None
    ) -> "dict[int, tuple[float, float]]":
        """WSAF per-flow ``{key64: (packets, bytes)}`` estimates."""
        return self.wsaf.estimates(flow_keys=flow_keys)

    # -- long-run operation ------------------------------------------------------

    def rotate(
        self, now: float, wsaf_timeout: "float | None" = None
    ) -> "dict[int, tuple[float, float]]":
        """Periodic maintenance for multi-day runs.

        Snapshots the WSAF estimates, bulk-expires entries idle for longer
        than ``wsaf_timeout`` (defaults to the configured ``gc_timeout``),
        and resets the regulator's statistics window (sketch *contents* are
        left alone — retained counts must survive, or flows straddling the
        rotation would lose packets).

        Returns the snapshot taken before expiry, so callers can archive
        per-epoch measurements the way the paper's long campus run reports
        per-interval results.
        """
        snapshot = self.wsaf.estimates()
        timeout = wsaf_timeout if wsaf_timeout is not None else self.config.gc_timeout
        if timeout is not None:
            self.wsaf.expire_older_than(now - timeout)
        self.regulator.stats = RegulatorStats()
        return snapshot

    # -- results ---------------------------------------------------------------

    def estimates_for(
        self, trace: Trace, include_residual: bool = False
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-flow (packets, bytes) estimates aligned with ``trace.flows``.

        Flows absent from the WSAF estimate 0.  With ``include_residual``,
        the regulator's retained-but-unflushed residual is added (evaluation
        aid; see :meth:`FlowRegulator.residual_estimate`).
        """
        estimates_arrays = getattr(self.wsaf, "estimates_arrays", None)
        if estimates_arrays is not None:
            # Batched WSAF: one vectorized probe, no per-flow dict walk.
            est_packets, est_bytes = estimates_arrays(trace.flows.key64)
        else:
            est_packets = np.zeros(trace.num_flows)
            est_bytes = np.zeros(trace.num_flows)
            table = self.wsaf.estimates(flow_keys=trace.flows.key64)
            for flow_index in range(trace.num_flows):
                record = table.get(int(trace.flows.key64[flow_index]))
                if record is not None:
                    est_packets[flow_index] = record[0]
                    est_bytes[flow_index] = record[1]
        if include_residual:
            residual = self.regulator.residual_estimate
            keys = trace.flows.key64.tolist()
            est_packets += np.array([residual(key) for key in keys])
        return est_packets, est_bytes


def run_measurement(
    trace: Trace,
    config: "InstaMeasureConfig | None" = None,
    on_accumulate: "AccumulateCallback | None" = None,
) -> "tuple[InstaMeasure, MeasurementResult]":
    """Convenience one-shot: build an engine, process ``trace``, return both."""
    engine = InstaMeasure(config)
    result = engine.process_trace(trace, on_accumulate=on_accumulate)
    return engine, result
