"""WSAF — the In-DRAM Working Set of Active Flows (Section III-B).

An open-addressing hash table of flow records, sized in powers of two and
probed with the paper's quadratic sequence ``h(k, i) = hash(k) + 0.5·i +
0.5·i² mod m``.  Triangular-number probing on a power-of-two table visits
every slot exactly once over ``i ∈ [0, m)`` (property-tested), which is why
the paper calls out these "specific parameters … for probing all table
positions in [0, m-1] to achieve a high load factor".

Because mice flows leak through the FlowRegulator probabilistically, the
table evicts under pressure with a *probe-limit second-chance* policy:
probing stops after ``probe_limit`` slots; if neither the key nor a free
slot was found, entries in the probe window that have a second-chance bit
get it cleared and are spared, and the smallest unspared entry (a mouse) is
evicted.  Expired entries are garbage-collected opportunistically during
probing, as the paper describes ("when a new flow is inserted, and an empty
slot is searched by hash chaining, garbage collection is performed").

Each record mirrors the paper's 33-byte layout: flow-ID hash, packet
counter, byte counter, timestamp, and the 104-bit 5-tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.memmodel import AccessAccountant

#: Bytes per table entry in the paper's layout (Section IV-D).
ENTRY_BYTES = 33


@dataclass
class WSAFEntry:
    """A materialized view of one WSAF record."""

    key: int
    packets: float
    bytes: float
    last_update: float
    five_tuple_packed: "int | None"


class WSAFTable:
    """The working set of active flows.

    Args:
        num_entries: table capacity; must be a power of two.
        probe_limit: maximum probed slots per operation (the paper's probe
            limit).
        gc_timeout: seconds of inactivity after which an entry may be
            reclaimed during probing; ``None`` disables garbage collection.
        accountant: optional memory-access accountant (the WSAF is the
            structure whose DRAM accesses the FlowRegulator exists to
            reduce, so experiments cost it explicitly).
        eviction_policy: what to do when the probe window is full —
            ``"second-chance"`` (the paper's design: spare recently-updated
            entries once, then evict the smallest mouse), ``"min"`` (always
            evict the smallest, no second chances), or ``"reject"`` (never
            evict; drop the incoming estimate).  The non-default policies
            exist for the ablation study.
    """

    EVICTION_POLICIES = ("second-chance", "min", "reject")

    def __init__(
        self,
        num_entries: int = 1 << 20,
        probe_limit: int = 16,
        gc_timeout: "float | None" = None,
        accountant: "AccessAccountant | None" = None,
        eviction_policy: str = "second-chance",
    ) -> None:
        if num_entries < 2 or num_entries & (num_entries - 1):
            raise ConfigurationError(
                f"num_entries must be a power of two >= 2, got {num_entries}"
            )
        if probe_limit < 1:
            raise ConfigurationError(f"probe_limit must be >= 1, got {probe_limit}")
        if gc_timeout is not None and gc_timeout <= 0:
            raise ConfigurationError("gc_timeout must be positive or None")
        if eviction_policy not in self.EVICTION_POLICIES:
            raise ConfigurationError(
                f"unknown eviction_policy {eviction_policy!r}; "
                f"known: {self.EVICTION_POLICIES}"
            )
        self.eviction_policy = eviction_policy
        self.num_entries = num_entries
        self.probe_limit = min(probe_limit, num_entries)
        self.gc_timeout = gc_timeout
        self.accountant = accountant
        self._mask = num_entries - 1

        # Parallel columns; key 0 in an unoccupied slot is the empty marker.
        # ``_occupied`` answers per-slot probes; ``_occupied_slots`` mirrors
        # it as a set so snapshots/sweeps are O(size), not O(num_entries).
        self._occupied = [False] * num_entries
        self._occupied_slots: "set[int]" = set()
        self._keys = [0] * num_entries
        self._packets = [0.0] * num_entries
        self._bytes = [0.0] * num_entries
        self._timestamps = [0.0] * num_entries
        self._chance = [False] * num_entries
        self._tuples: "list[int | None]" = [None] * num_entries

        self.size = 0
        self.insertions = 0
        self.updates = 0
        self.evictions = 0
        self.gc_reclaimed = 0
        self.rejected = 0

    # -- probing -----------------------------------------------------------

    def probe_sequence(self, key: int, length: "int | None" = None) -> Iterator[int]:
        """Slot indices visited for ``key``: h + (i + i²)/2 mod m."""
        length = self.probe_limit if length is None else length
        base = key & self._mask
        for i in range(length):
            yield (base + ((i + i * i) >> 1)) & self._mask

    def _expired(self, slot: int, now: float) -> bool:
        return (
            self.gc_timeout is not None
            and now - self._timestamps[slot] > self.gc_timeout
        )

    # -- operations ----------------------------------------------------------

    def accumulate(
        self,
        key: int,
        est_packets: float,
        est_bytes: float,
        timestamp: float,
        five_tuple_packed: "int | None" = None,
    ) -> "tuple[float, float]":
        """Add a decoded estimate to ``key``'s record, inserting if needed.

        This is the paper's ``ACC_WSAF(f, est_pkt, est_byte)`` (Algorithm 1
        line 16).  Returns the flow's accumulated ``(packets, bytes)`` after
        the update, which heavy-hitter detection thresholds against.
        """
        # The probe walk is inlined (identical to probe_sequence) — this is
        # the hottest shared path of both engines.
        mask = self._mask
        base = key & mask
        occupied = self._occupied
        keys = self._keys
        probes = 0
        first_free = -1
        for i in range(self.probe_limit):
            slot = (base + ((i + i * i) >> 1)) & mask
            probes += 1
            if occupied[slot]:
                if keys[slot] == key:
                    if self.accountant is not None:
                        self.accountant.record("wsaf", reads=probes, writes=1)
                    self._packets[slot] += est_packets
                    self._bytes[slot] += est_bytes
                    self._timestamps[slot] = timestamp
                    self._chance[slot] = True
                    self.updates += 1
                    return self._packets[slot], self._bytes[slot]
                if first_free < 0 and self._expired(slot, timestamp):
                    # Opportunistic garbage collection during hash chaining.
                    self._clear(slot)
                    self.gc_reclaimed += 1
                    first_free = slot
            elif first_free < 0:
                first_free = slot

        if first_free < 0:
            first_free = self._find_victim(key, timestamp)
        if first_free < 0:
            # Pathological: every window entry is a heavier flow that just
            # received its second chance.  Drop the estimate (counted).
            self.rejected += 1
            if self.accountant is not None:
                self.accountant.record("wsaf", reads=probes)
            return 0.0, 0.0

        if self.accountant is not None:
            self.accountant.record("wsaf", reads=probes, writes=1)
        self._occupied[first_free] = True
        self._occupied_slots.add(first_free)
        self._keys[first_free] = key
        self._packets[first_free] = est_packets
        self._bytes[first_free] = est_bytes
        self._timestamps[first_free] = timestamp
        self._chance[first_free] = True
        self._tuples[first_free] = five_tuple_packed
        self.size += 1
        self.insertions += 1
        return est_packets, est_bytes

    def accumulate_batch(
        self,
        events,
        on_accumulate=None,
    ) -> "list[tuple[float, float]]":
        """Apply many :meth:`accumulate` events in order.

        ``events`` is an iterable of ``(key, est_packets, est_bytes,
        timestamp, five_tuple_packed)`` tuples — the shape the batched
        kernel and the multi-core manager produce.  ``on_accumulate``, if
        given, is fired after each event with ``(key, total_packets,
        total_bytes, timestamp)``.  Returns the per-event running totals.
        """
        accumulate = self.accumulate
        totals: "list[tuple[float, float]]" = []
        for key, est_packets, est_bytes, timestamp, five_tuple_packed in events:
            result = accumulate(
                key, est_packets, est_bytes, timestamp, five_tuple_packed
            )
            if on_accumulate is not None:
                on_accumulate(key, result[0], result[1], timestamp)
            totals.append(result)
        return totals

    def _find_victim(self, key: int, now: float) -> int:
        """Free a slot in ``key``'s probe window per the eviction policy.

        Expired entries are always reclaimed first (garbage collection).
        Under ``second-chance``, entries whose chance bit is set are spared
        once (bit cleared); if every entry was spared, the insert is
        rejected (returns -1) and will win a slot on a later attempt once
        chance bits have decayed.  Under ``min``, the smallest entry is
        evicted unconditionally.  Under ``reject``, nothing is evicted.
        """
        victim = -1
        victim_packets = float("inf")
        for slot in self.probe_sequence(key):
            if self._expired(slot, now):
                self._clear(slot)
                self.gc_reclaimed += 1
                return slot
            if self.eviction_policy == "reject":
                continue
            if self.eviction_policy == "second-chance" and self._chance[slot]:
                self._chance[slot] = False
                continue
            if self._packets[slot] < victim_packets:
                victim = slot
                victim_packets = self._packets[slot]
        if victim >= 0:
            self._clear(victim)
            self.evictions += 1
        return victim

    def _clear(self, slot: int) -> None:
        self._occupied[slot] = False
        self._occupied_slots.discard(slot)
        self._keys[slot] = 0
        self._packets[slot] = 0.0
        self._bytes[slot] = 0.0
        self._timestamps[slot] = 0.0
        self._chance[slot] = False
        self._tuples[slot] = None
        self.size -= 1

    def lookup(self, key: int) -> "WSAFEntry | None":
        """The record for ``key``, or ``None`` if absent."""
        for slot in self.probe_sequence(key):
            if self._occupied[slot] and self._keys[slot] == key:
                return WSAFEntry(
                    key=key,
                    packets=self._packets[slot],
                    bytes=self._bytes[slot],
                    last_update=self._timestamps[slot],
                    five_tuple_packed=self._tuples[slot],
                )
        return None

    def remove(self, key: int) -> "WSAFEntry | None":
        """Take ``key``'s record out of the table, returning it (or ``None``).

        The tiered backend's promotion primitive: a flow moving into the
        hot cache must leave the backing table so the two tiers stay
        disjoint.  The removal is *not* an eviction — no counter moves —
        and costs one probe walk plus one write when the key is found.
        """
        probes = 0
        for slot in self.probe_sequence(key):
            probes += 1
            if self._occupied[slot] and self._keys[slot] == key:
                entry = WSAFEntry(
                    key=key,
                    packets=self._packets[slot],
                    bytes=self._bytes[slot],
                    last_update=self._timestamps[slot],
                    five_tuple_packed=self._tuples[slot],
                )
                self._clear(slot)
                if self.accountant is not None:
                    self.accountant.record("wsaf", reads=probes, writes=1)
                return entry
        if self.accountant is not None:
            self.accountant.record("wsaf", reads=probes)
        return None

    def place_record(
        self,
        key: int,
        packets: float,
        bytes_: float,
        timestamp: float,
        chance: bool,
        five_tuple_packed: "int | None",
        now: float,
    ) -> bool:
        """Insert a fully-formed record without event counters.

        The inverse of :meth:`remove` — the tiered backend's demotion
        primitive (and a building block for restores): the record already
        exists logically, so ``insertions``/``updates`` must not move.
        Probes the normal window (reclaiming expired entries on the way);
        a full window falls back to the eviction policy, which *does*
        count — evicting a resident mouse for a demoted flow is a real
        eviction.  Returns ``False`` (counted in ``rejected``) when the
        policy yields no slot and the record is dropped.
        """
        probes = 0
        free = -1
        for slot in self.probe_sequence(key):
            probes += 1
            if not self._occupied[slot]:
                free = slot
                break
            if self._expired(slot, now):
                self._clear(slot)
                self.gc_reclaimed += 1
                free = slot
                break
        if free < 0:
            free = self._find_victim(key, now)
        if self.accountant is not None:
            self.accountant.record(
                "wsaf", reads=probes, writes=1 if free >= 0 else 0
            )
        if free < 0:
            self.rejected += 1
            return False
        self._occupied[free] = True
        self._occupied_slots.add(free)
        self._keys[free] = key
        self._packets[free] = packets
        self._bytes[free] = bytes_
        self._timestamps[free] = timestamp
        self._chance[free] = chance
        self._tuples[free] = five_tuple_packed
        self.size += 1
        return True

    def entries(self) -> Iterator[WSAFEntry]:
        """All occupied records, in table order (O(size), not O(capacity))."""
        for slot in sorted(self._occupied_slots):
            yield WSAFEntry(
                key=self._keys[slot],
                packets=self._packets[slot],
                bytes=self._bytes[slot],
                last_update=self._timestamps[slot],
                five_tuple_packed=self._tuples[slot],
            )

    def estimates(
        self, flow_keys=None
    ) -> "dict[int, tuple[float, float]]":
        """Mapping of flow key → (packets, bytes).

        With ``flow_keys`` (an iterable of keys), only those keys are
        probed — O(len(flow_keys) · probe_limit) instead of a full-table
        snapshot — and keys absent from the table are omitted.  Detection
        apps polling a watch list every window tick use the filtered form.
        """
        if flow_keys is not None:
            found: "dict[int, tuple[float, float]]" = {}
            occupied = self._occupied
            keys = self._keys
            for key in flow_keys:
                key = int(key)
                for slot in self.probe_sequence(key):
                    if occupied[slot] and keys[slot] == key:
                        found[key] = (self._packets[slot], self._bytes[slot])
                        break
            return found
        return {
            self._keys[slot]: (self._packets[slot], self._bytes[slot])
            for slot in sorted(self._occupied_slots)
        }

    # -- state transfer --------------------------------------------------------

    def export_state(self):
        """The table's records and counters as a serializable
        :class:`~repro.state.snapshot.WSAFState` (columns in slot order)."""
        import numpy as np

        from repro.state.snapshot import WSAFState, pack_tuple_columns

        slots = sorted(self._occupied_slots)
        n = len(slots)
        lo, hi, present = pack_tuple_columns([self._tuples[s] for s in slots])
        return WSAFState(
            num_entries=self.num_entries,
            probe_limit=self.probe_limit,
            eviction_policy=self.eviction_policy,
            size=self.size,
            insertions=self.insertions,
            updates=self.updates,
            evictions=self.evictions,
            gc_reclaimed=self.gc_reclaimed,
            rejected=self.rejected,
            slots=np.array(slots, dtype=np.int64),
            keys=np.fromiter(
                (self._keys[s] for s in slots), dtype=np.uint64, count=n
            ),
            packets=np.fromiter(
                (self._packets[s] for s in slots), dtype=np.float64, count=n
            ),
            bytes=np.fromiter(
                (self._bytes[s] for s in slots), dtype=np.float64, count=n
            ),
            timestamps=np.fromiter(
                (self._timestamps[s] for s in slots), dtype=np.float64, count=n
            ),
            chance=np.fromiter(
                (self._chance[s] for s in slots), dtype=bool, count=n
            ),
            tuple_lo=lo,
            tuple_hi=hi,
            tuple_present=present,
        )

    def _probe_place(self, key: int) -> int:
        """First free slot of ``key``'s full-length probe sequence.

        Restore-time placement for records whose exact slot is unknown
        (merged snapshots, capacity changes, flushed cache tiers); raises
        when the table is completely full along the sequence.
        """
        from repro.errors import SnapshotError

        for probe in self.probe_sequence(key, length=self.num_entries):
            if not self._occupied[probe]:
                return probe
        raise SnapshotError(f"no free slot for restored key {key:#x}")

    def load_state(self, state) -> None:
        """Replace the table's contents from an :meth:`export_state` snapshot.

        Policy and probe geometry must match (they shape every future
        probe); capacity may differ — records keep their exact slot when
        it is valid and free, and re-probe into the first free slot of
        their full-length probe sequence otherwise (merged snapshots mark
        contested placements slot ``-1``).  Counters restore wholesale.

        A snapshot taken from a tiered backend carries its hot-cache
        records in a ``tier`` section; loading one here flushes those
        records into the table (probe-placed — they never had slots), so
        a flat restore of a tiered capture loses no counts.
        """
        from repro.errors import SnapshotError

        if state.probe_limit != self.probe_limit:
            raise SnapshotError(
                f"snapshot probe_limit {state.probe_limit} != table "
                f"probe_limit {self.probe_limit}"
            )
        if state.eviction_policy != self.eviction_policy:
            raise SnapshotError(
                f"snapshot eviction_policy {state.eviction_policy!r} != "
                f"table eviction_policy {self.eviction_policy!r}"
            )
        tier = getattr(state, "tier", None)
        tier_records = 0 if tier is None else tier.num_records
        if state.num_records + tier_records > self.num_entries:
            raise SnapshotError(
                f"snapshot holds {state.num_records + tier_records} records; "
                f"table capacity is {self.num_entries}"
            )
        for slot in sorted(self._occupied_slots):
            self._clear(slot)
        exact = state.num_entries == self.num_entries
        tuples = state.tuples()
        for i, (slot, key) in enumerate(
            zip(state.slots.tolist(), state.keys.tolist())
        ):
            if not (exact and 0 <= slot < self.num_entries) or self._occupied[slot]:
                slot = self._probe_place(key)
            self._occupied[slot] = True
            self._occupied_slots.add(slot)
            self._keys[slot] = key
            self._packets[slot] = float(state.packets[i])
            self._bytes[slot] = float(state.bytes[i])
            self._timestamps[slot] = float(state.timestamps[i])
            self._chance[slot] = bool(state.chance[i])
            self._tuples[slot] = tuples[i]
        if tier_records:
            tier_tuples = tier.tuples()
            for i, key in enumerate(tier.keys.tolist()):
                slot = self._probe_place(key)
                self._occupied[slot] = True
                self._occupied_slots.add(slot)
                self._keys[slot] = key
                self._packets[slot] = float(tier.packets[i])
                self._bytes[slot] = float(tier.bytes[i])
                self._timestamps[slot] = float(tier.timestamps[i])
                self._chance[slot] = bool(tier.chance[i])
                self._tuples[slot] = tier_tuples[i]
        self.size = state.num_records + tier_records
        self.insertions = state.insertions
        self.updates = state.updates
        self.evictions = state.evictions
        self.gc_reclaimed = state.gc_reclaimed
        self.rejected = state.rejected

    # -- lifecycle -------------------------------------------------------------

    def expire_older_than(self, cutoff: float) -> int:
        """Bulk-reclaim entries last updated before ``cutoff``.

        The opportunistic probe-time GC only touches slots it happens to
        walk; long-running deployments (the 113-hour campus run) can sweep
        periodically with this instead.  Returns the number reclaimed.
        """
        reclaimed = 0
        for slot in sorted(self._occupied_slots):
            if self._timestamps[slot] < cutoff:
                self._clear(slot)
                reclaimed += 1
        self.gc_reclaimed += reclaimed
        return reclaimed

    def active_entries(self, now: float, window: float) -> Iterator[WSAFEntry]:
        """Records updated within the last ``window`` seconds.

        The "working set of *active* flows" view: what a TE or detection
        application should consider live at time ``now``.
        """
        if window <= 0:
            raise ConfigurationError("window must be positive")
        for entry in self.entries():
            if now - entry.last_update <= window:
                yield entry

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    @property
    def load_factor(self) -> float:
        return self.size / self.num_entries

    def memory_bytes(self) -> int:
        """DRAM footprint under the paper's 33-byte entry layout."""
        return self.num_entries * ENTRY_BYTES

    def counter_memory_bytes(self) -> int:
        """Bytes the per-entry packet+byte counters occupy (two 64-bit
        counters of the 33-byte layout; compressed backends shrink this)."""
        return self.num_entries * 16
