"""WSAF storage backends — the seam behind the working-set table.

The engine talks to its working set through a narrow protocol
(:class:`WSAFStorage`): per-event accumulation, batch accumulation,
lookups/estimates, sweeps, and state transfer.  Everything behind that
seam is a *backend*, selected by ``InstaMeasureConfig.wsaf_backend``:

``flat``
    The paper's table as-is — the scalar :class:`~repro.core.wsaf.
    WSAFTable` or the batch-probed :class:`~repro.kernels.wsaf_batched.
    BatchedWSAFTable`, chosen by the ``wsaf_engine`` knob exactly as
    before.  Bit-identical to the pre-backend behaviour by contract.

``tiered``
    A PriMe-style two-tier store (:class:`~repro.core.wsaf_tiered.
    TieredWSAFTable`): a small exact hot cache (modelled in SRAM, label
    ``"wsaf.cache"``) in front of the full DRAM table, with periodic
    promote/demote keyed on recent hit counts.  Same estimates semantics,
    different event order and memory cost profile — the point is that the
    skewed head of the flow distribution stops paying DRAM latency.

``icebuckets``
    An ICE-Buckets-style compressed-counter table
    (:class:`~repro.core.wsaf_icebuckets.IceBucketsWSAFTable`): packet
    and byte counters quantize to ``ice_counter_bits``-bit integers under
    per-bucket shared scale exponents (upscale-on-overflow), trading a
    bounded relative error for a measured counter-memory reduction.

Every backend composes with both WSAF engines: the ``wsaf_engine`` knob
picks scalar columns or the batch-probed cohort kernel independently of
the storage algorithm (``tiered`` wraps a batched backing table and
vectorizes its cache probe; ``icebuckets`` has a batch-probed subclass
with quantized vectorized adds).  Scalar and batched are bit-identical
for every backend; only throughput differs.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

from repro.memmodel import SRAM, AccessAccountant, MemoryTechnology

#: Valid ``InstaMeasureConfig.wsaf_backend`` values.
WSAF_BACKEND_CHOICES = ("flat", "tiered", "icebuckets")


@runtime_checkable
class WSAFStorage(Protocol):
    """What the engine (and the state layer) require of a working set.

    Structural protocol — backends are not required to inherit anything,
    only to provide this surface.  Counter attributes (``size``,
    ``insertions``, ``updates``, ``evictions``, ``gc_reclaimed``,
    ``rejected``) and the geometry attributes (``num_entries``,
    ``probe_limit``, ``eviction_policy``, ``gc_timeout``) are part of the
    seam as well; backends with extra vectorized entry points (e.g.
    ``accumulate_batch_arrays`` / ``estimates_arrays`` on the batched
    flat table) advertise them by simply having the attribute — callers
    feature-detect with ``getattr``.
    """

    def accumulate(
        self,
        key: int,
        est_packets: float,
        est_bytes: float,
        timestamp: float,
        five_tuple_packed: "int | None" = None,
    ) -> "tuple[float, float]":
        """Fold one regulated insertion into ``key``'s record; return totals."""
        ...

    def accumulate_batch(self, events, on_accumulate=None):
        """Accumulate a chunk of ``(key, pkts, bytes, ts, tuple)`` events."""
        ...

    def lookup(self, key: int):
        """The live record for ``key``, or ``None``."""
        ...

    def entries(self) -> Iterator:
        """Iterate every occupied record in a backend-deterministic order."""
        ...

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Per-flow ``(packets, bytes)`` estimates, optionally filtered."""
        ...

    def export_state(self):
        """Serializable :class:`~repro.state.snapshot.WSAFState` snapshot."""
        ...

    def load_state(self, state) -> None:
        """Restore from an :meth:`export_state` snapshot."""
        ...

    def expire_older_than(self, cutoff: float) -> int:
        """Bulk-reclaim records idle since before ``cutoff``; return count."""
        ...

    def active_entries(self, now: float, window: float) -> Iterator:
        """Records updated within ``window`` seconds of ``now``."""
        ...

    def memory_bytes(self) -> int:
        """Modelled memory footprint of the backend (capacity-based)."""
        ...


def default_technologies() -> "dict[str, MemoryTechnology]":
    """The per-label technology map the tiered backend is costed with.

    The hot cache records its accesses under ``"wsaf.cache"`` and is
    meant to live in SRAM; the backing table keeps the accountant-wide
    default (DRAM in every experiment).  Pass this as
    ``AccessAccountant(DRAM, technologies=default_technologies())`` to
    price the two tiers at their own latencies.
    """
    return {"wsaf.cache": SRAM}


def build_wsaf_storage(config, accountant: "AccessAccountant | None" = None):
    """The WSAF backend ``config`` asks for, wired to ``accountant``.

    ``wsaf_backend`` picks the storage algorithm; for ``flat``, the
    existing ``wsaf_engine`` knob still picks scalar vs batch-probed
    columns (resolved exactly as before this seam existed).
    """
    from repro.core.instameasure import resolved_wsaf_engine
    from repro.core.wsaf import WSAFTable

    backend = getattr(config, "wsaf_backend", "flat")
    engine = resolved_wsaf_engine(config)
    if backend == "tiered":
        from repro.core.wsaf_tiered import TieredWSAFTable

        return TieredWSAFTable(
            num_entries=config.wsaf_entries,
            probe_limit=config.probe_limit,
            gc_timeout=config.gc_timeout,
            accountant=accountant,
            eviction_policy=config.eviction_policy,
            cache_entries=config.tier_cache_entries,
            tier_interval=config.tier_interval,
            table_engine=engine,
        )
    if backend == "icebuckets":
        if engine == "batched":
            from repro.kernels.wsaf_batched import BatchedIceBucketsWSAFTable

            ice_class: type = BatchedIceBucketsWSAFTable
        else:
            from repro.core.wsaf_icebuckets import IceBucketsWSAFTable

            ice_class = IceBucketsWSAFTable
        return ice_class(
            num_entries=config.wsaf_entries,
            probe_limit=config.probe_limit,
            gc_timeout=config.gc_timeout,
            accountant=accountant,
            eviction_policy=config.eviction_policy,
            bucket_slots=config.ice_bucket_slots,
            counter_bits=config.ice_counter_bits,
        )
    if engine == "batched":
        from repro.kernels.wsaf_batched import BatchedWSAFTable

        table_class: "type[WSAFTable]" = BatchedWSAFTable
    else:
        table_class = WSAFTable
    return table_class(
        num_entries=config.wsaf_entries,
        probe_limit=config.probe_limit,
        gc_timeout=config.gc_timeout,
        accountant=accountant,
        eviction_policy=config.eviction_policy,
    )
