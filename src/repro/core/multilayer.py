"""N-layer FlowRegulator (the paper's suggested extension).

Section V-B: "Even for WSAF in TCAM, which is faster than SRAM,
FlowRegulator can be configured to have enough margin by adjusting the
vector size or even the number of layers."  This module generalizes the
two-layer design to any depth: each additional layer multiplies the
retention capacity (and divides the WSAF insertion rate) by roughly the
single-layer capacity (~9.7 for 8-bit vectors), at the cost of one more
potential memory access per packet and a wider accuracy spread.

Layer *i*'s bank is indexed by the *noise path* — the tuple of noise levels
observed at layers 1..i-1 — so each distinct saturation history counts in
its own sketch, exactly as the two-layer design keys L2 by L1's noise
level.  With ``v`` noise levels per layer, layer *i* holds ``v^(i-1)``
sketches; total memory is ``l1_memory_bytes × Σ v^(i-1)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

from repro.core.rcc import RCCSketch, coupon_partial_sum
from repro.core.regulator import RegulatorStats
from repro.errors import ConfigurationError
from repro.memmodel import AccessAccountant

MAX_LAYERS = 4


class MultiLayerRegulator:
    """A FlowRegulator with a configurable number of RCC layers.

    ``num_layers=1`` degenerates to plain RCC (every saturation is a WSAF
    insertion); ``num_layers=2`` is the paper's FlowRegulator; deeper
    configurations trade detection latency for even lower insertion rates
    (e.g. for TCAM-backed tables that want <0.1 %).

    Args:
        l1_memory_bytes: size of each sketch bank (all banks share the
            layer-1 geometry and placement, extending the paper's "hash
            function reuse" to every layer).
        num_layers: regulator depth, 1..4.
        vector_bits / word_bits / saturation_fill / seed / accountant:
            as in :class:`FlowRegulator`.
    """

    def __init__(
        self,
        l1_memory_bytes: int,
        num_layers: int = 2,
        vector_bits: int = 8,
        word_bits: int = 32,
        saturation_fill: float = 0.7,
        seed: int = 0,
        accountant: "AccessAccountant | None" = None,
    ) -> None:
        if not 1 <= num_layers <= MAX_LAYERS:
            raise ConfigurationError(
                f"num_layers must be in [1, {MAX_LAYERS}], got {num_layers}"
            )
        self.num_layers = num_layers

        def make_sketch(label: str) -> RCCSketch:
            return RCCSketch(
                l1_memory_bytes,
                vector_bits=vector_bits,
                word_bits=word_bits,
                saturation_fill=saturation_fill,
                seed=seed,
                accountant=accountant,
                label=label,
            )

        self.l1 = make_sketch("multilayer.l1")
        noise_levels = self.l1.noise_levels
        #: banks[i] maps a noise path (tuple of length i+1... layer index)
        #: to the sketch counting saturations of the previous layer.
        self.banks: "list[dict[tuple[int, ...], RCCSketch]]" = []
        for layer in range(1, num_layers):
            bank = {
                path: make_sketch(f"multilayer.l{layer + 1}{path}")
                for path in product(range(noise_levels), repeat=layer)
            }
            self.banks.append(bank)
        self.stats = RegulatorStats()

    # -- geometry ----------------------------------------------------------

    @property
    def vector_bits(self) -> int:
        return self.l1.vector_bits

    @property
    def num_sketches(self) -> int:
        """Total sketch banks across all layers."""
        return 1 + sum(len(bank) for bank in self.banks)

    @property
    def total_memory_bytes(self) -> int:
        return self.num_sketches * self.l1.memory_bytes

    @property
    def retention_capacity(self) -> float:
        """Expected packets retained between WSAF insertions (cap^layers)."""
        return self.l1.retention_capacity**self.num_layers

    def place(self, flow_key: int) -> "tuple[int, int]":
        """Shared (word index, bit offset) across every layer's banks."""
        return self.l1.place(flow_key)

    # -- data path ---------------------------------------------------------

    def process_at(
        self, idx: int, offset: int, bit_choices: "list[int]"
    ) -> "float | None":
        """Encode one packet at a precomputed placement.

        ``bit_choices`` supplies one random bit index per layer (only the
        first is consumed unless saturations cascade).

        Returns ``est_pkt`` when the final layer saturates, else ``None``.
        """
        if len(bit_choices) < self.num_layers:
            raise ConfigurationError(
                f"need {self.num_layers} bit choices, got {len(bit_choices)}"
            )
        self.stats.packets += 1
        noise = self.l1.encode_at(idx, offset, bit_choices[0])
        if noise is None:
            return None
        self.stats.l1_saturations += 1
        estimate = self.l1.decode(noise)
        path: "tuple[int, ...]" = (noise,)
        for layer in range(1, self.num_layers):
            sketch = self.banks[layer - 1][path]
            noise = sketch.encode_at(idx, offset, bit_choices[layer])
            if noise is None:
                return None
            estimate *= sketch.decode(noise)
            path = path + (noise,)
        self.stats.insertions += 1
        return estimate

    def process(self, flow_key: int, bit_choices: "list[int]") -> "float | None":
        """Hash-place ``flow_key`` and encode one packet."""
        idx, offset = self.place(flow_key)
        return self.process_at(idx, offset, bit_choices)

    def residual_estimate(self, flow_key: int) -> float:
        """Decode the count still retained across all layers.

        Evaluation-only (see :meth:`FlowRegulator.residual_estimate`): the
        fill of each bank window along every noise path is decoded and
        weighted by the product of the path's per-layer units.
        """
        idx, offset = self.place(flow_key)
        window = self.l1._window_masks[offset]
        fill = (self.l1.words[idx] & window).bit_count()
        total = coupon_partial_sum(self.vector_bits, fill)
        for layer_bank in self.banks:
            for path, sketch in layer_bank.items():
                fill = (sketch.words[idx] & window).bit_count()
                if not fill:
                    continue
                unit = 1.0
                for noise in path:
                    unit *= self.l1.decode(noise)
                total += unit * coupon_partial_sum(self.vector_bits, fill)
        return total

    def reset(self) -> None:
        """Clear every layer's sketches and the statistics."""
        self.l1.reset()
        for bank in self.banks:
            for sketch in bank.values():
                sketch.reset()
        self.stats = RegulatorStats()


@dataclass
class LayerSweepPoint:
    """One row of a layer-count ablation."""

    num_layers: int
    retention_capacity: float
    regulation_rate: float
    relative_error: float
    memory_multiplier: int


def required_layers_for_margin(
    target_rate: float, vector_bits: int = 8, saturation_fill: float = 0.7
) -> int:
    """Smallest layer count whose single-flow insertion rate beats ``target_rate``.

    E.g. a TCAM-backed WSAF needing <0.1 % of pps requires 3 layers of
    8-bit vectors (9.7^-3 ≈ 0.11 %... rounded against the next layer).
    """
    if not 0.0 < target_rate < 1.0:
        raise ConfigurationError("target_rate must be in (0, 1)")
    probe = RCCSketch(
        64, vector_bits=vector_bits, word_bits=64, saturation_fill=saturation_fill
    )
    capacity = probe.retention_capacity
    layers = max(1, math.ceil(math.log(1.0 / target_rate) / math.log(capacity)))
    if layers > MAX_LAYERS:
        raise ConfigurationError(
            f"target rate {target_rate} needs {layers} layers (max {MAX_LAYERS})"
        )
    return layers
