"""ICE-Buckets-style compressed counters for the WSAF.

ICE Buckets shrinks per-flow counters by grouping them into buckets that
share a scale exponent: each counter stores only a small
``counter_bits``-bit integer ``q``, and its value is ``q · 2^scale`` with
one ``scale`` per bucket (separate exponents for the packet and byte
planes, since their magnitudes differ by the mean packet size).  When an
update would overflow a counter, the whole bucket *upscales* — the
exponent increments and every resident counter halves (nearest-integer)
— so precision degrades gracefully exactly where the big flows live,
with a relative error bounded by half a quantization step
(``2^(scale-1)`` absolute, i.e. ~``2^-(counter_bits-1)`` relative for a
counter near full scale).

:class:`IceBucketsWSAFTable` keeps every :class:`~repro.core.wsaf.
WSAFTable` semantic — probe sequence, eviction policies, GC, counters —
and changes only how the packet/byte accumulators are stored.  The float
columns always hold the *dequantized* values (``q · 2^scale`` is exact in
float64), so lookups, eviction ordering, estimates, and snapshots all
read consistent quantized state with no extra translation.

The quantization logic lives in :class:`_IceMixin`, which is storage-
agnostic: every operation is element-wise over ``self._packets`` /
``self._qpackets`` etc., so it composes with the scalar list columns
here *and* with the NumPy columns of :class:`~repro.kernels.wsaf_batched.
BatchedWSAFTable` (see :class:`~repro.kernels.wsaf_batched.
BatchedIceBucketsWSAFTable`, the batch-probed variant).

Snapshots carry the per-bucket scales in an ``ice`` section.  Restoring
with matching bucket geometry is **bit-exact**: the integer counters
recompute exactly from the dequantized floats and the saved scales.
Restoring without the section (a flat capture, a merged snapshot) or
with different bucket geometry re-quantizes from the floats — documented
*estimate-equivalence*: values change by at most one quantization step.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.memmodel import AccessAccountant

from repro.core.wsaf import ENTRY_BYTES, WSAFTable


class _IceMixin:
    """Bucket-scaled quantized counters over any WSAF column storage.

    Mixes in front of a :class:`WSAFTable` (or a subclass with array
    columns): ``super()`` calls resolve to the underlying table, and all
    quantization state is kept element-wise so it works identically on
    list and NumPy columns.  The quantized planes are created through
    :meth:`_new_qplane`, which array-backed subclasses override.

    Args:
        bucket_slots: contiguous table slots sharing one scale exponent.
        counter_bits: stored bits per counter (2..32); the paper's 64-bit
            counter pair shrinks to two ``counter_bits``-bit integers.
    """

    def __init__(
        self,
        num_entries: int = 1 << 20,
        probe_limit: int = 16,
        gc_timeout: "float | None" = None,
        accountant: "AccessAccountant | None" = None,
        eviction_policy: str = "second-chance",
        bucket_slots: int = 64,
        counter_bits: int = 16,
    ) -> None:
        if bucket_slots < 1:
            raise ConfigurationError(
                f"bucket_slots must be >= 1, got {bucket_slots}"
            )
        if not 2 <= counter_bits <= 32:
            raise ConfigurationError(
                f"counter_bits must be in [2, 32], got {counter_bits}"
            )
        super().__init__(
            num_entries=num_entries,
            probe_limit=probe_limit,
            gc_timeout=gc_timeout,
            accountant=accountant,
            eviction_policy=eviction_policy,
        )
        self.bucket_slots = bucket_slots
        self.counter_bits = counter_bits
        self.num_buckets = (num_entries + bucket_slots - 1) // bucket_slots
        self._counter_max = (1 << counter_bits) - 1
        #: Quantized counters, parallel to the inherited float columns
        #: (which always hold the dequantized q·2^scale values).
        self._qpackets = self._new_qplane()
        self._qbytes = self._new_qplane()
        self._scale_packets = [0] * self.num_buckets
        self._scale_bytes = [0] * self.num_buckets
        self.upscales = 0

    def _new_qplane(self):
        """A zeroed quantized-counter plane matching the column storage."""
        return [0] * self.num_entries

    # -- quantized stores ----------------------------------------------------

    def _upscale(self, bucket: int, plane_scales, plane_q, plane_values) -> None:
        """Increment ``bucket``'s exponent and halve its resident counters.

        Each occupied counter rounds to the nearest value representable
        at the new scale; one read+write per resident entry is charged to
        the accountant (the bucket sweep is real memory traffic).
        """
        plane_scales[bucket] += 1
        scale_value = float(1 << plane_scales[bucket])
        begin = bucket * self.bucket_slots
        end = min(begin + self.bucket_slots, self.num_entries)
        touched = 0
        for slot in range(begin, end):
            if not self._occupied[slot]:
                continue
            q = (plane_q[slot] + 1) >> 1
            plane_q[slot] = q
            plane_values[slot] = q * scale_value
            touched += 1
        self.upscales += 1
        if self.accountant is not None and touched:
            self.accountant.record("wsaf", reads=touched, writes=touched)

    def _store(self, slot: int, packets: float, bytes_: float) -> None:
        """Write absolute counter values for ``slot``, quantized.

        Upscales the slot's bucket until both planes fit; the float
        columns are left holding the exact dequantized values.
        """
        bucket = slot // self.bucket_slots
        counter_max = self._counter_max
        q = round(packets / (1 << self._scale_packets[bucket]))
        while q > counter_max:
            self._upscale(
                bucket, self._scale_packets, self._qpackets, self._packets
            )
            q = round(packets / (1 << self._scale_packets[bucket]))
        self._qpackets[slot] = q
        self._packets[slot] = q * float(1 << self._scale_packets[bucket])

        q = round(bytes_ / (1 << self._scale_bytes[bucket]))
        while q > counter_max:
            self._upscale(
                bucket, self._scale_bytes, self._qbytes, self._bytes
            )
            q = round(bytes_ / (1 << self._scale_bytes[bucket]))
        self._qbytes[slot] = q
        self._bytes[slot] = q * float(1 << self._scale_bytes[bucket])

    def _clear(self, slot: int) -> None:
        super()._clear(slot)
        self._qpackets[slot] = 0
        self._qbytes[slot] = 0

    # -- operations ----------------------------------------------------------

    def accumulate(
        self,
        key: int,
        est_packets: float,
        est_bytes: float,
        timestamp: float,
        five_tuple_packed: "int | None" = None,
    ) -> "tuple[float, float]":
        """Same walk as :meth:`WSAFTable.accumulate`; quantized commits.

        The addition happens on the dequantized values (the estimate
        arrives exact), then the sum is re-quantized into the slot — the
        one place the bounded rounding error enters.
        """
        mask = self._mask
        base = key & mask
        occupied = self._occupied
        keys = self._keys
        probes = 0
        first_free = -1
        for i in range(self.probe_limit):
            slot = (base + ((i + i * i) >> 1)) & mask
            probes += 1
            if occupied[slot]:
                if keys[slot] == key:
                    if self.accountant is not None:
                        self.accountant.record("wsaf", reads=probes, writes=1)
                    self._store(
                        slot,
                        self._packets[slot] + est_packets,
                        self._bytes[slot] + est_bytes,
                    )
                    self._timestamps[slot] = timestamp
                    self._chance[slot] = True
                    self.updates += 1
                    return self._packets[slot], self._bytes[slot]
                if first_free < 0 and self._expired(slot, timestamp):
                    self._clear(slot)
                    self.gc_reclaimed += 1
                    first_free = slot
            elif first_free < 0:
                first_free = slot

        if first_free < 0:
            first_free = self._find_victim(key, timestamp)
        if first_free < 0:
            self.rejected += 1
            if self.accountant is not None:
                self.accountant.record("wsaf", reads=probes)
            return 0.0, 0.0

        if self.accountant is not None:
            self.accountant.record("wsaf", reads=probes, writes=1)
        self._occupied[first_free] = True
        self._occupied_slots.add(first_free)
        self._keys[first_free] = key
        self._store(first_free, est_packets, est_bytes)
        self._timestamps[first_free] = timestamp
        self._chance[first_free] = True
        self._tuples[first_free] = five_tuple_packed
        self.size += 1
        self.insertions += 1
        return self._packets[first_free], self._bytes[first_free]

    def place_record(
        self,
        key: int,
        packets: float,
        bytes_: float,
        timestamp: float,
        chance: bool,
        five_tuple_packed: "int | None",
        now: float,
    ) -> bool:
        """Place a fully-formed record, committing counters through
        quantization so estimates stay representable values."""
        placed = super().place_record(
            key, packets, bytes_, timestamp, chance, five_tuple_packed, now
        )
        if placed:
            # The parent wrote raw floats; re-commit through quantization.
            for slot in self.probe_sequence(key):
                if self._occupied[slot] and self._keys[slot] == key:
                    self._store(slot, packets, bytes_)
                    break
        return placed

    # -- memory --------------------------------------------------------------

    def counter_memory_bytes(self) -> int:
        """Quantized counter planes plus one exponent byte per plane per
        bucket (versus 16 bytes/entry for the flat 64-bit counter pair)."""
        per_counter = (self.counter_bits + 7) // 8
        return self.num_entries * 2 * per_counter + self.num_buckets * 2

    def memory_bytes(self) -> int:
        """The 33-byte layout with its 16 counter bytes swapped for the
        compressed planes."""
        return (
            self.num_entries * (ENTRY_BYTES - 16) + self.counter_memory_bytes()
        )

    # -- state transfer -------------------------------------------------------

    def export_state(self):
        """Flat columns (dequantized, exact) plus an ``ice`` scale section."""
        import numpy as np

        from repro.state.snapshot import IceState

        state = super().export_state()
        state.ice = IceState(
            bucket_slots=self.bucket_slots,
            counter_bits=self.counter_bits,
            upscales=self.upscales,
            scale_packets=np.array(self._scale_packets, dtype=np.int64),
            scale_bytes=np.array(self._scale_bytes, dtype=np.int64),
        )
        return state

    def load_state(self, state) -> None:
        """Restore records, then rebuild the quantized planes.

        With a matching ``ice`` section (same bucket geometry and table
        size — so slots, and therefore bucket membership, are preserved)
        the integer counters recompute exactly from the dequantized
        floats: bit-exact restore.  Otherwise (flat or merged snapshot,
        or changed geometry) the floats re-quantize from scratch —
        estimate-equivalent within one quantization step.
        """
        super().load_state(state)
        ice = getattr(state, "ice", None)
        exact = (
            ice is not None
            and ice.bucket_slots == self.bucket_slots
            and ice.counter_bits == self.counter_bits
            and state.num_entries == self.num_entries
            and len(ice.scale_packets) == self.num_buckets
        )
        if exact:
            self._scale_packets = ice.scale_packets.astype(int).tolist()
            self._scale_bytes = ice.scale_bytes.astype(int).tolist()
            self.upscales = ice.upscales
        else:
            self._scale_packets = [0] * self.num_buckets
            self._scale_bytes = [0] * self.num_buckets
            self.upscales = 0
        self._qpackets = self._new_qplane()
        self._qbytes = self._new_qplane()
        for slot in sorted(self._occupied_slots):
            self._store(slot, self._packets[slot], self._bytes[slot])


class IceBucketsWSAFTable(_IceMixin, WSAFTable):
    """A :class:`WSAFTable` whose counters are bucket-scaled integers.

    The scalar (list-column) composition of :class:`_IceMixin`; the
    batch-probed variant is :class:`~repro.kernels.wsaf_batched.
    BatchedIceBucketsWSAFTable`.
    """
