"""The paper's contribution: RCC, FlowRegulator, WSAF, and the engines.

Data path (Fig 2(a) of the paper)::

    packet ──► L1 RCC sketch ──saturation──► L2 RCC bank ──saturation──►
           est_pkt = unit × count, est_byte = est_pkt × len(pkt) ──► WSAF

* :class:`~repro.core.rcc.RCCSketch` — the Recyclable Counter with
  Confinement (Nyang & Shin), the building block of both layers.
* :class:`~repro.core.regulator.FlowRegulator` — the two-layer counter that
  regulates the WSAF insertion rate down to ~1 % of pps.
* :class:`~repro.core.wsaf.WSAFTable` — the In-DRAM working set of active
  flows: quadratic probing, probe-limit second-chance eviction, opportunistic
  garbage collection.
* :class:`~repro.core.instameasure.InstaMeasure` — the single-core
  measurement engine tying them together.
* :class:`~repro.core.multicore.MultiCoreInstaMeasure` — the manager/worker
  system of Section IV-C (popcount dispatch, per-worker FlowRegulators,
  shared WSAF).
"""

from repro.core.analytic import (
    SingleFlowRegulatorModel,
    saturation_time_pmf,
    saturation_time_variance,
)
from repro.core.rcc import RCCSketch, coupon_partial_sum
from repro.core.regulator import FlowRegulator, RegulatorStats
from repro.core.wsaf import WSAFEntry, WSAFTable
from repro.core.wsaf_icebuckets import IceBucketsWSAFTable
from repro.core.wsaf_storage import (
    WSAF_BACKEND_CHOICES,
    WSAFStorage,
    build_wsaf_storage,
    default_technologies,
)
from repro.core.wsaf_tiered import TieredWSAFTable
from repro.core.instameasure import (
    InstaMeasure,
    InstaMeasureConfig,
    MeasurementResult,
)
from repro.core.multicore import MultiCoreInstaMeasure, MultiCoreResult
from repro.core.multilayer import MultiLayerRegulator, required_layers_for_margin

__all__ = [
    "FlowRegulator",
    "IceBucketsWSAFTable",
    "InstaMeasure",
    "InstaMeasureConfig",
    "MeasurementResult",
    "MultiCoreInstaMeasure",
    "MultiCoreResult",
    "MultiLayerRegulator",
    "RCCSketch",
    "SingleFlowRegulatorModel",
    "required_layers_for_margin",
    "saturation_time_pmf",
    "saturation_time_variance",
    "RegulatorStats",
    "TieredWSAFTable",
    "WSAFEntry",
    "WSAFStorage",
    "WSAFTable",
    "WSAF_BACKEND_CHOICES",
    "build_wsaf_storage",
    "coupon_partial_sum",
    "default_technologies",
]
