"""RCC — the Recyclable Counter with Confinement (Nyang & Shin, ToN 2016).

RCC is the probabilistic counter both FlowRegulator layers are built from.
Each flow owns a *virtual vector*: ``vector_bits`` consecutive bit positions
(cyclically) inside one machine word of a shared word array.  Confining the
vector to a single word means one memory access per packet; different flows
hashing to the same word with overlapping windows are the *noise* source the
paper's accuracy discussion revolves around.

Encoding sets one uniformly-random bit of the vector per packet.  When at
least ``ceil(saturation_fill * vector_bits)`` bits are 1, the vector is
*saturated*: the counter decodes online, recycles (clears) the vector, and
reports the *noise level* — the number of still-zero bits, which for an
8-bit vector is one of {0, 1, 2}, the paper's "three cases".

Decoding uses the coupon-collector partial sum: the expected number of
insertions needed to set ``s`` distinct bits out of ``b`` is
``Σ_{j<s} b/(b-j)``.  This estimator reproduces the paper's published
retention capacities exactly: ≈9.7 for an 8-bit vector ("can only count up
to 9 packets") and ≈76.6 for a 64-bit vector ("only 77 packets even with a
64-bit virtual vector").
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, DecodeError
from repro.hashing import hash_u64, hash_u64_array
from repro.memmodel import AccessAccountant


_POPCOUNT_TABLES: "dict[int, list[int]]" = {}


def popcount_table(width: int) -> "list[int]":
    """Set-bit counts for every ``width``-bit value, cached per width.

    The batched kernels (:mod:`repro.kernels`) index window states through
    this table instead of calling ``int.bit_count`` per packet.
    """
    if not 0 <= width <= 16:
        raise ConfigurationError(
            f"popcount_table width must be in [0, 16], got {width}"
        )
    table = _POPCOUNT_TABLES.get(width)
    if table is None:
        table = [value.bit_count() for value in range(1 << width)]
        _POPCOUNT_TABLES[width] = table
    return table


def coupon_partial_sum(vector_bits: int, bits_set: int) -> float:
    """Expected insertions to set ``bits_set`` distinct bits out of ``vector_bits``.

    The coupon-collector partial sum ``Σ_{j=0}^{bits_set-1} b/(b-j)``.
    """
    if not 0 <= bits_set <= vector_bits:
        raise DecodeError(
            f"bits_set must be in [0, {vector_bits}], got {bits_set}"
        )
    return sum(vector_bits / (vector_bits - j) for j in range(bits_set))


class RCCSketch:
    """A shared-word-array RCC sketch.

    Args:
        memory_bytes: size of the word array (must hold >= 1 word).
        vector_bits: virtual-vector width ``b`` (the paper uses 8 per layer).
        word_bits: machine word size, 32 or 64 (Section III-D).
        saturation_fill: fraction of the vector that must be 1 to saturate
            (the paper's 70 %).
        seed: hash seed for flow placement.
        accountant: optional :class:`AccessAccountant` for memory-access
            costing; ``None`` keeps the hot path free of accounting.
        label: accounting label.
    """

    def __init__(
        self,
        memory_bytes: int,
        vector_bits: int = 8,
        word_bits: int = 32,
        saturation_fill: float = 0.7,
        seed: int = 0,
        accountant: "AccessAccountant | None" = None,
        label: str = "rcc",
    ) -> None:
        if word_bits not in (32, 64):
            raise ConfigurationError(f"word_bits must be 32 or 64, got {word_bits}")
        if not 2 <= vector_bits <= word_bits:
            raise ConfigurationError(
                f"vector_bits must be in [2, word_bits], got {vector_bits}"
            )
        if not 0.0 < saturation_fill <= 1.0:
            raise ConfigurationError(
                f"saturation_fill must be in (0, 1], got {saturation_fill}"
            )
        num_words = (memory_bytes * 8) // word_bits
        if num_words < 1:
            raise ConfigurationError(
                f"{memory_bytes} bytes cannot hold a single {word_bits}-bit word"
            )
        self.memory_bytes = memory_bytes
        self.vector_bits = vector_bits
        self.word_bits = word_bits
        self.saturation_fill = saturation_fill
        self.num_words = num_words
        self.seed = seed
        self.accountant = accountant
        self.label = label

        self.saturation_bits = math.ceil(saturation_fill * vector_bits)
        if self.saturation_bits < 1:
            raise ConfigurationError("saturation threshold must be >= 1 bit")
        #: Highest observable noise level (zero bits remaining at saturation).
        self.noise_max = vector_bits - self.saturation_bits

        # words are plain Python ints: single-word bitwise ops are the hot path.
        self.words: "list[int]" = [0] * num_words
        # Cyclic window masks and per-(offset, bit) set-masks, precomputed.
        self._window_masks: "list[int]" = []
        self._bit_masks: "list[list[int]]" = []
        for offset in range(word_bits):
            bits = [1 << ((offset + i) % word_bits) for i in range(vector_bits)]
            self._bit_masks.append(bits)
            mask = 0
            for bit in bits:
                mask |= bit
            self._window_masks.append(mask)
        #: decode table: estimate for each possible noise level (index = zeros).
        self._decode_table = [
            coupon_partial_sum(vector_bits, vector_bits - zeros)
            for zeros in range(vector_bits + 1)
        ]
        self._place_seed_idx = hash_u64(seed, 0x51)
        self._place_seed_off = hash_u64(seed, 0x52)

        self.packets_encoded = 0
        self.saturations = 0

    # -- placement ---------------------------------------------------------

    def place(self, flow_key: int) -> "tuple[int, int]":
        """(word index, bit offset) of ``flow_key``'s virtual vector."""
        idx = hash_u64(flow_key, self._place_seed_idx) % self.num_words
        offset = hash_u64(flow_key, self._place_seed_off) % self.word_bits
        return idx, offset

    def place_array(self, flow_keys: "np.ndarray") -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized :meth:`place` over a ``uint64`` key array.

        Bit-identical to the scalar path; engines hoist placement out of the
        per-packet loop with this.
        """
        idx = hash_u64_array(flow_keys, self._place_seed_idx) % np.uint64(
            self.num_words
        )
        offset = hash_u64_array(flow_keys, self._place_seed_off) % np.uint64(
            self.word_bits
        )
        return idx.astype(np.int64), offset.astype(np.int64)

    # -- encode / decode ---------------------------------------------------

    def encode_at(self, idx: int, offset: int, bit_choice: int) -> "int | None":
        """Encode one packet into the vector at (``idx``, ``offset``).

        ``bit_choice`` is the per-packet uniformly random bit index in
        ``[0, vector_bits)`` (the caller owns the randomness stream so
        experiments are reproducible).

        Returns:
            The noise level (number of zero bits) if this packet saturated
            the vector — the vector has then been recycled — else ``None``.
        """
        word = self.words[idx] | self._bit_masks[offset][bit_choice]
        self.packets_encoded += 1
        if self.accountant is not None:
            self.accountant.record(self.label, reads=1, writes=1)
        window = self._window_masks[offset]
        zeros = self.vector_bits - (word & window).bit_count()
        if zeros <= self.noise_max:
            self.words[idx] = word & ~window
            self.saturations += 1
            return zeros
        self.words[idx] = word
        return None

    def encode(self, flow_key: int, bit_choice: int) -> "int | None":
        """Hash-place ``flow_key`` and encode one packet (see :meth:`encode_at`)."""
        idx, offset = self.place(flow_key)
        return self.encode_at(idx, offset, bit_choice)

    def decode(self, noise: int) -> float:
        """Estimated packets represented by a saturation at ``noise`` zeros."""
        if not 0 <= noise <= self.noise_max:
            raise DecodeError(
                f"noise level must be in [0, {self.noise_max}], got {noise}"
            )
        return self._decode_table[noise]

    def fill_count(self, flow_key: int) -> int:
        """Bits currently set in ``flow_key``'s vector (includes noise bits)."""
        idx, offset = self.place(flow_key)
        return (self.words[idx] & self._window_masks[offset]).bit_count()

    def partial_estimate(self, flow_key: int) -> float:
        """Decode the unsaturated residual of ``flow_key``'s vector.

        Evaluation helper: attributes every set bit in the window to the
        flow, so under heavy sharing it over-estimates.  The real system
        never calls this; end-of-run accuracy harnesses may.
        """
        return coupon_partial_sum(self.vector_bits, self.fill_count(flow_key))

    # -- analytics ---------------------------------------------------------

    @property
    def retention_capacity(self) -> float:
        """Expected packets a single flow retains before one saturation."""
        return self._decode_table[self.noise_max]

    @property
    def noise_levels(self) -> int:
        """Number of distinct observable noise levels (the paper's 'cases')."""
        return self.noise_max + 1

    def saturation_rate(self) -> float:
        """Observed saturations per encoded packet (the regulation rate)."""
        if self.packets_encoded == 0:
            return 0.0
        return self.saturations / self.packets_encoded

    # -- state transfer ----------------------------------------------------

    def words_array(self) -> np.ndarray:
        """Snapshot of the word array as ``uint64``.

        Compact form for shipping sketch state across process boundaries
        (the parallel multi-core manager) or archiving it; restore with
        :meth:`set_words_array`.
        """
        return np.array(self.words, dtype=np.uint64)

    def set_words_array(self, array: np.ndarray) -> None:
        """Replace the word state from a :meth:`words_array` snapshot."""
        values = np.asarray(array, dtype=np.uint64).tolist()
        if len(values) != self.num_words:
            raise ConfigurationError(
                f"expected {self.num_words} words, got {len(values)}"
            )
        self.words = values

    def reset(self) -> None:
        """Clear all vectors and statistics."""
        self.words = [0] * self.num_words
        self.packets_encoded = 0
        self.saturations = 0
