"""Exact single-flow analytics for RCC and the FlowRegulator.

For one flow in an otherwise empty sketch, the encoder is a small Markov
chain: each packet sets a uniformly random bit of the b-bit virtual vector,
the vector saturates when ``ceil(fill·b)`` distinct bits are set, and (for
the two-layer regulator) each L1 saturation sets one random bit of the L2
vector.  Everything the paper plots in Fig 8 — retention capacity,
saturation frequency, and the size a flow must reach to leak into the WSAF
— is a functional of this chain, so this module computes those quantities
*exactly* and the test suite pins the simulator against them.

Classic identities used:

* mean packets to set ``s`` distinct bits: ``Σ_{j<s} b/(b-j)`` (the coupon
  collector partial sum, also :func:`repro.core.rcc.coupon_partial_sum`);
* its variance: ``Σ_{j<s} (1-p_j)/p_j²`` with ``p_j = (b-j)/b``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def saturation_time_variance(vector_bits: int, bits_needed: int) -> float:
    """Variance of the packets-to-saturation time (sum of geometrics)."""
    if not 1 <= bits_needed <= vector_bits:
        raise ConfigurationError("bits_needed must be in [1, vector_bits]")
    variance = 0.0
    for j in range(bits_needed):
        p = (vector_bits - j) / vector_bits
        variance += (1.0 - p) / (p * p)
    return variance


def saturation_time_pmf(
    vector_bits: int, bits_needed: int, max_packets: int
) -> np.ndarray:
    """P(first saturation happens exactly at packet n), n = 0..max_packets.

    Computed by dynamic programming over the distinct-bits count; the mass
    beyond ``max_packets`` is simply not included (the array need not sum
    to 1).
    """
    if not 1 <= bits_needed <= vector_bits:
        raise ConfigurationError("bits_needed must be in [1, vector_bits]")
    if max_packets < 0:
        raise ConfigurationError("max_packets must be >= 0")
    pmf = np.zeros(max_packets + 1)
    # state distribution over number of distinct bits set (0..bits_needed-1)
    state = np.zeros(bits_needed)
    state[0] = 1.0
    for n in range(1, max_packets + 1):
        fresh = (vector_bits - np.arange(bits_needed)) / vector_bits
        # Probability of saturating at this packet: being one bit short and
        # drawing a fresh bit.
        pmf[n] = state[bits_needed - 1] * fresh[bits_needed - 1]
        advanced = state * fresh
        state = state * (1.0 - fresh)
        state[1:] += advanced[:-1]
    return pmf


class SingleFlowRegulatorModel:
    """Exact two-layer chain for one flow in an empty FlowRegulator.

    With no competing flows, L1 always saturates at exactly ``noise_max``
    zeros (bits only ever arrive one at a time), so the flow always counts
    in ``L2[noise_max]`` and the joint state is just
    ``(bits set in L1, bits set in L2)`` — ``sat_bits²`` states.

    Args:
        vector_bits: per-layer virtual-vector width.
        saturation_fill: per-layer saturation threshold.
    """

    def __init__(self, vector_bits: int = 8, saturation_fill: float = 0.7) -> None:
        if vector_bits < 2:
            raise ConfigurationError("vector_bits must be >= 2")
        if not 0.0 < saturation_fill <= 1.0:
            raise ConfigurationError("saturation_fill must be in (0, 1]")
        self.vector_bits = vector_bits
        self.sat_bits = math.ceil(saturation_fill * vector_bits)
        b = vector_bits
        s = self.sat_bits
        size = s * s

        # Transition matrix over (k1, k2) plus an insertion-emission vector.
        transition = np.zeros((size, size))
        emission = np.zeros(size)

        def index(k1: int, k2: int) -> int:
            return k1 * s + k2

        for k1 in range(s):
            for k2 in range(s):
                here = index(k1, k2)
                p_fresh1 = (b - k1) / b
                # Packet hits an already-set L1 bit: nothing changes.
                transition[here, index(k1, k2)] += 1.0 - p_fresh1
                if k1 + 1 < s:
                    transition[here, index(k1 + 1, k2)] += p_fresh1
                    continue
                # L1 saturates and recycles; one bit goes into L2.
                p_fresh2 = (b - k2) / b
                transition[here, index(0, k2)] += p_fresh1 * (1.0 - p_fresh2)
                if k2 + 1 < s:
                    transition[here, index(0, k2 + 1)] += p_fresh1 * p_fresh2
                else:
                    # L2 saturates too: WSAF insertion, both layers recycle.
                    transition[here, index(0, 0)] += p_fresh1 * p_fresh2
                    emission[here] += p_fresh1 * p_fresh2
        self._transition = transition
        self._emission = emission
        self._size = size

    def _run(self, packets: int) -> "tuple[np.ndarray, np.ndarray]":
        """(per-packet insertion probability, final state distribution)."""
        if packets < 0:
            raise ConfigurationError("packets must be >= 0")
        state = np.zeros(self._size)
        state[0] = 1.0
        insert_probability = np.zeros(packets)
        for n in range(packets):
            insert_probability[n] = float(state @ self._emission)
            state = state @ self._transition
        return insert_probability, state

    def expected_insertions(self, packets: int) -> float:
        """Expected WSAF insertions a flow of this size produces."""
        insert_probability, _state = self._run(packets)
        return float(insert_probability.sum())

    def passage_probability(self, packets: int) -> float:
        """P(a flow of this size reaches the WSAF at least once).

        Uses an absorbing copy of the chain (no re-emission after the first
        insertion is needed: we track the complement of 'never inserted').
        """
        if packets < 0:
            raise ConfigurationError("packets must be >= 0")
        # Chain restricted to 'never inserted': drop emitted mass.
        survive = self._transition.copy()
        size = self._size
        # Remove the insertion transitions' mass from the survive matrix.
        for here in range(size):
            if self._emission[here] > 0:
                survive[here, 0] -= self._emission[here]
        state = np.zeros(size)
        state[0] = 1.0
        for _ in range(packets):
            state = state @ survive
        return 1.0 - float(state.sum())

    def expected_regulation_rate(self, packets: int) -> float:
        """Expected insertions per packet for a flow of this size."""
        if packets == 0:
            return 0.0
        return self.expected_insertions(packets) / packets
