"""Multi-core InstaMeasure (Section IV-C).

A manager core assigns each packet to a worker queue keyed by the population
count of the packet's source IP address (``popcount(srcIP) mod n_workers``),
which gives flow→core affinity for free because a flow's source address
never changes.  Each worker owns an independent FlowRegulator ("we allocate
memory blocks exclusively to each worker core to avoid memory collision");
the WSAF is shared, which is safe because post-regulation insertions are
~1 % of packets.

Execution model: every worker runs against a **private insertion log**
(:class:`repro.state.merge.InsertionLog`) instead of the shared table; the
manager merges all logs in ``(timestamp, worker, sequence)`` order with
the state layer's :func:`~repro.state.merge.tag_events` /
:func:`~repro.state.merge.release_ordered` / :func:`~repro.state.merge.
apply_events` and applies them to the WSAF through
:meth:`WSAFTable.accumulate_batch`.  Because regulator state is
worker-private and the merge order is deterministic, the sequential and
process-parallel execution modes leave bit-identical state behind
(tested).  With ``parallel=True`` the workers run as forked
``multiprocessing`` processes, shipping back their event logs plus a
:class:`~repro.state.snapshot.RegulatorState`; only the ~1 % of packets
that became insertions cross the process boundary.

The *timing* of the system (Fig 9(a)'s Mpps-vs-cores curve and Fig 12(c)'s
utilization series) is produced by feeding the load shares to
:mod:`repro.simulate.costmodel` / :mod:`repro.simulate.engine`.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace

import numpy as np

from repro.core.instameasure import (
    AccumulateCallback,
    InstaMeasure,
    InstaMeasureConfig,
    MeasurementResult,
    build_wsaf_table,
)
from repro.core.wsaf import WSAFTable
from repro.errors import ConfigurationError
from repro.hashing import popcount32
from repro.kernels.batched import clear_kernel_caches
from repro.state import (
    InsertionLog,
    apply_events,
    capture_regulator,
    release_ordered,
    restore_regulator,
    tag_events,
)
from repro.traffic.packet import Trace


def dispatch_worker(src_ip: int, num_workers: int) -> int:
    """The paper's dispatch rule: popcount of the source IP, mod workers."""
    return popcount32(src_ip) % num_workers


def dispatch_array(src_ips: np.ndarray, num_workers: int) -> np.ndarray:
    """Vectorized :func:`dispatch_worker` over a ``uint32`` array."""
    return (
        np.bitwise_count(src_ips.astype(np.uint32)).astype(np.int64) % num_workers
    )


@dataclass
class MultiCoreResult:
    """Outcome of a multi-core run."""

    num_workers: int
    worker_packets: "list[int]"
    worker_insertions: "list[int]"
    worker_results: "list[MeasurementResult]"
    wsaf: WSAFTable

    @property
    def packets(self) -> int:
        return sum(self.worker_packets)

    @property
    def insertions(self) -> int:
        return sum(self.worker_insertions)

    @property
    def regulation_rate(self) -> float:
        return self.insertions / self.packets if self.packets else 0.0

    @property
    def load_shares(self) -> "list[float]":
        """Fraction of packets each worker received."""
        total = self.packets
        if total == 0:
            return [0.0] * self.num_workers
        return [count / total for count in self.worker_packets]

    @property
    def max_load_share(self) -> float:
        """The busiest worker's share — the bottleneck of parallel scaling.

        With perfect balance this is ``1 / num_workers``; the popcount
        dispatcher over skewed real addresses does worse, which is why the
        paper's Fig 9(a) scaling is sublinear.
        """
        shares = self.load_shares
        return max(shares) if shares else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Throughput multiple over one core implied by the load balance."""
        max_share = self.max_load_share
        return 1.0 / max_share if max_share > 0 else float(self.num_workers)


def _worker_queue(trace: Trace, assignment: np.ndarray, worker_index: int) -> Trace:
    """The sub-trace of packets dispatched to ``worker_index``."""
    mask = assignment == worker_index
    return Trace(
        timestamps=trace.timestamps[mask],
        flow_ids=trace.flow_ids[mask],
        sizes=trace.sizes[mask],
        flows=trace.flows,
    )


def _run_worker_recorded(worker: InstaMeasure, queue: Trace):
    """Run ``worker`` over ``queue`` with insertions recorded, not applied."""
    shared = worker.wsaf
    log = InsertionLog()
    worker.wsaf = log
    try:
        result = worker.process_trace(queue)
    finally:
        worker.wsaf = shared
    return result, log.events


def _ingest_worker_recorded(worker: InstaMeasure, chunk):
    """Stream one chunk into ``worker`` with insertions recorded, not applied."""
    shared = worker.wsaf
    log = InsertionLog()
    worker.wsaf = log
    try:
        result = worker.ingest(chunk)
    finally:
        worker.wsaf = shared
    return result, log.events


@dataclass
class _MultiCoreStream:
    """Bookkeeping for one in-progress multi-core ingest stream."""

    worker_by_flow: np.ndarray
    worker_totals: "list[int | None]"
    pending: "list[tuple]"
    worker_seq: "list[int]"
    worker_packets: "list[int]"
    on_accumulate: "AccumulateCallback | None" = None


#: Fork-inherited state for parallel workers (manager, trace, assignment);
#: set only for the duration of a parallel run.
_PARALLEL_STATE = None


def _parallel_worker(worker_index: int) -> dict:
    """Child-process entry: run one worker and ship its state back."""
    manager, trace, assignment = _PARALLEL_STATE
    worker = manager.workers[worker_index]
    queue = _worker_queue(trace, assignment, worker_index)
    try:
        result, events = _run_worker_recorded(worker, queue)
    finally:
        clear_kernel_caches(queue)
    return {
        "worker_index": worker_index,
        "packets": queue.num_packets,
        "events": events,
        "elapsed": result.elapsed_seconds,
        "stats": result.regulator_stats,
        "regulator": capture_regulator(worker.regulator),
    }


def _fork_available() -> bool:
    """Whether the platform supports fork-based worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


class MultiCoreInstaMeasure:
    """Manager + N workers + shared WSAF.

    Args:
        num_workers: worker core count (the paper evaluates 1-4).
        config: per-worker engine configuration.  ``l1_memory_bytes`` is
            per worker, as in the paper ("the total memory usage is M times
            of the number of worker cores"); ``wsaf_entries`` is the single
            shared table (fixed at 2^20 for all of the paper's experiments).
        parallel: default execution mode for :meth:`process_trace` —
            ``True`` runs workers as forked OS processes, ``False`` runs
            them in-process.  Both modes are bit-identical.
    """

    def __init__(
        self,
        num_workers: int,
        config: "InstaMeasureConfig | None" = None,
        parallel: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.config = config or InstaMeasureConfig()
        self.parallel = parallel
        # The shared table honours ``config.wsaf_engine``: merged event
        # logs arrive as one big batch, which is exactly the shape the
        # batch-probed store is built for.
        self.wsaf = build_wsaf_table(self.config)
        self.workers: "list[InstaMeasure]" = []
        for worker_index in range(num_workers):
            worker_config = replace(
                self.config, seed=self.config.seed + worker_index * 0x9E37
            )
            worker = InstaMeasure(worker_config)
            worker.wsaf = self.wsaf  # all workers accumulate into one table
            self.workers.append(worker)
        self._stream: "_MultiCoreStream | None" = None

    def dispatch(self, trace: Trace) -> np.ndarray:
        """Per-packet worker assignment for ``trace``."""
        worker_by_flow = dispatch_array(trace.flows.src_ip, self.num_workers)
        return worker_by_flow[trace.flow_ids]

    # -- streaming ingestion (pipeline protocol) -----------------------------

    def ingest(
        self, chunk, on_accumulate: "AccumulateCallback | None" = None
    ) -> MultiCoreResult:
        """Dispatch one chunk to the workers' own ingest streams.

        Each worker consumes its slice of the chunk through
        :meth:`InstaMeasure.ingest` (so a worker's bit stream spans its
        whole queue, bit-identical to running the queue in one piece);
        the recorded insertion events are merged in global ``(timestamp,
        worker, sequence)`` order.  Events stamped strictly before the
        chunk's last timestamp are applied to the shared WSAF immediately
        — no later packet can precede them — while events at the boundary
        are held until time advances or :meth:`finalize`, which preserves
        the whole-trace merge order exactly.
        """
        from repro.pipeline.protocol import chunk_trace
        from repro.pipeline.source import Chunk

        trace = chunk_trace(chunk)
        if self._stream is None:
            parent = chunk if isinstance(chunk, Trace) else chunk.parent
            worker_by_flow = dispatch_array(
                trace.flows.src_ip, self.num_workers
            )
            if parent is not None:
                totals = np.bincount(
                    worker_by_flow[parent.flow_ids],
                    minlength=self.num_workers,
                ).tolist()
            else:
                totals = [None] * self.num_workers
            self._stream = _MultiCoreStream(
                worker_by_flow=worker_by_flow,
                worker_totals=totals,
                pending=[],
                worker_seq=[0] * self.num_workers,
                worker_packets=[0] * self.num_workers,
            )
        stream = self._stream
        if on_accumulate is not None:
            stream.on_accumulate = on_accumulate
        assignment = stream.worker_by_flow[trace.flow_ids]

        chunk_packets: "list[int]" = []
        chunk_results: "list[MeasurementResult]" = []
        for worker_index, worker in enumerate(self.workers):
            queue = _worker_queue(trace, assignment, worker_index)
            chunk_packets.append(queue.num_packets)
            stream.worker_packets[worker_index] += queue.num_packets
            if queue.num_packets == 0:
                # Nothing dispatched here this chunk; the worker's bit
                # stream does not advance, so skipping is exact.
                continue
            sub = Chunk(
                trace=queue,
                index=0,
                begin=0,
                end=queue.num_packets,
                total_packets=stream.worker_totals[worker_index],
            )
            try:
                result, events = _ingest_worker_recorded(worker, sub)
            finally:
                clear_kernel_caches(queue)
            result.wsaf = self.wsaf
            chunk_results.append(result)
            stream.pending.extend(
                tag_events(
                    events, worker_index, start_seq=stream.worker_seq[worker_index]
                )
            )
            stream.worker_seq[worker_index] += len(events)
        if trace.num_packets:
            self._apply_pending(stream, horizon=float(trace.timestamps[-1]))
        return MultiCoreResult(
            num_workers=self.num_workers,
            worker_packets=chunk_packets,
            worker_insertions=[
                result.regulator_stats.insertions for result in chunk_results
            ],
            worker_results=chunk_results,
            wsaf=self.wsaf,
        )

    def _apply_pending(
        self, stream: _MultiCoreStream, horizon: "float | None"
    ) -> None:
        """Apply merged events up to ``horizon`` (all of them when None)."""
        released, stream.pending = release_ordered(stream.pending, horizon)
        apply_events(self.wsaf, released, on_accumulate=stream.on_accumulate)

    def finalize(self) -> MultiCoreResult:
        """End the stream: flush held events, aggregate worker results."""
        stream = self._stream
        self._stream = None
        if stream is None:
            return MultiCoreResult(
                num_workers=self.num_workers,
                worker_packets=[0] * self.num_workers,
                worker_insertions=[0] * self.num_workers,
                worker_results=[],
                wsaf=self.wsaf,
            )
        self._apply_pending(stream, horizon=None)
        worker_results = []
        for worker in self.workers:
            result = worker.finalize()
            result.wsaf = self.wsaf
            worker_results.append(result)
        return MultiCoreResult(
            num_workers=self.num_workers,
            worker_packets=stream.worker_packets,
            worker_insertions=[
                result.regulator_stats.insertions for result in worker_results
            ],
            worker_results=worker_results,
            wsaf=self.wsaf,
        )

    def estimates(
        self, flow_keys=None
    ) -> "dict[int, tuple[float, float]]":
        """Shared-WSAF per-flow ``{key64: (packets, bytes)}`` estimates."""
        return self.wsaf.estimates(flow_keys=flow_keys)

    def process_trace(
        self,
        trace: Trace,
        on_accumulate: "AccumulateCallback | None" = None,
        parallel: "bool | None" = None,
    ) -> MultiCoreResult:
        """Process ``trace`` through the dispatcher and all workers.

        Workers consume their queues against private regulators, recording
        WSAF insertion events; the manager merges every log in
        ``(timestamp, worker, sequence)`` order and applies it to the
        shared table, so results do not depend on worker scheduling.
        ``parallel`` overrides the constructor's mode for this call;
        parallel runs fall back to in-process execution when the platform
        cannot fork or there is only one worker.
        """
        if parallel is None:
            parallel = self.parallel
        if not (parallel and self.num_workers > 1 and _fork_available()):
            # Sequential execution is one-chunk streaming: same dispatch,
            # same per-worker draws, same merge — exactly one run loop.
            self.ingest(trace, on_accumulate=on_accumulate)
            return self.finalize()
        assignment = self.dispatch(trace)
        runs = self._run_parallel(trace, assignment)

        merged = []
        for worker_index, (_, events, _) in enumerate(runs):
            merged.extend(tag_events(events, worker_index))
        released, _ = release_ordered(merged)
        apply_events(self.wsaf, released, on_accumulate=on_accumulate)
        return MultiCoreResult(
            num_workers=self.num_workers,
            worker_packets=[packets for packets, _, _ in runs],
            worker_insertions=[
                result.regulator_stats.insertions for _, _, result in runs
            ],
            worker_results=[result for _, _, result in runs],
            wsaf=self.wsaf,
        )

    def _run_parallel(self, trace: Trace, assignment: np.ndarray):
        """Run every worker as a forked process and re-install its state."""
        global _PARALLEL_STATE
        context = multiprocessing.get_context("fork")
        _PARALLEL_STATE = (self, trace, assignment)
        try:
            with context.Pool(processes=self.num_workers) as pool:
                payloads = pool.map(_parallel_worker, range(self.num_workers))
        finally:
            _PARALLEL_STATE = None
        runs = []
        for payload in sorted(payloads, key=lambda p: p["worker_index"]):
            worker = self.workers[payload["worker_index"]]
            # The child inherited this worker's pre-run state via fork, so
            # its cumulative regulator words/counters are authoritative.
            restore_regulator(worker.regulator, payload["regulator"])
            stats = payload["stats"]
            result = MeasurementResult(
                packets=payload["packets"],
                insertions=stats.insertions,
                elapsed_seconds=payload["elapsed"],
                regulator_stats=stats,
                wsaf=self.wsaf,
            )
            runs.append((payload["packets"], payload["events"], result))
        return runs

    def estimates_for(self, trace: Trace) -> "tuple[np.ndarray, np.ndarray]":
        """Per-flow (packets, bytes) estimates from the shared WSAF."""
        estimates_arrays = getattr(self.wsaf, "estimates_arrays", None)
        if estimates_arrays is not None:
            return estimates_arrays(trace.flows.key64)
        est_packets = np.zeros(trace.num_flows)
        est_bytes = np.zeros(trace.num_flows)
        table = self.wsaf.estimates(flow_keys=trace.flows.key64)
        for flow_index in range(trace.num_flows):
            record = table.get(int(trace.flows.key64[flow_index]))
            if record is not None:
                est_packets[flow_index] = record[0]
                est_bytes[flow_index] = record[1]
        return est_packets, est_bytes
