"""Multi-core InstaMeasure (Section IV-C).

A manager core assigns each packet to a worker queue keyed by the population
count of the packet's source IP address (``popcount(srcIP) mod n_workers``),
which gives flow→core affinity for free because a flow's source address
never changes.  Each worker owns an independent FlowRegulator ("we allocate
memory blocks exclusively to each worker core to avoid memory collision");
the WSAF is shared, which is safe because post-regulation insertions are
~1 % of packets.

This module reproduces the *logic* of that system: dispatch, per-worker
regulator state, shared WSAF, and the per-worker load shares that determine
scaling.  The *timing* of the system (Fig 9(a)'s Mpps-vs-cores curve and
Fig 12(c)'s utilization series) is produced by feeding these load shares to
:mod:`repro.simulate.costmodel` / :mod:`repro.simulate.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.instameasure import (
    AccumulateCallback,
    InstaMeasure,
    InstaMeasureConfig,
    MeasurementResult,
)
from repro.core.wsaf import WSAFTable
from repro.errors import ConfigurationError
from repro.hashing import popcount32
from repro.traffic.packet import Trace


def dispatch_worker(src_ip: int, num_workers: int) -> int:
    """The paper's dispatch rule: popcount of the source IP, mod workers."""
    return popcount32(src_ip) % num_workers


def dispatch_array(src_ips: np.ndarray, num_workers: int) -> np.ndarray:
    """Vectorized :func:`dispatch_worker` over a ``uint32`` array."""
    return (
        np.bitwise_count(src_ips.astype(np.uint32)).astype(np.int64) % num_workers
    )


@dataclass
class MultiCoreResult:
    """Outcome of a multi-core run."""

    num_workers: int
    worker_packets: "list[int]"
    worker_insertions: "list[int]"
    worker_results: "list[MeasurementResult]"
    wsaf: WSAFTable

    @property
    def packets(self) -> int:
        return sum(self.worker_packets)

    @property
    def insertions(self) -> int:
        return sum(self.worker_insertions)

    @property
    def regulation_rate(self) -> float:
        return self.insertions / self.packets if self.packets else 0.0

    @property
    def load_shares(self) -> "list[float]":
        """Fraction of packets each worker received."""
        total = self.packets
        if total == 0:
            return [0.0] * self.num_workers
        return [count / total for count in self.worker_packets]

    @property
    def max_load_share(self) -> float:
        """The busiest worker's share — the bottleneck of parallel scaling.

        With perfect balance this is ``1 / num_workers``; the popcount
        dispatcher over skewed real addresses does worse, which is why the
        paper's Fig 9(a) scaling is sublinear.
        """
        shares = self.load_shares
        return max(shares) if shares else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Throughput multiple over one core implied by the load balance."""
        max_share = self.max_load_share
        return 1.0 / max_share if max_share > 0 else float(self.num_workers)


class MultiCoreInstaMeasure:
    """Manager + N workers + shared WSAF.

    Args:
        num_workers: worker core count (the paper evaluates 1-4).
        config: per-worker engine configuration.  ``l1_memory_bytes`` is
            per worker, as in the paper ("the total memory usage is M times
            of the number of worker cores"); ``wsaf_entries`` is the single
            shared table (fixed at 2^20 for all of the paper's experiments).
    """

    def __init__(
        self, num_workers: int, config: "InstaMeasureConfig | None" = None
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.config = config or InstaMeasureConfig()
        self.wsaf = WSAFTable(
            num_entries=self.config.wsaf_entries,
            probe_limit=self.config.probe_limit,
            gc_timeout=self.config.gc_timeout,
            eviction_policy=self.config.eviction_policy,
        )
        self.workers: "list[InstaMeasure]" = []
        for worker_index in range(num_workers):
            worker_config = replace(
                self.config, seed=self.config.seed + worker_index * 0x9E37
            )
            worker = InstaMeasure(worker_config)
            worker.wsaf = self.wsaf  # all workers accumulate into one table
            self.workers.append(worker)

    def dispatch(self, trace: Trace) -> np.ndarray:
        """Per-packet worker assignment for ``trace``."""
        worker_by_flow = dispatch_array(trace.flows.src_ip, self.num_workers)
        return worker_by_flow[trace.flow_ids]

    def process_trace(
        self,
        trace: Trace,
        on_accumulate: "AccumulateCallback | None" = None,
    ) -> MultiCoreResult:
        """Process ``trace`` through the dispatcher and all workers.

        Workers are simulated sequentially (each consumes its queue in
        timestamp order), which yields the same regulator states and WSAF
        totals as a parallel execution because regulator state is
        worker-private and WSAF accumulations commute.
        """
        assignment = self.dispatch(trace)
        worker_packets: "list[int]" = []
        worker_insertions: "list[int]" = []
        worker_results: "list[MeasurementResult]" = []
        for worker_index, worker in enumerate(self.workers):
            mask = assignment == worker_index
            queue = Trace(
                timestamps=trace.timestamps[mask],
                flow_ids=trace.flow_ids[mask],
                sizes=trace.sizes[mask],
                flows=trace.flows,
            )
            result = worker.process_trace(queue, on_accumulate=on_accumulate)
            worker_packets.append(queue.num_packets)
            worker_insertions.append(result.regulator_stats.insertions)
            worker_results.append(result)
        return MultiCoreResult(
            num_workers=self.num_workers,
            worker_packets=worker_packets,
            worker_insertions=worker_insertions,
            worker_results=worker_results,
            wsaf=self.wsaf,
        )

    def estimates_for(self, trace: Trace) -> "tuple[np.ndarray, np.ndarray]":
        """Per-flow (packets, bytes) estimates from the shared WSAF."""
        est_packets = np.zeros(trace.num_flows)
        est_bytes = np.zeros(trace.num_flows)
        table = self.wsaf.estimates()
        for flow_index in range(trace.num_flows):
            record = table.get(int(trace.flows.key64[flow_index]))
            if record is not None:
                est_packets[flow_index] = record[0]
                est_bytes[flow_index] = record[1]
        return est_packets, est_bytes
