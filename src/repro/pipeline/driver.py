"""The :class:`Pipeline` driver — the repository's one run loop.

Feeds any :class:`~repro.pipeline.protocol.StreamingMeasurer` from any
:class:`~repro.pipeline.source.ChunkSource`, timing each ``ingest`` call,
firing an epoch callback at every epoch boundary (including empty epochs,
so periodic consumers see every tick), and returning the measurer's
finalized result together with per-chunk throughput stats.

The loop comes apart into :meth:`Pipeline.begin` / :meth:`Pipeline.step`
/ :meth:`Pipeline.finish` so a long-lived driver (the service daemon)
can push chunks one at a time — interleaving checkpoints and control
queries between steps — while :meth:`Pipeline.run` remains the one-call
batch form built on exactly those pieces.  Unbounded sources
(``total_packets is None``) are first-class: the epoch origin is picked
up lazily once the source has seen its first packet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.pipeline.control import ChunkGovernor, LoadController
from repro.pipeline.protocol import supports_rotate
from repro.pipeline.source import ChunkSource, as_chunk_source


@dataclass
class ChunkStats:
    """Timing of one ``ingest`` call."""

    index: int
    packets: int
    seconds: float
    epoch: int = 0

    @property
    def pps(self) -> float:
        return self.packets / self.seconds if self.seconds > 0 else 0.0


@dataclass
class EpochRecord:
    """One epoch boundary the driver fired.

    ``snapshot`` holds what the measurer's ``rotate(now)`` returned when
    the pipeline was built with ``rotate=True`` (and the measurer has the
    hook), else ``None``.
    """

    index: int
    end_time: float
    packets_so_far: int
    snapshot: "object | None" = None


@dataclass
class PipelineResult:
    """Outcome of one pipeline run.

    ``prefetch_stats`` carries the staging-queue counters
    (:class:`~repro.pipeline.prefetch.PrefetchStats`) when the run's
    source was a :class:`~repro.pipeline.prefetch.PrefetchChunkSource`,
    else ``None``.

    When the pipeline ran with a load controller, ``offered_packets``
    counts the packets the source offered (``packets`` counts what was
    actually ingested after shedding), ``decisions`` holds the
    controller's per-chunk
    :class:`~repro.pipeline.control.ControlDecisionRecord` entries
    (bounded by the driver's ``history``), and ``controller_stats`` is
    the aggregate :meth:`~repro.pipeline.control.ControllerStats.as_dict`.
    Without a controller ``offered_packets == packets`` and the other
    two stay empty/``None``.
    """

    result: object
    measurer: object
    packets: int
    chunks: "list[ChunkStats]" = field(default_factory=list)
    epochs: "list[EpochRecord]" = field(default_factory=list)
    prefetch_stats: "object | None" = None
    offered_packets: int = 0
    decisions: list = field(default_factory=list)
    controller_stats: "dict | None" = None

    @property
    def elapsed_seconds(self) -> float:
        """Total time spent inside ``ingest`` (source slicing excluded)."""
        return sum(chunk.seconds for chunk in self.chunks)

    @property
    def pps(self) -> float:
        elapsed = self.elapsed_seconds
        return self.packets / elapsed if elapsed > 0 else 0.0


@dataclass
class _RunState:
    """Bookkeeping of one in-progress :meth:`Pipeline.begin` run."""

    source: "object | None"
    epoch_seconds: "float | None"
    start_time: "float | None"
    current_epoch: int = 0
    packets: int = 0
    offered_packets: int = 0
    ingest_seconds: float = 0.0
    last_ingest_seconds: float = 0.0
    saw_chunk: bool = False
    chunks: "list[ChunkStats]" = field(default_factory=list)
    epochs: "list[EpochRecord]" = field(default_factory=list)
    governor: "ChunkGovernor | None" = None


class Pipeline:
    """Drive a streaming measurer over a chunked packet stream.

    Args:
        measurer: any :class:`~repro.pipeline.protocol.StreamingMeasurer`.
        epoch_seconds: when given (and :meth:`run` receives a bare trace),
            the source splits chunks on epoch boundaries this wide and the
            driver fires ``on_epoch`` at every boundary.  A source that
            already splits on epochs triggers the same callbacks.
        on_epoch: ``callback(record, measurer)`` fired once per epoch, in
            order, after the epoch's last chunk was ingested (empty epochs
            fire too).  The final partial epoch fires before ``finalize``.
        rotate: call the measurer's optional ``rotate(end_time)`` at each
            boundary and store its snapshot on the
            :class:`EpochRecord` (periodic maintenance for long runs).
        on_accumulate: forwarded to ``ingest`` for measurers that accept
            an accumulation callback (the InstaMeasure engines); leave
            ``None`` for measurers that do not.
        on_chunk: ``callback(stats)`` after each chunk (progress hook).
        history: keep at most this many :class:`ChunkStats` /
            :class:`EpochRecord` entries (oldest dropped); ``None`` keeps
            everything.  An always-on driver must bound these lists or an
            unbounded run grows without limit — aggregate counters
            (``packets`` etc.) are unaffected by trimming.
        controller: an optional
            :class:`~repro.pipeline.control.LoadController`.  When given,
            the driver consults it between chunks: :meth:`step` may thin
            or drop the chunk, or stage it toward a coalesced batch
            ingest (and then returns ``None`` for the deferred step).
            ``None`` keeps the historical zero-overhead path, bit for
            bit.
    """

    def __init__(
        self,
        measurer,
        epoch_seconds: "float | None" = None,
        on_epoch=None,
        rotate: bool = False,
        on_accumulate=None,
        on_chunk=None,
        history: "int | None" = None,
        controller: "LoadController | None" = None,
    ) -> None:
        self.measurer = measurer
        self.epoch_seconds = epoch_seconds
        self.on_epoch = on_epoch
        self.rotate = rotate
        self.on_accumulate = on_accumulate
        self.on_chunk = on_chunk
        if history is not None and history < 1:
            raise ConfigurationError("history must be a positive count or None")
        self.history = history
        self.controller = controller
        self._run: "_RunState | None" = None

    # -- incremental interface -------------------------------------------------

    @property
    def active_epoch(self) -> "int | None":
        """Index of the epoch the in-progress run is inside (None between
        runs) — what a checkpoint must record to resume rotation cadence."""
        if self._run is None:
            return None
        return self._run.current_epoch

    def begin(
        self,
        source=None,
        epoch_seconds: "float | None" = None,
        start_time: "float | None" = None,
        first_epoch: int = 0,
    ) -> None:
        """Open an incremental run; feed it with :meth:`step`.

        ``source`` (optional) supplies the epoch geometry — its
        ``epoch_seconds`` and ``start_time`` — exactly as :meth:`run`
        would read them; explicit arguments override, which is also how a
        sourceless driver (chunks pushed from elsewhere) declares its
        epochs.  A still-unknown ``start_time`` (unbounded source waiting
        for its first packet) is re-read at the first epoch boundary.
        ``first_epoch`` resumes the epoch counter mid-sequence — the
        recovery path: a daemon restarting from a checkpoint continues
        the rotation cadence instead of re-firing past epochs.
        """
        if self._run is not None:
            raise ConfigurationError(
                "a pipeline run is already in progress; finish() or abort() it"
            )
        if epoch_seconds is None:
            epoch_seconds = (
                source.epoch_seconds if source is not None else self.epoch_seconds
            )
        if start_time is None and source is not None:
            start_time = source.start_time
        self._run = _RunState(
            source=source,
            epoch_seconds=epoch_seconds,
            start_time=start_time,
            current_epoch=first_epoch,
            governor=(
                ChunkGovernor(self.controller, history=self.history)
                if self.controller is not None
                else None
            ),
        )

    def step(self, chunk) -> "ChunkStats | None":
        """Ingest one chunk, firing any epoch boundaries it crossed.

        With a load controller the chunk is first run through the
        governor: the returned stats cover what was actually ingested
        this step, and ``None`` means the step deferred (the chunk was
        staged toward a batch, or shed entirely).
        """
        run = self._run
        if run is None:
            raise ConfigurationError("no run in progress; begin() first")
        if run.epoch_seconds is not None and run.current_epoch < chunk.epoch:
            # Any staged batch belongs to an earlier epoch: ingest it
            # before firing the boundary callbacks it precedes.
            self._flush_pending(run)
            while run.current_epoch < chunk.epoch:
                self._fire(run, run.current_epoch)
                run.current_epoch += 1
        run.offered_packets += chunk.num_packets
        governor = run.governor
        if governor is None:
            return self._ingest(run, chunk)
        ready = governor.admit(
            chunk,
            ingested_pps=(
                run.packets / run.ingest_seconds
                if run.ingest_seconds > 0
                else 0.0
            ),
            queue_depth=int(getattr(run.source, "queue_depth", 0) or 0),
            ingest_seconds=run.last_ingest_seconds,
        )
        stats = None
        for item in ready:
            stats = self._ingest(run, item)
        return stats

    def _ingest(self, run: _RunState, chunk) -> ChunkStats:
        """Time one actual ``ingest`` call and record its stats."""
        measurer = self.measurer
        begin = time.perf_counter()
        if self.on_accumulate is not None:
            measurer.ingest(chunk, on_accumulate=self.on_accumulate)
        else:
            measurer.ingest(chunk)
        seconds = time.perf_counter() - begin
        run.packets += chunk.num_packets
        run.ingest_seconds += seconds
        run.last_ingest_seconds = seconds
        run.saw_chunk = True
        stats = ChunkStats(
            index=chunk.index,
            packets=chunk.num_packets,
            seconds=seconds,
            epoch=chunk.epoch,
        )
        run.chunks.append(stats)
        self._trim(run.chunks)
        if self.on_chunk is not None:
            self.on_chunk(stats)
        return stats

    def _flush_pending(self, run: _RunState) -> "ChunkStats | None":
        if run.governor is None:
            return None
        chunk = run.governor.flush()
        if chunk is None:
            return None
        return self._ingest(run, chunk)

    def flush_pending(self) -> "ChunkStats | None":
        """Ingest any batch the governor has staged, right now.

        The daemon calls this before checkpointing: a checkpoint's
        stream position covers every chunk already stepped, so staged
        packets must reach the measurer before the state is persisted.
        No-op (``None``) without a controller or staged chunks.
        """
        run = self._run
        if run is None:
            raise ConfigurationError("no run in progress; begin() first")
        return self._flush_pending(run)

    @property
    def controller_stats(self) -> "dict | None":
        """Live aggregate controller stats of the in-progress run."""
        run = self._run
        if run is None or run.governor is None:
            return None
        return run.governor.stats.as_dict()

    @property
    def ingested_packets(self) -> int:
        """Packets actually ingested by the in-progress run (0 between
        runs) — differs from the offered count when a controller sheds."""
        run = self._run
        return run.packets if run is not None else 0

    @property
    def run_ingest_seconds(self) -> float:
        """Cumulative wall-clock seconds inside ``ingest`` this run."""
        run = self._run
        return run.ingest_seconds if run is not None else 0.0

    def finish(self) -> PipelineResult:
        """Fire the final partial epoch, finalize the measurer, report."""
        run = self._run
        if run is None:
            raise ConfigurationError("no run in progress; begin() first")
        self._flush_pending(run)
        self._run = None
        if run.epoch_seconds is not None and run.saw_chunk:
            self._fire(run, run.current_epoch)
        result = self.measurer.finalize()
        return PipelineResult(
            result=result,
            measurer=self.measurer,
            packets=run.packets,
            chunks=run.chunks,
            epochs=run.epochs,
            prefetch_stats=getattr(run.source, "prefetch_stats", None),
            offered_packets=run.offered_packets,
            decisions=(
                list(run.governor.decisions) if run.governor is not None else []
            ),
            controller_stats=(
                run.governor.stats.as_dict()
                if run.governor is not None
                else None
            ),
        )

    def abort(self) -> None:
        """Discard an in-progress run without finalizing the measurer.

        The error path of :meth:`run` (and of a crashing daemon): the
        measurer keeps whatever state it reached — a later snapshot or
        ``finalize`` still sees it — but the driver is ready for a fresh
        :meth:`begin`.
        """
        self._run = None

    def _fire(self, run: _RunState, epoch_index: int) -> None:
        if run.start_time is None and run.source is not None:
            # Unbounded sources learn their origin from the first packet,
            # after begin() already sampled it — re-read now that the
            # stream is flowing.
            run.start_time = run.source.start_time
        end_time = (
            run.start_time + (epoch_index + 1) * run.epoch_seconds
            if run.start_time is not None
            else float(epoch_index + 1)
        )
        snapshot = None
        if self.rotate and supports_rotate(self.measurer):
            snapshot = self.measurer.rotate(end_time)
        record = EpochRecord(
            index=epoch_index,
            end_time=end_time,
            packets_so_far=run.packets,
            snapshot=snapshot,
        )
        run.epochs.append(record)
        self._trim(run.epochs)
        if self.on_epoch is not None:
            self.on_epoch(record, self.measurer)

    def _trim(self, records: list) -> None:
        if self.history is not None and len(records) > self.history:
            del records[: len(records) - self.history]

    # -- batch interface ---------------------------------------------------------

    def run(self, source, chunk_size: "int | None" = None) -> PipelineResult:
        """Ingest every chunk of ``source`` and finalize.

        ``source`` is a :class:`~repro.pipeline.source.ChunkSource` or a
        bare :class:`~repro.traffic.packet.Trace` (sliced with
        ``chunk_size``, defaulting to the measurer's configured
        ``chunk_size`` when it has one).
        """
        if isinstance(source, ChunkSource):
            source = as_chunk_source(source)
        else:
            if chunk_size is None:
                config = getattr(self.measurer, "config", None)
                chunk_size = getattr(config, "chunk_size", None)
            source = as_chunk_source(
                source, chunk_size=chunk_size, epoch_seconds=self.epoch_seconds
            )
        self.begin(source)
        try:
            for chunk in source:
                self.step(chunk)
        except BaseException:
            self.abort()
            raise
        return self.finish()


def run_pipeline(
    measurer,
    source,
    chunk_size: "int | None" = None,
    epoch_seconds: "float | None" = None,
    on_epoch=None,
    rotate: bool = False,
    on_accumulate=None,
    controller: "LoadController | None" = None,
) -> PipelineResult:
    """One-shot convenience: build a :class:`Pipeline` and run it."""
    return Pipeline(
        measurer,
        epoch_seconds=epoch_seconds,
        on_epoch=on_epoch,
        rotate=rotate,
        on_accumulate=on_accumulate,
        controller=controller,
    ).run(source, chunk_size=chunk_size)
