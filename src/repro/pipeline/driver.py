"""The :class:`Pipeline` driver — the repository's one run loop.

Feeds any :class:`~repro.pipeline.protocol.StreamingMeasurer` from any
:class:`~repro.pipeline.source.ChunkSource`, timing each ``ingest`` call,
firing an epoch callback at every epoch boundary (including empty epochs,
so periodic consumers see every tick), and returning the measurer's
finalized result together with per-chunk throughput stats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.pipeline.protocol import supports_rotate
from repro.pipeline.source import ChunkSource, as_chunk_source


@dataclass
class ChunkStats:
    """Timing of one ``ingest`` call."""

    index: int
    packets: int
    seconds: float
    epoch: int = 0

    @property
    def pps(self) -> float:
        return self.packets / self.seconds if self.seconds > 0 else 0.0


@dataclass
class EpochRecord:
    """One epoch boundary the driver fired.

    ``snapshot`` holds what the measurer's ``rotate(now)`` returned when
    the pipeline was built with ``rotate=True`` (and the measurer has the
    hook), else ``None``.
    """

    index: int
    end_time: float
    packets_so_far: int
    snapshot: "object | None" = None


@dataclass
class PipelineResult:
    """Outcome of one pipeline run.

    ``prefetch_stats`` carries the staging-queue counters
    (:class:`~repro.pipeline.prefetch.PrefetchStats`) when the run's
    source was a :class:`~repro.pipeline.prefetch.PrefetchChunkSource`,
    else ``None``.
    """

    result: object
    measurer: object
    packets: int
    chunks: "list[ChunkStats]" = field(default_factory=list)
    epochs: "list[EpochRecord]" = field(default_factory=list)
    prefetch_stats: "object | None" = None

    @property
    def elapsed_seconds(self) -> float:
        """Total time spent inside ``ingest`` (source slicing excluded)."""
        return sum(chunk.seconds for chunk in self.chunks)

    @property
    def pps(self) -> float:
        elapsed = self.elapsed_seconds
        return self.packets / elapsed if elapsed > 0 else 0.0


class Pipeline:
    """Drive a streaming measurer over a chunked packet stream.

    Args:
        measurer: any :class:`~repro.pipeline.protocol.StreamingMeasurer`.
        epoch_seconds: when given (and :meth:`run` receives a bare trace),
            the source splits chunks on epoch boundaries this wide and the
            driver fires ``on_epoch`` at every boundary.  A source that
            already splits on epochs triggers the same callbacks.
        on_epoch: ``callback(record, measurer)`` fired once per epoch, in
            order, after the epoch's last chunk was ingested (empty epochs
            fire too).  The final partial epoch fires before ``finalize``.
        rotate: call the measurer's optional ``rotate(end_time)`` at each
            boundary and store its snapshot on the
            :class:`EpochRecord` (periodic maintenance for long runs).
        on_accumulate: forwarded to ``ingest`` for measurers that accept
            an accumulation callback (the InstaMeasure engines); leave
            ``None`` for measurers that do not.
        on_chunk: ``callback(stats)`` after each chunk (progress hook).
    """

    def __init__(
        self,
        measurer,
        epoch_seconds: "float | None" = None,
        on_epoch=None,
        rotate: bool = False,
        on_accumulate=None,
        on_chunk=None,
    ) -> None:
        self.measurer = measurer
        self.epoch_seconds = epoch_seconds
        self.on_epoch = on_epoch
        self.rotate = rotate
        self.on_accumulate = on_accumulate
        self.on_chunk = on_chunk

    def run(self, source, chunk_size: "int | None" = None) -> PipelineResult:
        """Ingest every chunk of ``source`` and finalize.

        ``source`` is a :class:`~repro.pipeline.source.ChunkSource` or a
        bare :class:`~repro.traffic.packet.Trace` (sliced with
        ``chunk_size``, defaulting to the measurer's configured
        ``chunk_size`` when it has one).
        """
        if isinstance(source, ChunkSource):
            source = as_chunk_source(source)
        else:
            if chunk_size is None:
                config = getattr(self.measurer, "config", None)
                chunk_size = getattr(config, "chunk_size", None)
            source = as_chunk_source(
                source, chunk_size=chunk_size, epoch_seconds=self.epoch_seconds
            )
        measurer = self.measurer
        epoch_seconds = source.epoch_seconds
        epoched = epoch_seconds is not None
        start_time = source.start_time

        chunks: "list[ChunkStats]" = []
        epochs: "list[EpochRecord]" = []
        packets = 0
        current_epoch = 0

        def fire(epoch_index: int) -> None:
            end_time = (
                start_time + (epoch_index + 1) * epoch_seconds
                if start_time is not None
                else float(epoch_index + 1)
            )
            snapshot = None
            if self.rotate and supports_rotate(measurer):
                snapshot = measurer.rotate(end_time)
            record = EpochRecord(
                index=epoch_index,
                end_time=end_time,
                packets_so_far=packets,
                snapshot=snapshot,
            )
            epochs.append(record)
            if self.on_epoch is not None:
                self.on_epoch(record, measurer)

        saw_chunk = False
        for chunk in source:
            saw_chunk = True
            if epoched:
                while current_epoch < chunk.epoch:
                    fire(current_epoch)
                    current_epoch += 1
            begin = time.perf_counter()
            if self.on_accumulate is not None:
                measurer.ingest(chunk, on_accumulate=self.on_accumulate)
            else:
                measurer.ingest(chunk)
            seconds = time.perf_counter() - begin
            packets += chunk.num_packets
            stats = ChunkStats(
                index=chunk.index,
                packets=chunk.num_packets,
                seconds=seconds,
                epoch=chunk.epoch,
            )
            chunks.append(stats)
            if self.on_chunk is not None:
                self.on_chunk(stats)
        if epoched and saw_chunk:
            fire(current_epoch)

        result = measurer.finalize()
        return PipelineResult(
            result=result,
            measurer=measurer,
            packets=packets,
            chunks=chunks,
            epochs=epochs,
            prefetch_stats=getattr(source, "prefetch_stats", None),
        )


def run_pipeline(
    measurer,
    source,
    chunk_size: "int | None" = None,
    epoch_seconds: "float | None" = None,
    on_epoch=None,
    rotate: bool = False,
    on_accumulate=None,
) -> PipelineResult:
    """One-shot convenience: build a :class:`Pipeline` and run it."""
    return Pipeline(
        measurer,
        epoch_seconds=epoch_seconds,
        on_epoch=on_epoch,
        rotate=rotate,
        on_accumulate=on_accumulate,
    ).run(source, chunk_size=chunk_size)
