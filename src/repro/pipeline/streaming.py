"""Unbounded chunk sources — the always-on service's inputs.

:class:`TraceChunkSource` slices a trace that is already whole; a live
measurement point has no such thing.  The sources here produce the same
:class:`~repro.pipeline.source.Chunk` stream from inputs whose end is
unknown (``total_packets is None``): a pcap-lite file that a capture
process is still appending to (:class:`PacketRecordChunkSource`, with a
tail/follow mode) and a TCP feed of pcap-lite records
(:class:`SocketChunkSource`).

Chunks are cut on the same two boundaries as the batch source — a packet
budget and, with ``epoch_seconds``, epoch time boundaries — so the
driver's rotation callbacks fire exactly between chunks here too.  An
epoch cut is only taken once the boundary-crossing packet has actually
arrived (the epoch's end is proven); end-of-stream or :meth:`stop`
flushes the rest.  Each chunk carries its own arrival-deduplicated
:class:`~repro.traffic.packet.FlowTable` built vectorized from the raw
records, so per-chunk cost stays bounded no matter how many distinct
flows the stream has seen in total.

Both sources support an epoch-origin override (``start_time``) and a
resume position, which is how a recovering daemon replays the tail of a
stream with the exact chunk/epoch geometry the crashed run used.
"""

from __future__ import annotations

import socket
import threading

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.pipeline.source import Chunk, ChunkSource
from repro.traffic.packet import FlowTable, Trace
from repro.traffic.pcaplite import (
    FORMAT_VERSION,
    HEADER_BYTES,
    MAGIC,
    RECORD_BYTES,
    RECORD_DTYPE,
    PacketRecordReader,
    _HEADER,
)

#: Default packets per streaming chunk — far smaller than the batch
#: default (1 << 20): a live source should surface packets with bounded
#: latency, not wait for a million of them.
DEFAULT_STREAM_CHUNK = 8192

_EMPTY = np.empty(0, dtype=RECORD_DTYPE)

#: Two-u64 key pair for vectorized 5-tuple dedup (packed with the same
#: bit layout FlowTable._compute_keys folds, so unpacking is exact).
_PAIR_DTYPE = np.dtype([("hi", "<u8"), ("lo", "<u8")])


def trace_from_records(records: np.ndarray, hash_seed: int = 0) -> Trace:
    """Columnar trace from a block of pcap-lite records.

    Flows are deduplicated vectorized (no Python loop over packets): the
    5-tuple is packed into a (hi, lo) u64 pair, ``np.unique`` builds the
    flow table and the per-packet flow ids in one pass, and the columns
    are unpacked back out of the unique pairs.  Flow order is the pairs'
    sort order — flow *indices* carry no meaning anywhere downstream
    (identity is ``key64``), only the per-packet mapping matters.
    """
    src = records["src_ip"].astype(np.uint64)
    dst = records["dst_ip"].astype(np.uint64)
    hi = (src << np.uint64(8)) | (dst >> np.uint64(24))
    lo = (
        ((dst & np.uint64(0xFFFFFF)) << np.uint64(40))
        | (records["src_port"].astype(np.uint64) << np.uint64(24))
        | (records["dst_port"].astype(np.uint64) << np.uint64(8))
        | records["protocol"].astype(np.uint64)
    )
    pairs = np.empty(len(records), dtype=_PAIR_DTYPE)
    pairs["hi"] = hi
    pairs["lo"] = lo
    unique, flow_ids = np.unique(pairs, return_inverse=True)
    uhi = unique["hi"]
    ulo = unique["lo"]
    flows = FlowTable(
        src_ip=(uhi >> np.uint64(8)).astype(np.uint32),
        dst_ip=(
            ((uhi & np.uint64(0xFF)) << np.uint64(24))
            | (ulo >> np.uint64(40))
        ).astype(np.uint32),
        src_port=((ulo >> np.uint64(24)) & np.uint64(0xFFFF)).astype(np.uint16),
        dst_port=((ulo >> np.uint64(8)) & np.uint64(0xFFFF)).astype(np.uint16),
        protocol=(ulo & np.uint64(0xFF)).astype(np.uint8),
        hash_seed=hash_seed,
    )
    return Trace(
        timestamps=records["timestamp"].astype(np.float64),
        flow_ids=flow_ids.reshape(-1).astype(np.int64),
        sizes=records["size"].astype(np.int64),
        flows=flows,
    )


class StreamingChunkSource(ChunkSource):
    """Shared batching/cutting logic of the unbounded sources.

    Subclasses implement ``_open()``, ``_close()``, and
    ``_read_more() -> np.ndarray | None`` — an empty array means
    "nothing *yet*" (the base waits ``poll_interval`` and retries),
    ``None`` means the stream definitively ended.

    ``start_time`` fixes the epoch origin up front (recovery override);
    otherwise the first record's timestamp becomes epoch 0's start.
    ``start_offset`` numbers the first emitted packet — chunk
    ``begin``/``end`` indices continue a checkpointed stream's count.
    """

    total_packets = None

    def __init__(
        self,
        chunk_size: int = DEFAULT_STREAM_CHUNK,
        epoch_seconds: "float | None" = None,
        poll_interval: float = 0.05,
        hash_seed: int = 0,
        start_offset: int = 0,
        start_time: "float | None" = None,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if epoch_seconds is not None and epoch_seconds <= 0:
            raise ConfigurationError("epoch_seconds must be positive")
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        if start_offset < 0:
            raise ConfigurationError("start_offset must be >= 0")
        self.chunk_size = int(chunk_size)
        self.epoch_seconds = epoch_seconds
        self.poll_interval = poll_interval
        self.hash_seed = hash_seed
        self.start_time = start_time
        self._start_offset = int(start_offset)
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the iteration to end at the next poll (graceful drain:
        records already buffered still come out as final chunks)."""
        self._stop.set()

    def seek_packets(self, offset: int) -> None:
        """Start the next iteration at stream position ``offset`` — the
        recovery path.  Sources that cannot seek (live feeds) raise."""
        raise ConfigurationError(
            f"{type(self).__name__} cannot seek; recovery needs a "
            "replayable source (a pcap-lite file)"
        )

    # -- subclass surface ------------------------------------------------------

    def _open(self) -> None:
        raise NotImplementedError

    def _read_more(self) -> "np.ndarray | None":
        raise NotImplementedError

    def _close(self) -> None:
        raise NotImplementedError

    # -- batching --------------------------------------------------------------

    def _cut_ready(
        self, pending: np.ndarray, flush: bool, position: int
    ) -> "int | None":
        """Where to cut the next chunk, or None while more data is needed.

        The earlier of the packet budget and the first *proven* epoch
        boundary (the crossing packet has arrived).  The budget aligns to
        the global ``k * chunk_size`` grid of stream position, not to the
        previous cut, so the chunk sequence is exactly the one
        :class:`~repro.pipeline.source.TraceChunkSource` would produce
        from the equivalent loaded trace.  ``flush`` takes whatever is
        left instead of waiting for a full budget.
        """
        n = len(pending)
        if n == 0:
            return None
        budget = self.chunk_size - (position % self.chunk_size)
        cut = budget if n >= budget else (n if flush else None)
        if self.epoch_seconds is not None and self.start_time is not None:
            ts = pending["timestamp"]
            first_epoch = int(
                (float(ts[0]) - self.start_time) // self.epoch_seconds
            )
            boundary = self.start_time + (first_epoch + 1) * self.epoch_seconds
            cross = int(np.searchsorted(ts, boundary, side="left"))
            if cross < n:
                cut = cross if cut is None else min(cut, cross)
        return cut

    def _make_chunk(self, records: np.ndarray, index: int, begin: int) -> Chunk:
        epoch = 0
        if self.epoch_seconds is not None and self.start_time is not None:
            epoch = int(
                (float(records["timestamp"][0]) - self.start_time)
                // self.epoch_seconds
            )
        return Chunk(
            trace=trace_from_records(records, hash_seed=self.hash_seed),
            index=index,
            begin=begin,
            end=begin + len(records),
            epoch=epoch,
            total_packets=None,
        )

    def __iter__(self):
        self._open()
        pending = _EMPTY
        consumed = self._start_offset
        index = 0
        try:
            ended = False
            while not ended and not self._stop.is_set():
                block = self._read_more()
                if block is None:
                    ended = True
                elif len(block):
                    if self.start_time is None:
                        self.start_time = float(block["timestamp"][0])
                    pending = (
                        np.concatenate([pending, block])
                        if len(pending)
                        else np.array(block)
                    )
                else:
                    self._stop.wait(self.poll_interval)
                    continue
                while True:
                    cut = self._cut_ready(pending, flush=False, position=consumed)
                    if cut is None:
                        break
                    yield self._make_chunk(pending[:cut], index, consumed)
                    consumed += cut
                    index += 1
                    pending = pending[cut:]
            # End of stream (or stop): flush the remainder, still cutting
            # on epoch boundaries so rotations fire in order.
            while len(pending):
                cut = self._cut_ready(pending, flush=True, position=consumed)
                yield self._make_chunk(pending[:cut], index, consumed)
                consumed += cut
                index += 1
                pending = pending[cut:]
        finally:
            self._close()


class PacketRecordChunkSource(StreamingChunkSource):
    """Chunk a pcap-lite file, optionally tailing it as it grows.

    Without ``follow``, iteration ends at the current end of file — the
    batch shape, but streamed in bounded blocks rather than materialized
    whole.  With ``follow``, end of file just means "no records yet":
    the source polls (every ``poll_interval`` seconds) for appended
    records until :meth:`stop` is called, tolerating a partially
    flushed trailing record mid-append.

    ``start_record`` skips that many records first (and numbers emitted
    packets from there), which with the ``start_time`` epoch-origin
    override replays the tail of a checkpointed stream exactly.
    """

    def __init__(
        self,
        path: str,
        chunk_size: int = DEFAULT_STREAM_CHUNK,
        epoch_seconds: "float | None" = None,
        follow: bool = False,
        poll_interval: float = 0.05,
        start_record: int = 0,
        start_time: "float | None" = None,
        hash_seed: int = 0,
        block_records: int = DEFAULT_STREAM_CHUNK,
    ) -> None:
        super().__init__(
            chunk_size=chunk_size,
            epoch_seconds=epoch_seconds,
            poll_interval=poll_interval,
            hash_seed=hash_seed,
            start_offset=start_record,
            start_time=start_time,
        )
        if block_records < 1:
            raise ConfigurationError("block_records must be >= 1")
        self.path = path
        self.follow = follow
        self.block_records = int(block_records)
        self._reader: "PacketRecordReader | None" = None

    def seek_packets(self, offset: int) -> None:
        if offset < 0:
            raise ConfigurationError("seek offset must be >= 0")
        self._start_offset = int(offset)

    def _open(self) -> None:
        self._reader = PacketRecordReader(self.path)
        if self._start_offset:
            self._reader.seek_record(self._start_offset)

    def _read_more(self) -> "np.ndarray | None":
        block = self._reader.read_block(self.block_records)
        if len(block) == 0 and not self.follow:
            return None
        return block

    def _close(self) -> None:
        reader, self._reader = self._reader, None
        if reader is not None:
            reader.close()


class SocketChunkSource(StreamingChunkSource):
    """pcap-lite records over a TCP byte stream (a live record feed).

    The wire format is the file format minus the filesystem: the sender
    writes the 16-byte pcap-lite header once, then raw 24-byte records.
    Iteration ends when the sender closes the connection or on
    :meth:`stop`; a live feed cannot seek, so a daemon recovering from a
    checkpoint accepts the gap (and says so) rather than replaying.
    """

    def __init__(
        self,
        host: str,
        port: int,
        chunk_size: int = DEFAULT_STREAM_CHUNK,
        epoch_seconds: "float | None" = None,
        poll_interval: float = 0.05,
        hash_seed: int = 0,
        start_time: "float | None" = None,
        connect_timeout: float = 10.0,
    ) -> None:
        super().__init__(
            chunk_size=chunk_size,
            epoch_seconds=epoch_seconds,
            poll_interval=poll_interval,
            hash_seed=hash_seed,
            start_time=start_time,
        )
        self.host = host
        self.port = int(port)
        self.connect_timeout = connect_timeout
        self._sock: "socket.socket | None" = None
        self._buffer = b""
        self._header_done = False

    def _open(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        self._sock.settimeout(self.poll_interval)
        self._buffer = b""
        self._header_done = False

    def _read_more(self) -> "np.ndarray | None":
        try:
            piece = self._sock.recv(1 << 16)
        except (socket.timeout, TimeoutError):
            return _EMPTY
        if not piece:
            if self._buffer and self._header_done:
                # A dangling partial record at EOF is a sender bug, not
                # a mid-append state — there is no more data coming.
                raise TraceFormatError(
                    f"record feed ended mid-record ({len(self._buffer)} "
                    f"trailing bytes)"
                )
            return None
        self._buffer += piece
        if not self._header_done:
            if len(self._buffer) < HEADER_BYTES:
                return _EMPTY
            magic, version, _reserved = _HEADER.unpack(
                self._buffer[:HEADER_BYTES]
            )
            if magic != MAGIC:
                raise TraceFormatError("record feed is not pcap-lite")
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"record feed is pcap-lite version {version}, "
                    f"expected {FORMAT_VERSION}"
                )
            self._buffer = self._buffer[HEADER_BYTES:]
            self._header_done = True
        complete = len(self._buffer) // RECORD_BYTES
        if complete == 0:
            return _EMPTY
        cut = complete * RECORD_BYTES
        data, self._buffer = self._buffer[:cut], self._buffer[cut:]
        return np.frombuffer(data, dtype=RECORD_DTYPE)

    def _close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            sock.close()
