"""Closed-loop backpressure control for the ingestion pipeline.

The drivers historically pulled chunks as fast as the source produced
them; when the offered rate exceeded what the measurer could sustain,
the only loss model was the open-loop :class:`~repro.simulate.linkmodel.
MirrorPort` pre-pass — overload silently degraded accuracy with no
policy and no score.  This module closes the loop:

* :class:`LoadSignal` is the per-chunk observation the driver hands the
  controller between chunks: the offered rate on the *stream clock*
  (packets over the span of trace timestamps the chunk covers), the
  measured ingest rate and per-chunk ingest seconds (from the same
  timings :class:`~repro.pipeline.driver.PipelineResult` reports), and
  the staging-queue depth when the source is a
  :class:`~repro.pipeline.prefetch.PrefetchChunkSource`.
* :class:`LoadController` is the policy protocol: ``decide(signal)``
  returns a :class:`ControlDecision`.  Three policies ship —
  :class:`NoLoadController` (``none``: today's behavior, byte-for-byte),
  :class:`ShedController` (``shed``: deterministic seed-stable packet
  sampling down to a target rate), and :class:`DegradeController`
  (``degrade``: switch the running engine to a cheaper mode — larger
  chunk batching, which amortizes per-chunk dispatch overhead and is
  bit-exact by the chunking-invariance guarantee — plus capped thinning
  when batching alone cannot absorb the load, restoring pass-through
  once pressure clears).
* :class:`ChunkGovernor` is the mechanism both drivers share: it builds
  the signal, applies the decision (thin / drop / stage for a coalesced
  batch ingest), and keeps the running
  :class:`ControllerStats` and bounded decision history that
  ``PipelineResult`` / ``ShardedResult`` / ``MeasurementDaemon.stats()``
  surface.

Determinism guarantee for ``shed``
----------------------------------

Shedding decisions depend **only** on the stream clock (trace
timestamps) and the configured target — never on wall-clock timings —
and the packet sampling mask is a pure function of ``(seed, global
packet position)`` via :func:`repro.hashing.mix.hash_u64_array`.  Two
runs over the same trace and offered-rate schedule with the same seed
therefore keep exactly the same packets and produce byte-identical
snapshots, and the mask does not change when the chunk geometry does.

Kept packets are *rebased* onto a dense "kept stream": the chunk a
measurer actually ingests spans ``[kept_offset, kept_offset + kept)``,
so known-length sharded runs that gather randomness by position consume
exactly the bits a single-process shed run hands the same packets.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.mix import hash_u64_array
from repro.pipeline.source import Chunk
from repro.traffic.packet import Trace

#: Policy names `build_load_controller` (and the CLI) accept.
LOAD_POLICY_CHOICES = ("none", "shed", "degrade")


@dataclass(frozen=True)
class LoadSignal:
    """What the driver observes between two chunks.

    Attributes:
        chunk_index: the incoming chunk's stream index.
        offered_packets: packets in the incoming chunk.
        offered_pps: offered rate on the *stream clock* — the chunk's
            packets over the timestamp span it covers (since the
            previous chunk's last packet).  ``inf`` when the span is
            zero.  Deterministic: replaying the same trace yields the
            same signal, which is what keeps ``shed`` reproducible.
        ingested_pps: measured ingest rate so far this run (packets per
            wall-clock second inside ``ingest``); 0 before any chunk.
        queue_depth: chunks staged in the prefetch queue, when the
            source exposes one (else 0).  A persistently full queue
            means ingestion is the bottleneck.
        ingest_seconds: wall-clock seconds the *previous* chunk's
            ingest took (the per-chunk timing ``PipelineResult``
            records); 0 before any chunk.
    """

    chunk_index: int
    offered_packets: int
    offered_pps: float
    ingested_pps: float = 0.0
    queue_depth: int = 0
    ingest_seconds: float = 0.0


@dataclass(frozen=True)
class ControlDecision:
    """A controller's verdict for one chunk.

    ``action`` is ``"pass"`` (ingest as-is), ``"thin"`` (keep a
    deterministic ``keep_fraction`` sample of the chunk's packets), or
    ``"drop"`` (shed the whole chunk).  ``batch_chunks > 1`` asks the
    governor to stage kept chunks and ingest them as one coalesced
    chunk — the degraded "cheaper mode".  ``degraded`` marks decisions
    taken while a controller is in its degraded mode (for stats and
    the restore-when-clear tests).
    """

    action: str = "pass"
    keep_fraction: float = 1.0
    batch_chunks: int = 1
    degraded: bool = False


_PASS = ControlDecision()


@dataclass(frozen=True)
class ControlDecisionRecord:
    """One applied decision, as surfaced on ``PipelineResult.decisions``."""

    chunk_index: int
    action: str
    keep_fraction: float
    offered_packets: int
    kept_packets: int
    offered_pps: float
    batch_chunks: int = 1
    degraded: bool = False


@dataclass
class ControllerStats:
    """Aggregate effect of a controller over one run."""

    policy: str = "none"
    chunks: int = 0
    offered_packets: int = 0
    kept_packets: int = 0
    dropped_packets: int = 0
    thinned_chunks: int = 0
    dropped_chunks: int = 0
    degraded_chunks: int = 0
    batched_ingests: int = 0

    @property
    def keep_rate(self) -> float:
        if self.offered_packets == 0:
            return 1.0
        return self.kept_packets / self.offered_packets

    def as_dict(self) -> "dict":
        return {
            "policy": self.policy,
            "chunks": self.chunks,
            "offered_packets": self.offered_packets,
            "kept_packets": self.kept_packets,
            "dropped_packets": self.dropped_packets,
            "thinned_chunks": self.thinned_chunks,
            "dropped_chunks": self.dropped_chunks,
            "degraded_chunks": self.degraded_chunks,
            "batched_ingests": self.batched_ingests,
            "keep_rate": self.keep_rate,
        }


class LoadController:
    """Policy protocol: map a :class:`LoadSignal` to a :class:`ControlDecision`.

    Implementations carry a ``policy`` name, an optional ``seed`` (the
    governor's sampling seed), and may keep state between calls (the
    degrade controller's mode flag).  ``decide`` must be a function of
    the signal's *deterministic* fields only if the policy wants the
    reproducibility guarantee ``shed`` gives.
    """

    policy: str = "none"
    seed: int = 0

    def decide(self, signal: LoadSignal) -> ControlDecision:
        raise NotImplementedError


class NoLoadController(LoadController):
    """``none``: pass every chunk through untouched (today's behavior)."""

    policy = "none"

    def decide(self, signal: LoadSignal) -> ControlDecision:
        return _PASS


class ShedController(LoadController):
    """``shed``: thin chunks down to ``target_pps`` with seed-stable sampling.

    While the offered rate (stream clock) stays at or below the target,
    chunks pass untouched.  Above it, each packet is kept independently
    with probability ``target_pps / offered_pps`` (floored at
    ``min_keep``), decided by a hash of its global stream position — so
    the kept set is identical across runs, chunk geometries, and
    sharded/single-process execution.  Estimates from a shed run are
    scaled back up by the recorded keep rate (``ControllerStats``
    carries exact counts), the same contract as
    :func:`repro.traffic.replay.thin`.
    """

    policy = "shed"

    def __init__(
        self, target_pps: float, seed: int = 0, min_keep: float = 0.0
    ) -> None:
        if not (target_pps > 0) or not math.isfinite(target_pps):
            raise ConfigurationError(
                f"target_pps must be a positive finite rate, got {target_pps}"
            )
        if not 0.0 <= min_keep <= 1.0:
            raise ConfigurationError(
                f"min_keep must be in [0, 1], got {min_keep}"
            )
        self.target_pps = float(target_pps)
        self.seed = int(seed)
        self.min_keep = float(min_keep)

    def decide(self, signal: LoadSignal) -> ControlDecision:
        if signal.offered_pps <= self.target_pps:
            return _PASS
        if math.isinf(signal.offered_pps):
            keep = self.min_keep
        else:
            keep = max(self.min_keep, self.target_pps / signal.offered_pps)
        if keep <= 0.0:
            return ControlDecision(action="drop", keep_fraction=0.0)
        return ControlDecision(action="thin", keep_fraction=keep)


class DegradeController(LoadController):
    """``degrade``: switch to a cheaper ingest mode under pressure.

    When the offered rate exceeds ``target_pps`` the controller enters
    degraded mode: kept chunks are staged and ingested as one coalesced
    batch of ``batch_chunks`` chunks (bit-exact by the pipeline's
    chunking-invariance guarantee, and cheaper because per-chunk
    dispatch overhead is amortized — ``boost`` is the measured batching
    speedup, so the sustainable budget becomes ``boost * target_pps``),
    and thinning only starts once the offered rate exceeds even that
    boosted budget.  Pass-through resumes after ``cooldown``
    consecutive under-target chunks (hysteresis, so the mode does not
    flap on a single quiet chunk).

    Decisions depend only on stream-clock signals, so degrade runs are
    as reproducible as shed runs.
    """

    policy = "degrade"

    def __init__(
        self,
        target_pps: float,
        batch_chunks: int = 8,
        boost: float = 1.5,
        cooldown: int = 2,
        seed: int = 0,
        min_keep: float = 0.0,
    ) -> None:
        if not (target_pps > 0) or not math.isfinite(target_pps):
            raise ConfigurationError(
                f"target_pps must be a positive finite rate, got {target_pps}"
            )
        if batch_chunks < 1:
            raise ConfigurationError(
                f"batch_chunks must be >= 1, got {batch_chunks}"
            )
        if boost < 1.0 or not math.isfinite(boost):
            raise ConfigurationError(
                f"boost must be a finite factor >= 1, got {boost}"
            )
        if cooldown < 1:
            raise ConfigurationError(f"cooldown must be >= 1, got {cooldown}")
        if not 0.0 <= min_keep <= 1.0:
            raise ConfigurationError(
                f"min_keep must be in [0, 1], got {min_keep}"
            )
        self.target_pps = float(target_pps)
        self.batch_chunks = int(batch_chunks)
        self.boost = float(boost)
        self.cooldown = int(cooldown)
        self.seed = int(seed)
        self.min_keep = float(min_keep)
        self._degraded = False
        self._quiet_chunks = 0

    @property
    def degraded(self) -> bool:
        """Whether the controller is currently in degraded mode."""
        return self._degraded

    def decide(self, signal: LoadSignal) -> ControlDecision:
        if signal.offered_pps > self.target_pps:
            self._degraded = True
            self._quiet_chunks = 0
        elif self._degraded:
            self._quiet_chunks += 1
            if self._quiet_chunks >= self.cooldown:
                self._degraded = False
        if not self._degraded:
            return _PASS
        budget = self.target_pps * self.boost
        if math.isinf(signal.offered_pps):
            keep = self.min_keep
        else:
            keep = min(1.0, max(self.min_keep, budget / signal.offered_pps))
        if keep <= 0.0:
            return ControlDecision(
                action="drop",
                keep_fraction=0.0,
                batch_chunks=self.batch_chunks,
                degraded=True,
            )
        return ControlDecision(
            action="thin" if keep < 1.0 else "pass",
            keep_fraction=keep,
            batch_chunks=self.batch_chunks,
            degraded=True,
        )


def build_load_controller(
    policy: "str | None",
    target_pps: "float | None" = None,
    seed: int = 0,
    batch_chunks: int = 8,
    boost: float = 1.5,
    min_keep: float = 0.0,
) -> "LoadController | None":
    """Build a controller from CLI-shaped knobs.

    ``None`` / ``"none"`` returns ``None`` — the drivers then run their
    historical zero-overhead path.  ``shed`` and ``degrade`` require a
    positive ``target_pps``.
    """
    if policy is None or policy == "none":
        return None
    if policy not in LOAD_POLICY_CHOICES:
        raise ConfigurationError(
            f"unknown load policy {policy!r}; choices: "
            + ", ".join(LOAD_POLICY_CHOICES)
        )
    if target_pps is None:
        raise ConfigurationError(
            f"--load-policy {policy} requires --target-pps"
        )
    if policy == "shed":
        return ShedController(target_pps, seed=seed, min_keep=min_keep)
    return DegradeController(
        target_pps,
        batch_chunks=batch_chunks,
        boost=boost,
        seed=seed,
        min_keep=min_keep,
    )


# -- mechanism: thinning, coalescing, and the governor ------------------------


def thin_mask(begin: int, end: int, keep_fraction: float, seed: int) -> np.ndarray:
    """The deterministic keep mask for global positions ``[begin, end)``.

    A packet is kept iff ``hash(position, seed) < keep_fraction * 2^64``
    — a pure function of the position, so the mask is identical for any
    chunk geometry covering the same span.
    """
    positions = np.arange(begin, end, dtype=np.uint64)
    threshold = np.uint64(min(int(keep_fraction * 2.0**64), 2**64 - 1))
    return hash_u64_array(positions, seed=seed) < threshold


def thin_chunk(
    chunk: Chunk, keep_fraction: float, seed: int, kept_begin: int
) -> "Chunk | None":
    """Deterministically sample ``chunk`` and rebase it onto the kept stream.

    Returns a chunk spanning ``[kept_begin, kept_begin + kept)`` whose
    trace holds only the kept packets, or ``None`` when the mask keeps
    nothing.  ``total_packets`` is preserved (the measurer's randomness
    draw is still sized by the original stream).
    """
    keep = thin_mask(chunk.begin, chunk.end, keep_fraction, seed)
    kept = int(np.count_nonzero(keep))
    if kept == 0:
        return None
    trace = chunk.trace
    sub = Trace(
        timestamps=trace.timestamps[keep],
        flow_ids=trace.flow_ids[keep],
        sizes=trace.sizes[keep],
        flows=trace.flows,
    )
    return Chunk(
        trace=sub,
        index=chunk.index,
        begin=kept_begin,
        end=kept_begin + kept,
        epoch=chunk.epoch,
        total_packets=chunk.total_packets,
    )


def _rebase_chunk(chunk: Chunk, kept_begin: int) -> Chunk:
    """The same packets at a new kept-stream span (trace untouched)."""
    return Chunk(
        trace=chunk.trace,
        index=chunk.index,
        begin=kept_begin,
        end=kept_begin + chunk.num_packets,
        epoch=chunk.epoch,
        total_packets=chunk.total_packets,
        parent=chunk.parent,
    )


def coalesce_chunks(chunks: "list[Chunk]") -> Chunk:
    """Concatenate consecutive kept-stream chunks into one.

    Bit-exact by the chunking-invariance guarantee: ingesting the
    coalesced chunk consumes exactly the bits the chunks would consume
    one at a time.  The chunks must be contiguous on the kept stream
    and share one flow table (the governor guarantees both).
    """
    if len(chunks) == 1:
        return chunks[0]
    first, last = chunks[0], chunks[-1]
    flows = first.trace.flows
    for other in chunks[1:]:
        if other.trace.flows is not flows:
            raise ConfigurationError(
                "cannot coalesce chunks from different flow tables"
            )
    trace = Trace(
        timestamps=np.concatenate([c.trace.timestamps for c in chunks]),
        flow_ids=np.concatenate([c.trace.flow_ids for c in chunks]),
        sizes=np.concatenate([c.trace.sizes for c in chunks]),
        flows=flows,
    )
    return Chunk(
        trace=trace,
        index=first.index,
        begin=first.begin,
        end=last.end,
        epoch=first.epoch,
        total_packets=first.total_packets,
    )


class ChunkGovernor:
    """Apply a controller's decisions to a chunk stream.

    The shared mechanism behind ``Pipeline.step`` and
    ``ShardedPipeline.run``: builds the :class:`LoadSignal` for each
    incoming chunk, asks the controller, and turns the decision into
    ready-to-ingest chunks — thinning and rebasing onto the dense kept
    stream, staging chunks while a degraded-mode batch fills, and
    flushing the batch whenever the policy returns to per-chunk mode,
    the epoch or flow table changes, or the stream ends.

    Attributes:
        stats: running :class:`ControllerStats` for the pass.
        decisions: the most recent :class:`ControlDecisionRecord` per
            chunk (bounded by ``history`` when given).
    """

    def __init__(
        self, controller: LoadController, history: "int | None" = None
    ) -> None:
        self.controller = controller
        self.seed = int(getattr(controller, "seed", 0))
        self.stats = ControllerStats(
            policy=getattr(controller, "policy", "custom")
        )
        self.decisions: "deque[ControlDecisionRecord]" = deque(maxlen=history)
        self._pending: "list[Chunk]" = []
        self._kept_offset: "int | None" = None
        self._last_stream_time: "float | None" = None

    @property
    def pending_chunks(self) -> int:
        """Chunks staged for the next coalesced batch ingest."""
        return len(self._pending)

    def _signal(
        self,
        chunk: Chunk,
        ingested_pps: float,
        queue_depth: int,
        ingest_seconds: float,
    ) -> LoadSignal:
        packets = chunk.num_packets
        timestamps = chunk.trace.timestamps
        last = float(timestamps[-1])
        if self._last_stream_time is None:
            span = last - float(timestamps[0])
        else:
            span = last - self._last_stream_time
        self._last_stream_time = last
        offered_pps = packets / span if span > 0 else float("inf")
        return LoadSignal(
            chunk_index=chunk.index,
            offered_packets=packets,
            offered_pps=offered_pps,
            ingested_pps=ingested_pps,
            queue_depth=queue_depth,
            ingest_seconds=ingest_seconds,
        )

    def admit(
        self,
        chunk: Chunk,
        ingested_pps: float = 0.0,
        queue_depth: int = 0,
        ingest_seconds: float = 0.0,
    ) -> "list[Chunk]":
        """Decide on one chunk; return the chunks ready to ingest now.

        The result is 0, 1, or 2 chunks: a flushed pending batch (when
        the incoming chunk cannot join it), then the incoming chunk's
        surviving packets (unless staged for a later batch or dropped).
        """
        packets = chunk.num_packets
        if packets == 0:
            return [chunk]
        if self._kept_offset is None:
            # The kept stream starts where the original stream does, so
            # a controller that never sheds leaves chunks untouched.
            self._kept_offset = chunk.begin
        signal = self._signal(chunk, ingested_pps, queue_depth, ingest_seconds)
        decision = self.controller.decide(signal)

        stats = self.stats
        stats.chunks += 1
        stats.offered_packets += packets

        ready: "list[Chunk]" = []
        if self._pending and (
            decision.batch_chunks <= 1
            or chunk.trace.flows is not self._pending[0].trace.flows
            or chunk.epoch != self._pending[0].epoch
        ):
            flushed = self.flush()
            if flushed is not None:
                ready.append(flushed)

        if decision.action == "drop" or (
            decision.action == "thin" and decision.keep_fraction <= 0.0
        ):
            kept_chunk = None
        elif decision.action == "thin" and decision.keep_fraction < 1.0:
            kept_chunk = thin_chunk(
                chunk, decision.keep_fraction, self.seed, self._kept_offset
            )
        elif self._kept_offset == chunk.begin:
            kept_chunk = chunk
        else:
            kept_chunk = _rebase_chunk(chunk, self._kept_offset)
        kept = 0 if kept_chunk is None else kept_chunk.num_packets
        self._kept_offset += kept

        stats.kept_packets += kept
        stats.dropped_packets += packets - kept
        if kept == 0:
            stats.dropped_chunks += 1
        elif kept < packets:
            stats.thinned_chunks += 1
        if decision.degraded:
            stats.degraded_chunks += 1
        self.decisions.append(
            ControlDecisionRecord(
                chunk_index=chunk.index,
                action=decision.action,
                keep_fraction=decision.keep_fraction,
                offered_packets=packets,
                kept_packets=kept,
                offered_pps=signal.offered_pps,
                batch_chunks=decision.batch_chunks,
                degraded=decision.degraded,
            )
        )

        if kept_chunk is not None:
            if decision.batch_chunks > 1:
                self._pending.append(kept_chunk)
                if len(self._pending) >= decision.batch_chunks:
                    flushed = self.flush()
                    if flushed is not None:
                        ready.append(flushed)
            else:
                ready.append(kept_chunk)
        return ready

    def flush(self) -> "Chunk | None":
        """Coalesce and hand back any staged batch (``None`` when empty)."""
        if not self._pending:
            return None
        pending, self._pending = self._pending, []
        if len(pending) > 1:
            self.stats.batched_ingests += 1
        return coalesce_chunks(pending)
