"""The :class:`StreamingMeasurer` protocol.

A streaming measurer consumes packets in bounded chunks and can be asked
for per-flow readings at any point.  The contract:

* ``ingest(chunk)`` — consume one :class:`~repro.pipeline.source.Chunk`
  (or a bare :class:`~repro.traffic.packet.Trace`, treated as a
  single-chunk stream).  Chunks of one stream arrive in timestamp order
  and never overlap.
* ``finalize()`` — end the stream and return the measurer's natural
  result object (a :class:`~repro.core.instameasure.MeasurementResult`,
  a stats dataclass, or the measurer itself for plain sketches).  The
  measurer's accumulated *measurement* state survives — only the
  per-stream bookkeeping resets, so a new stream can start.
* ``estimates(flow_keys=None)`` — current per-flow readings as
  ``{key64: (packets, bytes)}``.  Measurers that do not track bytes
  report ``0.0`` bytes.  Enumerable stores (flow caches, WSAF) may be
  called with ``flow_keys=None``; pure sketches cannot enumerate and
  require an explicit key array.

Two optional capabilities are discovered by :func:`supports_rotate` /
:func:`supports_merge` rather than demanded by the protocol:

* ``rotate(now)`` — epoch maintenance (snapshot + expiry), fired by the
  driver at epoch boundaries when asked.
* ``merge(other)`` — fold another measurer's state in (sketch addition).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.traffic.packet import Trace


@runtime_checkable
class StreamingMeasurer(Protocol):
    """Structural type of every measurer the Pipeline driver can feed."""

    def ingest(self, chunk) -> object: ...

    def finalize(self) -> object: ...

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]": ...


def supports_rotate(measurer) -> bool:
    """Whether ``measurer`` implements the optional ``rotate(now)`` hook."""
    return callable(getattr(measurer, "rotate", None))


def supports_merge(measurer) -> bool:
    """Whether ``measurer`` implements the optional ``merge(other)`` hook."""
    return callable(getattr(measurer, "merge", None))


def chunk_trace(chunk) -> Trace:
    """The packet trace inside ``chunk`` (accepts a bare ``Trace`` too)."""
    if isinstance(chunk, Trace):
        return chunk
    return chunk.trace


def chunk_total(chunk) -> "int | None":
    """Total packets of the stream ``chunk`` belongs to, if known.

    A bare trace is its own complete stream; a
    :class:`~repro.pipeline.source.Chunk` carries the source's total
    (``None`` for unbounded sources).  Knowing the total up front is what
    lets RNG-driven measurers pre-draw their whole randomness stream and
    stay bit-identical to a whole-trace run.
    """
    if isinstance(chunk, Trace):
        return chunk.num_packets
    return chunk.total_packets
