"""Chunk sources — bounded-memory slicers in front of the pipeline.

A :class:`ChunkSource` yields :class:`Chunk` objects: contiguous,
timestamp-ordered packet spans whose columns are NumPy *views* into the
backing trace (no packet data is copied; the bound is on the working set
each pipeline stage touches, which is what the batched kernels size their
arrays by).  :class:`TraceChunkSource` slices an in-memory trace on two
boundaries at once — a packet-count budget and, when ``epoch_seconds`` is
given, epoch time boundaries, so no chunk ever straddles an epoch and the
driver can fire rotation callbacks exactly between chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace

#: Default packets per chunk (mirrors the batched kernel's chunk budget).
DEFAULT_CHUNK_SIZE = 1 << 20


@dataclass(frozen=True)
class Chunk:
    """One contiguous span of a packet stream.

    Attributes:
        trace: the span's packets (columns are views; ``flows`` is the
            stream's shared flow table).
        index: position of this chunk in the stream, from 0.
        begin / end: packet-index span ``[begin, end)`` in the stream.
        epoch: epoch index of every packet in the chunk (0 when the
            source has no epoch boundaries; chunks never straddle one).
        total_packets: stream length if the source knows it up front
            (lets measurers pre-draw randomness), else ``None``.
        parent: the backing trace, when the stream is one (the multi-core
            manager dispatches over it to learn per-worker queue totals).
    """

    trace: Trace
    index: int
    begin: int
    end: int
    epoch: int = 0
    total_packets: "int | None" = None
    parent: "Trace | None" = None

    @property
    def num_packets(self) -> int:
        return self.end - self.begin


class ChunkSource:
    """Iterable of :class:`Chunk` objects, in stream order.

    Attributes:
        total_packets: stream length, or ``None`` if unknown up front.
        epoch_seconds: epoch width the source splits on, or ``None``.
        start_time: first packet timestamp (epoch 0 starts here), or
            ``None`` until known.
        queue_depth: chunks the source currently holds staged ahead of
            the consumer — the backpressure signal a load controller
            reads.  0 for unbuffered sources; live for
            :class:`~repro.pipeline.prefetch.PrefetchChunkSource`.
    """

    total_packets: "int | None" = None
    epoch_seconds: "float | None" = None
    start_time: "float | None" = None
    queue_depth: int = 0

    @property
    def offered_pps(self) -> "float | None":
        """Stream-clock offered rate over the whole stream, when the
        source can know it up front (else ``None``; the per-chunk
        offered rate always comes from
        :class:`~repro.pipeline.control.LoadSignal`)."""
        return None

    def __iter__(self):
        raise NotImplementedError


class TraceChunkSource(ChunkSource):
    """Slice an in-memory :class:`Trace` into bounded chunks.

    Cut points are the union of packet-count boundaries (every
    ``chunk_size`` packets) and, with ``epoch_seconds``, epoch time
    boundaries at ``start + k * epoch_seconds`` (packets at exactly a
    boundary open the next epoch, matching ``Trace.time_slice``'s
    half-open windows).  Chunks are built once, eagerly, and reused
    across iterations — kernel caches pinned on the chunk traces stay
    warm when the same source drives repeated runs.
    """

    def __init__(
        self,
        trace: Trace,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        epoch_seconds: "float | None" = None,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if epoch_seconds is not None and epoch_seconds <= 0:
            raise ConfigurationError("epoch_seconds must be positive")
        self.trace = trace
        self.chunk_size = int(chunk_size)
        self.epoch_seconds = epoch_seconds
        self.total_packets = trace.num_packets
        num_packets = trace.num_packets
        self.start_time = (
            float(trace.timestamps[0]) if num_packets else None
        )

        cuts = set(range(0, num_packets, self.chunk_size))
        cuts.add(num_packets)
        epoch_of_cut: "dict[int, int]" = {}
        if epoch_seconds is not None and num_packets:
            start = self.start_time
            last = float(trace.timestamps[-1])
            num_epochs = int((last - start) // epoch_seconds) + 1
            boundaries = start + epoch_seconds * np.arange(1, num_epochs + 1)
            epoch_cuts = np.searchsorted(
                trace.timestamps, boundaries, side="left"
            )
            for epoch, cut in enumerate(epoch_cuts.tolist(), start=1):
                cuts.add(int(cut))
                # A later (deeper) epoch boundary at the same cut wins:
                # the packet at that position belongs to the last epoch
                # whose start it has reached.
                epoch_of_cut[int(cut)] = epoch

        edges = sorted(cuts)
        self._chunks: "list[Chunk]" = []
        epoch = 0
        for index, (begin, end) in enumerate(zip(edges[:-1], edges[1:])):
            if begin in epoch_of_cut:
                epoch = epoch_of_cut[begin]
            if begin == end:
                continue
            sub = Trace(
                timestamps=trace.timestamps[begin:end],
                flow_ids=trace.flow_ids[begin:end],
                sizes=trace.sizes[begin:end],
                flows=trace.flows,
            )
            self._chunks.append(
                Chunk(
                    trace=sub,
                    index=len(self._chunks),
                    begin=begin,
                    end=end,
                    epoch=epoch,
                    total_packets=num_packets,
                    parent=trace,
                )
            )

    @property
    def offered_pps(self) -> "float | None":
        """The trace's natural packet rate on its own clock."""
        if not self.total_packets or self.start_time is None:
            return None
        span = float(self.trace.timestamps[-1]) - self.start_time
        return self.total_packets / span if span > 0 else float("inf")

    def __iter__(self):
        return iter(self._chunks)

    def __len__(self) -> int:
        return len(self._chunks)


class FileChunkSource(TraceChunkSource):
    """Chunk a saved trace NPZ (:mod:`repro.traffic.trace_io`).

    The NPZ format holds whole columns, so the file is loaded once and
    then sliced like any in-memory trace; the bounded-memory guarantee
    applies to everything downstream of the source.
    """

    def __init__(
        self,
        path: str,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        epoch_seconds: "float | None" = None,
    ) -> None:
        from repro.traffic.trace_io import load_trace

        super().__init__(
            load_trace(path), chunk_size=chunk_size, epoch_seconds=epoch_seconds
        )


def as_chunk_source(
    source,
    chunk_size: "int | None" = None,
    epoch_seconds: "float | None" = None,
) -> ChunkSource:
    """Coerce ``source`` into a :class:`ChunkSource`.

    A :class:`Trace` is wrapped in a :class:`TraceChunkSource`; an
    existing source passes through unchanged (``chunk_size`` and
    ``epoch_seconds`` must then be unset — the source already decided
    its slicing).
    """
    if isinstance(source, Trace):
        return TraceChunkSource(
            source,
            chunk_size=chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE,
            epoch_seconds=epoch_seconds,
        )
    if not isinstance(source, ChunkSource):
        raise ConfigurationError(
            f"expected a Trace or ChunkSource, got {type(source).__name__}"
        )
    if chunk_size is not None or epoch_seconds is not None:
        raise ConfigurationError(
            "chunk_size/epoch_seconds apply only when passing a Trace; "
            "a ChunkSource already fixed its slicing"
        )
    return source
