"""Background chunk prefetching — overlap slicing/IO with ingestion.

:class:`PrefetchChunkSource` wraps any
:class:`~repro.pipeline.source.ChunkSource` and iterates it on a
background thread, keeping up to ``depth`` chunks staged in a bounded
queue while the pipeline ingests the current one.  For
:class:`~repro.pipeline.source.FileChunkSource`-backed runs this hides
the NPZ slicing/materialization latency behind the measurer's compute;
for eager in-memory sources it is a cheap no-op-like passthrough.

The wrapper changes *when* chunks are produced, never *what*: the chunk
sequence, metadata, and the wrapped source's ``total_packets`` /
``epoch_seconds`` / ``start_time`` attributes are identical, so every
bit-identity guarantee of the chunked pipeline carries over.  Producer
exceptions propagate to the consuming iterator; each ``__iter__`` call
starts a fresh producer thread, so the source stays re-iterable.
Abandoning iteration early (the daemon's stop path) shuts the producer
down promptly instead of leaking a thread blocked on the full queue.

Each pass also records a :class:`PrefetchStats` on the source
(``prefetch_stats``): how many chunks flowed through, the deepest the
queue got, and how long producer and consumer each spent blocked on it.
High ``producer_wait_s`` means ingestion is the bottleneck (prefetch is
keeping up); high ``consumer_wait_s`` means slicing/IO is — raise
``depth`` or speed up the backing source.  The
:class:`~repro.pipeline.driver.Pipeline` driver surfaces the stats on
:class:`~repro.pipeline.driver.PipelineResult` after a run.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.pipeline.source import ChunkSource

#: Queue sentinel marking normal end-of-stream.
_DONE = object()

#: How often a blocked producer re-checks whether the consumer is gone.
_STOP_POLL_S = 0.05


@dataclass
class PrefetchStats:
    """One iteration pass's queue behavior.

    Attributes:
        chunks: chunks that flowed through the queue.
        max_depth: deepest the staging queue got (<= the configured depth).
        producer_wait_s: time the producer thread spent blocked putting
            into a full queue — ingestion-bound when high.
        consumer_wait_s: time the consumer spent blocked waiting for the
            producer — slicing/IO-bound when high.
    """

    chunks: int = 0
    max_depth: int = 0
    producer_wait_s: float = 0.0
    consumer_wait_s: float = 0.0


class PrefetchChunkSource(ChunkSource):
    """Stage upcoming chunks of ``source`` from a background thread.

    Args:
        source: the chunk source to wrap.
        depth: maximum chunks staged ahead of the consumer, >= 1.  Each
            staged chunk holds views into the backing trace, so memory
            cost is ``depth`` chunk *descriptors*, not packet copies.
    """

    def __init__(self, source: ChunkSource, depth: int = 2) -> None:
        if not isinstance(source, ChunkSource):
            raise ConfigurationError(
                f"expected a ChunkSource, got {type(source).__name__}"
            )
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.source = source
        self.depth = depth
        #: Stats of the most recent (possibly in-progress) iteration pass.
        self.prefetch_stats: "PrefetchStats | None" = None
        self._staged: "queue.Queue | None" = None

    # The stream-shape attributes delegate live rather than being copied
    # at construction: an unbounded source learns its start_time from its
    # first packet, possibly after the wrapper was built.
    @property
    def total_packets(self):  # type: ignore[override]
        return self.source.total_packets

    @property
    def epoch_seconds(self):  # type: ignore[override]
        return self.source.epoch_seconds

    @property
    def start_time(self):  # type: ignore[override]
        return self.source.start_time

    @property
    def offered_pps(self):  # type: ignore[override]
        return self.source.offered_pps

    @property
    def queue_depth(self) -> int:  # type: ignore[override]
        """Chunks currently staged ahead of the consumer.

        Advisory (``qsize`` of a live queue), which is what a load
        signal needs; 0 between iteration passes.  A depth pinned at
        the configured maximum means ingestion is the bottleneck — the
        same story as a high ``producer_wait_s``, but readable
        mid-chunk by a controller.
        """
        staged = self._staged
        return staged.qsize() if staged is not None else 0

    def __iter__(self):
        staged: "queue.Queue" = queue.Queue(maxsize=self.depth)
        stop = threading.Event()
        stats = PrefetchStats()
        self.prefetch_stats = stats
        self._staged = staged

        def offer(item) -> bool:
            """Put unless the consumer went away; True when delivered."""
            while not stop.is_set():
                try:
                    staged.put(item, timeout=_STOP_POLL_S)
                    return True
                except queue.Full:
                    continue
            return False

        def produce() -> None:
            try:
                for chunk in self.source:
                    if stop.is_set():
                        return
                    begin = time.perf_counter()
                    if not offer(chunk):
                        return
                    stats.producer_wait_s += time.perf_counter() - begin
                    # qsize() is advisory, which is fine for a high-water
                    # mark that only informs tuning.
                    stats.max_depth = max(stats.max_depth, staged.qsize())
            except BaseException as error:  # propagate to the consumer
                offer(error)
            else:
                offer(_DONE)

        worker = threading.Thread(
            target=produce, name="chunk-prefetch", daemon=True
        )
        worker.start()
        try:
            while True:
                begin = time.perf_counter()
                item = staged.get()
                stats.consumer_wait_s += time.perf_counter() - begin
                if item is _DONE:
                    break
                if isinstance(item, BaseException):
                    raise item
                stats.chunks += 1
                yield item
        finally:
            # Reached on normal end, on error, and when the consumer
            # abandons iteration early (generator close — the daemon's
            # stop path): wake a producer blocked on the full queue and
            # reap the thread instead of leaking it.
            stop.set()
            stopper = getattr(self.source, "stop", None)
            if callable(stopper):
                stopper()
            while True:
                try:
                    staged.get_nowait()
                except queue.Empty:
                    break
            worker.join(timeout=5.0)
            self._staged = None
