"""Background chunk prefetching — overlap slicing/IO with ingestion.

:class:`PrefetchChunkSource` wraps any
:class:`~repro.pipeline.source.ChunkSource` and iterates it on a
background thread, keeping up to ``depth`` chunks staged in a bounded
queue while the pipeline ingests the current one.  For
:class:`~repro.pipeline.source.FileChunkSource`-backed runs this hides
the NPZ slicing/materialization latency behind the measurer's compute;
for eager in-memory sources it is a cheap no-op-like passthrough.

The wrapper changes *when* chunks are produced, never *what*: the chunk
sequence, metadata, and the wrapped source's ``total_packets`` /
``epoch_seconds`` / ``start_time`` attributes are identical, so every
bit-identity guarantee of the chunked pipeline carries over.  Producer
exceptions propagate to the consuming iterator; each ``__iter__`` call
starts a fresh producer thread, so the source stays re-iterable.
"""

from __future__ import annotations

import queue
import threading

from repro.errors import ConfigurationError
from repro.pipeline.source import ChunkSource

#: Queue sentinel marking normal end-of-stream.
_DONE = object()


class PrefetchChunkSource(ChunkSource):
    """Stage upcoming chunks of ``source`` from a background thread.

    Args:
        source: the chunk source to wrap.
        depth: maximum chunks staged ahead of the consumer, >= 1.  Each
            staged chunk holds views into the backing trace, so memory
            cost is ``depth`` chunk *descriptors*, not packet copies.
    """

    def __init__(self, source: ChunkSource, depth: int = 2) -> None:
        if not isinstance(source, ChunkSource):
            raise ConfigurationError(
                f"expected a ChunkSource, got {type(source).__name__}"
            )
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.source = source
        self.depth = depth
        self.total_packets = source.total_packets
        self.epoch_seconds = source.epoch_seconds
        self.start_time = source.start_time

    def __iter__(self):
        staged: "queue.Queue" = queue.Queue(maxsize=self.depth)

        def produce() -> None:
            try:
                for chunk in self.source:
                    staged.put(chunk)
            except BaseException as error:  # propagate to the consumer
                staged.put(error)
            else:
                staged.put(_DONE)

        worker = threading.Thread(
            target=produce, name="chunk-prefetch", daemon=True
        )
        worker.start()
        while True:
            item = staged.get()
            if item is _DONE:
                break
            if isinstance(item, BaseException):
                raise item
            yield item
        worker.join()
