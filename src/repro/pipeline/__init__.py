"""The streaming pipeline: one run loop for every measurer.

Every measurer in the repository — both InstaMeasure engines, the
multi-core manager, and all nine baselines — speaks the
:class:`~repro.pipeline.protocol.StreamingMeasurer` protocol: packets
arrive as bounded chunks through :meth:`ingest`, results come out of
:meth:`finalize`, and current per-flow readings come from
:meth:`estimates`.  A :class:`~repro.pipeline.source.ChunkSource` slices
a trace (or a trace file) into those chunks, and the
:class:`~repro.pipeline.driver.Pipeline` driver feeds any measurer from
any source, firing epoch callbacks at time-window boundaries and
collecting per-chunk throughput stats.

On top of the single-measurer loop, :class:`~repro.pipeline.sharded.
ShardedPipeline` routes a trace across N worker pipelines by flow-key
shard and merges their serializable snapshots into one state whose
estimates exactly equal a single-process run, and
:class:`~repro.pipeline.prefetch.PrefetchChunkSource` stages upcoming
chunks from a background thread.

The pipeline is a *closed-loop controlled* plane: a
:class:`~repro.pipeline.control.LoadController` (``none`` / ``shed`` /
``degrade``) can sit between the source and the measurer, reading the
per-chunk :class:`~repro.pipeline.control.LoadSignal` (offered rate on
the stream clock, measured ingest rate, prefetch queue depth) and
thinning, dropping, or batch-coalescing chunks under overload — with
deterministic seed-stable sampling so shed runs stay reproducible.  See
docs/STREAMING.md, "Backpressure and load-shedding".

See ``docs/STREAMING.md`` for the protocol contract, including which
measurers are bit-identical between chunked and whole-trace ingestion.
"""

from repro.pipeline.control import (
    ChunkGovernor,
    ControlDecision,
    ControlDecisionRecord,
    ControllerStats,
    DegradeController,
    LOAD_POLICY_CHOICES,
    LoadController,
    LoadSignal,
    NoLoadController,
    ShedController,
    build_load_controller,
    coalesce_chunks,
    thin_chunk,
    thin_mask,
)
from repro.pipeline.driver import (
    ChunkStats,
    EpochRecord,
    Pipeline,
    PipelineResult,
    run_pipeline,
)
from repro.pipeline.prefetch import PrefetchChunkSource, PrefetchStats
from repro.pipeline.protocol import (
    StreamingMeasurer,
    chunk_total,
    chunk_trace,
    supports_merge,
    supports_rotate,
)
from repro.pipeline.sharded import (
    ShardedPipeline,
    ShardedResult,
    ShardedStreamingMeasurer,
    ShardedStreamResult,
    ShardWorkerPool,
    run_sharded,
)
from repro.pipeline.source import (
    Chunk,
    ChunkSource,
    FileChunkSource,
    TraceChunkSource,
    as_chunk_source,
)
from repro.pipeline.streaming import (
    PacketRecordChunkSource,
    SocketChunkSource,
    StreamingChunkSource,
    trace_from_records,
)

__all__ = [
    "Chunk",
    "ChunkGovernor",
    "ChunkSource",
    "ChunkStats",
    "ControlDecision",
    "ControlDecisionRecord",
    "ControllerStats",
    "DegradeController",
    "EpochRecord",
    "LOAD_POLICY_CHOICES",
    "LoadController",
    "LoadSignal",
    "NoLoadController",
    "ShedController",
    "build_load_controller",
    "coalesce_chunks",
    "thin_chunk",
    "thin_mask",
    "FileChunkSource",
    "PacketRecordChunkSource",
    "Pipeline",
    "PipelineResult",
    "PrefetchChunkSource",
    "PrefetchStats",
    "SocketChunkSource",
    "StreamingChunkSource",
    "ShardWorkerPool",
    "ShardedPipeline",
    "ShardedResult",
    "ShardedStreamResult",
    "ShardedStreamingMeasurer",
    "StreamingMeasurer",
    "TraceChunkSource",
    "as_chunk_source",
    "chunk_total",
    "chunk_trace",
    "run_pipeline",
    "run_sharded",
    "trace_from_records",
    "supports_merge",
    "supports_rotate",
]
