"""Process-sharded ingestion — N streaming workers, one exact merged state.

A :class:`ShardedPipeline` consumes any
:class:`~repro.pipeline.source.ChunkSource` and routes each chunk as it
arrives: :meth:`repro.state.ShardRouter.split_chunk` partitions the
chunk's packets into per-shard sub-traces plus their *global* bit-stream
positions, so memory stays bounded by the chunk size — a
:class:`~repro.pipeline.source.FileChunkSource` (optionally behind a
:class:`~repro.pipeline.prefetch.PrefetchChunkSource`) streams straight
into sharded workers without the whole trace ever being routed at once.

The merged state's ``estimates()`` are **exactly equal** to a
single-process run of the same stream, because the sharding is exact on
every axis:

* *Regulator*: flows sharing an L1 word land in the same shard, so each
  shard's full-size, same-seed regulator evolves its words precisely as
  the single run; disjoint word ranges OR together losslessly.
* *Randomness*: each worker opens the same global draw
  (``InstaMeasure.begin_stream(total)``) and gathers each sub-chunk's
  bits at its packets' global positions (``ingest(chunk, positions=...)``),
  so its packets consume exactly the bits the single run would hand them.
* *WSAF*: per-flow accumulation order is preserved (chunks arrive in
  stream order and routing is order-stable within a shard), and disjoint
  key sets concatenate.  The equality holds while the WSAF experiences
  no evictions or GC — with the paper's 2^20-entry table and ~1 %
  regulation rate, the working set of realistic traces fits (the
  equivalence tests assert zero evictions).

With ``parallel=True`` a :class:`ShardWorkerPool` of long-lived forked
workers receives routed sub-chunks incrementally over pipes as packed
NumPy frames (:func:`repro.state.codec.pack_frame`), keeps engine state
resident between chunks, and ships one IMSNAP payload back at finalize —
fork and import cost is paid once per run, not once per shard-chunk.
In-process execution is bit-identical and the fallback wherever fork is
unavailable (with a :class:`RuntimeWarning`, since the caller asked for
parallelism it will not get).

Unknown-length sources (``total_packets is None`` — the always-on
service's inputs) shard too: the regulator/WSAF disjointness argument is
unchanged, but with no stream total there is no global draw to position
against, so each shard consumes its own unknown-length block-drawn
stream.  The merged state is then a well-defined sharded measurement —
deterministic for a given routing, exact merges, per-shard checkpoints —
but not a bit-replica of a single-process unbounded run.
:class:`ShardedStreamingMeasurer` packages that mode behind the
streaming-measurer protocol for the service daemon.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ShardWorkerError, SnapshotError
from repro.pipeline.control import ChunkGovernor
from repro.pipeline.source import (
    DEFAULT_CHUNK_SIZE,
    ChunkSource,
    TraceChunkSource,
)
from repro.state import MeasurementSnapshot, ShardRouter, from_bytes, merge, to_bytes
from repro.state.codec import pack_frame, unpack_frame
from repro.traffic.packet import Trace

#: Mask extracting the low 64 bits of a packed 104-bit 5-tuple.
_LOW64 = (1 << 64) - 1


@dataclass
class ShardedResult:
    """Outcome of a sharded run: the merged state plus per-shard stats.

    ``stage_seconds`` breaks the run into its serial and parallel parts:
    ``route_s`` (parent-side chunk routing), ``ipc_s`` (frame packing +
    pipe writes + final snapshot collection; 0 for in-process runs),
    ``ingest_s`` (the slowest shard's engine time — the parallelizable
    part), and ``merge_s`` (snapshot decode + fold).  The stages overlap
    with each other in a fork-parallel run, so they need not sum to
    ``elapsed_seconds`` (end-to-end wall clock).
    """

    num_shards: int
    snapshot: MeasurementSnapshot
    shard_packets: "list[int]" = field(default_factory=list)
    shard_insertions: "list[int]" = field(default_factory=list)
    shard_elapsed: "list[float]" = field(default_factory=list)
    stage_seconds: "dict[str, float]" = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    parallel: bool = False
    #: Packets the source offered before any load-shedding (== packets
    #: when the run had no controller).
    offered_packets: int = 0
    #: Per-chunk controller decisions / aggregate stats, when the run
    #: had a load controller (see repro.pipeline.control); else []/None.
    decisions: list = field(default_factory=list)
    controller_stats: "dict | None" = None

    @property
    def packets(self) -> int:
        return sum(self.shard_packets)

    @property
    def insertions(self) -> int:
        return sum(self.shard_insertions)

    @property
    def load_shares(self) -> "list[float]":
        """Fraction of packets each shard received."""
        total = self.packets
        if total == 0:
            return [0.0] * self.num_shards
        return [count / total for count in self.shard_packets]

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Merged per-flow ``{key64: (packets, bytes)}`` estimates."""
        return self.snapshot.estimates(flow_keys=flow_keys)

    def restore(self, accountant=None):
        """Materialize the merged state as a live engine."""
        return self.snapshot.restore(accountant=accountant)

    def estimates_for(self, trace: Trace) -> "tuple[np.ndarray, np.ndarray]":
        """Per-flow (packets, bytes) arrays aligned with ``trace.flows``."""
        table = self.snapshot.estimates()
        est_packets = np.zeros(trace.num_flows)
        est_bytes = np.zeros(trace.num_flows)
        for flow_index, key in enumerate(trace.flows.key64.tolist()):
            record = table.get(key)
            if record is not None:
                est_packets[flow_index] = record[0]
                est_bytes[flow_index] = record[1]
        return est_packets, est_bytes


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# -- worker-side flow directory ----------------------------------------------


class _ShardFlowDirectory:
    """A worker's growing flow table, fed incrementally by the parent.

    Duck-types the slice of :class:`~repro.traffic.packet.FlowTable` the
    engines consume — ``key64``, ``packed_tuples()``, ``len()`` — so a
    worker-side :class:`Trace` can reference it directly.  The parent
    ships each flow's precomputed ``key64`` and packed-5-tuple halves
    exactly once (on the first chunk where the flow appears), so the
    per-chunk frames carry only the *new* flows' identity.
    """

    def __init__(self) -> None:
        self.key64 = np.empty(0, dtype=np.uint64)
        self._packed: "list[int]" = []

    def extend(
        self, key64: np.ndarray, tuple_lo: np.ndarray, tuple_hi: np.ndarray
    ) -> None:
        if key64.size == 0:
            return
        self.key64 = np.concatenate([self.key64, key64.astype(np.uint64)])
        self._packed.extend(
            (high << 64) | low
            for high, low in zip(tuple_hi.tolist(), tuple_lo.tolist())
        )

    def __len__(self) -> int:
        return int(self.key64.size)

    def packed_tuples(self) -> "list[int]":
        return self._packed


class _ShardFlowSync:
    """Parent-side record of which flows a worker has already been sent.

    Maps each flow table's global flow ids to the worker's dense local
    ids, handing back the chunk's localized ``flow_ids`` plus the indices
    of flows the worker has not seen yet (to be shipped in this frame).
    Keyed per flow-table object so multi-table streams stay correct.
    """

    def __init__(self) -> None:
        self._maps: "dict[int, tuple[object, np.ndarray]]" = {}
        self.count = 0

    def localize(self, flows, flow_ids: np.ndarray):
        entry = self._maps.get(id(flows))
        if entry is None:
            mapping = np.full(len(flows), -1, dtype=np.int64)
            self._maps[id(flows)] = (flows, mapping)
        else:
            mapping = entry[1]
        unique = np.unique(flow_ids)
        fresh = unique[mapping[unique] < 0]
        if fresh.size:
            mapping[fresh] = np.arange(
                self.count, self.count + fresh.size, dtype=np.int64
            )
            self.count += int(fresh.size)
        return mapping[flow_ids], fresh


def _fresh_flow_columns(flows, index: np.ndarray):
    """``(key64, tuple_lo, tuple_hi)`` for the flows at ``index``."""
    key64 = flows.key64[index]
    try:
        src = flows.src_ip[index].astype(np.uint64)
        dst = flows.dst_ip[index].astype(np.uint64)
        lo = (
            ((dst & np.uint64(0xFFFFFF)) << np.uint64(40))
            | (flows.src_port[index].astype(np.uint64) << np.uint64(24))
            | (flows.dst_port[index].astype(np.uint64) << np.uint64(8))
            | flows.protocol[index].astype(np.uint64)
        )
        hi = (src << np.uint64(8)) | (dst >> np.uint64(24))
    except AttributeError:
        packed = flows.packed_tuples()
        values = [packed[i] for i in index.tolist()]
        lo = np.array([v & _LOW64 for v in values], dtype=np.uint64)
        hi = np.array([v >> 64 for v in values], dtype=np.uint64)
    return key64, lo, hi


# -- the persistent worker pool ----------------------------------------------


def _worker_main(conn, parent_conn, config, key_range, total) -> None:
    """Child-process loop: ingest framed sub-chunks until finalize.

    Protocol (all messages are :func:`repro.state.codec.pack_frame`
    payloads over ``conn``):

    * ``{"type": "chunk"}`` with columns ``timestamps`` / ``flow_ids``
      (worker-local) / ``sizes`` / ``positions`` (global) plus the
      not-yet-seen flows' ``new_key64`` / ``new_tuple_lo`` /
      ``new_tuple_hi`` — ingested immediately, engine state kept live.
    * ``{"type": "finalize"}`` — finalize the stream and reply with one
      ``{"type": "done"}`` frame carrying per-shard counters and the
      shard's IMSNAP snapshot payload, then exit.

    Any failure is reported back as a ``{"type": "error"}`` frame with
    the full traceback; the parent raises it as a
    :class:`~repro.errors.ShardWorkerError`.
    """
    if parent_conn is not None:
        parent_conn.close()
    try:
        from repro.core.instameasure import InstaMeasure

        engine = InstaMeasure(config)
        engine.begin_stream(total=total)
        directory = _ShardFlowDirectory()
        ingest_s = 0.0
        while True:
            meta, columns = unpack_frame(conn.recv_bytes())
            kind = meta.get("type")
            if kind == "chunk":
                directory.extend(
                    columns["new_key64"],
                    columns["new_tuple_lo"],
                    columns["new_tuple_hi"],
                )
                sub = Trace(
                    timestamps=columns["timestamps"],
                    flow_ids=columns["flow_ids"],
                    sizes=columns["sizes"],
                    flows=directory,
                )
                begin = time.perf_counter()
                engine.ingest(sub, positions=columns.get("positions"))
                ingest_s += time.perf_counter() - begin
            elif kind == "finalize":
                result = engine.finalize()
                payload = to_bytes(engine.snapshot(key_range=key_range))
                conn.send_bytes(
                    pack_frame(
                        {
                            "type": "done",
                            "packets": result.packets,
                            "insertions": result.insertions,
                            "elapsed": result.elapsed_seconds,
                            "ingest_s": ingest_s,
                        },
                        {"snapshot": np.frombuffer(payload, dtype=np.uint8)},
                    )
                )
                return
            else:
                raise ShardWorkerError(f"unknown frame type {kind!r}")
    except BaseException as exc:
        try:
            conn.send_bytes(
                pack_frame(
                    {
                        "type": "error",
                        "message": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                    {},
                )
            )
        except Exception:
            pass  # parent will see EOF and raise ShardWorkerError
    finally:
        conn.close()


class ShardWorkerPool:
    """Long-lived forked shard workers fed incrementally over pipes.

    One worker process per shard, forked once at construction; each
    holds a live engine with the global randomness draw and accumulates
    state across every sub-chunk it receives, so per-run cost is one
    fork + one snapshot ship per worker no matter how many chunks
    stream through.  Worker failures surface promptly as
    :class:`~repro.errors.ShardWorkerError` (never a hang): a worker
    that raises ships its traceback back as an error frame, and a
    worker that dies outright breaks the pipe, which the next
    :meth:`send` or :meth:`finalize` turns into the same error.
    """

    def __init__(self, config, key_ranges, total: int, context=None) -> None:
        if context is None:
            context = multiprocessing.get_context("fork")
        self.num_shards = len(key_ranges)
        self._conns = []
        self._procs = []
        self._closed = False
        for shard, key_range in enumerate(key_ranges):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, parent_conn, config, key_range, total),
                name=f"shard-worker-{shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)

    def _raise_worker_failure(self, shard: int, cause=None):
        """Turn a dead or failed worker into a ShardWorkerError."""
        detail = ""
        try:
            if self._conns[shard].poll(1.0):
                meta, _columns = unpack_frame(self._conns[shard].recv_bytes())
                if meta.get("type") == "error":
                    detail = meta.get("traceback") or meta.get("message", "")
        except (EOFError, OSError, SnapshotError):
            pass
        if detail:
            message = f"shard worker {shard} failed:\n{detail}"
        else:
            message = f"shard worker {shard} died without reporting an error"
        raise ShardWorkerError(message) from cause

    def send(self, shard: int, frame: bytes) -> None:
        """Ship one packed frame to ``shard``'s worker."""
        conn = self._conns[shard]
        # An unsolicited message waiting here can only be an error frame:
        # surface it instead of writing into a pipe nobody reads.
        if conn.poll(0):
            self._raise_worker_failure(shard)
        try:
            conn.send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            self._raise_worker_failure(shard, exc)

    def finalize(self) -> "list[tuple[dict, bytes]]":
        """Ask every worker to finalize; collect ``(stats, snapshot_bytes)``."""
        frame = pack_frame({"type": "finalize"}, {})
        for shard in range(self.num_shards):
            try:
                self._conns[shard].send_bytes(frame)
            except (BrokenPipeError, OSError) as exc:
                self._raise_worker_failure(shard, exc)
        replies: "list[tuple[dict, bytes]]" = []
        for shard in range(self.num_shards):
            try:
                meta, columns = unpack_frame(self._conns[shard].recv_bytes())
            except (EOFError, OSError) as exc:
                self._raise_worker_failure(shard, exc)
            if meta.get("type") == "error":
                detail = meta.get("traceback") or meta.get("message", "")
                raise ShardWorkerError(
                    f"shard worker {shard} failed:\n{detail}"
                )
            replies.append((meta, columns["snapshot"].tobytes()))
        return replies

    def close(self) -> None:
        """Close every pipe and reap the worker processes."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for process in self._procs:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the sharded pipeline ----------------------------------------------------


class ShardedPipeline:
    """Stream any chunk source across N shards and merge the states.

    Known-length sources merge *exactly equal* to a single-process run
    (see the module docstring); unknown-length sources shard exactly on
    the regulator/WSAF axes but draw per-shard randomness.

    Args:
        config: per-worker engine configuration.  Unlike the multi-core
            manager, every shard uses the *same* seed — word-range
            disjointness is what keeps their regulators from interfering.
        num_shards: worker count, >= 1.
        parallel: run workers as a forked :class:`ShardWorkerPool`
            (falls back to in-process execution, with a
            :class:`RuntimeWarning`, where the platform cannot fork;
            both modes are bit-identical).
        chunk_size: slicing budget when :meth:`run` receives a bare
            trace (defaults to the config's ``chunk_size``); an explicit
            chunk source keeps its own slicing.
        controller: optional
            :class:`~repro.pipeline.control.LoadController`.  The
            controller sees each chunk once, *before* routing, with the
            aggregate signal (global offered rate on the stream clock,
            packets routed across all shards per wall-clock second) —
            one global decision per chunk, applied to the whole chunk,
            so every shard sheds the same packets and a sharded shed
            run stays decision-identical to a single-process shed run
            with the same policy, seed, and schedule.
    """

    def __init__(
        self,
        config=None,
        num_shards: int = 1,
        parallel: bool = False,
        chunk_size: "int | None" = None,
        controller=None,
    ) -> None:
        from repro.core.instameasure import InstaMeasureConfig

        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.config = config or InstaMeasureConfig()
        self.num_shards = num_shards
        self.parallel = parallel
        self.chunk_size = (
            chunk_size
            if chunk_size is not None
            else getattr(self.config, "chunk_size", DEFAULT_CHUNK_SIZE)
        )
        self.controller = controller
        self.router = ShardRouter.for_config(self.config, num_shards)

    def _coerce_source(self, source) -> ChunkSource:
        """Any trace or chunk source; routing itself is per-chunk.

        A known ``total_packets`` positions every shard against the one
        global randomness draw — the exact-equals-single-process mode.
        An unknown total (unbounded source) still shards exactly on the
        regulator/WSAF axes, but each shard consumes its own
        unknown-length block-drawn stream, so the merged result is a
        well-defined sharded measurement rather than a bit-replica of a
        single-process run (see the module docstring).
        """
        if isinstance(source, Trace):
            source = TraceChunkSource(source, chunk_size=self.chunk_size)
        if not isinstance(source, ChunkSource):
            raise ConfigurationError(
                "sharded ingestion needs a Trace or a ChunkSource, "
                f"got {type(source).__name__}"
            )
        return source

    def positions_by_shard(self, trace: Trace) -> "list[np.ndarray]":
        """Each shard's global packet positions, in stream order."""
        assignment = self.router.assignments(trace)
        return [
            np.flatnonzero(assignment == shard)
            for shard in range(self.num_shards)
        ]

    def run(self, source, parallel: "bool | None" = None) -> ShardedResult:
        """Stream every chunk through routed shard pipelines and merge."""
        source = self._coerce_source(source)
        total = source.total_packets
        if total is not None:
            total = int(total)
        if parallel is None:
            parallel = self.parallel
        use_fork = parallel and _fork_available()
        if parallel and not use_fork:
            warnings.warn(
                "fork start method is unavailable on this platform; "
                "running shards in-process instead of in parallel",
                RuntimeWarning,
                stacklevel=2,
            )
        key_ranges = [
            self.router.key_range(shard) for shard in range(self.num_shards)
        ]
        governor = (
            ChunkGovernor(self.controller)
            if self.controller is not None
            else None
        )
        begin = time.perf_counter()
        if use_fork:
            result = self._run_forked(source, total, key_ranges, governor)
        else:
            result = self._run_in_process(source, total, key_ranges, governor)
        result.elapsed_seconds = time.perf_counter() - begin
        if governor is not None:
            result.offered_packets = governor.stats.offered_packets
            result.decisions = list(governor.decisions)
            result.controller_stats = governor.stats.as_dict()
        else:
            result.offered_packets = result.packets
        return result

    def _governed_chunks(self, source, governor):
        """The chunk stream after one global controller decision each.

        The aggregate signal: ``ingested_pps`` is packets routed across
        *all* shards per wall-clock second so far (the per-shard ingest
        clocks only resolve at finalize), ``queue_depth`` comes from the
        source's staging queue.  The decision applies to the whole chunk
        before routing, so every shard sees the same shed stream.
        """
        if governor is None:
            yield from source
            return
        begin = time.perf_counter()
        routed = 0
        for chunk in source:
            elapsed = time.perf_counter() - begin
            ready = governor.admit(
                chunk,
                ingested_pps=routed / elapsed if elapsed > 0 else 0.0,
                queue_depth=int(getattr(source, "queue_depth", 0) or 0),
            )
            for item in ready:
                routed += item.num_packets
                yield item
        tail = governor.flush()
        if tail is not None:
            yield tail

    def _run_in_process(self, source, total, key_ranges, governor) -> ShardedResult:
        """Route chunks into per-shard engines living in this process."""
        from repro.core.instameasure import InstaMeasure

        engines = [InstaMeasure(self.config) for _ in range(self.num_shards)]
        for engine in engines:
            engine.begin_stream(total=total)
        route_s = 0.0
        for chunk in self._governed_chunks(source, governor):
            begin = time.perf_counter()
            parts = self.router.split_chunk(chunk)
            route_s += time.perf_counter() - begin
            for shard, (sub, positions) in enumerate(parts):
                if sub.num_packets:
                    # Unknown totals have no global draw to gather from;
                    # each shard consumes its own block-drawn stream.
                    engines[shard].ingest(
                        sub, positions=positions if total is not None else None
                    )
        results = [engine.finalize() for engine in engines]

        begin = time.perf_counter()
        snapshots = [
            engine.snapshot(key_range=key_range)
            for engine, key_range in zip(engines, key_ranges)
        ]
        merged = merge(snapshots, mode="disjoint")
        merge_s = time.perf_counter() - begin
        ingest_s = max(
            (result.elapsed_seconds for result in results), default=0.0
        )
        return ShardedResult(
            num_shards=self.num_shards,
            snapshot=merged,
            shard_packets=[result.packets for result in results],
            shard_insertions=[result.insertions for result in results],
            shard_elapsed=[result.elapsed_seconds for result in results],
            stage_seconds={
                "route_s": route_s,
                "ipc_s": 0.0,
                "ingest_s": ingest_s,
                "merge_s": merge_s,
            },
            parallel=False,
        )

    def _run_forked(self, source, total, key_ranges, governor) -> ShardedResult:
        """Stream routed sub-chunks into a persistent forked worker pool."""
        route_s = ipc_s = 0.0
        syncs = [_ShardFlowSync() for _ in range(self.num_shards)]
        pool = ShardWorkerPool(self.config, key_ranges, total)
        try:
            for chunk in self._governed_chunks(source, governor):
                begin = time.perf_counter()
                parts = self.router.split_chunk(chunk)
                route_s += time.perf_counter() - begin
                for shard, (sub, positions) in enumerate(parts):
                    if not sub.num_packets:
                        continue
                    begin = time.perf_counter()
                    local_ids, fresh = syncs[shard].localize(
                        sub.flows, sub.flow_ids
                    )
                    key64, tuple_lo, tuple_hi = _fresh_flow_columns(
                        sub.flows, fresh
                    )
                    columns = {
                        "timestamps": sub.timestamps,
                        "flow_ids": local_ids,
                        "sizes": sub.sizes,
                        "new_key64": key64,
                        "new_tuple_lo": tuple_lo,
                        "new_tuple_hi": tuple_hi,
                    }
                    if total is not None:
                        columns["positions"] = positions
                    frame = pack_frame({"type": "chunk"}, columns)
                    pool.send(shard, frame)
                    ipc_s += time.perf_counter() - begin
            begin = time.perf_counter()
            replies = pool.finalize()
            ipc_s += time.perf_counter() - begin
        finally:
            pool.close()

        begin = time.perf_counter()
        snapshots = [from_bytes(payload) for _meta, payload in replies]
        merged = merge(snapshots, mode="disjoint")
        merge_s = time.perf_counter() - begin
        ingest_s = max(
            (meta.get("ingest_s", 0.0) for meta, _payload in replies),
            default=0.0,
        )
        return ShardedResult(
            num_shards=self.num_shards,
            snapshot=merged,
            shard_packets=[meta["packets"] for meta, _ in replies],
            shard_insertions=[meta["insertions"] for meta, _ in replies],
            shard_elapsed=[meta["elapsed"] for meta, _ in replies],
            stage_seconds={
                "route_s": route_s,
                "ipc_s": ipc_s,
                "ingest_s": ingest_s,
                "merge_s": merge_s,
            },
            parallel=True,
        )


@dataclass
class ShardedStreamResult:
    """Aggregate result of one sharded stream (``finalize`` output)."""

    packets: int
    insertions: int
    elapsed_seconds: float
    shard_packets: "list[int]" = field(default_factory=list)
    shard_insertions: "list[int]" = field(default_factory=list)


class ShardedStreamingMeasurer:
    """In-process sharded measurer for *unbounded* streams.

    The batch :class:`ShardedPipeline` drives the whole run itself; an
    always-on service instead needs a measurer it can push chunks into
    one at a time, checkpoint mid-flight, and query between chunks.
    This class is that: N same-seed engines, each consuming its own
    unknown-length (block-drawn, chunking-invariant) stream, fed through
    the same word-range :class:`~repro.state.ShardRouter` — so regulator
    words and WSAF key sets stay disjoint and per-shard states merge
    exactly.  It speaks the
    :class:`~repro.pipeline.protocol.StreamingMeasurer` protocol, so the
    :class:`~repro.pipeline.driver.Pipeline` driver and the service
    daemon treat it exactly like a single engine.

    Checkpointing goes through :meth:`snapshot_shards` (one mid-flight
    snapshot per shard — ``merge`` refuses in-progress streams, and the
    per-shard cursors must survive individually anyway) and
    :meth:`from_snapshots` to resume.
    """

    def __init__(self, config=None, num_shards: int = 1, accountant=None) -> None:
        from repro.core.instameasure import InstaMeasure, InstaMeasureConfig

        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.config = config or InstaMeasureConfig()
        self.num_shards = num_shards
        self.router = ShardRouter.for_config(self.config, num_shards)
        self.engines = [
            InstaMeasure(self.config, accountant) for _ in range(num_shards)
        ]

    @classmethod
    def from_snapshots(cls, snapshots, accountant=None) -> "ShardedStreamingMeasurer":
        """Rebuild from per-shard snapshots (a service checkpoint),
        resuming every shard's stream cursor bit-identically."""
        from repro.core.instameasure import InstaMeasure, InstaMeasureConfig

        if not snapshots:
            raise ConfigurationError("cannot restore from zero shard snapshots")
        config = InstaMeasureConfig(**snapshots[0].config)
        measurer = cls(config, num_shards=len(snapshots), accountant=accountant)
        measurer.engines = [
            InstaMeasure.from_snapshot(snapshot, accountant=accountant)
            for snapshot in snapshots
        ]
        return measurer

    def ingest(self, chunk, on_accumulate=None) -> None:
        """Route one chunk's packets into their owning shard engines.

        Every engine runs an unknown-length stream (the service never
        knows how many packets are coming), opened here rather than
        lazily inside the engine so no shard infers a finite total from
        its first sub-chunk's metadata.
        """
        for engine in self.engines:
            if engine._stream is None:
                engine.begin_stream()
        for shard, (sub, _positions) in enumerate(self.router.split_chunk(chunk)):
            if sub.num_packets:
                self.engines[shard].ingest(sub, on_accumulate=on_accumulate)

    def finalize(self) -> ShardedStreamResult:
        results = [engine.finalize() for engine in self.engines]
        return ShardedStreamResult(
            packets=sum(result.packets for result in results),
            insertions=sum(result.insertions for result in results),
            elapsed_seconds=sum(result.elapsed_seconds for result in results),
            shard_packets=[result.packets for result in results],
            shard_insertions=[result.insertions for result in results],
        )

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Union of the shards' estimates (key sets are disjoint)."""
        merged: "dict[int, tuple[float, float]]" = {}
        for engine in self.engines:
            merged.update(engine.estimates(flow_keys=flow_keys))
        return merged

    def rotate(self, now: float, wsaf_timeout: "float | None" = None):
        """Rotate every shard; returns the union of their pre-expiry
        snapshots (the per-epoch archive the driver stores)."""
        merged: "dict[int, tuple[float, float]]" = {}
        for engine in self.engines:
            merged.update(engine.rotate(now, wsaf_timeout=wsaf_timeout))
        return merged

    @property
    def wsaf_size(self) -> int:
        """Total live WSAF records across shards (occupancy metric)."""
        return sum(len(engine.wsaf) for engine in self.engines)

    def snapshot_shards(self) -> "list[MeasurementSnapshot]":
        """One mid-flight snapshot per shard, tagged with its key range."""
        return [
            engine.snapshot(key_range=self.router.key_range(shard))
            for shard, engine in enumerate(self.engines)
        ]

    def merged_snapshot(self) -> MeasurementSnapshot:
        """The shards folded into one state — valid between streams only
        (``merge`` refuses in-progress stream cursors)."""
        return merge(self.snapshot_shards(), mode="disjoint")


def run_sharded(
    config,
    source,
    num_shards: int,
    parallel: bool = False,
    chunk_size: "int | None" = None,
    controller=None,
) -> ShardedResult:
    """One-shot convenience: build a :class:`ShardedPipeline` and run it."""
    return ShardedPipeline(
        config,
        num_shards=num_shards,
        parallel=parallel,
        chunk_size=chunk_size,
        controller=controller,
    ).run(source)
