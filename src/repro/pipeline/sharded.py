"""Process-sharded ingestion — N workers, one exact merged state.

A :class:`ShardedPipeline` routes a trace's packets to ``num_shards``
workers by flow-key shard (:class:`repro.state.ShardRouter` partitions
the regulator's L1 word-index space into contiguous ranges), runs each
worker's :class:`~repro.pipeline.driver.Pipeline` independently over its
own packet subsequence, and folds the workers' serializable snapshots
into one :class:`~repro.state.snapshot.MeasurementSnapshot` with
:func:`repro.state.merge.merge`.

The merged state's ``estimates()`` are **exactly equal** to a
single-process run of the same trace, because the sharding is exact on
every axis:

* *Regulator*: flows sharing an L1 word land in the same shard, so each
  shard's full-size, same-seed regulator evolves its words precisely as
  the single run; disjoint word ranges OR together losslessly.
* *Randomness*: each worker opens a positioned bit stream over the
  global draw (``InstaMeasure.begin_stream(total, positions)``), so its
  packets consume exactly the bits the single run would hand them.
* *WSAF*: per-flow accumulation order is preserved (each worker sees its
  flows' packets in global time order), and disjoint key sets
  concatenate.  The equality holds while the WSAF experiences no
  evictions or GC — with the paper's 2^20-entry table and ~1 %
  regulation rate, the working set of realistic traces fits (the
  equivalence tests assert zero evictions).

With ``parallel=True`` workers run as forked OS processes and ship their
snapshots back through the versioned wire codec
(:func:`repro.state.codec.to_bytes`); in-process execution is
bit-identical and the fallback wherever fork is unavailable.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.pipeline.driver import Pipeline
from repro.pipeline.source import (
    DEFAULT_CHUNK_SIZE,
    ChunkSource,
    TraceChunkSource,
)
from repro.state import MeasurementSnapshot, ShardRouter, from_bytes, merge, to_bytes
from repro.traffic.packet import Trace


@dataclass
class ShardedResult:
    """Outcome of a sharded run: the merged state plus per-shard stats."""

    num_shards: int
    snapshot: MeasurementSnapshot
    shard_packets: "list[int]" = field(default_factory=list)
    shard_insertions: "list[int]" = field(default_factory=list)
    shard_elapsed: "list[float]" = field(default_factory=list)

    @property
    def packets(self) -> int:
        return sum(self.shard_packets)

    @property
    def insertions(self) -> int:
        return sum(self.shard_insertions)

    @property
    def load_shares(self) -> "list[float]":
        """Fraction of packets each shard received."""
        total = self.packets
        if total == 0:
            return [0.0] * self.num_shards
        return [count / total for count in self.shard_packets]

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Merged per-flow ``{key64: (packets, bytes)}`` estimates."""
        return self.snapshot.estimates(flow_keys=flow_keys)

    def restore(self, accountant=None):
        """Materialize the merged state as a live engine."""
        return self.snapshot.restore(accountant=accountant)

    def estimates_for(self, trace: Trace) -> "tuple[np.ndarray, np.ndarray]":
        """Per-flow (packets, bytes) arrays aligned with ``trace.flows``."""
        table = self.snapshot.estimates()
        est_packets = np.zeros(trace.num_flows)
        est_bytes = np.zeros(trace.num_flows)
        for flow_index, key in enumerate(trace.flows.key64.tolist()):
            record = table.get(key)
            if record is not None:
                est_packets[flow_index] = record[0]
                est_bytes[flow_index] = record[1]
        return est_packets, est_bytes


def _shard_trace(trace: Trace, positions: np.ndarray) -> Trace:
    """The subsequence of ``trace`` at ``positions`` (global time order)."""
    return Trace(
        timestamps=trace.timestamps[positions],
        flow_ids=trace.flow_ids[positions],
        sizes=trace.sizes[positions],
        flows=trace.flows,
    )


def _run_shard(
    config,
    trace: Trace,
    positions: np.ndarray,
    key_range: "tuple[int, int]",
    chunk_size: int,
) -> "tuple[bytes, int, int, float]":
    """Run one shard's pipeline; return its wire-format snapshot + stats."""
    from repro.core.instameasure import InstaMeasure

    engine = InstaMeasure(config)
    engine.begin_stream(total=trace.num_packets, positions=positions)
    sub = _shard_trace(trace, positions)
    outcome = Pipeline(engine).run(
        TraceChunkSource(sub, chunk_size=chunk_size)
    )
    result = outcome.result
    payload = to_bytes(engine.snapshot(key_range=key_range))
    return payload, outcome.packets, result.insertions, result.elapsed_seconds


#: Fork-inherited state for parallel shard workers; set only for the
#: duration of a parallel run (same pattern as the multi-core manager).
_SHARD_STATE = None


def _parallel_shard(shard: int) -> "tuple[int, bytes, int, int, float]":
    """Child-process entry: run one shard and ship its snapshot back."""
    config, trace, positions_by_shard, key_ranges, chunk_size = _SHARD_STATE
    payload, packets, insertions, elapsed = _run_shard(
        config, trace, positions_by_shard[shard], key_ranges[shard], chunk_size
    )
    return shard, payload, packets, insertions, elapsed


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ShardedPipeline:
    """Shard a trace across N independent pipelines and merge exactly.

    Args:
        config: per-worker engine configuration.  Unlike the multi-core
            manager, every shard uses the *same* seed — word-range
            disjointness is what keeps their regulators from interfering.
        num_shards: worker count, >= 1.
        parallel: run workers as forked OS processes (falls back to
            in-process execution when the platform cannot fork or there
            is a single shard; both modes are bit-identical).
        chunk_size: per-worker ingest chunk budget (defaults to the
            config's ``chunk_size``).
    """

    def __init__(
        self,
        config=None,
        num_shards: int = 1,
        parallel: bool = False,
        chunk_size: "int | None" = None,
    ) -> None:
        from repro.core.instameasure import InstaMeasureConfig

        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.config = config or InstaMeasureConfig()
        self.num_shards = num_shards
        self.parallel = parallel
        self.chunk_size = (
            chunk_size
            if chunk_size is not None
            else getattr(self.config, "chunk_size", DEFAULT_CHUNK_SIZE)
        )
        self.router = ShardRouter.for_config(self.config, num_shards)

    @staticmethod
    def _coerce_trace(source) -> Trace:
        """Sharding needs the whole trace to route; unwrap the source."""
        if isinstance(source, Trace):
            return source
        trace = getattr(source, "trace", None)
        if isinstance(source, ChunkSource) and isinstance(trace, Trace):
            return trace
        raise ConfigurationError(
            "sharded ingestion needs a Trace or a trace-backed chunk "
            f"source, got {type(source).__name__}"
        )

    def positions_by_shard(self, trace: Trace) -> "list[np.ndarray]":
        """Each shard's global packet positions, in stream order."""
        assignment = self.router.assignments(trace)
        return [
            np.flatnonzero(assignment == shard)
            for shard in range(self.num_shards)
        ]

    def run(self, source, parallel: "bool | None" = None) -> ShardedResult:
        """Route, run every shard's pipeline, and merge the snapshots."""
        trace = self._coerce_trace(source)
        positions_by_shard = self.positions_by_shard(trace)
        key_ranges = [
            self.router.key_range(shard) for shard in range(self.num_shards)
        ]
        if parallel is None:
            parallel = self.parallel
        use_fork = parallel and self.num_shards > 1 and _fork_available()
        if use_fork:
            payloads = self._run_parallel(trace, positions_by_shard, key_ranges)
        else:
            payloads = [
                _run_shard(
                    self.config,
                    trace,
                    positions_by_shard[shard],
                    key_ranges[shard],
                    self.chunk_size,
                )
                for shard in range(self.num_shards)
            ]
        snapshots = [from_bytes(payload) for payload, _, _, _ in payloads]
        return ShardedResult(
            num_shards=self.num_shards,
            snapshot=merge(snapshots, mode="disjoint"),
            shard_packets=[packets for _, packets, _, _ in payloads],
            shard_insertions=[insertions for _, _, insertions, _ in payloads],
            shard_elapsed=[elapsed for _, _, _, elapsed in payloads],
        )

    def _run_parallel(self, trace, positions_by_shard, key_ranges):
        """Fork one process per shard; collect wire-format snapshots."""
        global _SHARD_STATE
        context = multiprocessing.get_context("fork")
        _SHARD_STATE = (
            self.config,
            trace,
            positions_by_shard,
            key_ranges,
            self.chunk_size,
        )
        try:
            with context.Pool(processes=self.num_shards) as pool:
                results = pool.map(_parallel_shard, range(self.num_shards))
        finally:
            _SHARD_STATE = None
        results.sort(key=lambda item: item[0])
        return [
            (payload, packets, insertions, elapsed)
            for _, payload, packets, insertions, elapsed in results
        ]


def run_sharded(
    config,
    source,
    num_shards: int,
    parallel: bool = False,
    chunk_size: "int | None" = None,
) -> ShardedResult:
    """One-shot convenience: build a :class:`ShardedPipeline` and run it."""
    return ShardedPipeline(
        config,
        num_shards=num_shards,
        parallel=parallel,
        chunk_size=chunk_size,
    ).run(source)
