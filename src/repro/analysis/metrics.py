"""Estimation-error metrics in the paper's reporting vocabulary."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def relative_errors(estimated: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """|est - truth| / truth, elementwise (truth must be positive)."""
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ConfigurationError("estimated and truth must be index-aligned")
    if np.any(truth <= 0):
        raise ConfigurationError("relative error needs positive ground truth")
    return np.abs(estimated - truth) / truth


def mean_relative_error(estimated: np.ndarray, truth: np.ndarray) -> float:
    """The paper's 'average error rate' of a flow population."""
    return float(relative_errors(estimated, truth).mean())


def rms_relative_error(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square relative error."""
    return float(np.sqrt((relative_errors(estimated, truth) ** 2).mean()))


def standard_error(estimated: np.ndarray, truth: np.ndarray) -> float:
    """The paper's Fig 13 'standard error': std of the relative deviation.

    Computed over signed relative deviations ``(est - truth) / truth`` so a
    tight, unbiased estimator scores near zero.
    """
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ConfigurationError("estimated and truth must be index-aligned")
    if np.any(truth <= 0):
        raise ConfigurationError("standard error needs positive ground truth")
    deviations = (estimated - truth) / truth
    return float(np.sqrt((deviations**2).mean()))


@dataclass
class BandError:
    """Error statistics of one flow-size band (a Fig 10/11 bar)."""

    lower: float
    upper: float
    num_flows: int
    mean_error: float
    std_error: float

    def label(self, unit: str = "pkts") -> str:
        """Human-readable band label, e.g. ``[10, 100) pkts``."""
        if np.isinf(self.upper):
            return f">={self.lower:g} {unit}"
        return f"[{self.lower:g}, {self.upper:g}) {unit}"


def band_errors(
    estimated: np.ndarray,
    truth: np.ndarray,
    bands: "list[tuple[float, float]]",
) -> "list[BandError]":
    """Per-band mean/standard error, like the paper's 10K+/100K+/1000K+ bars.

    Args:
        estimated / truth: index-aligned per-flow values.
        bands: (lower, upper) half-open truth intervals; use ``np.inf`` for
            an unbounded band.  Bands with no flows report NaN errors.
    """
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ConfigurationError("estimated and truth must be index-aligned")
    results: "list[BandError]" = []
    for lower, upper in bands:
        if lower >= upper:
            raise ConfigurationError(f"empty band [{lower}, {upper})")
        mask = (truth >= lower) & (truth < upper)
        count = int(mask.sum())
        if count == 0:
            results.append(BandError(lower, upper, 0, float("nan"), float("nan")))
            continue
        results.append(
            BandError(
                lower=lower,
                upper=upper,
                num_flows=count,
                mean_error=mean_relative_error(estimated[mask], truth[mask]),
                std_error=standard_error(estimated[mask], truth[mask]),
            )
        )
    return results


#: The paper's packet-count bands (Fig 10): 10K+, 100K+, 1000K+ packets.
PAPER_PACKET_BANDS = [(1e4, 1e5), (1e5, 1e6), (1e6, float("inf"))]
#: The paper's byte-volume bands (Fig 11): 10MB+, 100MB+, 1GB+.
PAPER_BYTE_BANDS = [(1e7, 1e8), (1e8, 1e9), (1e9, float("inf"))]


def scaled_bands(
    bands: "list[tuple[float, float]]", scale: float
) -> "list[tuple[float, float]]":
    """Shrink the paper's bands by ``scale`` for reduced-scale traces."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    return [(lower * scale, upper * scale) for lower, upper in bands]
