"""Fixed-width table rendering for the benchmark harness.

Every bench prints the rows/series its figure or table reports; this module
keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def format_table(
    headers: "list[str]",
    rows: "list[list[object]]",
    title: "str | None" = None,
) -> str:
    """Render a fixed-width text table.

    Cells are stringified; columns are padded to the widest cell; floats are
    left to the caller to pre-format (benches care about significant digits).
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells
        else len(headers[col])
        for col in range(len(headers))
    ]

    def line(parts: "list[str]") -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths))

    out: "list[str]" = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def print_table(
    headers: "list[str]",
    rows: "list[list[object]]",
    title: "str | None" = None,
) -> None:
    """Print :func:`format_table` output (with a leading blank line)."""
    print()
    print(format_table(headers, rows, title=title))
