"""Distribution-level accuracy metrics.

Per-flow error (Fig 10/11) is one lens; operators also care whether the
*distribution* of flow sizes is preserved — e.g. for capacity planning or
for entropy-style anomaly baselines.  These helpers compare an estimated
per-flow size vector against ground truth at the distribution level:
size-class histograms, CCDF distance above a threshold, and the
traffic-share curve (what fraction of packets the top-x% of flows carry).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class SizeClass:
    """One size-class row of a histogram comparison."""

    lower: float
    upper: float
    true_count: int
    estimated_count: int

    @property
    def count_error(self) -> float:
        """Relative error of the class population (inf-safe)."""
        if self.true_count == 0:
            return 0.0 if self.estimated_count == 0 else float("inf")
        return abs(self.estimated_count - self.true_count) / self.true_count


def size_class_histogram(
    estimated: np.ndarray,
    truth: np.ndarray,
    edges: "list[float]",
) -> "list[SizeClass]":
    """Compare flow populations per size class.

    Args:
        estimated / truth: index-aligned per-flow sizes (zeros allowed —
            flows invisible to the estimator).
        edges: ascending class boundaries; classes are
            ``[edges[i], edges[i+1])`` plus a final ``[edges[-1], inf)``.
    """
    if len(estimated) != len(truth):
        raise ConfigurationError("estimated and truth must be index-aligned")
    if len(edges) < 1 or sorted(edges) != list(edges):
        raise ConfigurationError("edges must be ascending and non-empty")
    bounds = list(edges) + [float("inf")]
    classes: "list[SizeClass]" = []
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    for lower, upper in zip(bounds[:-1], bounds[1:]):
        classes.append(
            SizeClass(
                lower=lower,
                upper=upper,
                true_count=int(((truth >= lower) & (truth < upper)).sum()),
                estimated_count=int(
                    ((estimated >= lower) & (estimated < upper)).sum()
                ),
            )
        )
    return classes


def ccdf_distance(
    estimated: np.ndarray,
    truth: np.ndarray,
    min_size: float,
) -> float:
    """Max CCDF gap (Kolmogorov-Smirnov style) above ``min_size``.

    Both CCDFs are normalized by the number of *true* flows ≥ ``min_size``,
    so over-/under-population of the tail shows up directly.
    """
    if min_size <= 0:
        raise ConfigurationError("min_size must be positive")
    if len(estimated) != len(truth):
        raise ConfigurationError("estimated and truth must be index-aligned")
    truth = np.asarray(truth, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    reference = np.sort(truth[truth >= min_size])
    if len(reference) == 0:
        raise ConfigurationError(f"no true flows of size >= {min_size}")
    probes = np.unique(reference)
    worst = 0.0
    denominator = float(len(reference))
    for probe in probes:
        true_tail = float((truth >= probe).sum()) / denominator
        est_tail = float((estimated >= probe).sum()) / denominator
        worst = max(worst, abs(true_tail - est_tail))
    return worst


def traffic_share_curve(
    flow_sizes: np.ndarray, fractions: "list[float]"
) -> "list[float]":
    """Packet share carried by the largest ``fraction`` of flows.

    ``traffic_share_curve(sizes, [0.01])`` answers "what do the top-1 % of
    flows carry?" — the skew statistic the paper's motivation leans on.
    """
    sizes = np.sort(np.asarray(flow_sizes, dtype=np.float64))[::-1]
    sizes = sizes[sizes > 0]
    if len(sizes) == 0:
        raise ConfigurationError("no active flows")
    if any(not 0.0 < fraction <= 1.0 for fraction in fractions):
        raise ConfigurationError("fractions must be in (0, 1]")
    total = sizes.sum()
    shares = []
    for fraction in fractions:
        top = max(1, int(round(fraction * len(sizes))))
        shares.append(float(sizes[:top].sum() / total))
    return shares
