"""Analysis: error metrics, size-band reports, table printing.

The paper reports per-size-band average error rates (Fig 10/11), standard
errors (Fig 13), recall (Top-K), and FPR/FNR (Fig 14).  This package
computes those metrics and renders the fixed-width tables the benchmark
harness prints.
"""

from repro.analysis.ascii_chart import bar_chart, sparkline
from repro.analysis.distribution import (
    SizeClass,
    ccdf_distance,
    size_class_histogram,
    traffic_share_curve,
)
from repro.analysis.metrics import (
    BandError,
    band_errors,
    mean_relative_error,
    relative_errors,
    rms_relative_error,
    standard_error,
)
from repro.analysis.report import format_table, print_table

__all__ = [
    "BandError",
    "SizeClass",
    "band_errors",
    "bar_chart",
    "ccdf_distance",
    "size_class_histogram",
    "traffic_share_curve",
    "format_table",
    "mean_relative_error",
    "print_table",
    "relative_errors",
    "rms_relative_error",
    "sparkline",
    "standard_error",
]
