"""Text-based charts for benchmark reports.

The benchmark harness is terminal-only, so time series (Fig 7's ips
timeline, Fig 12's diurnal utilization) are rendered as horizontal bar
charts and compact sparklines instead of images.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: "list[float]") -> str:
    """A one-line unicode sparkline of ``values`` (min→max scaled)."""
    if not values:
        return ""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        raise ConfigurationError("sparkline needs at least one finite value")
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if not math.isfinite(value):
            chars.append("?")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def bar_chart(
    labels: "list[str]",
    values: "list[float]",
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must be the same length")
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    if not labels:
        return ""
    peak = max(values)
    if peak < 0:
        raise ConfigurationError("bar_chart values must be non-negative")
    label_width = max(len(label) for label in labels)
    rows = []
    for label, value in zip(labels, values):
        if value < 0:
            raise ConfigurationError("bar_chart values must be non-negative")
        bar = "#" * (round(value / peak * width) if peak > 0 else 0)
        rows.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:g}{unit}")
    return "\n".join(rows)
