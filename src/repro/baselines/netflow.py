"""NetFlow-style exact flow cache (the industry-practice baseline).

NetFlow "registers every flow, if not sampled, in the table regardless of
its size" (Section II): every packet is a table operation, the {ips = pps}
regime the paper's FlowRegulator exists to relax.  This baseline models
that design point: an exact flow cache with a capacity limit, optional
1-in-N packet sampling (NetFlow's actual mitigation), and inactive-timeout
eviction of the oldest entry when full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


@dataclass
class NetFlowStats:
    """Outcome of a NetFlow run."""

    packets_seen: int
    packets_sampled: int
    table_operations: int
    insertions: int
    evictions: int
    #: Entries flushed by the active timeout (:meth:`NetFlowTable.rotate`).
    timeout_flushes: int = 0

    @property
    def operations_per_packet(self) -> float:
        """Table operations per arriving packet — ≈1 unless sampled,
        the {ips = pps} constraint in numbers."""
        if self.packets_seen == 0:
            return 0.0
        return self.table_operations / self.packets_seen


class NetFlowTable:
    """An exact flow cache with sampling and capacity eviction.

    Args:
        max_entries: flow-cache capacity (TCAM/CAM tables hold only
            thousands of entries — the paper's scalability complaint).
        sampling_rate: probability a packet is examined (1.0 = unsampled).
        seed: sampling RNG seed.
        active_timeout: idle age (seconds) past which :meth:`rotate`
            flushes an entry, mirroring NetFlow's active-timeout export.
            ``None`` keeps rotation a pure estimates snapshot.
    """

    def __init__(
        self,
        max_entries: int,
        sampling_rate: float = 1.0,
        seed: int = 0,
        active_timeout: "float | None" = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        if not 0.0 < sampling_rate <= 1.0:
            raise ConfigurationError("sampling_rate must be in (0, 1]")
        if active_timeout is not None and active_timeout <= 0:
            raise ConfigurationError("active_timeout must be positive")
        self.max_entries = max_entries
        self.sampling_rate = sampling_rate
        self.seed = seed
        self.active_timeout = active_timeout
        # key → [packets, bytes, last_update]; dict order gives LRU.
        self._table: "dict[int, list[float]]" = {}
        self.stats = NetFlowStats(0, 0, 0, 0, 0)
        # Persistent sampling stream: double draws split cleanly across
        # calls, so chunked ingestion samples the same packets as one call.
        self._rng = np.random.default_rng(seed)

    def process_trace(self, trace: Trace) -> NetFlowStats:
        """Feed every packet of ``trace`` through the cache."""
        if self.sampling_rate < 1.0:
            sampled = (
                self._rng.random(trace.num_packets) < self.sampling_rate
            ).tolist()
        else:
            sampled = None
        keys = trace.flows.key64.tolist()
        flow_ids = trace.flow_ids.tolist()
        sizes = trace.sizes.tolist()
        timestamps = trace.timestamps.tolist()
        table = self._table
        stats = self.stats

        for p in range(trace.num_packets):
            stats.packets_seen += 1
            if sampled is not None and not sampled[p]:
                continue
            stats.packets_sampled += 1
            stats.table_operations += 1
            key = keys[flow_ids[p]]
            record = table.get(key)
            if record is not None:
                record[0] += 1
                record[1] += sizes[p]
                record[2] = timestamps[p]
                # LRU refresh: re-insert at the back of the dict order.
                del table[key]
                table[key] = record
                continue
            if len(table) >= self.max_entries:
                oldest = next(iter(table))
                del table[oldest]
                stats.evictions += 1
            table[key] = [1.0, float(sizes[p]), timestamps[p]]
            stats.insertions += 1
        return stats

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> NetFlowStats:
        """Feed one chunk through the cache (table state simply carries)."""
        from repro.pipeline.protocol import chunk_trace

        return self.process_trace(chunk_trace(chunk))

    def finalize(self) -> NetFlowStats:
        """The run's cumulative cache statistics."""
        return self.stats

    def rotate(
        self, now: float, active_timeout: "float | None" = None
    ) -> "dict[int, tuple[float, float]]":
        """Window boundary: snapshot estimates, flush timed-out entries.

        Models NetFlow's active-timeout export — a real collector sees a
        flow's counters once its record has been idle long enough, and
        the cache slot is reclaimed.  Returns the estimates snapshot
        taken *before* the flush, so windowed evaluations read each
        window's full table, comparable to the InstaMeasure engines'
        :meth:`rotate` contract.
        """
        snapshot = self.estimates()
        timeout = (
            active_timeout if active_timeout is not None else self.active_timeout
        )
        if timeout is not None:
            cutoff = now - timeout
            expired = [
                key
                for key, record in self._table.items()
                if record[2] <= cutoff
            ]
            for key in expired:
                del self._table[key]
            self.stats.timeout_flushes += len(expired)
        return snapshot

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Flow key → (packets, bytes), scaled up by the sampling rate.

        Without ``flow_keys`` every cached flow is returned; with them,
        every queried key appears (``(0.0, 0.0)`` when not cached).
        """
        scale = 1.0 / self.sampling_rate
        if flow_keys is None:
            return {
                key: (record[0] * scale, record[1] * scale)
                for key, record in self._table.items()
            }
        keys = np.asarray(
            flow_keys if isinstance(flow_keys, np.ndarray) else list(flow_keys),
            dtype=np.uint64,
        )
        empty = (0.0, 0.0)
        result = {}
        for key in keys.tolist():
            record = self._table.get(key)
            result[key] = (
                (record[0] * scale, record[1] * scale)
                if record is not None
                else empty
            )
        return result

    def __len__(self) -> int:
        return len(self._table)
