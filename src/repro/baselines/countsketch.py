"""Count-Sketch (Charikar, Chen, Farach-Colton 2002).

The signed cousin of Count-Min: each packet adds ±1 (a hashed sign) to one
counter per row, and a flow's estimate is the *median* of its signed row
counters.  Unbiased (unlike Count-Min's one-sided overestimate), with error
proportional to the stream's L2 norm — which is why UnivMon builds on it
(see :mod:`repro.baselines.univmon`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import HashFamily, hash_u64_array
from repro.traffic.packet import Trace

COUNTER_BYTES = 4


class CountSketch:
    """A depth × width Count-Sketch of packet counts.

    Args:
        memory_bytes: total counter memory (4-byte counters).
        depth: number of rows; estimates are row medians, so odd depths
            give cleaner medians.
        seed: hash seed (drives both bucket and sign hashes).
    """

    def __init__(self, memory_bytes: int, depth: int = 5, seed: int = 0) -> None:
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        width = memory_bytes // (COUNTER_BYTES * depth)
        if width < 1:
            raise ConfigurationError(
                f"{memory_bytes} bytes cannot hold {depth} rows of counters"
            )
        self.depth = depth
        self.width = width
        self.rows = np.zeros((depth, width), dtype=np.int64)
        self.total_packets = 0
        self._bucket_family = HashFamily(depth, seed=seed)
        self._sign_family = HashFamily(depth, seed=seed ^ 0x5160)

    # -- placement ---------------------------------------------------------

    def _bucket(self, row: int, flow_key: int) -> int:
        return self._bucket_family.hash_mod(row, flow_key, self.width)

    def _sign(self, row: int, flow_key: int) -> int:
        return 1 if self._sign_family.hash(row, flow_key) & 1 else -1

    def _buckets_array(self, flow_keys: np.ndarray) -> np.ndarray:
        return np.stack(
            [
                hash_u64_array(flow_keys, self._bucket_family.seed_of(row))
                % np.uint64(self.width)
                for row in range(self.depth)
            ]
        ).astype(np.int64)

    def _signs_array(self, flow_keys: np.ndarray) -> np.ndarray:
        return np.stack(
            [
                np.where(
                    hash_u64_array(flow_keys, self._sign_family.seed_of(row))
                    & np.uint64(1),
                    1,
                    -1,
                )
                for row in range(self.depth)
            ]
        ).astype(np.int64)

    # -- encode / query ------------------------------------------------------

    def encode(self, flow_key: int, count: int = 1) -> None:
        """Add ``count`` packets of ``flow_key``."""
        self.total_packets += count
        for row in range(self.depth):
            self.rows[row, self._bucket(row, flow_key)] += (
                self._sign(row, flow_key) * count
            )

    def encode_trace(self, trace: Trace) -> None:
        """Encode every packet of ``trace`` (vectorized per flow)."""
        if trace.num_packets == 0:
            return
        buckets = self._buckets_array(trace.flows.key64)
        signs = self._signs_array(trace.flows.key64)
        counts = trace.ground_truth_packets()
        for row in range(self.depth):
            np.add.at(self.rows[row], buckets[row], signs[row] * counts)
        self.total_packets += trace.num_packets

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> int:
        """Encode one chunk (signed counters are additive across chunks)."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        self.encode_trace(trace)
        return trace.num_packets

    def finalize(self) -> "CountSketch":
        """The encoded sketch is the result; query it for estimates."""
        return self

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` over ``flow_keys``."""
        from repro.baselines.streaming import sketch_estimates

        return sketch_estimates(self.query_flows, flow_keys, "CountSketch")

    def query(self, flow_key: int) -> float:
        """Median-of-rows estimate (unbiased; can be negative for mice)."""
        values = [
            self._sign(row, flow_key) * self.rows[row, self._bucket(row, flow_key)]
            for row in range(self.depth)
        ]
        return float(np.median(values))

    def query_flows(self, flow_keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`query`."""
        buckets = self._buckets_array(flow_keys)
        signs = self._signs_array(flow_keys)
        values = np.stack(
            [signs[row] * self.rows[row, buckets[row]] for row in range(self.depth)]
        )
        return np.median(values, axis=0)

    def l2_estimate(self) -> float:
        """Estimate of the stream's L2 norm (median of per-row norms)."""
        return float(np.median(np.sqrt((self.rows.astype(np.float64) ** 2).sum(axis=1))))

    @property
    def memory_bytes(self) -> int:
        return self.depth * self.width * COUNTER_BYTES
