"""Invertible Bloom Lookup Table (Goodrich & Mitzenmacher, Allerton 2011).

The substrate behind FlowRadar (see :mod:`repro.baselines.flowradar`):
a Bloom-filter-like table whose cells accumulate XORs of keys and sums of
values, supporting *listing* — peeling cells that contain exactly one
entry — as long as the load stays below the decode threshold.  FlowRadar
uses it to get constant-time insertion for per-flow counters; the paper
contrasts that approach with InstaMeasure's relaxation of the {ips = pps}
constraint ("FlowRadar's view on WSAF is similar to InstaMeasure, although
it tried to solve non-deterministic insertion time by IBLT's constant time
insertion").

Cells store (count, key_xor, key_check_xor, value_sum).  The check field —
an independent hash of the key — guards peeling against false singletons
produced by cancellation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.hashing import HashFamily, hash_u64


@dataclass
class IBLTCell:
    """One IBLT cell (all fields XOR/sum-accumulated)."""

    count: int = 0
    key_xor: int = 0
    check_xor: int = 0
    value_sum: float = 0.0

    def is_pure(self) -> bool:
        """True when the cell demonstrably holds exactly one entry."""
        return self.count == 1 and self.check_xor == _key_check(self.key_xor)


_CHECK_SEED = 0x1B17


def _key_check(key: int) -> int:
    """Independent checksum hash of a key (guards peeling)."""
    return hash_u64(key, _CHECK_SEED)


class IBLT:
    """An invertible Bloom lookup table over (flow key → counter) pairs.

    Args:
        num_cells: table size; listing succeeds w.h.p. while the number of
            distinct keys stays under ~``num_cells / 1.3`` for 3 hashes.
        num_hashes: cells touched per key (3 is the standard choice).
        seed: hash seed.
    """

    def __init__(self, num_cells: int, num_hashes: int = 3, seed: int = 0) -> None:
        if num_cells < num_hashes:
            raise ConfigurationError("num_cells must be >= num_hashes")
        if num_hashes < 2:
            raise ConfigurationError("num_hashes must be >= 2")
        self.num_cells = num_cells
        self.num_hashes = num_hashes
        self.cells = [IBLTCell() for _ in range(num_cells)]
        self._family = HashFamily(num_hashes, seed=seed)
        self.insertions = 0

    def _cells_of(self, key: int) -> "list[int]":
        """Distinct cell indices of ``key`` (double-hashing style probe)."""
        indices: "list[int]" = []
        for hash_index in range(self.num_hashes):
            cell = self._family.hash_mod(hash_index, key, self.num_cells)
            # Resolve intra-key collisions by linear stepping; keeps the
            # per-key cell set distinct without rejection sampling.
            while cell in indices:
                cell = (cell + 1) % self.num_cells
            indices.append(cell)
        return indices

    def insert(self, key: int, value: float = 1.0) -> None:
        """Register a NEW key with an initial counter value (constant time).

        Each distinct key must be inserted exactly once; later packets of
        the same flow go through :meth:`increment`.  (FlowRadar enforces
        this with its flow-set Bloom filter; inserting a key twice XORs it
        out of the key field and poisons peeling.)
        """
        check = _key_check(key)
        for index in self._cells_of(key):
            cell = self.cells[index]
            cell.count += 1
            cell.key_xor ^= key
            cell.check_xor ^= check
            cell.value_sum += value
        self.insertions += 1

    def increment(self, key: int, value: float = 1.0) -> None:
        """Add ``value`` to an already-inserted key's counter.

        Touches only the value field of the key's cells, so a pure cell's
        ``value_sum`` is exactly its flow's accumulated counter.
        """
        for index in self._cells_of(key):
            self.cells[index].value_sum += value

    def _remove(self, key: int, value: float) -> None:
        check = _key_check(key)
        for index in self._cells_of(key):
            cell = self.cells[index]
            cell.count -= 1
            cell.key_xor ^= key
            cell.check_xor ^= check
            cell.value_sum -= value

    def list_entries(self) -> "dict[int, float]":
        """Peel the table and return all (key → value-sum) pairs.

        Raises:
            CapacityError: if peeling stalls before the table empties
                (overloaded table — FlowRadar's failure mode when too many
                flows arrive in one epoch).

        The table is consumed (left empty) on success; on failure it is
        left in the partially peeled state, mirroring how a FlowRadar
        decoder would hand the remainder to a remote resolver.
        """
        recovered: "dict[int, float]" = {}
        progress = True
        while progress:
            progress = False
            for cell in list(self.cells):
                if not cell.is_pure():
                    continue
                key = cell.key_xor
                value = cell.value_sum
                recovered[key] = recovered.get(key, 0.0) + value
                self._remove(key, value)
                progress = True
        if any(cell.count != 0 for cell in self.cells):
            raise CapacityError(
                f"IBLT peeling stalled with {sum(c.count != 0 for c in self.cells)}"
                f" non-empty cells (recovered {len(recovered)} keys)"
            )
        return recovered

    @property
    def load(self) -> float:
        """Occupied-cell fraction (rough overload indicator)."""
        return sum(cell.count != 0 for cell in self.cells) / self.num_cells
