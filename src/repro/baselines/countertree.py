"""Counter Tree (Chen, Chen, Cai; ToN 2017) — the cited multi-layer prior.

Section II is explicit that "the multi-layer sketch is not first introduced
by this paper (e.g., [20])" — reference [20] is Counter Tree.  Its layering
is *vertical counter extension*: small leaf counters overflow into shared
parent counters up a tree, so a few hot counters can grow large while the
leaf array stays dense and memory-efficient.  Contrast with FlowRegulator's
layering, which exists to *delay decoding* (retention), not to extend
range — and which uniquely supports online decoding, the paper's point.

Implementation: ``num_layers`` arrays of ``counter_bits``-wide counters;
layer ``i+1`` has ``1/degree`` as many counters as layer ``i``; a counter
that wraps carries +1 into its parent.  A leaf's *virtual counter* value is
``leaf + 2^b·(parent + 2^b·(…))``.  Parents are shared by ``degree``
children, so sibling carries are noise; flow estimates use CSM-style
sharing (each flow owns ``counters_per_flow`` leaves) with mean-noise
subtraction.  Decoding is offline, as with the rest of the sketch family.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import HashFamily, hash_u64_array
from repro.traffic.packet import Trace


class CounterTree:
    """A counter tree over flow keys.

    Args:
        memory_bytes: total memory across all layers.
        counter_bits: width of each counter (the paper's point is that
            small, overflowing counters beat wide flat ones).
        degree: children per parent.
        num_layers: tree height.
        counters_per_flow: leaves per flow (CSM-style sharing).
        seed: hash seed.
    """

    def __init__(
        self,
        memory_bytes: int,
        counter_bits: int = 8,
        degree: int = 2,
        num_layers: int = 3,
        counters_per_flow: int = 8,
        seed: int = 0,
    ) -> None:
        if not 2 <= counter_bits <= 32:
            raise ConfigurationError("counter_bits must be in [2, 32]")
        if degree < 2:
            raise ConfigurationError("degree must be >= 2")
        if num_layers < 1:
            raise ConfigurationError("num_layers must be >= 1")
        if counters_per_flow < 1:
            raise ConfigurationError("counters_per_flow must be >= 1")

        # Split memory: layer i has degree^-i of the leaves, so the leaf
        # layer gets the geometric share of the budget.
        weight = sum(degree**-i for i in range(num_layers))
        total_counters = int(memory_bytes * 8 // counter_bits)
        num_leaves = int(total_counters / weight)
        if num_leaves < counters_per_flow:
            raise ConfigurationError(
                f"{memory_bytes} bytes cannot hold {counters_per_flow} leaves"
            )
        self.counter_bits = counter_bits
        self.degree = degree
        self.num_layers = num_layers
        self.counters_per_flow = counters_per_flow
        self._limit = 1 << counter_bits
        self.layers: "list[np.ndarray]" = []
        size = num_leaves
        for _ in range(num_layers):
            self.layers.append(np.zeros(max(1, size), dtype=np.int64))
            size = -(-size // degree)  # ceil: every child needs a parent
        self.num_leaves = num_leaves
        self.total_packets = 0
        self.overflows = 0
        self._family = HashFamily(counters_per_flow, seed=seed)
        self.seed = seed
        # Persistent leaf-choice stream (int64 draws split cleanly across
        # calls, so chunked encoding matches whole-trace encoding).
        self._rng = np.random.default_rng(seed ^ 0xC7EE)

    # -- placement ---------------------------------------------------------

    def flow_leaves(self, flow_key: int) -> "list[int]":
        """Leaf indices of ``flow_key``'s storage vector."""
        return [
            self._family.hash_mod(j, flow_key, self.num_leaves)
            for j in range(self.counters_per_flow)
        ]

    def _flow_leaves_array(self, flow_keys: np.ndarray) -> np.ndarray:
        columns = [
            hash_u64_array(flow_keys, self._family.seed_of(j))
            % np.uint64(self.num_leaves)
            for j in range(self.counters_per_flow)
        ]
        return np.stack(columns, axis=1).astype(np.int64)

    # -- encode ------------------------------------------------------------

    def _bump(self, layer: int, index: int) -> None:
        """Increment one counter, carrying into the parent on wrap."""
        array = self.layers[layer]
        array[index] += 1
        if array[index] < self._limit:
            return
        array[index] = 0
        self.overflows += 1
        if layer + 1 < self.num_layers:
            self._bump(layer + 1, index // self.degree)

    def encode(self, flow_key: int, choice: int) -> None:
        """Record one packet in the ``choice``-th leaf of the flow."""
        if not 0 <= choice < self.counters_per_flow:
            raise ConfigurationError("choice outside the storage vector")
        self._bump(0, self.flow_leaves(flow_key)[choice])
        self.total_packets += 1

    def encode_trace(self, trace: Trace) -> None:
        """Encode every packet of ``trace``."""
        if trace.num_packets == 0:
            return
        leaves = self._flow_leaves_array(trace.flows.key64)
        choices = self._rng.integers(
            0, self.counters_per_flow, size=trace.num_packets, dtype=np.int64
        )
        targets = leaves[trace.flow_ids, choices].tolist()
        bump = self._bump
        for index in targets:
            bump(0, index)
        self.total_packets += trace.num_packets

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> int:
        """Encode one chunk; the persistent choice stream keeps chunked
        ingestion identical to encoding the whole trace."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        self.encode_trace(trace)
        return trace.num_packets

    def finalize(self) -> "CounterTree":
        """The encoded tree is the result; decode it for estimates."""
        return self

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` over ``flow_keys``."""
        from repro.baselines.streaming import sketch_estimates

        return sketch_estimates(self.decode_flows, flow_keys, "CounterTree")

    # -- decode ------------------------------------------------------------

    def virtual_value(self, leaf_index: int) -> int:
        """Raw virtual counter of one leaf (leaf + scaled ancestors).

        Ancestors are shared; their value includes sibling carries, so this
        upper-bounds the leaf's own accumulation.
        """
        value = 0
        scale = 1
        index = leaf_index
        for layer in range(self.num_layers):
            value += scale * int(self.layers[layer][index])
            scale *= self._limit
            index //= self.degree
        return value

    def decode(self, flow_key: int) -> float:
        """CSM-style estimate: virtual-counter sum minus expected noise."""
        own = sum(self.virtual_value(leaf) for leaf in self.flow_leaves(flow_key))
        noise = self.counters_per_flow * self._expected_noise_per_leaf()
        return max(0.0, own - noise)

    def decode_flows(self, flow_keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`decode`."""
        virtual = self._virtual_leaves()
        leaves = self._flow_leaves_array(flow_keys)
        own = virtual[leaves].sum(axis=1).astype(np.float64)
        noise = self.counters_per_flow * self._expected_noise_per_leaf()
        return np.maximum(0.0, own - noise)

    def _virtual_leaves(self) -> np.ndarray:
        """Virtual values of every leaf, vectorized."""
        values = self.layers[0].astype(np.float64).copy()
        scale = float(self._limit)
        parent_index = np.arange(self.num_leaves) // self.degree
        for layer in range(1, self.num_layers):
            values += scale * self.layers[layer][parent_index]
            scale *= self._limit
            parent_index //= self.degree
        return values

    def _expected_noise_per_leaf(self) -> float:
        """Mean other-flow contribution visible through one leaf.

        A leaf's virtual counter sees its own share plus the carries of
        every leaf under the same ancestors, so the data-driven baseline is
        the mean virtual leaf value (the analogue of CSM's ``l·n/m``).
        """
        return float(self._virtual_leaves().mean())

    @property
    def memory_bytes(self) -> int:
        bits = sum(len(layer) for layer in self.layers) * self.counter_bits
        return bits // 8
