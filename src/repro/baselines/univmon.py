"""UnivMon-style universal sketch (Liu et al., SIGCOMM 2016).

The paper's Related Work: "UnivMon, which uses a single universal sketch".
Universal sketching runs log(n) levels of Count-Sketch; level *i* sees only
the flows whose hash has *i* leading sampled bits (each level halves the
flow population).  Any G-sum statistic — heavy hitters, entropy, F2 — can
then be answered from the one structure via recursive estimation over the
levels' heavy hitters.

This implementation covers the parts the comparison needs: leveled
Count-Sketch encoding, per-level heavy-hitter extraction, and heavy-hitter
/ entropy queries.  Like all delegation-family sketches it decodes offline,
which is the axis InstaMeasure differs on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.countsketch import CountSketch
from repro.errors import ConfigurationError
from repro.hashing import hash_u64, hash_u64_array
from repro.traffic.packet import Trace

_LEVEL_SEED = 0x10E7


class UnivMon:
    """A universal sketch over flow keys.

    Args:
        memory_bytes: total memory across all levels (split evenly).
        num_levels: sampling levels (log-many; 8 covers 256:1 subsampling).
        depth: Count-Sketch depth per level.
        heavy_candidates: per-level Top-K candidate set size used by the
            offline decode.
        seed: hash seed.
    """

    def __init__(
        self,
        memory_bytes: int,
        num_levels: int = 8,
        depth: int = 5,
        heavy_candidates: int = 64,
        seed: int = 0,
    ) -> None:
        if num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if heavy_candidates < 1:
            raise ConfigurationError("heavy_candidates must be >= 1")
        per_level = memory_bytes // num_levels
        self.levels = [
            CountSketch(per_level, depth=depth, seed=seed + level)
            for level in range(num_levels)
        ]
        self.num_levels = num_levels
        self.heavy_candidates = heavy_candidates
        self.seed = seed
        #: per-level observed candidate keys (a real implementation keeps a
        #: small heap next to each sketch; we keep the key set).
        self._candidates: "list[set[int]]" = [set() for _ in range(num_levels)]
        self.total_packets = 0

    def _level_of(self, flow_key: int) -> int:
        """Deepest level this key is sampled into (leading hash bits)."""
        bits = hash_u64(flow_key, _LEVEL_SEED)
        level = 0
        while level + 1 < self.num_levels and bits & (1 << level):
            level += 1
        return level

    def _levels_array(self, flow_keys: np.ndarray) -> np.ndarray:
        bits = hash_u64_array(flow_keys, _LEVEL_SEED)
        levels = np.zeros(len(flow_keys), dtype=np.int64)
        mask = np.ones(len(flow_keys), dtype=bool)
        for level in range(self.num_levels - 1):
            mask = mask & ((bits >> np.uint64(level)) & np.uint64(1)).astype(bool)
            levels[mask] = level + 1
        return levels

    def encode_trace(self, trace: Trace) -> None:
        """Encode every packet of ``trace`` into its flows' levels."""
        if trace.num_packets == 0:
            return
        keys = trace.flows.key64
        counts = trace.ground_truth_packets()
        deepest = self._levels_array(keys)
        for level in range(self.num_levels):
            # A flow sampled to depth d appears in levels 0..d.
            member = deepest >= level
            if not member.any():
                continue
            # Encode per flow directly (counts known) — equivalent to
            # packet-by-packet for Count-Sketch.
            sketch = self.levels[level]
            buckets = sketch._buckets_array(keys[member])
            signs = sketch._signs_array(keys[member])
            for row in range(sketch.depth):
                np.add.at(sketch.rows[row], buckets[row], signs[row] * counts[member])
            sketch.total_packets += int(counts[member].sum())
            # Track the level's largest flows as decode candidates (a real
            # implementation keeps a small heap next to each sketch).
            member_keys = keys[member]
            member_counts = counts[member]
            keep = np.argsort(-member_counts)[: self.heavy_candidates * 4]
            self._candidates[level].update(int(k) for k in member_keys[keep])
        self.total_packets += trace.num_packets

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> int:
        """Encode one chunk (level sketches and candidate sets are
        additive across chunks)."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        self.encode_trace(trace)
        return trace.num_packets

    def finalize(self) -> "UnivMon":
        """The encoded sketch is the result; query it for G-sum stats."""
        return self

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` over ``flow_keys``.

        Per-flow counts come from the level-0 Count-Sketch, which sees
        every flow (deeper levels only subsample).
        """
        from repro.baselines.streaming import sketch_estimates

        return sketch_estimates(
            self.levels[0].query_flows, flow_keys, "UnivMon"
        )

    def level_heavy_hitters(self, level: int) -> "dict[int, float]":
        """Top candidate flows of one level by Count-Sketch estimate."""
        sketch = self.levels[level]
        candidates = list(self._candidates[level])
        if not candidates:
            return {}
        estimates = sketch.query_flows(np.array(candidates, dtype=np.uint64))
        order = np.argsort(-estimates)[: self.heavy_candidates]
        return {
            candidates[i]: float(estimates[i]) for i in order if estimates[i] > 0
        }

    def heavy_hitters(self, threshold: float) -> "dict[int, float]":
        """Flows whose level-0 estimate crosses ``threshold``."""
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        return {
            key: value
            for key, value in self.level_heavy_hitters(0).items()
            if value >= threshold
        }

    def entropy_estimate(self) -> float:
        """G-sum entropy estimate via the recursive UnivMon estimator.

        ``Y_L = G over level-L heavy hitters``;
        ``Y_i = 2·Y_{i+1} + Σ_{HH at level i} g(w) · (1 - 2·sampled(w))``.
        Returns Shannon entropy in bits (normalized by total packets).
        """
        total = max(1, self.total_packets)

        def g(count: float) -> float:
            if count <= 0:
                return 0.0
            p = count / total
            return -p * math.log2(p)

        estimate = sum(
            g(value)
            for value in self.level_heavy_hitters(self.num_levels - 1).values()
        )
        for level in range(self.num_levels - 2, -1, -1):
            heavy = self.level_heavy_hitters(level)
            correction = 0.0
            for key, value in heavy.items():
                sampled_deeper = 1.0 if self._level_of(key) >= level + 1 else 0.0
                correction += g(value) * (1.0 - 2.0 * sampled_deeper)
            estimate = 2.0 * estimate + correction
        return max(0.0, estimate)

    @property
    def memory_bytes(self) -> int:
        return sum(level.memory_bytes for level in self.levels)
