"""Baselines the paper compares against (or builds on).

* :func:`~repro.baselines.rcc_only.run_rcc_regulator` — single-layer RCC as
  the WSAF front-end (Fig 1 / Fig 7: saturates at 12-19 % of pps, too often
  for In-DRAM WSAF).
* :class:`~repro.baselines.csm.CSMSketch` — randomized counter sharing
  (Li, Chen, Ling; INFOCOM 2011), the offline-decoding comparator of
  Section V-C.
* :class:`~repro.baselines.netflow.NetFlowTable` — a NetFlow-style exact
  flow cache with packet sampling and timeout eviction, the industry
  practice the paper contrasts with ("registers every flow, if not
  sampled, in the table regardless of its size").
* :class:`~repro.baselines.countmin.CountMinSketch` — the classic sketch
  baseline for heavy-hitter queries.
* :class:`~repro.baselines.spacesaving.SpaceSaving` — the classic counter-
  based Top-K baseline (cf. Ben-Basat et al.'s limited Top-512 lists).
* :class:`~repro.baselines.flowradar.FlowRadar` /
  :class:`~repro.baselines.iblt.IBLT` — the NSDI'16 design the paper calls
  its closest relative (constant-time coded insertion vs. rate relaxation).
* :class:`~repro.baselines.delegation.DelegatingMeasurer` — the
  delegation-based decoding strategy of Section II made concrete (epoch
  shipping to a remote collector, with bandwidth and latency costs).

Every baseline satisfies the streaming protocol
(:class:`repro.pipeline.protocol.StreamingMeasurer`): ``ingest(chunk)``,
``finalize()``, and a normalized ``estimates(flow_keys)`` returning
``{key64: (packets, bytes)}`` — so any of them can be driven by
:class:`repro.pipeline.Pipeline` interchangeably with InstaMeasure.
"""

from repro.baselines.rcc_only import (
    RCCRegulatorMeasurer,
    RCCRunResult,
    run_rcc_regulator,
)
from repro.baselines.csm import CSMSketch
from repro.baselines.netflow import NetFlowStats, NetFlowTable
from repro.baselines.countmin import CountMinSketch
from repro.baselines.spacesaving import SpaceSaving
from repro.baselines.iblt import IBLT
from repro.baselines.flowradar import BloomFilter, FlowRadar, FlowRadarStats
from repro.baselines.delegation import DelegatingMeasurer, DelegationRunStats
from repro.baselines.countsketch import CountSketch
from repro.baselines.countertree import CounterTree
from repro.baselines.univmon import UnivMon

__all__ = [
    "BloomFilter",
    "CSMSketch",
    "CountMinSketch",
    "CountSketch",
    "CounterTree",
    "UnivMon",
    "DelegatingMeasurer",
    "DelegationRunStats",
    "FlowRadar",
    "FlowRadarStats",
    "IBLT",
    "NetFlowStats",
    "NetFlowTable",
    "RCCRegulatorMeasurer",
    "RCCRunResult",
    "SpaceSaving",
    "run_rcc_regulator",
]
