"""Space-Saving — the classic counter-based Top-K baseline.

Metwally et al.'s stream summary: at most ``capacity`` monitored flows;
an unmonitored arrival replaces the currently-smallest flow, inheriting
its count as over-estimation error.  Guarantees every flow with true count
above n/capacity is in the summary.  The paper cites Ben-Basat et al.'s
counter-based Top-K work as limited to small K ("up to top-512") versus
InstaMeasure's Top-million; this baseline lets the benches make that
comparison concrete.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


class SpaceSaving:
    """A Space-Saving stream summary.

    Args:
        capacity: maximum number of monitored flows.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._counts: "dict[int, int]" = {}
        self._errors: "dict[int, int]" = {}
        # Lazy min-heap of (count, sequence, key); stale entries are skipped.
        self._heap: "list[tuple[int, int, int]]" = []
        self._sequence = 0
        self.packets = 0

    def _push(self, key: int) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self._counts[key], self._sequence, key))

    def _pop_minimum(self) -> int:
        """Key of the current minimum (heap cleaned of stale entries)."""
        while True:
            count, _seq, key = self._heap[0]
            if self._counts.get(key) == count:
                heapq.heappop(self._heap)
                return key
            heapq.heappop(self._heap)  # stale

    def offer(self, key: int, count: int = 1) -> None:
        """Observe ``count`` packets of flow ``key``."""
        self.packets += count
        if key in self._counts:
            self._counts[key] += count
            self._push(key)
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            self._push(key)
            return
        victim = self._pop_minimum()
        inherited = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = inherited + count
        self._errors[key] = inherited
        self._push(key)

    def process_trace(self, trace: Trace) -> None:
        """Feed every packet of ``trace`` (keys are the flows' key64).

        Consecutive packets of the same flow are collapsed into one
        ``offer(key, run_length)`` call: an n-packet run leaves exactly
        the same counts and errors as n unit offers (the count lands in
        one addition and the heap keeps one up-to-date entry per key
        either way), so the summary is state-identical while the Python
        loop runs once per run instead of once per packet.
        """
        flow_ids = trace.flow_ids
        if flow_ids.size == 0:
            return
        starts = np.concatenate(
            ([0], np.flatnonzero(flow_ids[1:] != flow_ids[:-1]) + 1)
        )
        lengths = np.diff(np.concatenate((starts, [flow_ids.size])))
        run_keys = trace.flows.key64[flow_ids[starts]]
        offer = self.offer
        for key, count in zip(run_keys.tolist(), lengths.tolist()):
            offer(key, count)

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> None:
        """Feed one chunk.  A chunk boundary can split a same-flow packet
        run into two offers, which leaves identical counts and errors (the
        count lands in two additions instead of one; stale heap entries
        are skipped), so chunked ingestion is state-identical."""
        from repro.pipeline.protocol import chunk_trace

        self.process_trace(chunk_trace(chunk))

    def finalize(self) -> "SpaceSaving":
        """The summary itself is the result; rank it with :meth:`topk`."""
        return self

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` over the summary."""
        from repro.baselines.streaming import table_estimates

        return table_estimates(self._counts, flow_keys)

    def estimate(self, key: int) -> int:
        """Estimated count (0 if unmonitored; never underestimates)."""
        return self._counts.get(key, 0)

    def guaranteed(self, key: int) -> int:
        """Lower bound on the true count (count minus inherited error)."""
        return self._counts.get(key, 0) - self._errors.get(key, 0)

    def topk(self, k: int) -> "list[tuple[int, int]]":
        """The ``k`` largest (key, estimated count) pairs, descending."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        ranked = sorted(self._counts.items(), key=lambda item: -item[1])
        return ranked[:k]

    def __len__(self) -> int:
        return len(self._counts)
