"""Count-Min sketch baseline.

The classic frequency sketch (Cormode & Muthukrishnan): ``depth`` rows of
``width`` counters; each packet increments one counter per row; a flow's
estimate is the minimum over its row counters, an upper bound on the truth.
Included as the representative of the sketch family whose offline decoding
the paper contrasts with InstaMeasure's online saturation-based decoding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import HashFamily, hash_u64_array
from repro.traffic.packet import Trace

COUNTER_BYTES = 4


class CountMinSketch:
    """A depth × width Count-Min sketch of packet counts.

    Args:
        memory_bytes: total counter memory (4-byte counters).
        depth: number of rows (independent hash functions).
        seed: hash seed.
        conservative: enable conservative update (only raise the minimum
            counters), reducing overestimation at the cost of a scalar
            per-packet path.
    """

    def __init__(
        self,
        memory_bytes: int,
        depth: int = 4,
        seed: int = 0,
        conservative: bool = False,
    ) -> None:
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        width = memory_bytes // (COUNTER_BYTES * depth)
        if width < 1:
            raise ConfigurationError(
                f"{memory_bytes} bytes cannot hold {depth} rows of counters"
            )
        self.depth = depth
        self.width = width
        self.conservative = conservative
        self.rows = np.zeros((depth, width), dtype=np.int64)
        self.total_packets = 0
        self._family = HashFamily(depth, seed=seed)

    def _columns(self, flow_key: int) -> "list[int]":
        return [
            self._family.hash_mod(row, flow_key, self.width)
            for row in range(self.depth)
        ]

    def _columns_array(self, flow_keys: np.ndarray) -> np.ndarray:
        """(depth, num_flows) column indices, matching :meth:`_columns`."""
        return np.stack(
            [
                hash_u64_array(flow_keys, self._family.seed_of(row))
                % np.uint64(self.width)
                for row in range(self.depth)
            ]
        ).astype(np.int64)

    def encode(self, flow_key: int, count: int = 1) -> None:
        """Add ``count`` packets of ``flow_key``."""
        columns = self._columns(flow_key)
        self.total_packets += count
        if not self.conservative:
            for row, column in enumerate(columns):
                self.rows[row, column] += count
            return
        current = min(int(self.rows[row, columns[row]]) for row in range(self.depth))
        target = current + count
        for row, column in enumerate(columns):
            if self.rows[row, column] < target:
                self.rows[row, column] = target

    def encode_trace(self, trace: Trace) -> None:
        """Encode every packet of ``trace``.

        Vectorized for the plain sketch; conservative update is inherently
        sequential and falls back to the per-packet path.
        """
        if trace.num_packets == 0:
            return
        if self.conservative:
            keys = trace.flows.key64.tolist()
            for flow in trace.flow_ids.tolist():
                self.encode(keys[flow])
            return
        columns = self._columns_array(trace.flows.key64)
        packet_counts = trace.ground_truth_packets()
        for row in range(self.depth):
            np.add.at(self.rows[row], columns[row], packet_counts)
        self.total_packets += trace.num_packets

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> int:
        """Encode one chunk (counter updates are additive, so chunked
        ingestion is trivially identical to the whole trace)."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        self.encode_trace(trace)
        return trace.num_packets

    def finalize(self) -> "CountMinSketch":
        """The encoded sketch is the result; query it for estimates."""
        return self

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` over ``flow_keys``."""
        from repro.baselines.streaming import sketch_estimates

        return sketch_estimates(self.query_flows, flow_keys, "CountMinSketch")

    def query(self, flow_key: int) -> int:
        """Estimated packet count (never underestimates)."""
        columns = self._columns(flow_key)
        return min(int(self.rows[row, columns[row]]) for row in range(self.depth))

    def query_flows(self, flow_keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`query`."""
        columns = self._columns_array(flow_keys)
        values = np.stack(
            [self.rows[row, columns[row]] for row in range(self.depth)]
        )
        return values.min(axis=0)

    @property
    def memory_bytes(self) -> int:
        return self.depth * self.width * COUNTER_BYTES
