"""CSM — per-flow counting through randomized counter sharing.

The comparator of Section V-C (Li, Chen, Ling: "Fast and compact per-flow
traffic measurement through randomized counter sharing", INFOCOM 2011).
Every flow owns ``counters_per_flow`` counters drawn by hashing from one
shared pool; encoding increments a uniformly random one of them; decoding
sums the flow's counters and subtracts the expected noise contributed by
all other flows (``l × n / m``).

CSM decodes *offline* — the paper's point is exactly that: with 60 MB (2×
InstaMeasure's largest memory) CSM "did not terminate" decoding the full
hour, and its top-100/top-1000 error was far higher.  The reproduction
makes the same comparison at reproduction scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import HashFamily
from repro.traffic.packet import Trace

COUNTER_BYTES = 4


class CSMSketch:
    """A randomized-counter-sharing sketch.

    Args:
        memory_bytes: pool size (4-byte counters).
        counters_per_flow: the per-flow storage vector length ``l``.
        seed: hash seed.
    """

    def __init__(
        self, memory_bytes: int, counters_per_flow: int = 16, seed: int = 0
    ) -> None:
        pool_size = memory_bytes // COUNTER_BYTES
        if pool_size < counters_per_flow:
            raise ConfigurationError(
                f"{memory_bytes} bytes cannot hold {counters_per_flow} counters"
            )
        if counters_per_flow < 1:
            raise ConfigurationError("counters_per_flow must be >= 1")
        self.pool_size = pool_size
        self.counters_per_flow = counters_per_flow
        self.pool = np.zeros(pool_size, dtype=np.int64)
        self.total_packets = 0
        self._family = HashFamily(counters_per_flow, seed=seed)
        self.seed = seed
        # Persistent counter-choice stream: int64 draws are not buffered
        # across calls, so encoding a trace chunk-by-chunk consumes exactly
        # the same sequence as encoding it whole.
        self._rng = np.random.default_rng(seed ^ 0xC5A)

    # -- placement ---------------------------------------------------------

    def flow_counters(self, flow_key: int) -> "list[int]":
        """Pool indices of ``flow_key``'s storage vector."""
        return [
            self._family.hash_mod(j, flow_key, self.pool_size)
            for j in range(self.counters_per_flow)
        ]

    def _flow_counters_array(self, flow_keys: np.ndarray) -> np.ndarray:
        """(num_flows, l) pool indices, vectorized; matches :meth:`flow_counters`."""
        matrix = self._family.hash_matrix(flow_keys) % np.uint64(self.pool_size)
        return matrix.astype(np.int64)

    # -- encode ------------------------------------------------------------

    def encode(self, flow_key: int, choice: int) -> None:
        """Increment the ``choice``-th counter of the flow's vector."""
        if not 0 <= choice < self.counters_per_flow:
            raise ConfigurationError("choice outside the storage vector")
        self.pool[self._family.hash_mod(choice, flow_key, self.pool_size)] += 1
        self.total_packets += 1

    def encode_trace(self, trace: Trace) -> None:
        """Encode every packet of ``trace`` (vectorized)."""
        if trace.num_packets == 0:
            return
        locations = self._flow_counters_array(trace.flows.key64)
        choices = self._rng.integers(
            0, self.counters_per_flow, size=trace.num_packets, dtype=np.int64
        )
        counter_index = locations[trace.flow_ids, choices]
        np.add.at(self.pool, counter_index, 1)
        self.total_packets += trace.num_packets

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> int:
        """Encode one chunk; the persistent choice stream keeps chunked
        ingestion identical to encoding the whole trace."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        self.encode_trace(trace)
        return trace.num_packets

    def finalize(self) -> "CSMSketch":
        """The encoded sketch is the result; decode it for estimates."""
        return self

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` over ``flow_keys``."""
        from repro.baselines.streaming import sketch_estimates

        return sketch_estimates(self.decode_flows, flow_keys, "CSMSketch")

    # -- decode ------------------------------------------------------------

    def decode(self, flow_key: int) -> float:
        """CSM estimate: own-counter sum minus expected shared noise."""
        own = int(self.pool[self.flow_counters(flow_key)].sum())
        noise = self.counters_per_flow * self.total_packets / self.pool_size
        return max(0.0, own - noise)

    def decode_flows(self, flow_keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`decode` over a key array."""
        locations = self._flow_counters_array(flow_keys)
        own = self.pool[locations].sum(axis=1).astype(np.float64)
        noise = self.counters_per_flow * self.total_packets / self.pool_size
        return np.maximum(0.0, own - noise)

    @property
    def memory_bytes(self) -> int:
        return self.pool_size * COUNTER_BYTES
