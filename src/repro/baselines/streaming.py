"""Shared helpers for the baselines' streaming-protocol adapters.

Every baseline satisfies :class:`repro.pipeline.protocol.StreamingMeasurer`
with the same normalized query shape: ``estimates(flow_keys)`` returns
``{key64: (packets, bytes)}``, with ``0.0`` bytes for measurers that do not
track sizes.  Pure sketches store no flow identifiers, so they cannot
enumerate — callers must pass the candidate key set.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def require_flow_keys(flow_keys, name: str) -> np.ndarray:
    """Coerce ``flow_keys`` to uint64, rejecting ``None`` for pure sketches."""
    if flow_keys is None:
        raise ConfigurationError(
            f"{name} stores no flow identifiers and cannot enumerate; "
            "pass the candidate flow_keys to estimates()"
        )
    return np.asarray(
        flow_keys if isinstance(flow_keys, np.ndarray) else list(flow_keys),
        dtype=np.uint64,
    )


def sketch_estimates(
    query_flows, flow_keys, name: str
) -> "dict[int, tuple[float, float]]":
    """Normalized estimates for a packets-only sketch: query every key."""
    keys = require_flow_keys(flow_keys, name)
    values = query_flows(keys)
    return {
        key: (float(value), 0.0)
        for key, value in zip(keys.tolist(), np.asarray(values).tolist())
    }


def table_estimates(
    table: "dict[int, float]", flow_keys
) -> "dict[int, tuple[float, float]]":
    """Normalized estimates for a packets-only key→count table.

    Without ``flow_keys`` the whole table is returned; with them, every
    queried key appears (0.0 when untracked).
    """
    if flow_keys is None:
        return {key: (float(count), 0.0) for key, count in table.items()}
    keys = np.asarray(
        flow_keys if isinstance(flow_keys, np.ndarray) else list(flow_keys),
        dtype=np.uint64,
    )
    return {key: (float(table.get(key, 0.0)), 0.0) for key in keys.tolist()}
