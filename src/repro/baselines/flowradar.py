"""FlowRadar-style encoder (Li, Miao, Kim, Yu; NSDI 2016).

The paper's Related Work singles FlowRadar out as the closest design:
"FlowRadar's view on WSAF is similar to InstaMeasure, although it tried to
solve non-deterministic insertion time by IBLT's constant time insertion,
instead of relaxing the {ips = pps} constraint."

This baseline reproduces that design point: every packet performs a
constant number of memory updates (a flow-set Bloom filter check plus
``num_hashes`` IBLT cell updates), flows and their counters are recovered
by *decoding the whole structure at the end of an epoch* (typically at a
remote collector), and decode fails outright once the epoch holds more
flows than the IBLT can peel — the capacity cliff InstaMeasure avoids by
keeping a WSAF instead of a fixed-size coded structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.iblt import IBLT
from repro.errors import CapacityError, ConfigurationError
from repro.hashing import HashFamily
from repro.traffic.packet import Trace


class BloomFilter:
    """A plain Bloom filter over 64-bit keys (FlowRadar's flow set)."""

    def __init__(self, num_bits: int, num_hashes: int = 4, seed: int = 0) -> None:
        if num_bits < 8:
            raise ConfigurationError("num_bits must be >= 8")
        if num_hashes < 1:
            raise ConfigurationError("num_hashes must be >= 1")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._family = HashFamily(num_hashes, seed=seed)
        self.insertions = 0

    def _positions(self, key: int) -> "list[int]":
        return [
            self._family.hash_mod(i, key, self.num_bits)
            for i in range(self.num_hashes)
        ]

    def add(self, key: int) -> None:
        """Insert ``key`` into the filter."""
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.insertions += 1

    def __contains__(self, key: int) -> bool:
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(key)
        )


@dataclass
class FlowRadarStats:
    """Outcome of one FlowRadar epoch."""

    packets: int
    distinct_flows: int
    memory_updates: int
    decoded_flows: int
    decode_failed: bool

    @property
    def updates_per_packet(self) -> float:
        """Constant-time insertion in numbers — FlowRadar's selling point."""
        return self.memory_updates / self.packets if self.packets else 0.0


class FlowRadar:
    """A FlowRadar encoder: flow-set Bloom filter + counting IBLT.

    Args:
        iblt_cells: counting-table size; decode handles roughly
            ``iblt_cells / 1.3`` distinct flows per epoch.
        bloom_bits: flow-set filter size.
        seed: hash seed.
    """

    def __init__(
        self, iblt_cells: int, bloom_bits: "int | None" = None, seed: int = 0
    ) -> None:
        self.iblt = IBLT(iblt_cells, num_hashes=3, seed=seed)
        self.bloom = BloomFilter(
            bloom_bits if bloom_bits is not None else 16 * iblt_cells,
            num_hashes=4,
            seed=seed ^ 0xB100,
        )
        self.packets = 0
        self.distinct_flows = 0
        self.memory_updates = 0
        # IBLT peeling consumes the table, so decode caches its outcome;
        # new observations invalidate the cache.
        self._decode_cache: "tuple[dict[int, float], FlowRadarStats] | None" = None

    def observe(self, flow_key: int, packet_bytes: int = 0) -> None:
        """Encode one packet (constant memory updates regardless of state)."""
        self._decode_cache = None
        self.packets += 1
        if flow_key in self.bloom:
            self.iblt.increment(flow_key, 1.0)
            # Bloom read + k cell updates.
            self.memory_updates += self.bloom.num_hashes + self.iblt.num_hashes
            return
        self.bloom.add(flow_key)
        self.iblt.insert(flow_key, 1.0)
        self.distinct_flows += 1
        self.memory_updates += 2 * self.bloom.num_hashes + self.iblt.num_hashes

    def encode_trace(self, trace: Trace) -> None:
        """Encode every packet of ``trace``."""
        keys = trace.flows.key64.tolist()
        observe = self.observe
        for flow in trace.flow_ids.tolist():
            observe(keys[flow])

    def decode(self) -> "tuple[dict[int, float], FlowRadarStats]":
        """End-of-epoch decode (the collector-side step).

        Returns (recovered flow→packet-count map, stats).  On IBLT overload
        the map contains whatever peeled before the stall and
        ``stats.decode_failed`` is set — FlowRadar's documented capacity
        cliff.  Peeling consumes the IBLT, so the outcome is cached until
        the next observation.
        """
        if self._decode_cache is not None:
            return self._decode_cache
        failed = False
        try:
            recovered = self.iblt.list_entries()
        except CapacityError:
            failed = True
            recovered = {}
        stats = FlowRadarStats(
            packets=self.packets,
            distinct_flows=self.distinct_flows,
            memory_updates=self.memory_updates,
            decoded_flows=len(recovered),
            decode_failed=failed,
        )
        self._decode_cache = (recovered, stats)
        return recovered, stats

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> int:
        """Encode one chunk (Bloom filter and IBLT state simply carry)."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        self.encode_trace(trace)
        return trace.num_packets

    def finalize(self) -> FlowRadarStats:
        """End-of-epoch decode; the recovered flows back :meth:`estimates`."""
        _, stats = self.decode()
        return stats

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` from the decoded IBLT."""
        from repro.baselines.streaming import table_estimates

        recovered, _ = self.decode()
        return table_estimates(recovered, flow_keys)
