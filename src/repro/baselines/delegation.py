"""Delegation-based measurement — the remote-collector strategy, concrete.

Section II's taxonomy calls the conventional design "delegation-based
decoding": the device encodes into a sketch, periodically ships the sketch
(plus the flow-ID set, which lives in DRAM) to a remote collector, and the
collector decodes.  Detection then waits for the end of the epoch plus the
network/decode delay, and every epoch costs transfer bandwidth.

This module implements that whole loop so it can be compared against
InstaMeasure's saturation-based decoding on equal terms: same trace, same
thresholds, measured detection times *and* measured bytes shipped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.csm import CSMSketch
from repro.errors import ConfigurationError
from repro.traffic.packet import Trace

#: Wire bytes per flow ID shipped alongside each epoch's sketch.
FLOW_ID_BYTES = 8


@dataclass
class DelegationRunStats:
    """Costs and outcomes of a delegation-based run."""

    epochs: int
    packets: int
    bytes_shipped: int
    detections: "dict[int, float]"

    def shipping_overhead_bps(self, duration: float) -> float:
        """Average collector-link bandwidth consumed, bits per second."""
        if duration <= 0:
            return 0.0
        return self.bytes_shipped * 8 / duration


class DelegatingMeasurer:
    """Epoch-sketch-ship-decode measurement (the conventional pipeline).

    Args:
        sketch_memory_bytes: per-epoch sketch size (a fresh CSM each epoch,
            the offline-decodable sketch family the paper benchmarks).
        epoch_seconds: shipping period.
        network_delay_seconds: transfer + collector decode delay.
        counters_per_flow: CSM storage-vector length.
        seed: hash/randomness seed.
    """

    def __init__(
        self,
        sketch_memory_bytes: int,
        epoch_seconds: float,
        network_delay_seconds: float,
        counters_per_flow: int = 16,
        seed: int = 0,
    ) -> None:
        if epoch_seconds <= 0:
            raise ConfigurationError("epoch_seconds must be positive")
        if network_delay_seconds < 0:
            raise ConfigurationError("network_delay_seconds must be >= 0")
        self.sketch_memory_bytes = sketch_memory_bytes
        self.epoch_seconds = epoch_seconds
        self.network_delay_seconds = network_delay_seconds
        self.counters_per_flow = counters_per_flow
        self.seed = seed

    def process_trace(
        self,
        trace: Trace,
        threshold_packets: "float | None" = None,
    ) -> "tuple[np.ndarray, DelegationRunStats]":
        """Run the full delegate-and-decode loop over ``trace``.

        Returns:
            (final per-flow packet estimates at the collector, stats).
            ``stats.detections`` maps flow index → time the collector first
            saw the flow's cumulative estimate cross ``threshold_packets``
            (absent flows never crossed; empty dict if no threshold given).
        """
        collector = np.zeros(trace.num_flows)
        detections: "dict[int, float]" = {}
        bytes_shipped = 0
        epochs = 0

        if trace.num_packets == 0:
            return collector, DelegationRunStats(0, 0, 0, detections)

        start = float(trace.timestamps[0])
        end = float(trace.timestamps[-1])
        num_epochs = max(1, math.ceil((end - start) / self.epoch_seconds))
        for epoch in range(num_epochs):
            window = trace.time_slice(
                start + epoch * self.epoch_seconds,
                start + (epoch + 1) * self.epoch_seconds
                if epoch < num_epochs - 1
                else np.inf,
            )
            if window.num_packets == 0:
                continue
            epochs += 1
            sketch = CSMSketch(
                self.sketch_memory_bytes,
                counters_per_flow=self.counters_per_flow,
                seed=self.seed + epoch,
            )
            sketch.encode_trace(window)

            seen = np.flatnonzero(np.bincount(window.flow_ids, minlength=trace.num_flows))
            estimates = sketch.decode_flows(trace.flows.key64[seen])
            collector[seen] += estimates

            # Shipping cost: the sketch plus this epoch's flow-ID set.
            bytes_shipped += self.sketch_memory_bytes + FLOW_ID_BYTES * len(seen)

            if threshold_packets is not None:
                available_at = (
                    start
                    + (epoch + 1) * self.epoch_seconds
                    + self.network_delay_seconds
                )
                for flow in seen:
                    if (
                        collector[flow] >= threshold_packets
                        and int(flow) not in detections
                    ):
                        detections[int(flow)] = available_at

        stats = DelegationRunStats(
            epochs=epochs,
            packets=trace.num_packets,
            bytes_shipped=bytes_shipped,
            detections=detections,
        )
        return collector, stats
