"""Delegation-based measurement — the remote-collector strategy, concrete.

Section II's taxonomy calls the conventional design "delegation-based
decoding": the device encodes into a sketch, periodically ships the sketch
(plus the flow-ID set, which lives in DRAM) to a remote collector, and the
collector decodes.  Detection then waits for the end of the epoch plus the
network/decode delay, and every epoch costs transfer bandwidth.

This module implements that whole loop so it can be compared against
InstaMeasure's saturation-based decoding on equal terms: same trace, same
thresholds, measured detection times *and* measured bytes shipped.  The
measurer streams: epoch boundaries are detected as chunks arrive, each
completed epoch ships immediately, and :meth:`DelegatingMeasurer.finalize`
ships the tail epoch — a chunk boundary inside an epoch changes nothing
because the per-epoch CSM sketch encodes from a persistent choice stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.csm import CSMSketch
from repro.errors import ConfigurationError
from repro.traffic.packet import FlowTable, Trace

#: Wire bytes per flow ID shipped alongside each epoch's sketch.
FLOW_ID_BYTES = 8


@dataclass
class DelegationRunStats:
    """Costs and outcomes of a delegation-based run."""

    epochs: int
    packets: int
    bytes_shipped: int
    detections: "dict[int, float]"

    def shipping_overhead_bps(self, duration: float) -> float:
        """Average collector-link bandwidth consumed, bits per second."""
        if duration <= 0:
            return 0.0
        return self.bytes_shipped * 8 / duration


@dataclass
class _DelegationStream:
    """Bookkeeping for one in-progress delegation run."""

    start: float
    flows: FlowTable
    collector: np.ndarray
    epoch_counts: np.ndarray
    detections: "dict[int, float]" = field(default_factory=dict)
    bytes_shipped: int = 0
    epochs: int = 0
    packets: int = 0
    current_epoch: int = 0
    sketch: "CSMSketch | None" = None


class DelegatingMeasurer:
    """Epoch-sketch-ship-decode measurement (the conventional pipeline).

    Args:
        sketch_memory_bytes: per-epoch sketch size (a fresh CSM each epoch,
            the offline-decodable sketch family the paper benchmarks).
        epoch_seconds: shipping period.
        network_delay_seconds: transfer + collector decode delay.
        counters_per_flow: CSM storage-vector length.
        seed: hash/randomness seed.
        threshold_packets: detection threshold; the collector records when
            a flow's cumulative estimate first crosses it (None disables
            detection tracking).
    """

    def __init__(
        self,
        sketch_memory_bytes: int,
        epoch_seconds: float,
        network_delay_seconds: float,
        counters_per_flow: int = 16,
        seed: int = 0,
        threshold_packets: "float | None" = None,
    ) -> None:
        if epoch_seconds <= 0:
            raise ConfigurationError("epoch_seconds must be positive")
        if network_delay_seconds < 0:
            raise ConfigurationError("network_delay_seconds must be >= 0")
        self.sketch_memory_bytes = sketch_memory_bytes
        self.epoch_seconds = epoch_seconds
        self.network_delay_seconds = network_delay_seconds
        self.counters_per_flow = counters_per_flow
        self.seed = seed
        self.threshold_packets = threshold_packets
        self._stream: "_DelegationStream | None" = None
        #: final per-flow collector estimates of the last finished run,
        #: aligned with the run's flow table.
        self.collector: "np.ndarray | None" = None
        self._flows: "FlowTable | None" = None

    # -- streaming protocol --------------------------------------------------

    def ingest(self, chunk) -> int:
        """Encode one chunk, shipping every epoch it completes."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        if trace.num_packets == 0:
            return 0
        if self._stream is None:
            self._stream = _DelegationStream(
                start=float(trace.timestamps[0]),
                flows=trace.flows,
                collector=np.zeros(trace.num_flows),
                epoch_counts=np.zeros(trace.num_flows, dtype=np.int64),
            )
        stream = self._stream
        stream.packets += trace.num_packets

        epoch_ids = (
            (trace.timestamps - stream.start) / self.epoch_seconds
        ).astype(np.int64)
        begin = 0
        num_packets = trace.num_packets
        while begin < num_packets:
            epoch = int(epoch_ids[begin])
            end = int(np.searchsorted(epoch_ids, epoch, side="right"))
            if epoch != stream.current_epoch:
                self._ship_epoch(stream)
                stream.current_epoch = epoch
            if stream.sketch is None:
                stream.sketch = CSMSketch(
                    self.sketch_memory_bytes,
                    counters_per_flow=self.counters_per_flow,
                    seed=self.seed + stream.current_epoch,
                )
            segment = Trace(
                timestamps=trace.timestamps[begin:end],
                flow_ids=trace.flow_ids[begin:end],
                sizes=trace.sizes[begin:end],
                flows=trace.flows,
            )
            stream.sketch.encode_trace(segment)
            stream.epoch_counts += np.bincount(
                segment.flow_ids, minlength=len(stream.epoch_counts)
            )
            begin = end
        return trace.num_packets

    def _ship_epoch(self, stream: _DelegationStream) -> None:
        """Ship the current epoch's sketch to the collector and decode."""
        if stream.sketch is None:
            return  # the epoch saw no packets: nothing to ship
        seen = np.flatnonzero(stream.epoch_counts)
        estimates = stream.sketch.decode_flows(stream.flows.key64[seen])
        stream.collector[seen] += estimates
        stream.bytes_shipped += (
            self.sketch_memory_bytes + FLOW_ID_BYTES * len(seen)
        )
        stream.epochs += 1
        if self.threshold_packets is not None:
            available_at = (
                stream.start
                + (stream.current_epoch + 1) * self.epoch_seconds
                + self.network_delay_seconds
            )
            for flow in seen:
                if (
                    stream.collector[flow] >= self.threshold_packets
                    and int(flow) not in stream.detections
                ):
                    stream.detections[int(flow)] = available_at
        stream.sketch = None
        stream.epoch_counts[:] = 0

    def rotate(self, now: float) -> "dict[int, tuple[float, float]]":
        """Window boundary: ship every epoch completed by ``now``.

        Aligns the shipping schedule with an external windowing clock —
        a real collector has received (and decoded) every epoch that
        ended before the window closed, even when no packet has arrived
        since.  Returns the collector's estimates as of ``now``, so
        windowed evaluations compare delegation against the in-DRAM
        engines at the same instants.
        """
        from repro.baselines.streaming import table_estimates

        stream = self._stream
        if stream is None:
            return self.estimates()
        reached = int((now - stream.start) // self.epoch_seconds)
        if reached > stream.current_epoch:
            # The in-progress epoch's window has fully elapsed; ship it.
            # (Empty epochs in between never opened a sketch.)
            self._ship_epoch(stream)
            stream.current_epoch = reached
        seen = np.flatnonzero(stream.collector)
        table = dict(
            zip(
                stream.flows.key64[seen].tolist(),
                stream.collector[seen].tolist(),
            )
        )
        return table_estimates(table, None)

    def finalize(self) -> DelegationRunStats:
        """Ship the tail epoch and return the run's cost/outcome stats.

        The collector's final per-flow estimates stay readable through
        :attr:`collector` and :meth:`estimates`.
        """
        stream = self._stream
        self._stream = None
        if stream is None:
            return DelegationRunStats(0, 0, 0, {})
        self._ship_epoch(stream)
        self.collector = stream.collector
        self._flows = stream.flows
        return DelegationRunStats(
            epochs=stream.epochs,
            packets=stream.packets,
            bytes_shipped=stream.bytes_shipped,
            detections=stream.detections,
        )

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` collector estimates."""
        from repro.baselines.streaming import table_estimates

        if self.collector is None or self._flows is None:
            return table_estimates({}, flow_keys)
        seen = np.flatnonzero(self.collector)
        table = dict(
            zip(
                self._flows.key64[seen].tolist(),
                self.collector[seen].tolist(),
            )
        )
        return table_estimates(table, flow_keys)

    # -- whole-trace convenience ---------------------------------------------

    def process_trace(
        self,
        trace: Trace,
        threshold_packets: "float | None" = None,
    ) -> "tuple[np.ndarray, DelegationRunStats]":
        """Run the full delegate-and-decode loop over ``trace``.

        One-chunk streaming: equivalent to ``ingest`` + ``finalize``.
        ``threshold_packets`` overrides the constructor's threshold for
        this run.

        Returns:
            (final per-flow packet estimates at the collector, stats).
            ``stats.detections`` maps flow index → time the collector first
            saw the flow's cumulative estimate cross ``threshold_packets``
            (absent flows never crossed; empty dict if no threshold given).
        """
        if trace.num_packets == 0:
            return np.zeros(trace.num_flows), DelegationRunStats(0, 0, 0, {})
        previous = self.threshold_packets
        if threshold_packets is not None:
            self.threshold_packets = threshold_packets
        try:
            self.ingest(trace)
            stats = self.finalize()
        finally:
            self.threshold_packets = previous
        return self.collector, stats
