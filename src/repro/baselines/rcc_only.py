"""Single-layer RCC as a WSAF front-end (the Fig 1 / Fig 7 baseline).

The paper first tries plain RCC as the FlowRegulator and finds its
"saturation occurs in the speed of 12-19 % of packet arrival rate … which is
too frequent to compensate for SRAM's speed margin over DRAM's (5-10 %)".
This module runs exactly that experiment: every RCC saturation is one WSAF
insertion, and the per-bucket insertion rate over the trace timeline is the
series Fig 1 and Fig 7 plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rcc import RCCSketch
from repro.traffic.packet import Trace


@dataclass
class RCCRunResult:
    """Outcome of regulating a trace with a single-layer RCC."""

    packets: int
    saturations: int
    bucket_times: np.ndarray
    bucket_pps: np.ndarray
    bucket_ips: np.ndarray
    estimates: "dict[int, float]"

    @property
    def regulation_rate(self) -> float:
        """WSAF insertions per packet (= RCC saturations per packet)."""
        return self.saturations / self.packets if self.packets else 0.0


class RCCRegulatorMeasurer:
    """A single-layer RCC regulator feeding a per-flow accumulator.

    Streams: sketch words, per-flow estimates, and the per-bucket pps/ips
    series all carry across chunks, and the bit-choice stream is a
    persistent int64 draw (split-safe), so chunked ingestion reproduces
    the whole-trace run exactly.

    Args:
        memory_bytes: RCC sketch memory.
        vector_bits / word_bits: RCC geometry.
        seed: placement and bit-choice seed.
        bucket_seconds: width of the Fig 1/7 time-series buckets.
    """

    def __init__(
        self,
        memory_bytes: int,
        vector_bits: int = 8,
        word_bits: int = 32,
        seed: int = 0,
        bucket_seconds: float = 1.0,
    ) -> None:
        self.sketch = RCCSketch(
            memory_bytes, vector_bits=vector_bits, word_bits=word_bits, seed=seed
        )
        self.vector_bits = vector_bits
        self.bucket_seconds = bucket_seconds
        self._rng = np.random.default_rng(seed ^ 0xACC)
        self._start: "float | None" = None
        self._placement: "tuple[list[int], list[int], list[int]] | None" = None
        self._estimates: "dict[int, float]" = {}
        self._bucket_pps: "list[float]" = []
        self._bucket_ips: "list[float]" = []
        self.packets = 0
        self.saturations = 0

    def ingest(self, chunk) -> int:
        """Regulate one chunk; every saturation is one WSAF insertion."""
        from repro.pipeline.protocol import chunk_trace

        trace = chunk_trace(chunk)
        num_packets = trace.num_packets
        if num_packets == 0:
            return 0
        sketch = self.sketch
        if self._start is None:
            self._start = float(trace.timestamps[0])
        if self._placement is None:
            idx_by_flow, off_by_flow = sketch.place_array(trace.flows.key64)
            self._placement = (
                idx_by_flow.tolist(),
                off_by_flow.tolist(),
                trace.flows.key64.tolist(),
            )
        idx_by_flow, off_by_flow, keys = self._placement

        bits = self._rng.integers(
            0, self.vector_bits, size=num_packets, dtype=np.int64
        ).tolist()
        flow_ids = trace.flow_ids.tolist()
        bucket_of_packet = (
            ((trace.timestamps - self._start) / self.bucket_seconds)
            .astype(np.int64)
            .tolist()
        )
        while len(self._bucket_pps) <= bucket_of_packet[-1]:
            self._bucket_pps.append(0.0)
            self._bucket_ips.append(0.0)
        bucket_pps = self._bucket_pps
        bucket_ips = self._bucket_ips

        words = sketch.words
        bit_masks = sketch._bit_masks
        window_masks = sketch._window_masks
        noise_max = sketch.noise_max
        decode = sketch._decode_table
        vector_bits = self.vector_bits
        estimates = self._estimates

        saturations = 0
        for p in range(num_packets):
            flow = flow_ids[p]
            idx = idx_by_flow[flow]
            offset = off_by_flow[flow]
            window = window_masks[offset]
            bucket = bucket_of_packet[p]
            bucket_pps[bucket] += 1
            word = words[idx] | bit_masks[offset][bits[p]]
            zeros = vector_bits - (word & window).bit_count()
            if zeros > noise_max:
                words[idx] = word
                continue
            words[idx] = word & ~window
            saturations += 1
            bucket_ips[bucket] += 1
            key = keys[flow]
            estimates[key] = estimates.get(key, 0.0) + decode[zeros]

        sketch.packets_encoded += num_packets
        sketch.saturations += saturations
        self.packets += num_packets
        self.saturations += saturations
        return num_packets

    def finalize(self) -> RCCRunResult:
        """The run's saturation stats, time series, and flow estimates."""
        if self._start is None:
            empty = np.array([])
            return RCCRunResult(0, 0, empty, empty, empty, {})
        num_buckets = len(self._bucket_pps)
        times = self._start + self.bucket_seconds * np.arange(num_buckets)
        return RCCRunResult(
            packets=self.packets,
            saturations=self.saturations,
            bucket_times=times,
            bucket_pps=np.array(self._bucket_pps) / self.bucket_seconds,
            bucket_ips=np.array(self._bucket_ips) / self.bucket_seconds,
            estimates=dict(self._estimates),
        )

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Normalized ``{key64: (packets, 0.0)}`` accumulated estimates."""
        from repro.baselines.streaming import table_estimates

        return table_estimates(self._estimates, flow_keys)


def run_rcc_regulator(
    trace: Trace,
    memory_bytes: int,
    vector_bits: int = 8,
    word_bits: int = 32,
    seed: int = 0,
    bucket_seconds: float = 1.0,
) -> RCCRunResult:
    """Regulate ``trace`` with one RCC sketch; every saturation hits the WSAF.

    One-chunk streaming over :class:`RCCRegulatorMeasurer`.  Returns
    per-bucket pps/ips series (Fig 1/7) plus accumulated per-flow
    estimates keyed by the flows' key64 (so accuracy can also be compared).
    """
    measurer = RCCRegulatorMeasurer(
        memory_bytes,
        vector_bits=vector_bits,
        word_bits=word_bits,
        seed=seed,
        bucket_seconds=bucket_seconds,
    )
    measurer.ingest(trace)
    return measurer.finalize()
