"""Single-layer RCC as a WSAF front-end (the Fig 1 / Fig 7 baseline).

The paper first tries plain RCC as the FlowRegulator and finds its
"saturation occurs in the speed of 12-19 % of packet arrival rate … which is
too frequent to compensate for SRAM's speed margin over DRAM's (5-10 %)".
This module runs exactly that experiment: every RCC saturation is one WSAF
insertion, and the per-bucket insertion rate over the trace timeline is the
series Fig 1 and Fig 7 plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rcc import RCCSketch
from repro.traffic.packet import Trace


@dataclass
class RCCRunResult:
    """Outcome of regulating a trace with a single-layer RCC."""

    packets: int
    saturations: int
    bucket_times: np.ndarray
    bucket_pps: np.ndarray
    bucket_ips: np.ndarray
    estimates: "dict[int, float]"

    @property
    def regulation_rate(self) -> float:
        """WSAF insertions per packet (= RCC saturations per packet)."""
        return self.saturations / self.packets if self.packets else 0.0


def run_rcc_regulator(
    trace: Trace,
    memory_bytes: int,
    vector_bits: int = 8,
    word_bits: int = 32,
    seed: int = 0,
    bucket_seconds: float = 1.0,
) -> RCCRunResult:
    """Regulate ``trace`` with one RCC sketch; every saturation hits the WSAF.

    Returns per-bucket pps/ips series (Fig 1/7) plus accumulated per-flow
    estimates keyed by the flows' key64 (so accuracy can also be compared).
    """
    sketch = RCCSketch(
        memory_bytes, vector_bits=vector_bits, word_bits=word_bits, seed=seed
    )
    num_packets = trace.num_packets
    if num_packets == 0:
        empty = np.array([])
        return RCCRunResult(0, 0, empty, empty, empty, {})

    idx_by_flow, off_by_flow = sketch.place_array(trace.flows.key64)
    idx_by_flow = idx_by_flow.tolist()
    off_by_flow = off_by_flow.tolist()
    keys = trace.flows.key64.tolist()

    rng = np.random.default_rng(seed ^ 0xACC)
    bits = rng.integers(0, vector_bits, size=num_packets, dtype=np.int64).tolist()
    flow_ids = trace.flow_ids.tolist()

    start = float(trace.timestamps[0])
    bucket_of_packet = (
        ((trace.timestamps - start) / bucket_seconds).astype(np.int64).tolist()
    )
    num_buckets = bucket_of_packet[-1] + 1
    bucket_pps = np.zeros(num_buckets)
    bucket_ips = np.zeros(num_buckets)

    words = sketch.words
    bit_masks = sketch._bit_masks
    window_masks = sketch._window_masks
    noise_max = sketch.noise_max
    decode = sketch._decode_table
    estimates: "dict[int, float]" = {}

    saturations = 0
    for p in range(num_packets):
        flow = flow_ids[p]
        idx = idx_by_flow[flow]
        offset = off_by_flow[flow]
        window = window_masks[offset]
        bucket = bucket_of_packet[p]
        bucket_pps[bucket] += 1
        word = words[idx] | bit_masks[offset][bits[p]]
        zeros = vector_bits - (word & window).bit_count()
        if zeros > noise_max:
            words[idx] = word
            continue
        words[idx] = word & ~window
        saturations += 1
        bucket_ips[bucket] += 1
        key = keys[flow]
        estimates[key] = estimates.get(key, 0.0) + decode[zeros]

    sketch.packets_encoded += num_packets
    sketch.saturations += saturations
    times = start + bucket_seconds * np.arange(num_buckets)
    return RCCRunResult(
        packets=num_packets,
        saturations=saturations,
        bucket_times=times,
        bucket_pps=bucket_pps / bucket_seconds,
        bucket_ips=bucket_ips / bucket_seconds,
        estimates=estimates,
    )
