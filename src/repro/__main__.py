"""``python -m repro`` — the package's CLI entry point."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
