"""``instameasure`` command-line interface.

Subcommands::

    instameasure gen-trace caida --flows 20000 --out trace.npz
    instameasure gen-trace campus --hours 24 --out campus.npz
    instameasure summarize trace.npz
    instameasure run trace.npz --l1-kb 8
    instameasure run trace.npz --shards 4 --parallel
    instameasure hh trace.npz --threshold-packets 1000
    instameasure snapshot save trace.npz --out state.snap
    instameasure snapshot load state.snap
    instameasure bench --quick
    instameasure serve capture.impl --follow --checkpoint-dir state/ \
        --control-port 0 --epoch-seconds 1
    instameasure control 127.0.0.1:PORT stats

Traces are the NPZ files of :mod:`repro.traffic.trace_io`; snapshots are
the versioned wire format of :mod:`repro.state.codec`.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import print_table
from repro.analysis.metrics import standard_error
from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import (
    HeavyHitterDetector,
    classify_detections,
    ground_truth_heavy_hitters,
    keys_to_flow_indices,
)
from repro.errors import ReproError
from repro.pipeline import LOAD_POLICY_CHOICES, build_load_controller, run_pipeline
from repro.traffic import (
    CaidaLikeConfig,
    CampusConfig,
    build_caida_like_trace,
    build_campus_trace,
    load_trace,
    save_trace,
    summarize_trace,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="instameasure",
        description="InstaMeasure (ICDCS 2019) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("gen-trace", help="generate a synthetic trace")
    gen.add_argument("kind", choices=["caida", "campus"])
    gen.add_argument("--out", required=True, help="output NPZ path")
    gen.add_argument("--flows", type=int, default=20_000)
    gen.add_argument("--duration", type=float, default=30.0, help="caida: seconds")
    gen.add_argument("--hours", type=int, default=24, help="campus: modelled hours")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--pcaplite",
        default=None,
        metavar="PATH",
        help="also write the trace as a streaming pcap-lite capture "
        "(the `serve` input format)",
    )

    summarize = commands.add_parser("summarize", help="print trace statistics")
    summarize.add_argument("trace", help="trace NPZ path")

    run = commands.add_parser("run", help="measure a trace with InstaMeasure")
    run.add_argument("trace", help="trace NPZ path")
    run.add_argument("--l1-kb", type=float, default=8.0, help="L1 sketch size (KB)")
    run.add_argument("--wsaf-bits", type=int, default=16, help="WSAF size = 2^bits")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard ingestion across N worker pipelines (exact merge)",
    )
    run.add_argument(
        "--parallel",
        action="store_true",
        help="run shards as forked processes (with --shards > 1)",
    )
    run.add_argument(
        "--snapshot-out",
        default=None,
        help="write the final measurement state snapshot to this path",
    )
    run.add_argument(
        "--wsaf-backend",
        choices=["flat", "tiered", "icebuckets"],
        default="flat",
        help="WSAF storage backend (tiered: hot SRAM cache; icebuckets: "
        "compressed counters)",
    )
    run.add_argument(
        "--load-policy",
        choices=list(LOAD_POLICY_CHOICES),
        default="none",
        help="closed-loop overload policy: none (ingest everything), shed "
        "(deterministically sample overloaded chunks down to --target-pps), "
        "degrade (batch chunks into cheaper coalesced ingests under load)",
    )
    run.add_argument(
        "--target-pps",
        type=float,
        default=None,
        help="sustainable ingest rate for --load-policy shed/degrade "
        "(stream-clock packets per second)",
    )

    snap = commands.add_parser(
        "snapshot", help="save/load serializable measurement state"
    )
    snap_sub = snap.add_subparsers(dest="snapshot_command", required=True)
    snap_save = snap_sub.add_parser(
        "save", help="measure a trace and save the final state"
    )
    snap_save.add_argument("trace", help="trace NPZ path")
    snap_save.add_argument("--out", required=True, help="snapshot output path")
    snap_save.add_argument("--l1-kb", type=float, default=8.0)
    snap_save.add_argument("--wsaf-bits", type=int, default=16)
    snap_save.add_argument("--seed", type=int, default=0)
    snap_save.add_argument("--shards", type=int, default=1)
    snap_save.add_argument("--parallel", action="store_true")
    snap_load = snap_sub.add_parser("load", help="inspect a saved snapshot")
    snap_load.add_argument("snapshot", help="snapshot path")
    snap_load.add_argument(
        "--trace",
        default=None,
        help="score the snapshot's estimates against this trace NPZ",
    )

    hh = commands.add_parser("hh", help="heavy-hitter detection on a trace")
    hh.add_argument("trace", help="trace NPZ path")
    hh.add_argument("--threshold-packets", type=float, default=None)
    hh.add_argument("--threshold-bytes", type=float, default=None)
    hh.add_argument("--l1-kb", type=float, default=8.0)
    hh.add_argument("--wsaf-bits", type=int, default=16)

    topk = commands.add_parser("topk", help="Top-K flows by packets and bytes")
    topk.add_argument("trace", help="trace NPZ path")
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument("--l1-kb", type=float, default=8.0)
    topk.add_argument("--wsaf-bits", type=int, default=16)

    spread = commands.add_parser(
        "spreaders", help="superspreader sources from the WSAF"
    )
    spread.add_argument("trace", help="trace NPZ path")
    spread.add_argument("--min-destinations", type=int, default=10)
    spread.add_argument("--l1-kb", type=float, default=8.0)
    spread.add_argument("--wsaf-bits", type=int, default=16)

    bench = commands.add_parser(
        "bench", help="run the throughput regression harness"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: small trace, one round, history file untouched",
    )
    bench.add_argument(
        "--rounds", type=int, default=None, help="timed rounds per variant"
    )
    bench.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing BENCH_throughput.json (quick implies this)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the sharded scaling benchmark instead (with --quick: "
        "a smoke pass at 1 and N shards)",
    )
    bench.add_argument(
        "--wsaf-backend",
        choices=["tiered", "icebuckets"],
        default=None,
        help="run the non-flat backend benchmark for this WSAF backend "
        "instead (scalar vs batched engine, measured WSAF stage)",
    )

    serve = commands.add_parser(
        "serve", help="run the always-on measurement service"
    )
    serve.add_argument(
        "input",
        help="pcap-lite capture path, or tcp://HOST:PORT for a live feed",
    )
    serve.add_argument(
        "--follow",
        action="store_true",
        help="tail a growing capture instead of stopping at EOF",
    )
    serve.add_argument("--chunk-size", type=int, default=8192)
    serve.add_argument(
        "--epoch-seconds",
        type=float,
        default=None,
        help="rotate epochs this often on the stream clock",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist crash-recovery checkpoints here (and recover from "
        "the newest one on start)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        metavar="CHUNKS",
        help="checkpoint after this many ingested chunks",
    )
    serve.add_argument("--keep-checkpoints", type=int, default=3)
    serve.add_argument(
        "--control-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the line-protocol control socket on 127.0.0.1:PORT "
        "(0 picks an ephemeral port; the chosen address is printed)",
    )
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument("--l1-kb", type=float, default=8.0)
    serve.add_argument("--wsaf-bits", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--wsaf-backend",
        choices=["flat", "tiered", "icebuckets"],
        default="flat",
    )
    serve.add_argument(
        "--max-packets",
        type=int,
        default=None,
        help="stop after measuring this many packets (smoke-test hook)",
    )
    serve.add_argument(
        "--load-policy",
        choices=list(LOAD_POLICY_CHOICES),
        default="none",
        help="closed-loop overload policy for the ingest loop "
        "(none | shed | degrade)",
    )
    serve.add_argument(
        "--target-pps",
        type=float,
        default=None,
        help="sustainable ingest rate for --load-policy shed/degrade",
    )

    control = commands.add_parser(
        "control", help="send one command to a running service"
    )
    control.add_argument("address", help="HOST:PORT of the control socket")
    control.add_argument(
        "words", nargs="+", help="command, e.g.: stats | query KEY | top 5"
    )
    control.add_argument("--timeout", type=float, default=10.0)
    return parser


def _cmd_gen_trace(args: argparse.Namespace) -> int:
    if args.kind == "caida":
        trace = build_caida_like_trace(
            CaidaLikeConfig(
                num_flows=args.flows, duration=args.duration, seed=args.seed
            )
        )
    else:
        trace = build_campus_trace(
            CampusConfig(hours=args.hours, num_flows=args.flows, seed=args.seed)
        )
    save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {trace.num_packets:,} packets, "
        f"{trace.num_flows:,} flows, {trace.duration:.1f}s"
    )
    if args.pcaplite is not None:
        from repro.traffic.pcaplite import write_pcaplite

        records = write_pcaplite(trace, args.pcaplite)
        print(f"wrote {args.pcaplite}: {records:,} pcap-lite records")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    print_table(["statistic", "value"], summarize_trace(trace).rows(), args.trace)
    return 0


def _engine_from_args(args: argparse.Namespace) -> InstaMeasure:
    return InstaMeasure(
        InstaMeasureConfig(
            l1_memory_bytes=int(args.l1_kb * 1024),
            wsaf_entries=1 << args.wsaf_bits,
            seed=getattr(args, "seed", 0),
            wsaf_backend=getattr(args, "wsaf_backend", "flat"),
        )
    )


def _controller_from_args(args: argparse.Namespace):
    return build_load_controller(
        getattr(args, "load_policy", "none"),
        target_pps=getattr(args, "target_pps", None),
        seed=getattr(args, "seed", 0),
    )


def _controller_rows(stats: "dict | None") -> "list[list[str]]":
    if not stats or stats.get("policy", "none") == "none":
        return []
    return [
        ["load policy", stats["policy"]],
        ["load keep rate",
         f"{stats['keep_rate']:.2%} ({stats['kept_packets']:,} of "
         f"{stats['offered_packets']:,} offered)"],
        ["load actions (thin/drop/degraded chunks)",
         f"{stats['thinned_chunks']:,}/{stats['dropped_chunks']:,}/"
         f"{stats['degraded_chunks']:,}"],
    ]


def _run_sharded(args: argparse.Namespace, source) -> int:
    """``run --shards N``: stream chunks through shards, merge exactly."""
    from repro.pipeline import PrefetchChunkSource, ShardedPipeline
    from repro.state import save as save_snapshot

    config = InstaMeasureConfig(
        l1_memory_bytes=int(args.l1_kb * 1024),
        wsaf_entries=1 << args.wsaf_bits,
        seed=getattr(args, "seed", 0),
        wsaf_backend=getattr(args, "wsaf_backend", "flat"),
    )
    # Chunks stream straight off the file source into per-shard routing;
    # prefetch stages the next chunk while the current one is routed.
    sharded = ShardedPipeline(
        config,
        num_shards=args.shards,
        parallel=args.parallel,
        controller=_controller_from_args(args),
    ).run(PrefetchChunkSource(source))
    snapshot = sharded.snapshot
    trace = source.trace
    est_packets, _est_bytes = sharded.estimates_for(trace)
    truth = trace.ground_truth_packets().astype(float)
    shares = ", ".join(f"{share:.1%}" for share in sharded.load_shares)
    rows = [
        ["packets", f"{sharded.packets:,}"],
        ["shards", f"{sharded.num_shards:,}"],
        ["shard load shares", shares],
        ["WSAF insertions", f"{sharded.insertions:,}"],
        ["regulation rate",
         f"{sharded.insertions / sharded.packets:.2%}" if sharded.packets else "n/a"],
        ["WSAF flows", f"{snapshot.wsaf.num_records:,}"],
        ["WSAF evictions", f"{snapshot.wsaf.evictions:,}"],
    ]
    stages = sharded.stage_seconds
    if stages:
        rows.append(
            ["stage seconds (route/ipc/ingest/merge)",
             f"{stages['route_s']:.3f}/{stages['ipc_s']:.3f}/"
             f"{stages['ingest_s']:.3f}/{stages['merge_s']:.3f}"]
        )
    rows.extend(_controller_rows(sharded.controller_stats))
    big = truth >= 1000
    if big.any():
        rows.append(
            ["std error (1K+ pkt flows)",
             f"{standard_error(est_packets[big], truth[big]):.2%}"]
        )
    print_table(
        ["metric", "value"], rows, f"InstaMeasure run ({args.shards} shards)"
    )
    if args.snapshot_out is not None:
        save_snapshot(snapshot, args.snapshot_out)
        print(f"wrote snapshot to {args.snapshot_out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.pipeline import FileChunkSource, PrefetchChunkSource

    engine = _engine_from_args(args)
    source = FileChunkSource(args.trace, chunk_size=engine.config.chunk_size)
    if args.shards > 1:
        return _run_sharded(args, source)
    trace = source.trace
    # Prefetch stages the next chunk while the engine ingests the
    # current one; the chunk sequence itself is unchanged.
    pipeline_result = run_pipeline(
        engine,
        PrefetchChunkSource(source),
        controller=_controller_from_args(args),
    )
    result = pipeline_result.result
    est_packets, _est_bytes = engine.estimates_for(trace)
    truth = trace.ground_truth_packets().astype(float)
    rows = [
        ["packets", f"{result.packets:,}"],
        ["chunks", f"{len(pipeline_result.chunks):,}"],
        ["WSAF insertions", f"{result.insertions:,}"],
        ["regulation rate", f"{result.regulation_rate:.2%}"],
        ["L1 saturation rate", f"{result.regulator_stats.l1_saturation_rate:.2%}"],
        ["python throughput", f"{result.python_pps / 1e6:.2f} Mpps"],
        ["WSAF flows", f"{len(engine.wsaf):,}"],
        ["WSAF load factor", f"{engine.wsaf.load_factor:.2%}"],
        ["WSAF evictions", f"{engine.wsaf.evictions:,}"],
    ]
    staging = pipeline_result.prefetch_stats
    if staging is not None:
        rows.append(
            ["prefetch (depth peak / producer / consumer wait)",
             f"{staging.max_depth} / {staging.producer_wait_s:.3f}s / "
             f"{staging.consumer_wait_s:.3f}s"]
        )
    rows.extend(_controller_rows(pipeline_result.controller_stats))
    big = truth >= 1000
    if big.any():
        rows.append(
            ["std error (1K+ pkt flows)",
             f"{standard_error(est_packets[big], truth[big]):.2%}"]
        )
    print_table(["metric", "value"], rows, "InstaMeasure run")
    if args.snapshot_out is not None:
        from repro.state import save as save_snapshot

        save_snapshot(engine.snapshot(), args.snapshot_out)
        print(f"wrote snapshot to {args.snapshot_out}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.state import load as load_snapshot
    from repro.state import save as save_snapshot

    if args.snapshot_command == "save":
        if args.shards > 1:
            from repro.pipeline import FileChunkSource, ShardedPipeline

            config = InstaMeasureConfig(
                l1_memory_bytes=int(args.l1_kb * 1024),
                wsaf_entries=1 << args.wsaf_bits,
                seed=args.seed,
            )
            source = FileChunkSource(args.trace, chunk_size=config.chunk_size)
            snapshot = ShardedPipeline(
                config, num_shards=args.shards, parallel=args.parallel
            ).run(source).snapshot
        else:
            engine = _engine_from_args(args)
            run_pipeline(engine, load_trace(args.trace))
            snapshot = engine.snapshot()
        save_snapshot(snapshot, args.out)
        print(
            f"wrote {args.out}: {snapshot.wsaf.num_records:,} WSAF records, "
            f"{snapshot.regulator.packets:,} regulated packets"
        )
        return 0

    snapshot = load_snapshot(args.snapshot)
    rows = [
        ["kind", snapshot.kind],
        ["shards merged", f"{snapshot.shards_merged:,}"],
        ["regulated packets", f"{snapshot.regulator.packets:,}"],
        ["regulator insertions", f"{snapshot.regulator.insertions:,}"],
        ["regulator sketches", f"{len(snapshot.regulator.sketches):,}"],
        ["WSAF records", f"{snapshot.wsaf.num_records:,}"],
        ["WSAF entries", f"{snapshot.wsaf.num_entries:,}"],
        ["WSAF evictions", f"{snapshot.wsaf.evictions:,}"],
        ["mid-stream", "yes" if snapshot.stream is not None else "no"],
        ["seed", f"{snapshot.config.get('seed', 0)}"],
    ]
    if snapshot.key_range is not None:
        rows.append(["key range", f"[{snapshot.key_range[0]}, {snapshot.key_range[1]})"])
    print_table(["field", "value"], rows, args.snapshot)
    if args.trace is not None:
        trace = load_trace(args.trace)
        table = snapshot.estimates()
        est_packets = np.zeros(trace.num_flows)
        for flow_index, key in enumerate(trace.flows.key64.tolist()):
            record = table.get(key)
            if record is not None:
                est_packets[flow_index] = record[0]
        truth = trace.ground_truth_packets().astype(float)
        big = truth >= 1000
        if big.any():
            print(
                "std error (1K+ pkt flows): "
                f"{standard_error(est_packets[big], truth[big]):.2%}"
            )
    return 0


def _cmd_hh(args: argparse.Namespace) -> int:
    if args.threshold_packets is None and args.threshold_bytes is None:
        print("error: provide --threshold-packets and/or --threshold-bytes",
              file=sys.stderr)
        return 2
    trace = load_trace(args.trace)
    detector = HeavyHitterDetector(
        threshold_packets=args.threshold_packets,
        threshold_bytes=args.threshold_bytes,
    )
    engine = _engine_from_args(args)
    run_pipeline(engine, trace, on_accumulate=detector.on_accumulate)

    rows = []
    for label, detections, threshold_kw in (
        ("packets", detector.packet_detections,
         {"threshold_packets": args.threshold_packets}),
        ("bytes", detector.byte_detections,
         {"threshold_bytes": args.threshold_bytes}),
    ):
        if next(iter(threshold_kw.values())) is None:
            continue
        truth_pkt, truth_byte = ground_truth_heavy_hitters(trace, **threshold_kw)
        truth_set = truth_pkt if label == "packets" else truth_byte
        detected = keys_to_flow_indices(trace, set(detections))
        outcome = classify_detections(detected, truth_set, trace.num_flows)
        rows.append(
            [
                label,
                len(truth_set),
                len(detected),
                f"{outcome.false_positive_rate:.3%}",
                f"{outcome.false_negative_rate:.3%}",
            ]
        )
    print_table(
        ["metric", "true HH", "detected", "FPR", "FNR"],
        rows,
        "Heavy-hitter detection",
    )
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    engine = _engine_from_args(args)
    run_pipeline(engine, trace)
    est_packets, est_bytes = engine.estimates_for(trace)
    truth_packets = trace.ground_truth_packets()
    order = np.argsort(-est_packets)[: args.k]
    rows = []
    for rank, flow in enumerate(order, start=1):
        five_tuple = trace.flows.five_tuple(int(flow))
        rows.append(
            [
                rank,
                f"{five_tuple.src_ip:#010x}:{five_tuple.src_port}",
                f"{five_tuple.dst_ip:#010x}:{five_tuple.dst_port}",
                f"{est_packets[flow]:,.0f}",
                f"{truth_packets[flow]:,}",
                f"{est_bytes[flow] / 1e6:.2f}",
            ]
        )
    print_table(
        ["rank", "source", "destination", "est pkts", "true pkts", "est MB"],
        rows,
        f"Top-{args.k} flows (by estimated packets)",
    )
    return 0


def _cmd_spreaders(args: argparse.Namespace) -> int:
    from repro.detection import detect_superspreaders, ground_truth_fanout

    trace = load_trace(args.trace)
    engine = _engine_from_args(args)
    run_pipeline(engine, trace)
    spreaders = detect_superspreaders(engine.wsaf, args.min_destinations)
    truth = ground_truth_fanout(trace)
    rows = [
        [f"{src:#010x}", fanout, truth.get(src, 0)]
        for src, fanout in sorted(spreaders.items(), key=lambda kv: -kv[1])
    ]
    print_table(
        ["source", "observed fan-out", "true fan-out"],
        rows,
        f"Superspreaders (>= {args.min_destinations} destinations)",
    )
    return 0


def _load_bench_module():
    """The throughput harness, loaded from the repo's benchmarks/ tree.

    The harness stays outside the installed package (it writes repo-level
    report files), so it is located relative to this source checkout.
    """
    import importlib.util
    import pathlib

    bench_path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "bench_throughput.py"
    )
    if not bench_path.exists():
        raise ReproError(
            f"benchmark harness not found at {bench_path} — the bench "
            "subcommand needs a source checkout with benchmarks/"
        )
    spec = importlib.util.spec_from_file_location("bench_throughput", bench_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _print_shard_stage_table(rows: "list[dict]") -> None:
    """Route/ipc/ingest/merge breakdown per shard count (best round)."""
    table_rows = [
        [
            f"{row['shards']:,}",
            f"{row['seconds'] * 1e3:.1f}",
            f"{row['stages']['route_s'] * 1e3:.1f}",
            f"{row['stages']['ipc_s'] * 1e3:.1f}",
            f"{row['stages']['ingest_s'] * 1e3:.1f}",
            f"{row['stages']['merge_s'] * 1e3:.1f}",
        ]
        for row in rows
    ]
    print_table(
        ["shards", "total ms", "route ms", "ipc ms", "ingest ms", "merge ms"],
        table_rows,
        "Sharded stage breakdown (best round)",
    )


def _print_backend_stage_table(rows: "list[dict]") -> None:
    """Backend × engine e2e pps and measured WSAF-stage times."""
    table_rows = [
        [
            row["backend"],
            row["wsaf_engine"],
            f"{row['pps']:,.0f}",
            f"{row['stages']['wsaf_scalar_s'] * 1e3:.1f}",
            f"{row['stages']['wsaf_batched_s'] * 1e3:.1f}",
            f"{row['stages']['wsaf_stage_speedup']:.2f}x",
        ]
        for row in rows
    ]
    print_table(
        [
            "backend",
            "wsaf engine",
            "e2e pps",
            "stage scalar ms",
            "stage batched ms",
            "stage speedup",
        ],
        table_rows,
        "Backend WSAF stage breakdown (best round)",
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    bench = _load_bench_module()
    if args.wsaf_backend is not None:
        backends = (args.wsaf_backend,)
        if args.quick:
            trace = build_caida_like_trace(
                CaidaLikeConfig(num_flows=4_000, duration=10.0, seed=1)
            )
            result = bench.run_backend_benchmark(
                trace,
                rounds=args.rounds or 1,
                record=False,
                backends=backends,
            )
            print(result["report"])
            _print_backend_stage_table(result["rows"])
            ratio = result["speedups"][args.wsaf_backend]
            if ratio < bench.MIN_BACKEND_SPEEDUP_SMOKE:
                print(
                    f"error: batched {args.wsaf_backend} WSAF stage "
                    f"collapsed to {ratio:.2f}x the scalar engine's",
                    file=sys.stderr,
                )
                return 1
            return 0
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=30_000, duration=60.0, seed=1)
        )
        result = bench.run_backend_benchmark(
            trace,
            rounds=args.rounds or bench.BACKEND_ROUNDS,
            record=not args.no_record,
            backends=backends,
        )
        print(result["report"])
        _print_backend_stage_table(result["rows"])
        bench._assert_backend_bars(result)
        return 0
    if args.shards is not None:
        if args.quick:
            trace = build_caida_like_trace(
                CaidaLikeConfig(num_flows=4_000, duration=10.0, seed=1)
            )
            result = bench.run_sharded_benchmark(
                trace,
                rounds=args.rounds or 1,
                shard_counts=(1, args.shards),
                record=False,
            )
            print(result["report"])
            _print_shard_stage_table(result["rows"])
            smoke = result["scaling"][args.shards]
            if smoke < bench.MIN_SHARD_SMOKE_FLOOR:
                print(
                    f"error: {args.shards}-shard run collapsed to "
                    f"{smoke:.2f}x 1-shard",
                    file=sys.stderr,
                )
                return 1
            return 0
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=30_000, duration=60.0, seed=1)
        )
        # Forward the requested count: measure the 1-shard baseline plus
        # every default count up to N (previously --shards N was parsed
        # and then ignored here, always running the default ladder).
        shard_counts = tuple(
            sorted(
                {1, args.shards}
                | {n for n in bench.SHARD_COUNTS if n <= args.shards}
            )
        )
        result = bench.run_sharded_benchmark(
            trace,
            rounds=args.rounds or bench.SHARD_ROUNDS,
            shard_counts=shard_counts,
            record=not args.no_record,
        )
        print(result["report"])
        _print_shard_stage_table(result["rows"])
        bench._assert_sharded_bars(result)
        return 0
    if args.quick:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=4_000, duration=10.0, seed=1)
        )
        rounds = args.rounds or 1
        result = bench.run_benchmark(
            trace, rounds=rounds, stage_rounds=2, record=False
        )
    else:
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=30_000, duration=60.0, seed=1)
        )
        rounds = args.rounds or bench.ROUNDS
        result = bench.run_benchmark(
            trace,
            rounds=rounds,
            stage_rounds=bench.STAGE_ROUNDS,
            record=not args.no_record,
        )
    print(result["report"])
    if args.quick:
        scan_ratio = result["speedups"]["scan_vs_loop"]
        if scan_ratio < bench.MIN_SCAN_SPEEDUP_SMOKE:
            print(
                f"error: scan replay regressed to {scan_ratio:.2f}x the "
                "loop replay",
                file=sys.stderr,
            )
            return 1
    return 0


def _serve_source(args: argparse.Namespace):
    from repro.pipeline import PacketRecordChunkSource, SocketChunkSource

    if args.input.startswith("tcp://"):
        host, _, port = args.input[len("tcp://") :].partition(":")
        if not host or not port:
            raise ReproError(f"bad feed address {args.input!r}: want tcp://HOST:PORT")
        return SocketChunkSource(
            host,
            int(port),
            chunk_size=args.chunk_size,
            epoch_seconds=args.epoch_seconds,
        )
    return PacketRecordChunkSource(
        args.input,
        chunk_size=args.chunk_size,
        epoch_seconds=args.epoch_seconds,
        follow=args.follow,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: the always-on daemon with optional control socket."""
    import signal

    from repro.service import ControlServer, MeasurementDaemon

    config = InstaMeasureConfig(
        l1_memory_bytes=int(args.l1_kb * 1024),
        wsaf_entries=1 << args.wsaf_bits,
        seed=args.seed,
        wsaf_backend=args.wsaf_backend,
    )
    daemon = MeasurementDaemon(
        _serve_source(args),
        config=config,
        num_shards=args.shards,
        epoch_seconds=args.epoch_seconds,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        keep_checkpoints=args.keep_checkpoints,
        max_packets=args.max_packets,
        load_policy=args.load_policy,
        target_pps=args.target_pps,
    )
    control = None
    try:
        daemon.start()
        if args.control_port is not None:
            control = ControlServer(daemon, port=args.control_port)
            # Parseable by wrappers (the CI smoke job reads this line).
            print(f"control {control.address[0]}:{control.address[1]}", flush=True)
        if daemon.recovered_from is not None:
            print(
                f"recovered from checkpoint {daemon.recovered_from} "
                f"at packet {daemon.packets:,}",
                flush=True,
            )

        def _stop(_signum, _frame):
            daemon.stop()

        signal.signal(signal.SIGINT, _stop)
        signal.signal(signal.SIGTERM, _stop)
        while not daemon.wait(timeout=0.5):
            pass
    finally:
        if control is not None:
            control.close()
    stats = daemon.stats()
    if daemon.error is not None:
        print(f"error: ingest failed: {daemon.error}", file=sys.stderr)
        return 1
    print(
        f"served {stats['packets']:,} packets in {stats['chunks']:,} chunks "
        f"({stats['pps_total']:,.0f} pps, {stats['wsaf_entries']:,} WSAF flows)"
    )
    if stats.get("load_policy", "none") != "none":
        print(
            f"load policy {stats['load_policy']}: measured "
            f"{stats['measured_packets']:,} of {stats['packets']:,} offered "
            f"packets (target {stats['target_pps']:,.0f} pps)"
        )
    return 0


def _cmd_control(args: argparse.Namespace) -> int:
    """``control``: one-shot client for a running service."""
    import json

    from repro.service import send_command

    host, _, port = args.address.partition(":")
    if not host or not port:
        raise ReproError(f"bad address {args.address!r}: want HOST:PORT")
    ok, payload = send_command(
        (host, int(port)), " ".join(args.words), timeout=args.timeout
    )
    if not ok:
        print(f"error: {payload}", file=sys.stderr)
        return 1
    if args.words and args.words[0] == "metrics" and isinstance(payload, str):
        # The exposition text prints raw so it can be piped straight
        # into a scraper; everything else stays JSON.
        print(payload.rstrip("\n"))
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "gen-trace": _cmd_gen_trace,
        "summarize": _cmd_summarize,
        "run": _cmd_run,
        "snapshot": _cmd_snapshot,
        "hh": _cmd_hh,
        "topk": _cmd_topk,
        "spreaders": _cmd_spreaders,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "control": _cmd_control,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
