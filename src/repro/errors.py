"""Exception hierarchy for the InstaMeasure reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package-level failures with a single ``except`` clause
without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters."""


class CapacityError(ReproError):
    """A bounded structure (queue, table, pool) could not absorb an item."""


class TraceFormatError(ReproError):
    """A trace file is malformed or was written by an incompatible version."""


class DecodeError(ReproError):
    """A sketch decode was requested in a state that cannot be decoded."""


class SnapshotError(ReproError):
    """A measurement snapshot could not be encoded, decoded, or merged."""


class ShardWorkerError(ReproError):
    """A sharded ingest worker process failed or died mid-stream."""
