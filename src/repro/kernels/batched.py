"""The batched fast path: chunked, table-driven trace processing.

A bit-identical re-expression of the scalar ``InstaMeasure.process_trace``
loop, built on two structural facts about the 2-layer FlowRegulator:

* **Per-word independence.**  L1 and every L2 bank share placement, so the
  regulator state a packet touches is fully determined by its flow's
  ``(word index, bit offset)``.  Packets can therefore be processed grouped
  by word (stably, preserving each word's internal packet order) instead of
  globally in trace order.  Only WSAF accumulation couples words, and that
  coupling is restored by applying decoded insertion events sorted by
  original packet position.
* **FSM compilation.**  A counting window holds one of ``2**vector_bits``
  states, so layer transitions compile into small lookup tables
  (:mod:`repro.kernels.luts`) indexed by interned byte values, and the hot
  loop advances *two* packets per iteration through the pair table.

Pipeline per chunk: vectorized gathers (placement, pre-drawn bit choices)
→ stable sort by word → per-stretch saturation screen
(``np.bitwise_or.reduceat`` of the candidate bits plus a popcount LUT:
a stretch whose OR-accumulated candidate state cannot reach the
saturation threshold commits in O(1)) → byte-pair LUT replay of the
contested stretches → insertion events applied to the WSAF in packet
order through :meth:`WSAFTable.accumulate_batch`.

Randomness is drawn exactly as the scalar path draws it (same generator,
same sizes, same order), so every sketch word, counter, and WSAF record
comes out identical — the equivalence suite in ``tests/test_kernels.py``
asserts this across seeds, chunk sizes, policies, and geometries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.luts import SENTINEL, kernel_tables, quad_tables

#: Trace attribute under which per-chunk sort layouts are cached.
_LAYOUT_ATTR = "_batched_layout"

#: Trace attribute holding the delegated path's per-chunk derived streams.
_STREAM_ATTR = "_delegated_streams"

#: Trace attribute holding the scan replay's per-chunk occ/chain tables.
_SCAN_ATTR = "_scan_streams"

#: Bumped when the layout dict layout changes, to invalidate stale caches.
_LAYOUT_VERSION = 3

#: Default packets per kernel chunk (one chunk for most lab traces).
DEFAULT_CHUNK_SIZE = 1 << 20


def clear_kernel_caches(trace) -> None:
    """Drop every kernel-derived cache pinned on ``trace``.

    The chunk layouts (:data:`_LAYOUT_ATTR`), the delegated path's derived
    streams (:data:`_STREAM_ATTR`), and the scan replay's position tables
    (:data:`_SCAN_ATTR`) together hold several NumPy arrays per chunk — on
    a million-packet trace tens of megabytes that would otherwise live as
    long as the trace object does.  Call this when a trace outlives its
    runs (the multi-core manager does, for its per-worker sub-traces).
    """
    for attr in (_LAYOUT_ATTR, _STREAM_ATTR, _SCAN_ATTR):
        if hasattr(trace, attr):
            delattr(trace, attr)


@dataclass
class BatchCounters:
    """Counters a batched run hands back for folding into shared stats."""

    packets: int = 0
    l1_saturations: int = 0
    insertions: int = 0
    #: Packets encoded into each L2 bank (indexed by L1 noise level).
    l2_encoded: "list[int]" = field(default_factory=list)
    #: Saturations observed in each L2 bank.
    l2_saturated: "list[int]" = field(default_factory=list)


def supports_batched(engine) -> bool:
    """Whether ``engine`` can run the batched kernel.

    Requires the paper's 2-layer
    :class:`~repro.core.regulator.FlowRegulator` (the shared L1/L2
    placement is what makes per-word grouping sound) with
    ``vector_bits <= 8`` (window states must fit the byte-indexed FSM
    tables).  Other regulator depths and wider vectors take the scalar
    path.
    """
    from repro.core.regulator import FlowRegulator

    regulator = getattr(engine, "regulator", None)
    return isinstance(regulator, FlowRegulator) and regulator.vector_bits <= 8


def _chunk_layouts(trace, l1, chunk_size: int) -> "list[dict]":
    """Per-chunk word-sorted layouts for ``trace``, cached on the trace.

    A layout (stable sort order by word, stretch boundaries, per-stretch
    word/offset headers) depends only on the trace, the sketch placement,
    and the chunking — never on a run's randomness — so repeated runs over
    the same trace reuse it.  The cache is keyed by the placement
    fingerprint and invalidated whenever a differently-configured engine
    processes the trace.
    """
    cache_key = (
        _LAYOUT_VERSION,
        l1._place_seed_idx,
        l1._place_seed_off,
        l1.num_words,
        l1.word_bits,
        int(chunk_size),
    )
    cached = getattr(trace, _LAYOUT_ATTR, None)
    if cached is not None and cached[0] == cache_key:
        return cached[1]

    idx_by_flow, off_by_flow = l1.place_array(trace.flows.key64)
    flow_ids = trace.flow_ids
    word_dtype = np.uint16 if l1.num_words <= (1 << 16) else np.uint32
    packet_words = idx_by_flow.astype(word_dtype)[flow_ids]
    packet_offsets = off_by_flow.astype(np.uint8)[flow_ids]

    layouts = []
    for begin in range(0, trace.num_packets, chunk_size):
        end = min(begin + chunk_size, trace.num_packets)
        chunk_words = packet_words[begin:end]
        order = np.argsort(chunk_words, kind="stable")
        sorted_words = chunk_words[order]
        sorted_offsets = packet_offsets[begin:end][order]
        # One key per (word, offset); offsets fit 6 bits (word_bits <= 64).
        stretch_key = (sorted_words.astype(np.int64) << 6) | sorted_offsets
        span = end - begin
        if span > 1:
            reduce_starts = np.flatnonzero(
                np.concatenate(([True], stretch_key[1:] != stretch_key[:-1]))
            )
        else:
            reduce_starts = np.zeros(1, dtype=np.int64)
        head_offsets = sorted_offsets[reduce_starts]
        order_dtype = np.int32 if trace.num_packets <= (1 << 31) - 1 else np.int64
        ends_arr = np.append(reduce_starts[1:], span)
        stretch_words = sorted_words[reduce_starts].astype(np.int64)
        # Stretches sorted by (word, offset) group same-word stretches into
        # contiguous *word runs* — the unit of the delegated path's
        # vectorized word-level screen.
        if len(stretch_words) > 1:
            word_run_starts = np.flatnonzero(
                np.concatenate(([True], stretch_words[1:] != stretch_words[:-1]))
            )
        else:
            word_run_starts = np.zeros(1, dtype=np.int64)
        word_run_lengths = np.diff(
            np.append(word_run_starts, len(stretch_words))
        )
        layouts.append(
            dict(
                # Global packet positions, chunk-sorted; int32 for gathers.
                order=(order + begin).astype(order_dtype),
                reduce_starts=reduce_starts,
                starts=reduce_starts.tolist(),
                ends=ends_arr.tolist(),
                words=stretch_words.tolist(),
                offsets=head_offsets.tolist(),
                offsets_arr=head_offsets.astype(np.uint64),
                words_arr=stretch_words,
                starts_arr=reduce_starts,
                ends_arr=ends_arr,
                word_run_starts=word_run_starts,
                word_run_lengths=word_run_lengths,
                word_run_heads=stretch_words[word_run_starts],
            )
        )
    setattr(trace, _LAYOUT_ATTR, (cache_key, layouts))
    return layouts


def process_trace_batched(
    engine,
    trace,
    on_accumulate=None,
    chunk_size: "int | None" = None,
    delegate: bool = False,
    regulator_replay: str = "loop",
    bits=None,
    stream_tag=None,
) -> BatchCounters:
    """Process ``trace`` through ``engine``'s regulator and WSAF, batched.

    Mutates the engine's sketch words and WSAF exactly as the scalar loop
    would and returns the run's :class:`BatchCounters` (the caller folds
    them into the shared stats/accounting objects).  ``chunk_size``
    defaults to the engine config's value.

    With ``delegate=True`` (selected when ``wsaf_engine`` resolves to the
    batch-probed table) the run takes :func:`_process_trace_delegated`:
    a vectorized word-level saturation screen in front of the per-stretch
    loop, an 8-packet OR screen inside the FSM replay, and WSAF updates
    handed over per chunk as one ``accumulate_batch`` call instead of one
    ``accumulate`` per event.  ``regulator_replay="scan"`` swaps the
    contested-stretch FSM loop for the fully vectorized segmented scan
    (:mod:`repro.kernels.regulator_scan`), which always runs the delegated
    pipeline shape.  All paths are bit-identical to the scalar loop;
    ``"loop"`` preserves the original pipelines so the generations stay
    separately benchmarkable.

    ``bits`` overrides the per-packet random bit draws with externally
    supplied ``(bits1, bits2)`` uint8 arrays — the streaming ingest path
    slices one pre-drawn whole-stream pair so chunked runs replay the
    exact whole-trace randomness.  ``stream_tag`` disambiguates the
    trace-pinned stream caches when the same trace object is processed
    with different bit slices (see :func:`_stream_key`).
    """
    if regulator_replay == "scan":
        from repro.kernels.regulator_scan import process_trace_scan

        return process_trace_scan(
            engine, trace, on_accumulate, chunk_size, bits, stream_tag
        )
    if delegate:
        return _process_trace_delegated(
            engine, trace, on_accumulate, chunk_size, bits, stream_tag
        )
    regulator = engine.regulator
    l1 = regulator.l1
    vector_bits = l1.vector_bits
    word_bits = l1.word_bits
    sat_bits = l1.saturation_bits
    if chunk_size is None:
        chunk_size = getattr(engine.config, "chunk_size", DEFAULT_CHUNK_SIZE)

    counters = BatchCounters(
        packets=trace.num_packets,
        l2_encoded=[0] * len(regulator.l2),
        l2_saturated=[0] * len(regulator.l2),
    )
    num_packets = trace.num_packets
    if num_packets == 0:
        return counters

    tables = kernel_tables(vector_bits, sat_bits)
    step1 = tables.single
    step_pair = tables.pair
    b2_of = tables.b2_of_code
    popcount = tables.popcount
    step1_empty = step1[0]
    sentinel = SENTINEL

    layouts = _chunk_layouts(trace, l1, chunk_size)

    if bits is None:
        # Identical draws to the scalar path: same generator, sizes, order.
        rng = np.random.default_rng(engine.config.seed ^ 0xB17)
        bits1 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
        bits2 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
    else:
        bits1, bits2 = bits
    code_all = bits1 + np.uint8(vector_bits) * bits2
    bit_values = np.left_shift(np.uint8(1), np.arange(vector_bits, dtype=np.uint8))

    window_masks = l1._window_masks
    decode = l1._decode_table
    words = l1.words
    l2_words = [sketch.words for sketch in regulator.l2]
    num_banks = len(l2_words)
    word_mask = (1 << word_bits) - 1
    window_all = (1 << vector_bits) - 1
    l2_encoded = counters.l2_encoded
    l2_saturated = counters.l2_saturated

    flow_ids = trace.flow_ids
    key64 = trace.flows.key64
    timestamps = trace.timestamps
    sizes = trace.sizes
    packed_tuples = trace.flows.packed_tuples()

    l1_saturations = 0
    insertions = 0

    for layout in layouts:
        order = layout["order"]

        sorted_code = code_all[order]
        stream = sorted_code.tobytes()
        if vector_bits & (vector_bits - 1) == 0:
            sorted_b1 = sorted_code & np.uint8(vector_bits - 1)
        else:
            sorted_b1 = sorted_code % np.uint8(vector_bits)
        bit_stream = bit_values[sorted_b1]
        or_heads = np.bitwise_or.reduceat(bit_stream, layout["reduce_starts"])
        # Pre-rotate each stretch's OR mask into word position so the
        # screen-and-commit of an uncontested stretch is a plain OR plus
        # one masked popcount — no per-stretch window rotation.
        offsets_arr = layout["offsets_arr"]
        or64 = or_heads.astype(np.uint64)
        # Right-shift count masked to the word size: offset 0 then shifts
        # by 0 (both halves equal the unrotated mask), never by word_bits.
        inv_shifts = (np.uint64(word_bits) - offsets_arr) & np.uint64(
            word_bits - 1
        )
        rotated_or = (
            ((or64 << offsets_arr) | (or64 >> inv_shifts))
            & np.uint64(word_mask)
        ).tolist()
        pairs = len(sorted_b1) >> 1
        pair_stream = (
            sorted_b1[: 2 * pairs : 2] | (sorted_b1[1 : 2 * pairs : 2] << 3)
        ).tobytes()
        # Quad screen: OR of each aligned 4-packet block.  Inside a
        # contested stretch, a block whose OR cannot push the window to
        # saturation is committed in one step (OR is monotone, so no
        # intermediate packet could have saturated either).
        quads = pairs >> 1
        pair_or = (
            bit_stream[: 2 * pairs : 2] | bit_stream[1 : 2 * pairs : 2]
        )
        quad_or = (pair_or[: 2 * quads : 2] | pair_or[1 : 2 * quads : 2]).tobytes()

        event_pos: "list[int]" = []
        event_z: "list[int]" = []
        event_z2: "list[int]" = []

        for w, off, rot_or, a, b in zip(
            layout["words"],
            layout["offsets"],
            rotated_or,
            layout["starts"],
            layout["ends"],
        ):
            word = words[w]
            window = window_masks[off]
            candidate = word | rot_or
            if (candidate & window).bit_count() < sat_bits:
                # Uncontested: the whole stretch cannot saturate; commit
                # its OR-accumulated window in one write.
                words[w] = candidate
                continue
            # Contested: replay the stretch through the FSM tables.
            inv = word_bits - off
            state = ((word >> off) | (word << inv)) & window_all
            rest = word & ~window
            l2_states = None
            if a & 1:  # align the stretch to the packet-pair stream
                c0 = stream[a]
                nxt = step1[state][c0 - b2_of[c0] * vector_bits]
                if nxt < sentinel:
                    state = nxt
                else:
                    z = nxt - sentinel
                    if l2_states is None:
                        l2_states = [
                            ((l2_words[q][w] >> off) | (l2_words[q][w] << inv))
                            & window_all
                            for q in range(num_banks)
                        ]
                    nxt2 = step1[l2_states[z]][b2_of[c0]]
                    l2_encoded[z] += 1
                    if nxt2 >= sentinel:
                        event_pos.append(a)
                        event_z.append(z)
                        event_z2.append(nxt2 - sentinel)
                        l2_saturated[z] += 1
                        l2_states[z] = 0
                    else:
                        l2_states[z] = nxt2
                    l1_saturations += 1
                    state = 0
                a += 1
            pair_end = b - ((b - a) & 1)
            jj = a >> 1
            end_jj = pair_end >> 1
            while jj < end_jj:
                if not jj & 1 and jj + 2 <= end_jj:
                    candidate = state | quad_or[jj >> 1]
                    if popcount[candidate] < sat_bits:
                        state = candidate
                        jj += 2
                        continue
                pb = pair_stream[jj]
                nxt = step_pair[state][pb]
                if nxt < sentinel:
                    state = nxt
                    jj += 1
                    continue
                tag = nxt - sentinel
                pos = tag >> 3
                z = tag & 7
                j = (jj << 1) | pos
                if l2_states is None:
                    l2_states = [
                        ((l2_words[q][w] >> off) | (l2_words[q][w] << inv))
                        & window_all
                        for q in range(num_banks)
                    ]
                nxt2 = step1[l2_states[z]][b2_of[stream[j]]]
                l2_encoded[z] += 1
                if nxt2 >= sentinel:
                    event_pos.append(j)
                    event_z.append(z)
                    event_z2.append(nxt2 - sentinel)
                    l2_saturated[z] += 1
                    l2_states[z] = 0
                else:
                    l2_states[z] = nxt2
                l1_saturations += 1
                if pos:
                    state = 0
                else:
                    # The pair's second packet restarts the recycled window.
                    nxt = step1_empty[pb >> 3]
                    if nxt < sentinel:
                        state = nxt
                    else:
                        z = nxt - sentinel
                        j += 1
                        nxt2 = step1[l2_states[z]][b2_of[stream[j]]]
                        l2_encoded[z] += 1
                        if nxt2 >= sentinel:
                            event_pos.append(j)
                            event_z.append(z)
                            event_z2.append(nxt2 - sentinel)
                            l2_saturated[z] += 1
                            l2_states[z] = 0
                        else:
                            l2_states[z] = nxt2
                        l1_saturations += 1
                        state = 0
                jj += 1
            if pair_end < b:  # odd trailing packet
                c0 = stream[pair_end]
                nxt = step1[state][c0 - b2_of[c0] * vector_bits]
                if nxt < sentinel:
                    state = nxt
                else:
                    z = nxt - sentinel
                    if l2_states is None:
                        l2_states = [
                            ((l2_words[q][w] >> off) | (l2_words[q][w] << inv))
                            & window_all
                            for q in range(num_banks)
                        ]
                    nxt2 = step1[l2_states[z]][b2_of[c0]]
                    l2_encoded[z] += 1
                    if nxt2 >= sentinel:
                        event_pos.append(pair_end)
                        event_z.append(z)
                        event_z2.append(nxt2 - sentinel)
                        l2_saturated[z] += 1
                        l2_states[z] = 0
                    else:
                        l2_states[z] = nxt2
                    l1_saturations += 1
                    state = 0
            words[w] = rest | (((state << off) | (state >> inv)) & word_mask)
            if l2_states is not None:
                for q in range(num_banks):
                    bank_word = l2_words[q][w]
                    bank_state = l2_states[q]
                    l2_words[q][w] = (bank_word & ~window) | (
                        ((bank_state << off) | (bank_state >> inv)) & word_mask
                    )

        if event_pos:
            # Restore global coupling: apply this chunk's insertions in
            # original packet order (chunks are contiguous, so chunk order
            # composes to trace order).
            positions = order[np.array(event_pos, dtype=np.int64)]
            rank = np.argsort(positions, kind="stable")
            positions = positions[rank]
            event_flows = flow_ids[positions]
            z1_sorted = np.array(event_z, dtype=np.int64)[rank]
            z2_sorted = np.array(event_z2, dtype=np.int64)[rank]
            accumulate = engine.wsaf.accumulate
            for flow, key, stamp, size, noise1, noise2 in zip(
                event_flows.tolist(),
                key64[event_flows].tolist(),
                timestamps[positions].tolist(),
                sizes[positions].tolist(),
                z1_sorted.tolist(),
                z2_sorted.tolist(),
            ):
                est_pkt = decode[noise1] * decode[noise2]
                totals = accumulate(
                    key, est_pkt, est_pkt * size, stamp, packed_tuples[flow]
                )
                if on_accumulate is not None:
                    on_accumulate(key, totals[0], totals[1], stamp)
            insertions += len(event_pos)

    counters.l1_saturations = l1_saturations
    counters.insertions = insertions
    return counters


def _stream_key(engine, l1, chunk_size: int, stream_tag=None) -> "tuple":
    """Cache key covering every knob that changes the derived streams.

    The streams are functions of the trace *and* of (seed → bit draws,
    vector/saturation/word geometry → codes and masks, placement seeds and
    word count → sort layout, chunking).  Any config change that would
    alter stream contents must land in this tuple, or a reused trace would
    replay stale data — ``tests/test_kernels.py`` exercises each knob.

    ``stream_tag`` identifies which slice of a pre-drawn whole-stream bit
    sequence the caller supplied (the streaming ingest path); ``None``
    means the engine's own whole-trace draw.
    """
    return (
        _LAYOUT_VERSION,
        engine.config.seed,
        l1.vector_bits,
        l1.saturation_bits,
        l1.word_bits,
        l1._place_seed_idx,
        l1._place_seed_off,
        l1.num_words,
        int(chunk_size),
        stream_tag,
    )


def _chunk_stream_slots(trace, key, num_chunks: int, attr: str) -> "list":
    """The per-chunk cache list under ``trace.<attr>``, reset on key change."""
    cache = getattr(trace, attr, None)
    if cache is None or cache[0] != key:
        cache = (key, [None] * num_chunks)
        setattr(trace, attr, cache)
    return cache[1]


def _quad_stream_list(sorted_b1) -> "list[int]":
    """Aligned 4-packet bit codes as boxed ints for the scalar quad loop.

    A list indexes ~2x faster than a memoryview in the replay loop, and
    the boxed ints are built once per trace (the stream cache holds them
    across runs).
    """
    nq = len(sorted_b1) >> 2
    q16 = sorted_b1[: 4 * nq : 4].astype(np.uint16)
    q16 = q16 | (sorted_b1[1 : 4 * nq : 4].astype(np.uint16) << 3)
    q16 = q16 | (sorted_b1[2 : 4 * nq : 4].astype(np.uint16) << 6)
    q16 = q16 | (sorted_b1[3 : 4 * nq : 4].astype(np.uint16) << 9)
    return q16.tolist()


def _build_chunk_stream(
    layout,
    code_all,
    vector_bits: int,
    word_bits: int,
    word_mask: int,
    bit_values,
    window_masks_np,
    with_quad_list: bool,
) -> "tuple":
    """One chunk's derived streams (see ``_process_trace_delegated``).

    ``with_quad_list`` controls whether the scalar quad replay's boxed-int
    stream is materialized now (the vectorized scan never needs it; the
    loop replay fills it lazily on first use via :func:`_quad_stream_list`).
    """
    order = layout["order"]
    sorted_code = code_all[order]
    if vector_bits & (vector_bits - 1) == 0:
        sorted_b1 = sorted_code & np.uint8(vector_bits - 1)
    else:
        sorted_b1 = sorted_code % np.uint8(vector_bits)
    bit_stream = bit_values[sorted_b1]
    or_heads = np.bitwise_or.reduceat(bit_stream, layout["reduce_starts"])
    offsets_arr = layout["offsets_arr"]
    or64 = or_heads.astype(np.uint64)
    inv_shifts = (np.uint64(word_bits) - offsets_arr) & np.uint64(word_bits - 1)
    rotated_or_np = ((or64 << offsets_arr) | (or64 >> inv_shifts)) & np.uint64(
        word_mask
    )
    stretch_windows = window_masks_np[offsets_arr.astype(np.intp)]
    b1s = sorted_b1.tobytes()
    b2s = (sorted_code // np.uint8(vector_bits)).tobytes()
    quad_stream = _quad_stream_list(sorted_b1) if with_quad_list else None
    return (
        sorted_code,
        sorted_b1,
        bit_stream,
        rotated_or_np,
        stretch_windows,
        b1s,
        b2s,
        quad_stream,
    )


def _delegate_chunk_events(
    event_pos,
    event_z,
    event_z2,
    order,
    flow_ids,
    key64,
    timestamps,
    sizes,
    packed_tuples,
    decode_np,
    wsaf,
    wsaf_arrays,
    on_accumulate,
) -> None:
    """Apply one chunk's saturation events to the WSAF in packet order.

    ``event_pos`` holds chunk-sorted stream positions; global coupling is
    restored by mapping through ``order`` and re-sorting by original packet
    position (chunks are contiguous, so chunk order composes to trace
    order).  The batch-probed table takes the grouped array form; any other
    table gets the equivalent ``accumulate_batch`` call.
    """
    positions = order[event_pos]
    rank = np.argsort(positions, kind="stable")
    positions = positions[rank]
    event_flows = flow_ids[positions]
    noise1 = event_z[rank]
    noise2 = event_z2[rank]
    est_pkt = decode_np[noise1] * decode_np[noise2]
    est_byte = est_pkt * sizes[positions]
    event_stamps = timestamps[positions]
    event_keys = key64[event_flows]
    event_tuples = [packed_tuples[f] for f in event_flows.tolist()]
    if wsaf_arrays is not None:
        wsaf_arrays(
            event_keys,
            est_pkt,
            est_byte,
            event_stamps,
            event_tuples,
            on_accumulate,
            collect_totals=False,
        )
    else:
        wsaf.accumulate_batch(
            list(
                zip(
                    event_keys.tolist(),
                    est_pkt.tolist(),
                    est_byte.tolist(),
                    event_stamps.tolist(),
                    event_tuples,
                )
            ),
            on_accumulate=on_accumulate,
        )


def _process_trace_delegated(
    engine,
    trace,
    on_accumulate=None,
    chunk_size: "int | None" = None,
    bits=None,
    stream_tag=None,
) -> BatchCounters:
    """Second-generation batched pipeline, feeding the batch-probed WSAF.

    Four changes over :func:`process_trace_batched`'s original body, each
    preserving bit-identity with the scalar loop:

    * **Word-level screen.**  Windows of different flows in one word may
      overlap (offsets are arbitrary), so per-stretch outcomes are coupled
      through shared bits — but ``word | OR(all stretch bits)`` is a
      monotone upper bound on every intermediate word state.  If *every*
      stretch's window stays below the saturation threshold even against
      that bound, no packet anywhere in the word can saturate, the word's
      final value *is* the bound, and the whole word run commits with zero
      Python-loop iterations.
    * **Screening rounds.**  Words that fail the bound take a vectorized
      screen-and-commit loop instead of a per-stretch Python sweep: each
      round screens every pending word's *next* stretch against its live
      word state (words are mutually independent and each word contributes
      one stretch per round, so passing candidates commit as one array
      scatter).  Only stretches whose live screen fails — the ones that
      can truly saturate — drop into the FSM replay.
    * **Quad FSM steps.**  With ``saturation_bits >= 4`` a four-packet
      block saturates at most once (a recycled window plus three more
      packets cannot reach the threshold again), so the replay advances
      four packets per lookup through :func:`~repro.kernels.luts.quad_tables`
      with an aligned 8-packet OR screen in front.  Narrower thresholds
      keep the two-packet pair tables.
    * **Deferred L2 replay.**  A window that saturates from a post-reset
      state grows one distinct bit per packet from zero, so it holds
      exactly ``saturation_bits`` set bits at the saturating packet and
      its noise level is the constant ``vector_bits - saturation_bits``.
      Only a stretch's *first* saturation — seeded by the inherited word
      state, which can carry extra bits committed by overlapping offsets
      — can deviate, and those are rare (tens per trace).  The hot loop
      therefore just records saturation positions (plus the deviating
      first-sat noise levels), and a short per-chunk pass afterwards
      replays the recorded stream through the L2 banks segment by
      segment in the same per-word order, reproducing the interleaved
      updates bit for bit.
    * **Batch delegation.**  Decoded estimates are handed to the
      batch-probed WSAF per chunk as column arrays
      (:meth:`~repro.kernels.wsaf_batched.BatchedWSAFTable.accumulate_batch_arrays`)
      instead of one Python ``accumulate`` call per event.
    """
    regulator = engine.regulator
    l1 = regulator.l1
    vector_bits = l1.vector_bits
    word_bits = l1.word_bits
    sat_bits = l1.saturation_bits
    if chunk_size is None:
        chunk_size = getattr(engine.config, "chunk_size", DEFAULT_CHUNK_SIZE)

    counters = BatchCounters(
        packets=trace.num_packets,
        l2_encoded=[0] * len(regulator.l2),
        l2_saturated=[0] * len(regulator.l2),
    )
    num_packets = trace.num_packets
    if num_packets == 0:
        return counters

    tables = kernel_tables(vector_bits, sat_bits)
    step1 = tables.single
    step_pair = tables.pair
    popcount = tables.popcount
    step1_empty = step1[0]
    sentinel = SENTINEL
    use_quad = sat_bits >= 4
    step_quad = quad_tables(vector_bits, sat_bits) if use_quad else None

    layouts = _chunk_layouts(trace, l1, chunk_size)
    bit_values = np.left_shift(np.uint8(1), np.arange(vector_bits, dtype=np.uint8))

    # The sorted noise/code streams are pure functions of (trace, seed,
    # layout, layer geometry) — like the chunk layouts, they are cached on
    # the trace so repeated runs skip the draws and gathers.  Filled
    # lazily per chunk below.
    chunk_streams = _chunk_stream_slots(
        trace,
        _stream_key(engine, l1, chunk_size, stream_tag),
        len(layouts),
        _STREAM_ATTR,
    )

    code_all = None
    if any(entry is None for entry in chunk_streams):
        if bits is None:
            # Identical draws to the scalar path: same generator, sizes,
            # order.
            rng = np.random.default_rng(engine.config.seed ^ 0xB17)
            bits1 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
            bits2 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
        else:
            bits1, bits2 = bits
        code_all = bits1 + np.uint8(vector_bits) * bits2

    window_masks = l1._window_masks
    window_masks_np = np.array(window_masks, dtype=np.uint64)
    decode_np = np.asarray(l1._decode_table, dtype=np.float64)
    words = l1.words
    l2_words = [sketch.words for sketch in regulator.l2]
    num_banks = len(l2_words)
    word_mask = (1 << word_bits) - 1
    window_all = (1 << vector_bits) - 1
    l2_encoded = counters.l2_encoded
    l2_saturated = counters.l2_saturated

    flow_ids = trace.flow_ids
    key64 = trace.flows.key64
    timestamps = trace.timestamps
    sizes = trace.sizes
    packed_tuples = trace.flows.packed_tuples()
    wsaf = engine.wsaf
    wsaf_arrays = getattr(wsaf, "accumulate_batch_arrays", None)

    l1_saturations = 0
    insertions = 0

    for chunk_index, layout in enumerate(layouts):
        order = layout["order"]

        streams = chunk_streams[chunk_index]
        if streams is None:
            streams = _build_chunk_stream(
                layout,
                code_all,
                vector_bits,
                word_bits,
                word_mask,
                bit_values,
                window_masks_np,
                with_quad_list=use_quad,
            )
            chunk_streams[chunk_index] = streams
        elif use_quad and streams[7] is None:
            # The cache entry was built by a scan run, which never needs
            # the boxed-int quad stream; materialize it once.
            streams = streams[:7] + (_quad_stream_list(streams[1]),)
            chunk_streams[chunk_index] = streams
        (
            sorted_code,
            sorted_b1,
            bit_stream,
            rotated_or_np,
            stretch_windows,
            b1s,
            b2s,
            quad_stream,
        ) = streams

        word_run_starts = layout["word_run_starts"]
        word_run_lengths = layout["word_run_lengths"]
        word_run_heads = layout["word_run_heads"]
        words_np = np.array(words, dtype=np.uint64)
        upper = words_np[word_run_heads] | np.bitwise_or.reduceat(
            rotated_or_np, word_run_starts
        )
        stretch_ok = (
            np.bitwise_count(np.repeat(upper, word_run_lengths) & stretch_windows)
            < sat_bits
        )
        word_ok = np.logical_and.reduceat(stretch_ok, word_run_starts)
        words_np[word_run_heads[word_ok]] = upper[word_ok]

        event_pos: "list[int]" = []
        event_z: "list[int]" = []
        event_z2: "list[int]" = []
        noise_z = vector_bits - sat_bits

        if not word_ok.all():
            starts_l = layout["starts"]
            ends_l = layout["ends"]
            words_l = layout["words"]
            offs_l = layout["offsets"]

            if use_quad:

                def replay(
                    sid,
                    s1=step1,
                    sq=step_quad,
                    qs=quad_stream,
                    sen=sentinel,
                    b1l=b1s,
                    b2l=b2s,
                    words_l=layout["words"],
                    offs_l=layout["offsets"],
                    starts_l=layout["starts"],
                    ends_l=layout["ends"],
                    words_np=words_np,
                    window_masks=window_masks,
                    word_bits=word_bits,
                    window_all=window_all,
                    word_mask=word_mask,
                    noise_z=noise_z,
                    bank2=l2_words[vector_bits - sat_bits],
                    l2_words=l2_words,
                    l2_encoded=l2_encoded,
                    eap=event_pos.append,
                    ezap=event_z.append,
                    ez2ap=event_z2.append,
                ):
                    # Replay one screen-failed stretch through the quad FSM
                    # with the L2 step folded inline.  Chain saturations all
                    # carry noise_z — the window regrew from zero — so a
                    # single local (st2) holds the noise_z bank's window for
                    # the whole stretch and the common saturation handler is
                    # one table step.  Only the stretch's first saturation
                    # (inherited word state) can deviate; it read-modify-
                    # writes its own bank directly.  (Keyword defaults bind
                    # every table and column into fast locals — this runs
                    # tens of thousands of times per trace.)
                    w = words_l[sid]
                    off = offs_l[sid]
                    a = starts_l[sid]
                    b = ends_l[sid]
                    word = int(words_np[w])
                    window = window_masks[off]
                    inv = word_bits - off
                    state = ((word >> off) | (word << inv)) & window_all
                    rest = word & ~window
                    st2 = -1
                    rest2 = 0
                    ns = 0
                    nf = 0
                    while a & 3 and a < b:  # align to the quad stream
                        nxt = s1[state][b1l[a]]
                        if nxt < sen:
                            state = nxt
                        else:
                            ns += 1
                            z = nxt - sen
                            if st2 < 0:
                                bw2 = bank2[w]
                                st2 = ((bw2 >> off) | (bw2 << inv)) & window_all
                                rest2 = bw2 & ~window
                            if z == noise_z:
                                nxt2 = s1[st2][b2l[a]]
                                if nxt2 < sen:
                                    st2 = nxt2
                                else:
                                    eap(a)
                                    ezap(z)
                                    ez2ap(nxt2 - sen)
                                    st2 = 0
                            else:
                                # Deviating first saturation: step its own
                                # bank in place.
                                nf += 1
                                l2_encoded[z] += 1
                                bz = l2_words[z]
                                bwz = bz[w]
                                stz = (
                                    (bwz >> off) | (bwz << inv)
                                ) & window_all
                                nxt2 = s1[stz][b2l[a]]
                                if nxt2 < sen:
                                    stz = nxt2
                                else:
                                    eap(a)
                                    ezap(z)
                                    ez2ap(nxt2 - sen)
                                    stz = 0
                                bz[w] = (bwz & ~window) | (
                                    ((stz << off) | (stz >> inv)) & word_mask
                                )
                            state = 0
                        a += 1
                    qq = a >> 2
                    end_q = b >> 2
                    if ns == 0:
                        # Scan to the stretch's first saturation: it starts
                        # from the inherited word state, so it is the only
                        # one whose noise level can differ from noise_z.
                        while qq < end_q:
                            nxt = sq[(state << 12) | qs[qq]]
                            if nxt < sen:
                                state = nxt
                                qq += 1
                                continue
                            t = nxt - sen
                            j = (qq << 2) | (t >> 11)
                            z = (t >> 8) & 7
                            ns = 1
                            bw2 = bank2[w]
                            st2 = ((bw2 >> off) | (bw2 << inv)) & window_all
                            rest2 = bw2 & ~window
                            if z == noise_z:
                                nxt2 = s1[st2][b2l[j]]
                                if nxt2 < sen:
                                    st2 = nxt2
                                else:
                                    eap(j)
                                    ezap(z)
                                    ez2ap(nxt2 - sen)
                                    st2 = 0
                            else:
                                nf = 1
                                l2_encoded[z] += 1
                                bz = l2_words[z]
                                bwz = bz[w]
                                stz = (
                                    (bwz >> off) | (bwz << inv)
                                ) & window_all
                                nxt2 = s1[stz][b2l[j]]
                                if nxt2 < sen:
                                    stz = nxt2
                                else:
                                    eap(j)
                                    ezap(z)
                                    ez2ap(nxt2 - sen)
                                    stz = 0
                                bz[w] = (bwz & ~window) | (
                                    ((stz << off) | (stz >> inv)) & word_mask
                                )
                            state = t & 255
                            qq += 1
                            break
                    end_q1 = end_q - 1
                    while qq < end_q1:
                        # Chain saturations: constant noise_z, one L2 table
                        # step on st2.  Two quad lookups per loop check.
                        nxt = sq[(state << 12) | qs[qq]]
                        if nxt < sen:
                            nxt = sq[(nxt << 12) | qs[qq + 1]]
                            if nxt < sen:
                                state = nxt
                                qq += 2
                                continue
                            qq += 1
                        t = nxt - sen
                        j = (qq << 2) | (t >> 11)
                        nxt2 = s1[st2][b2l[j]]
                        if nxt2 < sen:
                            st2 = nxt2
                        else:
                            eap(j)
                            ezap(noise_z)
                            ez2ap(nxt2 - sen)
                            st2 = 0
                        ns += 1
                        state = t & 255  # window after the in-block restart
                        qq += 1
                    if qq < end_q:
                        # Leftover quad: only reached with ns > 0 (the
                        # first-saturation scan otherwise covers it), so any
                        # saturation here is a chain one.
                        nxt = sq[(state << 12) | qs[qq]]
                        if nxt < sen:
                            state = nxt
                        else:
                            t = nxt - sen
                            j = (qq << 2) | (t >> 11)
                            nxt2 = s1[st2][b2l[j]]
                            if nxt2 < sen:
                                st2 = nxt2
                            else:
                                eap(j)
                                ezap(noise_z)
                                ez2ap(nxt2 - sen)
                                st2 = 0
                            ns += 1
                            state = t & 255
                        qq += 1
                    j = end_q << 2
                    if j < a:
                        j = a
                    for j in range(j, b):  # trailing packets
                        nxt = s1[state][b1l[j]]
                        if nxt < sen:
                            state = nxt
                            continue
                        ns += 1
                        z = nxt - sen
                        if st2 < 0:
                            bw2 = bank2[w]
                            st2 = ((bw2 >> off) | (bw2 << inv)) & window_all
                            rest2 = bw2 & ~window
                        if z == noise_z:
                            nxt2 = s1[st2][b2l[j]]
                            if nxt2 < sen:
                                st2 = nxt2
                            else:
                                eap(j)
                                ezap(z)
                                ez2ap(nxt2 - sen)
                                st2 = 0
                        else:
                            nf += 1
                            l2_encoded[z] += 1
                            bz = l2_words[z]
                            bwz = bz[w]
                            stz = ((bwz >> off) | (bwz << inv)) & window_all
                            nxt2 = s1[stz][b2l[j]]
                            if nxt2 < sen:
                                stz = nxt2
                            else:
                                eap(j)
                                ezap(z)
                                ez2ap(nxt2 - sen)
                                stz = 0
                            bz[w] = (bwz & ~window) | (
                                ((stz << off) | (stz >> inv)) & word_mask
                            )
                        state = 0
                    words_np[w] = rest | (
                        ((state << off) | (state >> inv)) & word_mask
                    )
                    if st2 >= 0:
                        bank2[w] = rest2 | (
                            ((st2 << off) | (st2 >> inv)) & word_mask
                        )
                        l2_encoded[noise_z] += ns - nf
                    return ns

            else:
                stream = sorted_code.tobytes()
                b2_of = tables.b2_of_code
                pairs = len(sorted_b1) >> 1
                pair_stream = (
                    sorted_b1[: 2 * pairs : 2]
                    | (sorted_b1[1 : 2 * pairs : 2] << 3)
                ).tobytes()
                pair_or = (
                    bit_stream[: 2 * pairs : 2] | bit_stream[1 : 2 * pairs : 2]
                )
                quads = pairs >> 1
                quad_or = (
                    pair_or[: 2 * quads : 2] | pair_or[1 : 2 * quads : 2]
                ).tobytes()

                def replay(sid):
                    # Pair-table replay for saturation_bits < 4 (a quad
                    # block could saturate more than once there).
                    s1 = step1
                    sp = step_pair
                    sen = sentinel
                    w = words_l[sid]
                    off = offs_l[sid]
                    a = starts_l[sid]
                    b = ends_l[sid]
                    word = int(words_np[w])
                    window = window_masks[off]
                    inv = word_bits - off
                    state = ((word >> off) | (word << inv)) & window_all
                    rest = word & ~window
                    l2_states = None
                    nsat = 0
                    if a & 1:  # align the stretch to the packet-pair stream
                        c0 = stream[a]
                        nxt = s1[state][c0 - b2_of[c0] * vector_bits]
                        if nxt < sen:
                            state = nxt
                        else:
                            z = nxt - sen
                            if l2_states is None:
                                l2_states = [
                                    (
                                        (l2_words[q][w] >> off)
                                        | (l2_words[q][w] << inv)
                                    )
                                    & window_all
                                    for q in range(num_banks)
                                ]
                            nxt2 = s1[l2_states[z]][b2_of[c0]]
                            l2_encoded[z] += 1
                            if nxt2 >= sen:
                                event_pos.append(a)
                                event_z.append(z)
                                event_z2.append(nxt2 - sen)
                                l2_saturated[z] += 1
                                l2_states[z] = 0
                            else:
                                l2_states[z] = nxt2
                            nsat += 1
                            state = 0
                        a += 1
                    pair_end = b - ((b - a) & 1)
                    jj = a >> 1
                    end_jj = pair_end >> 1
                    while jj < end_jj:
                        if not jj & 1 and jj + 2 <= end_jj:
                            candidate = state | quad_or[jj >> 1]
                            if popcount[candidate] < sat_bits:
                                state = candidate
                                jj += 2
                                continue
                        pb = pair_stream[jj]
                        nxt = sp[state][pb]
                        if nxt < sen:
                            state = nxt
                            jj += 1
                            continue
                        tag = nxt - sen
                        pos = tag >> 3
                        z = tag & 7
                        j = (jj << 1) | pos
                        if l2_states is None:
                            l2_states = [
                                ((l2_words[q][w] >> off) | (l2_words[q][w] << inv))
                                & window_all
                                for q in range(num_banks)
                            ]
                        nxt2 = s1[l2_states[z]][b2_of[stream[j]]]
                        l2_encoded[z] += 1
                        if nxt2 >= sen:
                            event_pos.append(j)
                            event_z.append(z)
                            event_z2.append(nxt2 - sen)
                            l2_saturated[z] += 1
                            l2_states[z] = 0
                        else:
                            l2_states[z] = nxt2
                        nsat += 1
                        if pos:
                            state = 0
                        else:
                            # The pair's second packet restarts the window.
                            nxt = step1_empty[pb >> 3]
                            if nxt < sen:
                                state = nxt
                            else:
                                z = nxt - sen
                                j += 1
                                nxt2 = s1[l2_states[z]][b2_of[stream[j]]]
                                l2_encoded[z] += 1
                                if nxt2 >= sen:
                                    event_pos.append(j)
                                    event_z.append(z)
                                    event_z2.append(nxt2 - sen)
                                    l2_saturated[z] += 1
                                    l2_states[z] = 0
                                else:
                                    l2_states[z] = nxt2
                                nsat += 1
                                state = 0
                        jj += 1
                    if pair_end < b:  # odd trailing packet
                        c0 = stream[pair_end]
                        nxt = s1[state][c0 - b2_of[c0] * vector_bits]
                        if nxt < sen:
                            state = nxt
                        else:
                            z = nxt - sen
                            if l2_states is None:
                                l2_states = [
                                    (
                                        (l2_words[q][w] >> off)
                                        | (l2_words[q][w] << inv)
                                    )
                                    & window_all
                                    for q in range(num_banks)
                                ]
                            nxt2 = s1[l2_states[z]][b2_of[c0]]
                            l2_encoded[z] += 1
                            if nxt2 >= sen:
                                event_pos.append(pair_end)
                                event_z.append(z)
                                event_z2.append(nxt2 - sen)
                                l2_saturated[z] += 1
                                l2_states[z] = 0
                            else:
                                l2_states[z] = nxt2
                            nsat += 1
                            state = 0
                    words_np[w] = rest | (
                        ((state << off) | (state >> inv)) & word_mask
                    )
                    if l2_states is not None:
                        for q in range(num_banks):
                            bank_word = l2_words[q][w]
                            bank_state = l2_states[q]
                            l2_words[q][w] = (bank_word & ~window) | (
                                ((bank_state << off) | (bank_state >> inv))
                                & word_mask
                            )
                    return nsat

            # Screening rounds: one stretch per failed word per round,
            # screened against the live word states and committed as an
            # array scatter.  Per-word stretch order is preserved (the
            # pointer only advances after the stretch committed or
            # replayed); cross-word order is free because words are
            # independent and events are re-sorted by packet position
            # before delegation.
            fail_runs = np.flatnonzero(~word_ok)
            ptr = word_run_starts[fail_runs].copy()
            run_end = ptr + word_run_lengths[fail_runs]
            run_wid = word_run_heads[fail_runs]
            active = np.arange(fail_runs.size)
            while active.size > 32:
                sidx = ptr[active]
                cand = words_np[run_wid[active]] | rotated_or_np[sidx]
                okv = (
                    np.bitwise_count(cand & stretch_windows[sidx]) < sat_bits
                )
                words_np[run_wid[active][okv]] = cand[okv]
                if not okv.all():
                    for sid in sidx[~okv].tolist():
                        l1_saturations += replay(sid)
                ptr[active] += 1
                active = active[ptr[active] < run_end[active]]
            # Tail: few enough runs left that scalar screening beats the
            # per-round array overhead.
            for r in active.tolist():
                w = int(run_wid[r])
                word = int(words_np[w])
                for sid in range(int(ptr[r]), int(run_end[r])):
                    window = window_masks[offs_l[sid]]
                    candidate = word | int(rotated_or_np[sid])
                    if (candidate & window).bit_count() < sat_bits:
                        word = candidate
                    else:
                        words_np[w] = word
                        l1_saturations += replay(sid)
                        word = int(words_np[w])
                words_np[w] = word

            if use_quad:
                # The quad replay appends events inline; the pair replay
                # bumps l2_saturated itself.
                for z in event_z:
                    l2_saturated[z] += 1

        words[:] = words_np.tolist()

        if event_pos:
            # One delegated batch per chunk, in original packet order; the
            # batch-probed table groups it by flow key internally.
            _delegate_chunk_events(
                np.array(event_pos, dtype=np.int64),
                np.array(event_z, dtype=np.int64),
                np.array(event_z2, dtype=np.int64),
                order,
                flow_ids,
                key64,
                timestamps,
                sizes,
                packed_tuples,
                decode_np,
                wsaf,
                wsaf_arrays,
                on_accumulate,
            )
            insertions += len(event_pos)

    counters.l1_saturations = l1_saturations
    counters.insertions = insertions
    return counters
