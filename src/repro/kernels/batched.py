"""The batched fast path: chunked, table-driven trace processing.

A bit-identical re-expression of the scalar ``InstaMeasure.process_trace``
loop, built on two structural facts about the 2-layer FlowRegulator:

* **Per-word independence.**  L1 and every L2 bank share placement, so the
  regulator state a packet touches is fully determined by its flow's
  ``(word index, bit offset)``.  Packets can therefore be processed grouped
  by word (stably, preserving each word's internal packet order) instead of
  globally in trace order.  Only WSAF accumulation couples words, and that
  coupling is restored by applying decoded insertion events sorted by
  original packet position.
* **FSM compilation.**  A counting window holds one of ``2**vector_bits``
  states, so layer transitions compile into small lookup tables
  (:mod:`repro.kernels.luts`) indexed by interned byte values, and the hot
  loop advances *two* packets per iteration through the pair table.

Pipeline per chunk: vectorized gathers (placement, pre-drawn bit choices)
→ stable sort by word → per-stretch saturation screen
(``np.bitwise_or.reduceat`` of the candidate bits plus a popcount LUT:
a stretch whose OR-accumulated candidate state cannot reach the
saturation threshold commits in O(1)) → byte-pair LUT replay of the
contested stretches → insertion events applied to the WSAF in packet
order through :meth:`WSAFTable.accumulate_batch`.

Randomness is drawn exactly as the scalar path draws it (same generator,
same sizes, same order), so every sketch word, counter, and WSAF record
comes out identical — the equivalence suite in ``tests/test_kernels.py``
asserts this across seeds, chunk sizes, policies, and geometries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.luts import SENTINEL, kernel_tables

#: Trace attribute under which per-chunk sort layouts are cached.
_LAYOUT_ATTR = "_batched_layout"

#: Bumped when the layout dict layout changes, to invalidate stale caches.
_LAYOUT_VERSION = 2

#: Default packets per kernel chunk (one chunk for most lab traces).
DEFAULT_CHUNK_SIZE = 1 << 20


@dataclass
class BatchCounters:
    """Counters a batched run hands back for folding into shared stats."""

    packets: int = 0
    l1_saturations: int = 0
    insertions: int = 0
    #: Packets encoded into each L2 bank (indexed by L1 noise level).
    l2_encoded: "list[int]" = field(default_factory=list)
    #: Saturations observed in each L2 bank.
    l2_saturated: "list[int]" = field(default_factory=list)


def supports_batched(engine) -> bool:
    """Whether ``engine`` can run the batched kernel.

    Requires the paper's 2-layer
    :class:`~repro.core.regulator.FlowRegulator` (the shared L1/L2
    placement is what makes per-word grouping sound) with
    ``vector_bits <= 8`` (window states must fit the byte-indexed FSM
    tables).  Other regulator depths and wider vectors take the scalar
    path.
    """
    from repro.core.regulator import FlowRegulator

    regulator = getattr(engine, "regulator", None)
    return isinstance(regulator, FlowRegulator) and regulator.vector_bits <= 8


def _chunk_layouts(trace, l1, chunk_size: int) -> "list[dict]":
    """Per-chunk word-sorted layouts for ``trace``, cached on the trace.

    A layout (stable sort order by word, stretch boundaries, per-stretch
    word/offset headers) depends only on the trace, the sketch placement,
    and the chunking — never on a run's randomness — so repeated runs over
    the same trace reuse it.  The cache is keyed by the placement
    fingerprint and invalidated whenever a differently-configured engine
    processes the trace.
    """
    cache_key = (
        _LAYOUT_VERSION,
        l1._place_seed_idx,
        l1._place_seed_off,
        l1.num_words,
        l1.word_bits,
        int(chunk_size),
    )
    cached = getattr(trace, _LAYOUT_ATTR, None)
    if cached is not None and cached[0] == cache_key:
        return cached[1]

    idx_by_flow, off_by_flow = l1.place_array(trace.flows.key64)
    flow_ids = trace.flow_ids
    word_dtype = np.uint16 if l1.num_words <= (1 << 16) else np.uint32
    packet_words = idx_by_flow.astype(word_dtype)[flow_ids]
    packet_offsets = off_by_flow.astype(np.uint8)[flow_ids]

    layouts = []
    for begin in range(0, trace.num_packets, chunk_size):
        end = min(begin + chunk_size, trace.num_packets)
        chunk_words = packet_words[begin:end]
        order = np.argsort(chunk_words, kind="stable")
        sorted_words = chunk_words[order]
        sorted_offsets = packet_offsets[begin:end][order]
        # One key per (word, offset); offsets fit 6 bits (word_bits <= 64).
        stretch_key = (sorted_words.astype(np.int64) << 6) | sorted_offsets
        span = end - begin
        if span > 1:
            reduce_starts = np.flatnonzero(
                np.concatenate(([True], stretch_key[1:] != stretch_key[:-1]))
            )
        else:
            reduce_starts = np.zeros(1, dtype=np.int64)
        head_offsets = sorted_offsets[reduce_starts]
        order_dtype = np.int32 if trace.num_packets <= (1 << 31) - 1 else np.int64
        layouts.append(
            dict(
                # Global packet positions, chunk-sorted; int32 for gathers.
                order=(order + begin).astype(order_dtype),
                reduce_starts=reduce_starts,
                starts=reduce_starts.tolist(),
                ends=np.append(reduce_starts[1:], span).tolist(),
                words=sorted_words[reduce_starts].tolist(),
                offsets=head_offsets.tolist(),
                offsets_arr=head_offsets.astype(np.uint64),
            )
        )
    setattr(trace, _LAYOUT_ATTR, (cache_key, layouts))
    return layouts


def process_trace_batched(
    engine, trace, on_accumulate=None, chunk_size: "int | None" = None
) -> BatchCounters:
    """Process ``trace`` through ``engine``'s regulator and WSAF, batched.

    Mutates the engine's sketch words and WSAF exactly as the scalar loop
    would and returns the run's :class:`BatchCounters` (the caller folds
    them into the shared stats/accounting objects).  ``chunk_size``
    defaults to the engine config's value.
    """
    regulator = engine.regulator
    l1 = regulator.l1
    vector_bits = l1.vector_bits
    word_bits = l1.word_bits
    sat_bits = l1.saturation_bits
    if chunk_size is None:
        chunk_size = getattr(engine.config, "chunk_size", DEFAULT_CHUNK_SIZE)

    counters = BatchCounters(
        packets=trace.num_packets,
        l2_encoded=[0] * len(regulator.l2),
        l2_saturated=[0] * len(regulator.l2),
    )
    num_packets = trace.num_packets
    if num_packets == 0:
        return counters

    tables = kernel_tables(vector_bits, sat_bits)
    step1 = tables.single
    step_pair = tables.pair
    b2_of = tables.b2_of_code
    popcount = tables.popcount
    step1_empty = step1[0]
    sentinel = SENTINEL

    layouts = _chunk_layouts(trace, l1, chunk_size)

    # Identical draws to the scalar path: same generator, sizes, order.
    rng = np.random.default_rng(engine.config.seed ^ 0xB17)
    bits1 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
    bits2 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
    code_all = bits1 + np.uint8(vector_bits) * bits2
    bit_values = np.left_shift(np.uint8(1), np.arange(vector_bits, dtype=np.uint8))

    window_masks = l1._window_masks
    decode = l1._decode_table
    words = l1.words
    l2_words = [sketch.words for sketch in regulator.l2]
    num_banks = len(l2_words)
    word_mask = (1 << word_bits) - 1
    window_all = (1 << vector_bits) - 1
    l2_encoded = counters.l2_encoded
    l2_saturated = counters.l2_saturated

    flow_ids = trace.flow_ids
    key64 = trace.flows.key64
    timestamps = trace.timestamps
    sizes = trace.sizes
    packed_tuples = trace.flows.packed_tuples()

    l1_saturations = 0
    insertions = 0

    for layout in layouts:
        order = layout["order"]

        sorted_code = code_all[order]
        stream = sorted_code.tobytes()
        if vector_bits & (vector_bits - 1) == 0:
            sorted_b1 = sorted_code & np.uint8(vector_bits - 1)
        else:
            sorted_b1 = sorted_code % np.uint8(vector_bits)
        bit_stream = bit_values[sorted_b1]
        or_heads = np.bitwise_or.reduceat(bit_stream, layout["reduce_starts"])
        # Pre-rotate each stretch's OR mask into word position so the
        # screen-and-commit of an uncontested stretch is a plain OR plus
        # one masked popcount — no per-stretch window rotation.
        offsets_arr = layout["offsets_arr"]
        or64 = or_heads.astype(np.uint64)
        # Right-shift count masked to the word size: offset 0 then shifts
        # by 0 (both halves equal the unrotated mask), never by word_bits.
        inv_shifts = (np.uint64(word_bits) - offsets_arr) & np.uint64(
            word_bits - 1
        )
        rotated_or = (
            ((or64 << offsets_arr) | (or64 >> inv_shifts))
            & np.uint64(word_mask)
        ).tolist()
        pairs = len(sorted_b1) >> 1
        pair_stream = (
            sorted_b1[: 2 * pairs : 2] | (sorted_b1[1 : 2 * pairs : 2] << 3)
        ).tobytes()
        # Quad screen: OR of each aligned 4-packet block.  Inside a
        # contested stretch, a block whose OR cannot push the window to
        # saturation is committed in one step (OR is monotone, so no
        # intermediate packet could have saturated either).
        quads = pairs >> 1
        pair_or = (
            bit_stream[: 2 * pairs : 2] | bit_stream[1 : 2 * pairs : 2]
        )
        quad_or = (pair_or[: 2 * quads : 2] | pair_or[1 : 2 * quads : 2]).tobytes()

        event_pos: "list[int]" = []
        event_z: "list[int]" = []
        event_z2: "list[int]" = []

        for w, off, rot_or, a, b in zip(
            layout["words"],
            layout["offsets"],
            rotated_or,
            layout["starts"],
            layout["ends"],
        ):
            word = words[w]
            window = window_masks[off]
            candidate = word | rot_or
            if (candidate & window).bit_count() < sat_bits:
                # Uncontested: the whole stretch cannot saturate; commit
                # its OR-accumulated window in one write.
                words[w] = candidate
                continue
            # Contested: replay the stretch through the FSM tables.
            inv = word_bits - off
            state = ((word >> off) | (word << inv)) & window_all
            rest = word & ~window
            l2_states = None
            if a & 1:  # align the stretch to the packet-pair stream
                c0 = stream[a]
                nxt = step1[state][c0 - b2_of[c0] * vector_bits]
                if nxt < sentinel:
                    state = nxt
                else:
                    z = nxt - sentinel
                    if l2_states is None:
                        l2_states = [
                            ((l2_words[q][w] >> off) | (l2_words[q][w] << inv))
                            & window_all
                            for q in range(num_banks)
                        ]
                    nxt2 = step1[l2_states[z]][b2_of[c0]]
                    l2_encoded[z] += 1
                    if nxt2 >= sentinel:
                        event_pos.append(a)
                        event_z.append(z)
                        event_z2.append(nxt2 - sentinel)
                        l2_saturated[z] += 1
                        l2_states[z] = 0
                    else:
                        l2_states[z] = nxt2
                    l1_saturations += 1
                    state = 0
                a += 1
            pair_end = b - ((b - a) & 1)
            jj = a >> 1
            end_jj = pair_end >> 1
            while jj < end_jj:
                if not jj & 1 and jj + 2 <= end_jj:
                    candidate = state | quad_or[jj >> 1]
                    if popcount[candidate] < sat_bits:
                        state = candidate
                        jj += 2
                        continue
                pb = pair_stream[jj]
                nxt = step_pair[state][pb]
                if nxt < sentinel:
                    state = nxt
                    jj += 1
                    continue
                tag = nxt - sentinel
                pos = tag >> 3
                z = tag & 7
                j = (jj << 1) | pos
                if l2_states is None:
                    l2_states = [
                        ((l2_words[q][w] >> off) | (l2_words[q][w] << inv))
                        & window_all
                        for q in range(num_banks)
                    ]
                nxt2 = step1[l2_states[z]][b2_of[stream[j]]]
                l2_encoded[z] += 1
                if nxt2 >= sentinel:
                    event_pos.append(j)
                    event_z.append(z)
                    event_z2.append(nxt2 - sentinel)
                    l2_saturated[z] += 1
                    l2_states[z] = 0
                else:
                    l2_states[z] = nxt2
                l1_saturations += 1
                if pos:
                    state = 0
                else:
                    # The pair's second packet restarts the recycled window.
                    nxt = step1_empty[pb >> 3]
                    if nxt < sentinel:
                        state = nxt
                    else:
                        z = nxt - sentinel
                        j += 1
                        nxt2 = step1[l2_states[z]][b2_of[stream[j]]]
                        l2_encoded[z] += 1
                        if nxt2 >= sentinel:
                            event_pos.append(j)
                            event_z.append(z)
                            event_z2.append(nxt2 - sentinel)
                            l2_saturated[z] += 1
                            l2_states[z] = 0
                        else:
                            l2_states[z] = nxt2
                        l1_saturations += 1
                        state = 0
                jj += 1
            if pair_end < b:  # odd trailing packet
                c0 = stream[pair_end]
                nxt = step1[state][c0 - b2_of[c0] * vector_bits]
                if nxt < sentinel:
                    state = nxt
                else:
                    z = nxt - sentinel
                    if l2_states is None:
                        l2_states = [
                            ((l2_words[q][w] >> off) | (l2_words[q][w] << inv))
                            & window_all
                            for q in range(num_banks)
                        ]
                    nxt2 = step1[l2_states[z]][b2_of[c0]]
                    l2_encoded[z] += 1
                    if nxt2 >= sentinel:
                        event_pos.append(pair_end)
                        event_z.append(z)
                        event_z2.append(nxt2 - sentinel)
                        l2_saturated[z] += 1
                        l2_states[z] = 0
                    else:
                        l2_states[z] = nxt2
                    l1_saturations += 1
                    state = 0
            words[w] = rest | (((state << off) | (state >> inv)) & word_mask)
            if l2_states is not None:
                for q in range(num_banks):
                    bank_word = l2_words[q][w]
                    bank_state = l2_states[q]
                    l2_words[q][w] = (bank_word & ~window) | (
                        ((bank_state << off) | (bank_state >> inv)) & word_mask
                    )

        if event_pos:
            # Restore global coupling: apply this chunk's insertions in
            # original packet order (chunks are contiguous, so chunk order
            # composes to trace order).
            positions = order[np.array(event_pos, dtype=np.int64)]
            rank = np.argsort(positions, kind="stable")
            positions = positions[rank]
            event_flows = flow_ids[positions]
            z1_sorted = np.array(event_z, dtype=np.int64)[rank]
            z2_sorted = np.array(event_z2, dtype=np.int64)[rank]
            accumulate = engine.wsaf.accumulate
            for flow, key, stamp, size, noise1, noise2 in zip(
                event_flows.tolist(),
                key64[event_flows].tolist(),
                timestamps[positions].tolist(),
                sizes[positions].tolist(),
                z1_sorted.tolist(),
                z2_sorted.tolist(),
            ):
                est_pkt = decode[noise1] * decode[noise2]
                totals = accumulate(
                    key, est_pkt, est_pkt * size, stamp, packed_tuples[flow]
                )
                if on_accumulate is not None:
                    on_accumulate(key, totals[0], totals[1], stamp)
            insertions += len(event_pos)

    counters.l1_saturations = l1_saturations
    counters.insertions = insertions
    return counters
