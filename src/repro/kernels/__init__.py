"""Batched (vectorized + table-driven) kernels for the measurement hot path.

The scalar engines in :mod:`repro.core` process one packet per Python
iteration; this package re-expresses the same computation in chunks —
NumPy for the gathers and saturation screening, precomputed FSM lookup
tables for the contested remainder — while staying **bit-identical** to
the scalar loop (same randomness stream, same state, same WSAF records).

* :mod:`repro.kernels.luts` — cached per-geometry transition tables.
* :mod:`repro.kernels.batched` — the chunked kernel behind
  ``InstaMeasure.process_trace(engine="batched")``.
* :mod:`repro.kernels.regulator_scan` — the vectorized contested-stretch
  replay behind ``regulator_replay="scan"``.

See ``docs/PERFORMANCE.md`` for the design rationale and measured
speedups, and ``benchmarks/bench_throughput.py`` for the regression
harness.
"""

from repro.kernels.batched import (
    DEFAULT_CHUNK_SIZE,
    BatchCounters,
    clear_kernel_caches,
    process_trace_batched,
    supports_batched,
)
from repro.kernels.luts import SENTINEL, KernelTables, kernel_tables
from repro.kernels.regulator_scan import process_trace_scan

__all__ = [
    "BatchCounters",
    "DEFAULT_CHUNK_SIZE",
    "KernelTables",
    "SENTINEL",
    "clear_kernel_caches",
    "kernel_tables",
    "process_trace_batched",
    "process_trace_scan",
    "supports_batched",
]
