"""Batched (vectorized + table-driven) kernels for the measurement hot path.

The scalar engines in :mod:`repro.core` process one packet per Python
iteration; this package re-expresses the same computation in chunks —
NumPy for the gathers and saturation screening, precomputed FSM lookup
tables for the contested remainder — while staying **bit-identical** to
the scalar loop (same randomness stream, same state, same WSAF records).

* :mod:`repro.kernels.luts` — cached per-geometry transition tables.
* :mod:`repro.kernels.batched` — the chunked kernel behind
  ``InstaMeasure.process_trace(engine="batched")``.

See ``docs/PERFORMANCE.md`` for the design rationale and measured
speedups, and ``benchmarks/bench_throughput.py`` for the regression
harness.
"""

from repro.kernels.batched import (
    DEFAULT_CHUNK_SIZE,
    BatchCounters,
    process_trace_batched,
    supports_batched,
)
from repro.kernels.luts import SENTINEL, KernelTables, kernel_tables

__all__ = [
    "BatchCounters",
    "DEFAULT_CHUNK_SIZE",
    "KernelTables",
    "SENTINEL",
    "kernel_tables",
    "process_trace_batched",
    "supports_batched",
]
