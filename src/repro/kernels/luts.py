"""Precomputed transition tables for the batched regulator kernel.

The per-word evolution of an RCC layer is a finite-state machine over the
``2**vector_bits`` window states: each packet ORs one bit into the window,
and once ``saturation_bits`` bits are set the window recycles to zero and
reports its noise level (the count of still-zero bits).  With
``vector_bits <= 8`` the whole FSM fits a few hundred interned small
integers, so the hot loop becomes bytes-indexed list lookups instead of
shift/mask/popcount arithmetic per packet.

Saturating transitions are flagged with values ``>= SENTINEL``:

* single-packet table: ``SENTINEL + z`` where ``z`` is the noise level;
* packet-pair table: ``SENTINEL + pos * 8 + z`` where ``pos`` names which
  packet of the pair (0 = first, 1 = second) saturated first.

Tables depend only on the layer geometry ``(vector_bits, saturation_bits)``
and are cached per geometry for the life of the process.
"""

from __future__ import annotations

from array import array
from typing import NamedTuple

import numpy as np

from repro.core.rcc import popcount_table
from repro.errors import ConfigurationError

#: Transition values at or above this mark a saturation (see module doc).
SENTINEL = 256


class KernelTables(NamedTuple):
    """FSM tables for one RCC layer geometry (see the module docstring)."""

    #: ``single[state][bit]`` — window state after one packet, or sentinel.
    single: "list[list[int]]"
    #: ``pair[state][bit_a | bit_b << 3]`` — state after two packets.
    pair: "list[list[int]]"
    #: ``b2_of_code[b1 + vector_bits * b2]`` — the packet's L2 bit choice.
    b2_of_code: "list[int]"
    #: ``popcount[state]`` — set bits per window state.
    popcount: "list[int]"


_CACHE: "dict[tuple[int, int], KernelTables]" = {}


def kernel_tables(vector_bits: int, saturation_bits: int) -> KernelTables:
    """Build (or fetch cached) transition tables for one layer geometry.

    ``single[state][bit]`` is the window state after ORing ``1 << bit``
    into ``state``, or ``SENTINEL + z`` if that OR reaches
    ``saturation_bits`` set bits (the window then recycles to zero) at
    noise level ``z``.  ``pair[state][code]`` advances two packets at once
    with ``code = bit_a | bit_b << 3``; a saturating pair returns
    ``SENTINEL + pos * 8 + z``.  Only defined for ``vector_bits <= 8``:
    states must fit a byte and noise levels must fit 3 bits.
    """
    if not 2 <= vector_bits <= 8:
        raise ConfigurationError(
            f"kernel tables need vector_bits in [2, 8], got {vector_bits}"
        )
    if not 1 <= saturation_bits <= vector_bits:
        raise ConfigurationError(
            f"saturation_bits must be in [1, {vector_bits}], got {saturation_bits}"
        )
    key = (vector_bits, saturation_bits)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    num_states = 1 << vector_bits
    single: "list[list[int]]" = []
    for state in range(num_states):
        row = []
        for bit in range(vector_bits):
            merged = state | (1 << bit)
            set_bits = merged.bit_count()
            if set_bits >= saturation_bits:
                row.append(SENTINEL + (vector_bits - set_bits))
            else:
                row.append(merged)
        single.append(row)

    pair: "list[list[int]]" = []
    for state in range(num_states):
        row = []
        for code in range(64):
            bit_a = code & 7
            bit_b = code >> 3
            if bit_a >= vector_bits or bit_b >= vector_bits:
                row.append(0)  # unreachable padding for narrow vectors
                continue
            first = single[state][bit_a]
            if first >= SENTINEL:
                row.append(SENTINEL + (first - SENTINEL))
                continue
            second = single[first][bit_b]
            if second >= SENTINEL:
                row.append(SENTINEL + 8 + (second - SENTINEL))
            else:
                row.append(second)
        pair.append(row)

    tables = KernelTables(
        single=single,
        pair=pair,
        b2_of_code=[
            code // vector_bits for code in range(vector_bits * vector_bits)
        ],
        popcount=popcount_table(vector_bits),
    )
    _CACHE[key] = tables
    return tables


_SINGLE_FLAT_CACHE: "dict[tuple[int, int], np.ndarray]" = {}


def single_flat_np(vector_bits: int, saturation_bits: int) -> "np.ndarray":
    """The single-packet table packed for NumPy gathers.

    A flat ``int16`` array of ``2**vector_bits * 8`` entries indexed
    ``flat[(state << 3) | bit]`` (bit columns padded to a power-of-two
    stride so the index is a shift-OR, not a multiply).  Values match
    :attr:`KernelTables.single` exactly — ``state`` or ``SENTINEL + z`` —
    which is what the vectorized regulator scan's column-parallel L2
    stepping gathers per active stretch.
    """
    key = (vector_bits, saturation_bits)
    cached = _SINGLE_FLAT_CACHE.get(key)
    if cached is not None:
        return cached
    tables = kernel_tables(vector_bits, saturation_bits)
    flat = np.zeros((1 << vector_bits, 8), dtype=np.int16)
    flat[:, :vector_bits] = np.array(tables.single, dtype=np.int16)
    flat = np.ascontiguousarray(flat.reshape(-1))
    _SINGLE_FLAT_CACHE[key] = flat
    return flat


_QUAD_CACHE: "dict[tuple[int, int], object]" = {}


def quad_tables(vector_bits: int, saturation_bits: int):
    """Four-packet transition table as a flat ``array('H')``, indexed
    ``quad[(state << 12) | q]`` with ``q = b0 | b1 << 3 | b2 << 6 | b3 << 9``.

    Only defined for ``saturation_bits >= 4``: a window recycles to zero on
    saturation, and the at most three packets left in the block can set at
    most three bits, so a four-packet block saturates **at most once** from
    any starting state.  That makes a single return value sufficient —
    either the final window state (``< SENTINEL``), or

    ``SENTINEL + (((pos << 3) | z) << 8) + after``

    where ``pos`` is the saturating packet's position in the block, ``z``
    its noise level, and ``after`` the window state once the remaining
    packets replayed from empty.  Built by composing the (separately
    verified) single-packet table, vectorized over the full
    ``states x 4096`` grid.

    The flat unboxed layout matters: the table has a million entries, and
    a nested list of boxed ints scatters them across the heap — every
    lookup in the hot loop then chases cold pointers.  ``array('H')`` keeps
    the whole table in 2 MB of contiguous shorts.
    """
    if saturation_bits < 4:
        raise ConfigurationError(
            "quad tables need saturation_bits >= 4 (single-saturation "
            f"blocks), got {saturation_bits}"
        )
    key = (vector_bits, saturation_bits)
    cached = _QUAD_CACHE.get(key)
    if cached is not None:
        return cached

    tables = kernel_tables(vector_bits, saturation_bits)
    num_states = 1 << vector_bits
    s1 = np.array(
        [row + [0] * (8 - vector_bits) for row in tables.single],
        dtype=np.int32,
    )
    codes = np.arange(4096, dtype=np.int32)
    bits = [(codes >> (3 * p)) & 7 for p in range(4)]
    valid = np.ones(4096, dtype=bool)
    for b in bits:
        valid &= b < vector_bits
    cur = np.broadcast_to(
        np.arange(num_states, dtype=np.int32)[:, None], (num_states, 4096)
    ).copy()
    sat_tag = np.full((num_states, 4096), -1, dtype=np.int32)
    for pos, b in enumerate(bits):
        safe_b = np.where(valid, b, 0)
        nxt = s1[cur, safe_b[None, :]]
        # With saturation_bits >= 4 a second saturation inside the block
        # is impossible, so any sentinel here is the block's only one.
        sat_now = nxt >= SENTINEL
        sat_tag = np.where(
            sat_now, (pos << 3) | (nxt - SENTINEL), sat_tag
        )
        cur = np.where(sat_now, 0, nxt)
    result = np.where(
        sat_tag < 0, cur, SENTINEL + (sat_tag << 8) + cur
    )
    result[:, ~valid] = 0
    flat = array("H")
    flat.frombytes(np.ascontiguousarray(result.astype(np.uint16)).tobytes())
    _QUAD_CACHE[key] = flat
    return flat


