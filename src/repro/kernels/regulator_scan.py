"""Vectorized segmented-FSM replay for contested regulator stretches.

The delegated pipeline's last per-packet Python loop is the contested
stretch replay in :mod:`repro.kernels.batched`: every stretch whose
saturation screen fails walks its packets through FSM tables one (or four)
at a time.  This module replaces that walk with a **per-saturation scan**
built from three precomputed position tables over the chunk's sorted bit
stream:

* ``occ[v][p]`` — the first position ``>= p`` whose L1 bit choice is
  ``v`` (``span`` if none).  A window's future is fully described by
  these first-occurrence positions, because ORing an already-set bit
  never changes state.
* ``jump[p]`` — the position where a *fresh* (empty) window starting at
  ``p`` saturates: the ``saturation_bits``-th smallest entry of
  ``occ[:, p]``, i.e. where the ``saturation_bits``-th distinct bit
  value first appears.
* ``chain[q] = jump[q + 1]`` — the next saturation after a saturation at
  ``q`` (windows recycle to empty), making saturation chains a linked
  list that is followed **per saturation, never per packet**.

Two invariants of the RCC window make the replay whole-array work
(both proven by the table construction and enforced by the equivalence
suite):

* A stretch's **first** saturation deviates from the geometry's constant
  noise level ``noise_z = vector_bits - saturation_bits`` *only* when the
  inherited word state already holds ``>= saturation_bits`` set bits
  (bits committed by overlapping windows at other offsets) — and then it
  happens on the stretch's first packet.  Otherwise the window crosses
  the threshold exactly at its ``k``-th missing bit, the popcount at the
  crossing is exactly ``saturation_bits``, and the noise level is exactly
  ``noise_z``.
* Every **chain** saturation grows from a recycled (empty) window one
  distinct bit at a time, so it carries ``noise_z`` too.

Each screening round (one stretch per contested word — distinct words,
hence independent) is then a handful of whole-array stages:

* **Exact saturation screen.**  Un-rotating a stretch's OR mask yields
  the exact set of bit values it contains; the window gains at most one
  bit per packet, so the stretch saturates iff
  ``popcount(inherited | stretch_bits) >= saturation_bits``.  One gather
  commits every clean stretch and confines the rest of the round to the
  saturating subset.
* **Binary lifting over the chain.**  The saturation walk
  ``q, chain[q], chain[chain[q]], ...`` merges toward ``span``
  (``chain`` is monotone), so lazily-built lift tables
  ``lift[k] = chain^(2**k)`` reach each stretch's *last* in-stretch
  saturation in ``O(log depth)`` gathers, and a precomputed walk-length
  (``depth``) table turns per-stretch saturation counts into two more
  gathers — orbits are never materialized.
* **L2 replay via walk tables.**  Chain saturations all step the
  constant ``noise_z`` bank, and the symbol sequence a stretch's L2
  window consumes is fixed by the chunk-wide walk graph.  A
  first-occurrence-along-the-walk table (``focc``) gives each stretch's
  first L2 saturation by order statistic; a ``g`` chain (next L2 event
  after an event) is lifted the same way to each stretch's last event,
  and final L1/L2 window states come from first-occurrence gathers, not
  replay.  The rare event *positions* (a few thousand per chunk) are
  enumerated once per chunk by concat-doubling over the ``g`` lift
  tables, with rows retiring as their block crosses the stretch bound.

Only the rare deviating first saturation (tens per trace) takes a scalar
fixup, and per-word tails too short to amortize array dispatch walk the
same ``chain`` table in Python — still per saturation, behind the same
exact one-popcount screen.  Saturation events land in preallocated
growable arrays instead of per-event list appends.

Bit-identicality with the scalar engine is the contract, as everywhere in
:mod:`repro.kernels`; ``tests/test_kernels.py`` and
``tests/test_regulator_scan.py`` enforce it across seeds, chunk sizes,
policies, and geometries.
"""

from __future__ import annotations

import numpy as np

from repro.core.rcc import popcount_table
from repro.kernels.batched import (
    _LAYOUT_ATTR,
    _SCAN_ATTR,
    _STREAM_ATTR,
    BatchCounters,
    DEFAULT_CHUNK_SIZE,
    _build_chunk_stream,
    _chunk_layouts,
    _chunk_stream_slots,
    _delegate_chunk_events,
    _stream_key,
)
from repro.kernels.luts import SENTINEL, kernel_tables, single_flat_np

#: Below this many simultaneously active word runs, per-round NumPy
#: dispatch overhead exceeds the per-saturation Python walk; the
#: remaining runs take the scalar tail (which advances via the same
#: ``chain`` table — per saturation, never per packet).
_TAIL_RUNS = 96


def _scan_tables(sorted_b1, vector_bits: int, sat_bits: int):
    """``(occ, jump, chain)`` position tables for one chunk's bit stream.

    See the module docstring for their meaning.  Pure functions of the
    stream and the layer geometry, cached per chunk alongside the derived
    streams.
    """
    span = int(sorted_b1.size)
    occ = np.full((vector_bits, span + 1), span, dtype=np.int32)
    if span:
        positions = np.arange(span, dtype=np.int32)
        for v in range(vector_bits):
            hits = np.where(sorted_b1 == v, positions, np.int32(span))
            occ[v, :span] = np.minimum.accumulate(hits[::-1])[::-1]
    # k-th order statistic down the value axis = where the k-th distinct
    # bit value first appears from each start position.
    jump = np.partition(occ, sat_bits - 1, axis=0)[sat_bits - 1]
    chain = np.empty(span + 1, dtype=np.int32)
    chain[:span] = jump[1:]
    chain[span] = span
    return occ, jump, chain


def _walk_tables(chain, b2_np, vector_bits: int, sat_bits: int):
    """``(focc, g)`` tables over the saturation walk graph of one chunk.

    ``chain`` is strictly increasing, so "the saturations after position
    ``p``" form a walk ``p, chain[p], chain[chain[p]], ...`` through a
    functional graph whose paths all merge toward ``span``.  Along that
    walk the noise-level bank consumes one L2 bit choice per saturation,
    which makes the bank's whole future a function of the walk alone.
    Returns ``(focc, g, depth)``:

    * ``focc[v][p]`` — the first walk position at or after ``p`` whose L2
      bit choice is ``v`` (``span`` if none before the walk exhausts).
    * ``g[p]`` — the next L2 saturation *event* after an event at ``p``:
      the recycled (empty) window re-saturates where the
      ``saturation_bits``-th distinct bit value appears along the walk
      from ``chain[p]``.
    * ``depth[p]`` — the walk's length from ``p`` (its saturation count
      through the end of the chunk).

    Built once per chunk by doubling over the *distinct* chain targets
    (the walks' merge points — typically a small fraction of the span)
    and broadcast back to the full span with one gather.
    """
    span = int(b2_np.size)
    symbols = np.empty(span + 1, dtype=np.int64)
    symbols[:span] = b2_np
    symbols[span] = vector_bits  # matches no bit value: the walk's end
    values = np.arange(vector_bits, dtype=np.int64)

    # Walks from two positions sharing a chain target share their whole
    # tail, so first-occurrence tables only need the chain's image; rank
    # lookups are exact because chain values index into themselves.
    targets = np.unique(chain)
    rank = np.empty(span + 1, dtype=np.int32)
    rank[targets] = np.arange(targets.size, dtype=np.int32)
    step = rank[chain[targets]]
    first = np.where(
        symbols[targets][None, :] == values[:, None],
        targets[None, :],
        np.int32(span),
    ).astype(np.int32)
    while True:
        merged = np.where(first < span, first, first[:, step])
        next_step = step[step]
        if np.array_equal(next_step, step) and np.array_equal(merged, first):
            break
        first = merged
        step = next_step

    focc = first[:, rank[chain]]
    own = symbols[None, :] == values[:, None]
    positions = np.arange(span + 1, dtype=np.int32)
    focc = np.where(own, positions[None, :], focc)
    sat = np.partition(focc, sat_bits - 1, axis=0)[sat_bits - 1]
    g = sat[chain]

    # depth[p] — the walk length from p to span (0 at span itself): the
    # same doubling over the chain's image, then one gather + the "own
    # step" increment.  Lets the batch kernel size its binary lifting and
    # total saturation counts without per-level bookkeeping.
    dt = np.zeros(targets.size, dtype=np.int32)
    dt[targets < span] = 1
    step = rank[chain[targets]]
    while True:
        merged = dt + dt[step]
        next_step = step[step]
        if np.array_equal(next_step, step) and np.array_equal(merged, dt):
            break
        dt = merged
        step = next_step
    depth = np.zeros(span + 1, dtype=np.int32)
    depth[:span] = dt[rank[chain[:span]]] + 1
    return focc, g, depth


_BIT_TBL_CACHE: "dict[int, np.ndarray]" = {}


def _bit_membership(vector_bits: int) -> "np.ndarray":
    """``tbl[v][state]`` — whether ``state`` holds bit ``v`` (bool LUT).

    Turns the per-round "which bits does each inherited window hold"
    shift-and-mask cascade into a single table gather.
    """
    tbl = _BIT_TBL_CACHE.get(vector_bits)
    if tbl is None:
        states = np.arange(1 << vector_bits, dtype=np.int64)
        values = np.arange(vector_bits, dtype=np.int64)
        tbl = ((states[None, :] >> values[:, None]) & 1).astype(bool)
        _BIT_TBL_CACHE[vector_bits] = tbl
    return tbl


class _EventBuffer:
    """Growable preallocated event columns: (stream position, z, z2)."""

    def __init__(self, capacity: int = 1024) -> None:
        self.pos = np.empty(capacity, dtype=np.int64)
        self.z = np.empty(capacity, dtype=np.int64)
        self.z2 = np.empty(capacity, dtype=np.int64)
        self.n = 0

    def _reserve(self, extra: int) -> None:
        need = self.n + extra
        capacity = self.pos.size
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        for name in ("pos", "z", "z2"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self.n] = old[: self.n]
            setattr(self, name, grown)

    def extend(self, positions, z: int, z2) -> None:
        """Append a column of same-L1-noise-level events."""
        count = positions.size
        self._reserve(count)
        n = self.n
        self.pos[n : n + count] = positions
        self.z[n : n + count] = z
        self.z2[n : n + count] = z2
        self.n = n + count

    def push(self, position: int, z: int, z2: int) -> None:
        """Append one event (deviating first saturations, scalar tail)."""
        self._reserve(1)
        n = self.n
        self.pos[n] = position
        self.z[n] = z
        self.z2[n] = z2
        self.n = n + 1

    def arrays(self):
        return self.pos[: self.n], self.z[: self.n], self.z2[: self.n]


class _ChunkScan:
    """One chunk's contested-path scan state and kernels."""

    def __init__(
        self,
        *,
        layout,
        streams,
        occ,
        jump,
        chain,
        b2_np,
        lift,
        focc,
        glift,
        depth,
        stretch_ok,
        words_np,
        bank2_np,
        l2_words,
        l2_encoded,
        window_masks,
        vector_bits: int,
        word_bits: int,
        sat_bits: int,
    ) -> None:
        self.layout = layout
        self.occ = occ
        self.jump = jump
        self.chain = chain
        self.b2_np = b2_np
        self.lift = lift
        self.focc = focc
        self.glift = glift
        self.depth = depth
        self.stretch_ok = stretch_ok
        self.words_np = words_np
        self.bank2_np = bank2_np
        self.l2_words = l2_words
        self.l2_encoded = l2_encoded
        self.window_masks = window_masks
        self.vector_bits = vector_bits
        self.word_bits = word_bits
        self.sat_bits = sat_bits
        self.noise_z = vector_bits - sat_bits
        self.word_mask = (1 << word_bits) - 1
        self.window_all = (1 << vector_bits) - 1
        self.span = int(b2_np.size)

        self.rotated_or = streams[3]
        self.stretch_windows = streams[4]
        self.b1_bytes = streams[5]
        self.b2_bytes = streams[6]
        self.b1_np = streams[1]

        self.s1 = kernel_tables(vector_bits, sat_bits).single
        self.s1_flat = single_flat_np(vector_bits, sat_bits)
        self.popcount_np = np.array(
            popcount_table(vector_bits), dtype=np.int64
        )
        self.arange_v = np.arange(vector_bits, dtype=np.int64)
        self.arange_v_u64 = np.arange(vector_bits, dtype=np.uint64)
        self.bit_tbl = _bit_membership(vector_bits)
        self._ar = np.arange(1024, dtype=np.int64)

        self.events = _EventBuffer()
        self.nsat = 0  # L1 saturations (all of them, deviants included)
        self.nenc = 0  # noise_z-bank L2 encode steps (= nsat - deviants)

        # Deferred L2 event segments: per-round (first event, bound, first
        # z2) columns, enumerated in one pass by :meth:`finish`.
        self.ev_j0: "list" = []
        self.ev_b: "list" = []
        self.ev_z2: "list" = []
        # Adaptive binary-lifting depths (grown on verification failure).
        self._clevel = 5
        self._glevel = 3

    def _lift_table(self, level: int):
        """``chain`` composed ``2**level`` times, grown lazily.

        The list lives in the chunk's scan cache entry, so lift tables
        survive across runs of the same trace like ``occ``/``chain`` do.
        """
        lift = self.lift
        while len(lift) <= level:
            prev = lift[-1]
            lift.append(prev[prev])
        return lift[level]

    def _g_lift(self, level: int):
        """``g`` composed ``2**level`` times, grown lazily (see above)."""
        glift = self.glift
        while len(glift) <= level:
            prev = glift[-1]
            glift.append(prev[prev])
        return glift[level]

    def _arange(self, n: int):
        """A shared ``arange`` prefix (column picks happen every round)."""
        buf = self._ar
        if buf.size < n:
            buf = np.arange(max(n, 2 * buf.size), dtype=np.int64)
            self._ar = buf
        return buf[:n]

    # -- contested rounds ---------------------------------------------------

    def run(self, word_ok) -> None:
        """Process every stretch of every screen-failed word run.

        Mirrors the loop replay's screening rounds: each round handles one
        stretch per pending word (stretches of one round touch distinct
        words, hence are independent), preserving per-word stretch order.
        Unlike the loop rounds there is no per-round screen — the first
        saturation position computed from ``occ`` *is* the exact screen,
        and non-saturating stretches commit their pre-rotated OR mask.
        """
        layout = self.layout
        fail_runs = np.flatnonzero(~word_ok)
        ptr = layout["word_run_starts"][fail_runs].copy()
        run_end = ptr + layout["word_run_lengths"][fail_runs]
        active = np.arange(fail_runs.size)
        while active.size > _TAIL_RUNS:
            self._batch(ptr[active])
            ptr[active] += 1
            active = active[ptr[active] < run_end[active]]
        if active.size:
            # The scalar tail works on plain-int copies of the sketch
            # words (one bulk tolist/writeback per chunk) and on
            # per-run pre-gathered table columns, so the per-stretch
            # work is pure Python int arithmetic.
            wl = self.words_np.tolist()
            bl = self.bank2_np.tolist()
            starts_arr = layout["starts_arr"]
            offsets_arr = layout["offsets_arr"]
            word_bits_u = np.uint64(self.word_bits)
            word_low_u = np.uint64(self.word_bits - 1)
            window_all_u = np.uint64(self.window_all)
            for run in active.tolist():
                lo = int(ptr[run])
                hi = int(run_end[run])
                jumps = self.jump[starts_arr[lo:hi]].tolist()
                rots_np = self.rotated_or[lo:hi]
                offs = offsets_arr[lo:hi]
                inv = (word_bits_u - offs) & word_low_u
                # Un-rotate each stretch's OR mask back to its window: the
                # exact set of bit values the stretch contains, which makes
                # the tail's saturation screen one popcount.
                sbs = (
                    ((rots_np >> offs) | (rots_np << inv)) & window_all_u
                ).tolist()
                rots = rots_np.tolist()
                for i in range(hi - lo):
                    self._tail(lo + i, wl, bl, sbs[i], jumps[i], rots[i])
            self.words_np[:] = wl
            self.bank2_np[:] = bl
        self.finish()

    # -- the column-parallel batch kernel -----------------------------------

    def _batch(self, sidx) -> None:
        """Fully process one round's stretches (distinct words) at once."""
        layout = self.layout
        # The chunk-wide screen already proved conservatively-clean
        # stretches cannot saturate (their word's upper bound stays under
        # the threshold): commit their OR mask and drop them up front.
        ok = self.stretch_ok[sidx]
        if ok.any():
            oi = sidx[ok]
            self.words_np[layout["words_arr"][oi]] |= self.rotated_or[oi]
            if ok.all():
                return
            sidx = sidx[~ok]
        w = layout["words_arr"][sidx]
        off_u = layout["offsets_arr"][sidx]
        word = self.words_np[w]
        ror = self.rotated_or[sidx]
        word_bits_u = np.uint64(self.word_bits)
        inv_u = (word_bits_u - off_u) & np.uint64(self.word_bits - 1)
        window_all_u = np.uint64(self.window_all)
        st0 = ((word >> off_u) | (word << inv_u)) & window_all_u

        # Exact saturation screen: the union of inherited and stretch bits
        # reaches the threshold iff the stretch saturates (the window
        # gains at most one bit per packet).  Everything expensive below
        # then runs on the saturating subset only.
        sb = ((ror >> off_u) | (ror << inv_u)) & window_all_u
        sat = self.popcount_np[(st0 | sb).astype(np.int64)] >= self.sat_bits
        if not sat.all():
            nosat = ~sat
            self.words_np[w[nosat]] = word[nosat] | ror[nosat]
            sel = np.flatnonzero(sat)
            if sel.size == 0:
                return
            sidx = sidx[sel]
            w = w[sel]
            off_u = off_u[sel]
            inv_u = inv_u[sel]
            word = word[sel]
            st0 = st0[sel]

        a = layout["starts_arr"][sidx]
        b = layout["ends_arr"][sidx]
        window = self.stretch_windows[sidx]
        st0_i = st0.astype(np.int64)
        missing = self.sat_bits - self.popcount_np[st0_i]

        # First saturation position: the missing-count-th smallest first
        # occurrence among bits the inherited window does not hold yet
        # (in-stretch by the screen above, so no saturation check needed).
        occ_a = self.occ[:, a]
        in_st0 = self.bit_tbl[:, st0_i]
        cand = np.where(in_st0, np.int32(self.span), occ_a)
        cand.sort(axis=0)
        n = sidx.size
        q0 = cand[np.maximum(missing - 1, 0), self._arange(n)].astype(np.int64)
        dev = missing <= 0
        if dev.any():
            # Inherited state already at/over the threshold: the first
            # packet saturates unconditionally.
            q0 = np.where(dev, a, q0)
        rest = word & ~window
        bank_word = self.bank2_np[w]
        st2_all = (
            ((bank_word >> off_u) | (bank_word << inv_u)) & window_all_u
        ).astype(np.int64)
        rest2 = bank_word & ~window
        last_sat = q0.copy()
        q = q0

        if dev.any():
            di = np.flatnonzero(dev)
            first_bit = self.b1_np[a[di]].astype(np.int64)
            merged = st0_i[di] | (np.int64(1) << first_bit)
            z0 = self.vector_bits - self.popcount_np[merged]
            hard = z0 != self.noise_z
            if hard.any():
                # Deviating first saturations: scalar read-modify-write of
                # their own L2 bank, then the cursor moves to the chain.
                hi = di[hard]
                for j, z in zip(hi.tolist(), z0[hard].tolist()):
                    self._dev_fixup(
                        int(w[j]), int(off_u[j]), int(a[j]), int(z)
                    )
                q = q.copy()
                q[hi] = self.chain[a[hi]]
                self.nsat += hi.size
            # Easy deviants (z0 == noise_z) step like any chain saturation.

        ic = np.flatnonzero(q < b)
        if ic.size:
            self._chain_scan(ic, q, b, st2_all, last_sat)

        # Final L1 window: the bits whose next occurrence after the last
        # saturation still falls inside the stretch (the window regrows
        # from empty and never saturates again).
        next_occ = self.occ[:, last_sat + 1]
        final = (
            (next_occ < b[None, :]).astype(np.uint64)
            << self.arange_v_u64[:, None]
        ).sum(axis=0)
        word_mask_u = np.uint64(self.word_mask)
        self.words_np[w] = rest | (
            ((final << off_u) | (final >> inv_u)) & word_mask_u
        )
        st2_u = st2_all.astype(np.uint64)
        self.bank2_np[w] = rest2 | (
            ((st2_u << off_u) | (st2_u >> inv_u)) & word_mask_u
        )

    def _chain_scan(self, ic, q, b, st2_all, last_sat) -> None:
        """Replay every remaining chain saturation of one round at once.

        Everything is per *stretch* (size ``m``) or per rare *L2 event*;
        the saturation orbits themselves are never materialized.

        * **Count pass** — binary lifting through the ``chain`` lift
          tables yields each stretch's saturation count and its last
          in-stretch saturation in ``O(log depth)`` ``m``-sized gathers.
        * **L2 replay via walk tables** — every chain saturation steps
          the constant ``noise_z`` bank, and the symbol sequence a
          stretch's L2 window consumes is fixed by the chunk-wide walk
          graph, so the cached ``focc`` table answers "which bits does
          the window collect before the stretch ends" and the ``g``
          chain steps straight from one L2 saturation *event* to the
          next.  The rare event positions come from a doubling
          enumeration over the ``g`` lift tables; final L2 windows are
          one ``focc`` gather.
        """
        sat_bits = self.sat_bits
        noise_z = self.noise_z
        qs = q[ic].astype(np.int32)
        bounds = b[ic].astype(np.int32)
        m = int(ic.size)

        # -- count pass: saturations per stretch + last one -----------------
        # Binary lifting to the last in-stretch saturation; the depth
        # table then gives every stretch's saturation count from two
        # gathers.  The lifting level is an adaptive estimate (within-
        # stretch chains are much shorter than whole-chunk walks), checked
        # and regrown on the rare miss.
        dq = self.depth[qs]
        level = min(int(dq.max()).bit_length(), self._clevel)
        while True:
            pos = qs.copy()
            for k in range(level - 1, -1, -1):
                nxt = self._lift_table(k)[pos]
                np.copyto(pos, nxt, where=nxt < bounds)
            if not (self.chain[pos] < bounds).any():
                break
            level += 2
            self._clevel = level
        total = int((dq - self.depth[pos]).sum()) + m
        self.nsat += total
        self.nenc += total
        last_sat[ic] = pos

        # -- first L2 saturation per stretch --------------------------------
        # The k2-th missing bit of the inherited L2 window along the walk
        # from the stretch's first saturation — or, when that window is
        # already at the threshold, the first saturation itself (with its
        # own noise level pulled from the transition table; everything
        # else is noise_z by the constant-noise invariant).
        st2seg = st2_all[ic]
        k2 = sat_bits - self.popcount_np[st2seg]
        focc_q = self.focc[:, qs]
        in_st2 = self.bit_tbl[:, st2seg]
        cand = np.where(in_st2, np.int32(self.span), focc_q)
        cand.sort(axis=0)
        j0 = cand[np.maximum(k2 - 1, 0), self._arange(m)].astype(np.int64)
        first_z2 = np.full(m, noise_z, dtype=np.int64)
        dev2 = k2 <= 0
        if dev2.any():
            d2 = np.flatnonzero(dev2)
            qd = qs[d2]
            nxt = self.s1_flat[(st2seg[d2] << 3) | self.b2_np[qd]].astype(
                np.int64
            )
            first_z2[d2] = nxt - SENTINEL
            j0[d2] = qd
        has_event = j0 < bounds

        # -- last L2 event per stretch (enumeration deferred) ---------------
        # Only the *last* event matters for this round's final window (the
        # bank restarts empty after it); the event positions themselves
        # are appended as (first, bound, z2) segments and materialized in
        # one chunk-wide pass by :meth:`finish`.
        probe = qs
        wi = np.flatnonzero(has_event)
        if wi.size:
            j0w = j0[wi].astype(np.int32)
            bw = bounds[wi]
            g0 = self._g_lift(0)
            glevel = self._glevel
            while True:
                gpos = j0w.copy()
                for k in range(glevel - 1, -1, -1):
                    nxt = self._g_lift(k)[gpos]
                    np.copyto(gpos, nxt, where=nxt < bw)
                if not (g0[gpos] < bw).any():
                    break
                glevel += 2
                self._glevel = glevel
            self.ev_j0.append(j0w)
            self.ev_b.append(bw)
            self.ev_z2.append(first_z2[wi])
            # After its last event the window restarts empty at the next
            # orbit position.
            probe = qs.copy()
            probe[wi] = self.chain[gpos]

        # -- final L2 windows: one focc gather ------------------------------
        # Event segments regrow from empty after their last event;
        # event-free segments keep the inherited bits.  Walk positions
        # beyond the stretch are >= b, so the comparison below is exactly
        # "collected before the stretch ends".
        grown = (
            (self.focc[:, probe] < bounds[None, :]).astype(np.int64)
            << self.arange_v[:, None]
        ).sum(axis=0)
        st2_all[ic] = np.where(has_event, grown, st2seg | grown)

    def finish(self) -> None:
        """Materialize every deferred L2 event segment in one pass.

        One concat-doubling enumeration over all rounds' event segments:
        rows retire the moment their doubling block crosses the stretch
        bound, so the whole chunk costs ``O(log max_events)`` iterations.
        Emission order across segments is free — the delegation helper
        re-sorts events by packet position (positions are unique).
        """
        if not self.ev_j0:
            return
        j0 = np.concatenate(self.ev_j0)
        be = np.concatenate(self.ev_b)
        z2f = np.concatenate(self.ev_z2)
        noise_z = self.noise_z
        mat = j0[:, None]
        ids = np.arange(j0.size)
        id_parts = []
        pos_parts = []
        count_parts = []
        glevel = 0
        while True:
            done = mat[:, -1] >= be
            if done.any():
                di = np.flatnonzero(done)
                rows = mat[di]
                valid = rows < be[di, None]
                id_parts.append(ids[di])
                count_parts.append(valid.sum(axis=1))
                pos_parts.append(rows[valid])
                keep = np.flatnonzero(~done)
                if keep.size == 0:
                    break
                mat = mat[keep]
                be = be[keep]
                ids = ids[keep]
            mat = np.concatenate((mat, self._g_lift(glevel)[mat]), axis=1)
            glevel += 1
        ids_all = np.concatenate(id_parts)
        epos = np.concatenate(pos_parts)
        ns_ev = np.concatenate(count_parts)
        seg_ends = np.cumsum(ns_ev)
        z2_flat = np.full(epos.size, noise_z, dtype=np.int64)
        z2_flat[seg_ends - ns_ev] = z2f[ids_all]
        self.events.extend(epos.astype(np.int64), noise_z, z2_flat)

    # -- scalar paths --------------------------------------------------------

    def _dev_fixup(self, w: int, off: int, pos: int, z0: int) -> None:
        """Deviating first saturation: step bank ``z0`` in place (scalar)."""
        window = self.window_masks[off]
        inv = self.word_bits - off
        bank = self.l2_words[z0]
        bank_word = bank[w]
        state = ((bank_word >> off) | (bank_word << inv)) & self.window_all
        nxt2 = self.s1[state][self.b2_bytes[pos]]
        self.l2_encoded[z0] += 1
        if nxt2 >= SENTINEL:
            self.events.push(pos, z0, nxt2 - SENTINEL)
            state = 0
        else:
            state = nxt2
        bank[w] = (bank_word & ~window) | (
            ((state << off) | (state >> inv)) & self.word_mask
        )

    def _tail(
        self,
        sid: int,
        wl: "list[int]",
        bl: "list[int]",
        sb: int,
        jump_a: int,
        rot: int,
    ) -> None:
        """Per-saturation Python walk of one stretch's chain (short runs).

        ``wl``/``bl`` are the plain-int L1/noise-bank word lists the whole
        tail phase shares (bulk-converted once in :meth:`run`);
        ``sb``/``jump_a``/``rot`` are this stretch's pre-gathered bit-value
        set, ``jump[a]`` entry, and rotated OR mask.
        """
        layout = self.layout
        w = layout["words"][sid]
        off = layout["offsets"][sid]
        word = wl[w]
        window = self.window_masks[off]
        inv = self.word_bits - off
        window_all = self.window_all
        st0 = ((word >> off) | (word << inv)) & window_all
        if (st0 | sb).bit_count() < self.sat_bits:
            # Exact screen: the union of inherited and stretch bits never
            # reaches the threshold, so the stretch cannot saturate.
            wl[w] = word | rot
            return
        a = layout["starts"][sid]
        b = layout["ends"][sid]
        occ = self.occ
        if st0 == 0:
            # Empty inherited window: its first saturation is exactly the
            # fresh-window jump table entry (the screen above already
            # proved the stretch saturates).
            q = jump_a
            z0 = self.noise_z
        elif st0.bit_count() < self.sat_bits:
            missing = self.sat_bits - st0.bit_count()
            col = occ[:, a].tolist()
            candidates = [
                col[v] for v in range(self.vector_bits) if not (st0 >> v) & 1
            ]
            candidates.sort()
            q = candidates[missing - 1]
            z0 = self.noise_z
        else:
            q = a
            z0 = self.vector_bits - (st0 | (1 << self.b1_bytes[a])).bit_count()
        rest = word & ~window
        bank_word = bl[w]
        st2 = ((bank_word >> off) | (bank_word << inv)) & window_all
        rest2 = bank_word & ~window
        chain = self.chain
        s1 = self.s1
        b2b = self.b2_bytes
        push = self.events.push
        noise_z = self.noise_z
        saturations = 0
        deviant = 0
        last = q
        first = True
        while q < b:
            saturations += 1
            last = q
            if first and z0 != noise_z:
                deviant = 1
                self._dev_fixup(w, off, q, z0)
            else:
                nxt2 = s1[st2][b2b[q]]
                if nxt2 >= SENTINEL:
                    push(q, noise_z, nxt2 - SENTINEL)
                    st2 = 0
                else:
                    st2 = nxt2
            first = False
            q = int(chain[q])
        self.nsat += saturations
        self.nenc += saturations - deviant
        final = 0
        col = occ[:, last + 1].tolist()
        for v in range(self.vector_bits):
            if col[v] < b:
                final |= 1 << v
        wl[w] = rest | (((final << off) | (final >> inv)) & self.word_mask)
        bl[w] = rest2 | (((st2 << off) | (st2 >> inv)) & self.word_mask)


def process_trace_scan(
    engine,
    trace,
    on_accumulate=None,
    chunk_size: "int | None" = None,
    bits=None,
    stream_tag=None,
) -> BatchCounters:
    """The delegated pipeline with the scan replay on the contested path.

    Same scaffolding as ``_process_trace_delegated`` — chunk layouts,
    cached derived streams, the monotone word-level screen, one delegated
    WSAF batch per chunk — but screen-failed word runs go through
    :class:`_ChunkScan` instead of the per-packet FSM loop.  Works against
    any WSAF (the non-array table takes the ``accumulate_batch`` branch of
    the delegation helper), so ``regulator_replay="scan"`` composes with
    either ``wsaf_engine``.
    """
    regulator = engine.regulator
    l1 = regulator.l1
    vector_bits = l1.vector_bits
    word_bits = l1.word_bits
    sat_bits = l1.saturation_bits
    if chunk_size is None:
        chunk_size = getattr(engine.config, "chunk_size", DEFAULT_CHUNK_SIZE)

    counters = BatchCounters(
        packets=trace.num_packets,
        l2_encoded=[0] * len(regulator.l2),
        l2_saturated=[0] * len(regulator.l2),
    )
    num_packets = trace.num_packets
    if num_packets == 0:
        return counters

    layouts = _chunk_layouts(trace, l1, chunk_size)
    bit_values = np.left_shift(
        np.uint8(1), np.arange(vector_bits, dtype=np.uint8)
    )
    key = _stream_key(engine, l1, chunk_size, stream_tag)
    chunk_streams = _chunk_stream_slots(trace, key, len(layouts), _STREAM_ATTR)
    scan_slots = _chunk_stream_slots(trace, key, len(layouts), _SCAN_ATTR)

    code_all = None
    if any(entry is None for entry in chunk_streams):
        if bits is None:
            # Identical draws to the scalar path: same generator, sizes,
            # order.
            rng = np.random.default_rng(engine.config.seed ^ 0xB17)
            bits1 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
            bits2 = rng.integers(0, vector_bits, size=num_packets, dtype=np.uint8)
        else:
            bits1, bits2 = bits
        code_all = bits1 + np.uint8(vector_bits) * bits2

    window_masks = l1._window_masks
    window_masks_np = np.array(window_masks, dtype=np.uint64)
    decode_np = np.asarray(l1._decode_table, dtype=np.float64)
    words = l1.words
    l2_words = [sketch.words for sketch in regulator.l2]
    word_mask = (1 << word_bits) - 1
    noise_z = vector_bits - sat_bits
    l2_encoded = counters.l2_encoded
    l2_saturated = counters.l2_saturated

    flow_ids = trace.flow_ids
    key64 = trace.flows.key64
    timestamps = trace.timestamps
    sizes = trace.sizes
    packed_tuples = trace.flows.packed_tuples()
    wsaf = engine.wsaf
    wsaf_arrays = getattr(wsaf, "accumulate_batch_arrays", None)

    l1_saturations = 0
    insertions = 0

    for chunk_index, layout in enumerate(layouts):
        order = layout["order"]

        streams = chunk_streams[chunk_index]
        if streams is None:
            streams = _build_chunk_stream(
                layout,
                code_all,
                vector_bits,
                word_bits,
                word_mask,
                bit_values,
                window_masks_np,
                with_quad_list=False,
            )
            chunk_streams[chunk_index] = streams
        sorted_code = streams[0]
        sorted_b1 = streams[1]
        rotated_or_np = streams[3]
        stretch_windows = streams[4]

        scan_entry = scan_slots[chunk_index]
        if scan_entry is None:
            occ, jump, chain = _scan_tables(sorted_b1, vector_bits, sat_bits)
            b2_np = sorted_code // np.uint8(vector_bits)
            focc, g, depth = _walk_tables(chain, b2_np, vector_bits, sat_bits)
            scan_entry = (occ, jump, chain, b2_np, [chain], focc, [g], depth)
            scan_slots[chunk_index] = scan_entry
        occ, jump, chain, b2_np, lift, focc, glift, depth = scan_entry

        word_run_starts = layout["word_run_starts"]
        word_run_lengths = layout["word_run_lengths"]
        word_run_heads = layout["word_run_heads"]
        words_np = np.array(words, dtype=np.uint64)
        upper = words_np[word_run_heads] | np.bitwise_or.reduceat(
            rotated_or_np, word_run_starts
        )
        stretch_ok = (
            np.bitwise_count(np.repeat(upper, word_run_lengths) & stretch_windows)
            < sat_bits
        )
        word_ok = np.logical_and.reduceat(stretch_ok, word_run_starts)
        words_np[word_run_heads[word_ok]] = upper[word_ok]

        if not word_ok.all():
            bank2_np = np.array(l2_words[noise_z], dtype=np.uint64)
            scan = _ChunkScan(
                layout=layout,
                streams=streams,
                occ=occ,
                jump=jump,
                chain=chain,
                b2_np=b2_np,
                lift=lift,
                focc=focc,
                glift=glift,
                depth=depth,
                stretch_ok=stretch_ok,
                words_np=words_np,
                bank2_np=bank2_np,
                l2_words=l2_words,
                l2_encoded=l2_encoded,
                window_masks=window_masks,
                vector_bits=vector_bits,
                word_bits=word_bits,
                sat_bits=sat_bits,
            )
            scan.run(word_ok)
            l2_words[noise_z][:] = bank2_np.tolist()
            l1_saturations += scan.nsat
            l2_encoded[noise_z] += scan.nenc
            event_pos, event_z, event_z2 = scan.events.arrays()
            if event_pos.size:
                bank_hits = np.bincount(event_z, minlength=len(l2_words))
                for z, hits in enumerate(bank_hits.tolist()):
                    l2_saturated[z] += hits
                _delegate_chunk_events(
                    event_pos,
                    event_z,
                    event_z2,
                    order,
                    flow_ids,
                    key64,
                    timestamps,
                    sizes,
                    packed_tuples,
                    decode_np,
                    wsaf,
                    wsaf_arrays,
                    on_accumulate,
                )
                insertions += int(event_pos.size)

        words[:] = words_np.tolist()

    counters.l1_saturations = l1_saturations
    counters.insertions = insertions
    return counters
