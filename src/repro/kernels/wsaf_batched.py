"""Batch-probed, array-backed WSAF (the In-DRAM table, vectorized).

:class:`BatchedWSAFTable` keeps the scalar :class:`~repro.core.wsaf.WSAFTable`
semantics — same probe sequence, same eviction policies, same opportunistic
GC, same counters — but stores the columns as NumPy arrays and applies
delegated update batches with **cohort-based batch probing**:

1. Sort the batch stably by flow key, so all updates of one flow form a
   *cohort* that costs one probe plus one add-chain.
2. Compute every cohort's full probe window at once — a ``(cohorts,
   probe_limit)`` slot matrix from the triangular-number sequence — and
   resolve hits and first-free slots with array gathers.
3. Classify cohorts: *pure hits* (key present) and *pure inserts* (key
   absent, empty slot in window) commit vectorized; anything that could
   take the eviction/GC path — no free slot, an expired entry in the
   window, two cohorts racing for one insert slot — falls back to the
   inherited scalar logic.
4. A conflict fixpoint demotes any pure cohort whose probe window
   intersects a scalar cohort's window, so the scalar path sees exactly
   the intermediate states it would have seen in event order.  After the
   fixpoint, pure windows and scalar windows are disjoint, which makes
   the two groups commute; within the pure group, hit updates and
   first-free inserts are mutually non-interfering (a free slot earlier
   in another cohort's window would have *been* that cohort's target).

Per-event running totals are reproduced with a sequential add loop over
within-cohort positions (vectorized **across** cohorts), because float
addition is not associative and the contract is bit-identical results.

The scalar fallback is exercised constantly by the equivalence suite
(``tests/test_wsaf_batched.py``) — under adversarial same-window cohorts
and tiny tables everything demotes, and the result must still match the
scalar table slot for slot.
"""

from __future__ import annotations

import numpy as np

from repro.core.wsaf import WSAFTable
from repro.memmodel import AccessAccountant

#: Below this many events the NumPy staging costs more than it saves.
_SCALAR_CUTOFF = 8


class BatchedWSAFTable(WSAFTable):
    """A :class:`WSAFTable` with NumPy columns and batched accumulation.

    State-identical to the scalar table for every operation; only the
    execution strategy of :meth:`accumulate_batch` (and the storage of the
    columns) differs.  Scalar entry points (:meth:`accumulate`,
    :meth:`lookup`, sweeps) are inherited and operate on the array columns
    element-wise.
    """

    def __init__(
        self,
        num_entries: int = 1 << 20,
        probe_limit: int = 16,
        gc_timeout: "float | None" = None,
        accountant: "AccessAccountant | None" = None,
        eviction_policy: str = "second-chance",
    ) -> None:
        super().__init__(
            num_entries=num_entries,
            probe_limit=probe_limit,
            gc_timeout=gc_timeout,
            accountant=accountant,
            eviction_policy=eviction_policy,
        )
        # Replace the list columns with a struct-of-arrays layout.  The
        # packed 5-tuple stays a Python list: it is a 104-bit integer (or
        # None), which no fixed-width dtype holds.
        self._occupied = np.zeros(num_entries, dtype=bool)
        self._keys = np.zeros(num_entries, dtype=np.uint64)
        self._packets = np.zeros(num_entries, dtype=np.float64)
        self._bytes = np.zeros(num_entries, dtype=np.float64)
        self._timestamps = np.zeros(num_entries, dtype=np.float64)
        self._chance = np.zeros(num_entries, dtype=bool)
        #: Triangular probe offsets (i + i²)/2 for the whole window.
        self._tri = np.array(
            [(i + i * i) >> 1 for i in range(self.probe_limit)], dtype=np.uint64
        )

    # -- batched accumulation ----------------------------------------------

    def accumulate_batch(
        self,
        events,
        on_accumulate=None,
    ) -> "list[tuple[float, float]]":
        """Apply many accumulate events, cohort-batched.

        Same contract as :meth:`WSAFTable.accumulate_batch` — same final
        table state, same counters, same per-event running totals, same
        callback order — resolved with vectorized probing wherever event
        order provably cannot matter.
        """
        events = events if isinstance(events, list) else list(events)
        n = len(events)
        if n < _SCALAR_CUTOFF:
            return super().accumulate_batch(events, on_accumulate)

        keys = np.fromiter((e[0] for e in events), dtype=np.uint64, count=n)
        pkts = np.fromiter((e[1] for e in events), dtype=np.float64, count=n)
        byts = np.fromiter((e[2] for e in events), dtype=np.float64, count=n)
        stamps = np.fromiter((e[3] for e in events), dtype=np.float64, count=n)
        tuples = [e[4] for e in events]
        return self.accumulate_batch_arrays(
            keys, pkts, byts, stamps, tuples, on_accumulate
        )

    def accumulate_batch_arrays(
        self,
        keys,
        packets,
        bytes_,
        timestamps,
        tuples,
        on_accumulate=None,
        collect_totals: bool = True,
    ) -> "list[tuple[float, float]] | None":
        """Column-array form of :meth:`accumulate_batch`.

        ``keys``/``packets``/``bytes_``/``timestamps`` are parallel arrays
        (one entry per event, original order); ``tuples`` is the matching
        sequence of packed 5-tuples.  This is the delegated kernel's entry
        point — it hands its decoded estimates over without a Python
        tuple-list round trip.  With ``collect_totals=False`` the per-event
        totals list is not materialised and ``None`` is returned (the
        callback, if any, still fires with the exact running totals).
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        pkts = np.ascontiguousarray(packets, dtype=np.float64)
        byts = np.ascontiguousarray(bytes_, dtype=np.float64)
        stamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        n = len(keys)
        if n < _SCALAR_CUTOFF:
            accumulate = super().accumulate
            totals = []
            for key, est_p, est_b, stamp, packed in zip(
                keys.tolist(),
                pkts.tolist(),
                byts.tolist(),
                stamps.tolist(),
                tuples,
            ):
                total = accumulate(key, est_p, est_b, stamp, packed)
                totals.append(total)
                if on_accumulate is not None:
                    on_accumulate(key, total[0], total[1], stamp)
            return totals

        # Cohorts: stable sort keeps each flow's events in original order.
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        run_starts = np.flatnonzero(
            np.concatenate(([True], skeys[1:] != skeys[:-1]))
        )
        counts = np.diff(np.append(run_starts, n))
        ukeys = skeys[run_starts]
        num_cohorts = len(ukeys)

        mask64 = np.uint64(self._mask)
        slots = (
            ((ukeys & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        occ = self._occupied[slots]
        hit_matrix = occ & (self._keys[slots] == ukeys[:, None])
        hit_any = hit_matrix.any(axis=1)
        hit_round = np.where(hit_any, hit_matrix.argmax(axis=1), 0)
        free_matrix = ~occ
        free_any = free_matrix.any(axis=1)
        free_round = np.where(free_any, free_matrix.argmax(axis=1), 0)

        if self.gc_timeout is None:
            gc_risk = np.zeros(num_cohorts, dtype=bool)
        else:
            # Conservative: an entry expired at the cohort's latest event
            # is the only way probe-time GC could fire for any of them
            # (timestamps only grow, so expiry at an earlier event implies
            # expiry at the latest).
            sorted_stamps = stamps[order]
            cohort_max_ts = np.maximum.reduceat(sorted_stamps, run_starts)
            gc_risk = (
                occ
                & (
                    cohort_max_ts[:, None] - self._timestamps[slots]
                    > self.gc_timeout
                )
            ).any(axis=1)

        pure_hit = hit_any & ~gc_risk
        pure_ins = (~hit_any) & (~gc_risk) & free_any
        scalar_set = ~(pure_hit | pure_ins)

        cohort_rows = np.arange(num_cohorts)
        ins_target = slots[cohort_rows, free_round]

        # Two cohorts racing for the same first-free slot must apply in
        # event order: demote every contender to the scalar path.
        if pure_ins.any():
            targets = ins_target[pure_ins]
            unique_targets, target_counts = np.unique(
                targets, return_counts=True
            )
            contested = unique_targets[target_counts > 1]
            if contested.size:
                demote = pure_ins & np.isin(ins_target, contested)
                scalar_set |= demote
                pure_ins &= ~demote

        # Conflict fixpoint: scalar cohorts may read/write anything inside
        # their probe windows (eviction scans, GC reclaims, victim writes),
        # so a pure cohort overlapping such a window is order-sensitive and
        # demotes — which adds *its* window to the conflict set, possibly
        # cascading.
        if scalar_set.any() and (pure_hit.any() or pure_ins.any()):
            conflict = np.zeros(self.num_entries, dtype=bool)
            pending = scalar_set
            while True:
                conflict[slots[pending].ravel()] = True
                demote = (pure_hit | pure_ins) & conflict[slots].any(axis=1)
                if not demote.any():
                    break
                pure_hit &= ~demote
                pure_ins &= ~demote
                scalar_set |= demote
                pending = demote

        totals_packets = np.empty(n, dtype=np.float64)
        totals_bytes = np.empty(n, dtype=np.float64)
        resolved = pure_hit | pure_ins
        res = np.flatnonzero(resolved)

        if res.size:
            sorted_pkts = pkts[order]
            sorted_byts = byts[order]
            sorted_stamps = stamps[order]
            hit_slot = slots[cohort_rows, hit_round]
            res_slot = np.where(pure_hit, hit_slot, ins_target)[res]

            # Per-event running totals, bit-identical to sequential adds:
            # float addition is non-associative, so the add chains must run
            # in within-cohort order.  Lay the resolved cohorts out as rows
            # of a zero-padded (cohorts x max_count) matrix and accumulate
            # along the rows — padding zeros leave the running value
            # unchanged (x + 0.0 == x for the non-negative totals here), so
            # one ``np.add.accumulate`` reproduces every chain exactly.
            # (Empty insert targets hold 0.0, so the gathered base is right
            # for both hits and inserts.)
            running_packets = self._packets[res_slot].copy()
            running_bytes = self._bytes[res_slot].copy()
            sorted_tot_p = np.empty(n, dtype=np.float64)
            sorted_tot_b = np.empty(n, dtype=np.float64)
            starts_res = run_starts[res]
            counts_res = counts[res]
            max_count = int(counts_res.max())
            if res.size * max_count <= max(16 * n, 1 << 16):
                row_of = np.repeat(np.arange(res.size), counts_res)
                within = np.arange(len(row_of)) - np.repeat(
                    np.cumsum(counts_res) - counts_res, counts_res
                )
                member_idx = np.repeat(starts_res, counts_res) + within
                chain_p = np.zeros((res.size, max_count), dtype=np.float64)
                chain_b = np.zeros((res.size, max_count), dtype=np.float64)
                chain_p[row_of, within] = sorted_pkts[member_idx]
                chain_b[row_of, within] = sorted_byts[member_idx]
                chain_p[:, 0] += running_packets
                chain_b[:, 0] += running_bytes
                np.add.accumulate(chain_p, axis=1, out=chain_p)
                np.add.accumulate(chain_b, axis=1, out=chain_b)
                sorted_tot_p[member_idx] = chain_p[row_of, within]
                sorted_tot_b[member_idx] = chain_b[row_of, within]
                rows = np.arange(res.size)
                running_packets = chain_p[rows, counts_res - 1]
                running_bytes = chain_b[rows, counts_res - 1]
            else:
                # One giant cohort would blow the matrix up; walk positions
                # instead (vectorized across cohorts, sequential within).
                active = np.flatnonzero(counts_res)
                position = 0
                while active.size:
                    event_idx = starts_res[active] + position
                    running_packets[active] += sorted_pkts[event_idx]
                    running_bytes[active] += sorted_byts[event_idx]
                    sorted_tot_p[event_idx] = running_packets[active]
                    sorted_tot_b[event_idx] = running_bytes[active]
                    position += 1
                    active = active[counts_res[active] > position]

            last_pos = run_starts + counts - 1
            hit_of_res = pure_hit[res]
            ins_of_res = ~hit_of_res

            hit_cohorts = res[hit_of_res]
            hit_slots = res_slot[hit_of_res]
            self._packets[hit_slots] = running_packets[hit_of_res]
            self._bytes[hit_slots] = running_bytes[hit_of_res]
            self._timestamps[hit_slots] = sorted_stamps[last_pos[hit_cohorts]]
            self._chance[hit_slots] = True
            hit_events = int(counts[hit_cohorts].sum())
            self.updates += hit_events

            ins_cohorts = res[ins_of_res]
            ins_slots = res_slot[ins_of_res]
            self._occupied[ins_slots] = True
            self._keys[ins_slots] = ukeys[ins_cohorts]
            self._packets[ins_slots] = running_packets[ins_of_res]
            self._bytes[ins_slots] = running_bytes[ins_of_res]
            self._timestamps[ins_slots] = sorted_stamps[last_pos[ins_cohorts]]
            self._chance[ins_slots] = True
            first_event = order[run_starts[ins_cohorts]]
            for slot, event_index in zip(
                ins_slots.tolist(), first_event.tolist()
            ):
                self._tuples[slot] = tuples[event_index]
                self._occupied_slots.add(slot)
            self.size += len(ins_cohorts)
            self.insertions += len(ins_cohorts)
            follow_ups = counts[ins_cohorts] - 1
            self.updates += int(follow_ups.sum())

            if self.accountant is not None:
                # Hits probe to the hit round; an insert's first event
                # walks the whole window, its follow-ups hit at the target.
                reads = int(
                    (counts[hit_cohorts] * (hit_round[hit_cohorts] + 1)).sum()
                )
                reads += len(ins_cohorts) * self.probe_limit
                reads += int(
                    (follow_ups * (free_round[ins_cohorts] + 1)).sum()
                )
                writes = hit_events + len(ins_cohorts) + int(follow_ups.sum())
                self.accountant.record("wsaf", reads=reads, writes=writes)

            member_res = np.repeat(resolved, counts)
            original_idx = order[member_res]
            totals_packets[original_idx] = sorted_tot_p[member_res]
            totals_bytes[original_idx] = sorted_tot_b[member_res]

        if scalar_set.any():
            # Order-sensitive leftovers replay through the inherited scalar
            # accumulate, in original event order (their windows are
            # disjoint from every vectorized cohort's, so interleaving with
            # the commits above is immaterial).
            member_scalar = np.repeat(scalar_set, counts)
            scalar_original = np.sort(order[member_scalar])
            scalar_accumulate = super().accumulate
            for i in scalar_original.tolist():
                total_p, total_b = scalar_accumulate(
                    int(keys[i]),
                    float(pkts[i]),
                    float(byts[i]),
                    float(stamps[i]),
                    tuples[i],
                )
                totals_packets[i] = total_p
                totals_bytes[i] = total_b

        if on_accumulate is not None:
            for key, stamp, total_p, total_b in zip(
                keys.tolist(),
                stamps.tolist(),
                totals_packets.tolist(),
                totals_bytes.tolist(),
            ):
                on_accumulate(key, total_p, total_b, stamp)
        if not collect_totals:
            return None
        return list(zip(totals_packets.tolist(), totals_bytes.tolist()))

    # -- snapshots ----------------------------------------------------------

    def estimates(
        self, flow_keys=None
    ) -> "dict[int, tuple[float, float]]":
        """Vectorized :meth:`WSAFTable.estimates` (same mapping, native
        Python keys/values)."""
        if flow_keys is None:
            occupied_slots = np.flatnonzero(self._occupied)
            return {
                key: (packets, bytes_)
                for key, packets, bytes_ in zip(
                    self._keys[occupied_slots].tolist(),
                    self._packets[occupied_slots].tolist(),
                    self._bytes[occupied_slots].tolist(),
                )
            }
        query = np.asarray(
            flow_keys
            if isinstance(flow_keys, np.ndarray)
            else list(flow_keys),
            dtype=np.uint64,
        )
        if query.size == 0:
            return {}
        mask64 = np.uint64(self._mask)
        slots = (
            ((query & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        found = self._occupied[slots] & (self._keys[slots] == query[:, None])
        rows = np.flatnonzero(found.any(axis=1))
        hit_slots = slots[rows, found[rows].argmax(axis=1)]
        return {
            key: (packets, bytes_)
            for key, packets, bytes_ in zip(
                query[rows].tolist(),
                self._packets[hit_slots].tolist(),
                self._bytes[hit_slots].tolist(),
            )
        }

    def estimates_arrays(
        self, flow_keys
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-flow (packets, bytes) float arrays aligned with ``flow_keys``.

        Missing flows read 0.0 — the array form of :meth:`estimates`, with
        no intermediate dict for callers that want columns back.
        """
        query = np.asarray(
            flow_keys
            if isinstance(flow_keys, np.ndarray)
            else list(flow_keys),
            dtype=np.uint64,
        )
        est_packets = np.zeros(query.size)
        est_bytes = np.zeros(query.size)
        if query.size == 0:
            return est_packets, est_bytes
        mask64 = np.uint64(self._mask)
        slots = (
            ((query & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        found = self._occupied[slots] & (self._keys[slots] == query[:, None])
        rows = np.flatnonzero(found.any(axis=1))
        hit_slots = slots[rows, found[rows].argmax(axis=1)]
        est_packets[rows] = self._packets[hit_slots]
        est_bytes[rows] = self._bytes[hit_slots]
        return est_packets, est_bytes

    # -- state transfer ------------------------------------------------------

    def export_state(self):
        """Array-gather :meth:`WSAFTable.export_state` (identical snapshot).

        The occupied slots come straight off the boolean column and every
        numeric column gathers in one fancy index; only the 5-tuple list
        (104-bit Python ints) walks a loop.
        """
        from repro.state.snapshot import WSAFState, pack_tuple_columns

        slots = np.flatnonzero(self._occupied)
        lo, hi, present = pack_tuple_columns(
            [self._tuples[s] for s in slots.tolist()]
        )
        return WSAFState(
            num_entries=self.num_entries,
            probe_limit=self.probe_limit,
            eviction_policy=self.eviction_policy,
            size=self.size,
            insertions=self.insertions,
            updates=self.updates,
            evictions=self.evictions,
            gc_reclaimed=self.gc_reclaimed,
            rejected=self.rejected,
            slots=slots.astype(np.int64),
            keys=self._keys[slots].copy(),
            packets=self._packets[slots].copy(),
            bytes=self._bytes[slots].copy(),
            timestamps=self._timestamps[slots].copy(),
            chance=self._chance[slots].copy(),
            tuple_lo=lo,
            tuple_hi=hi,
            tuple_present=present,
        )
