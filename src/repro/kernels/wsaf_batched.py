"""Batch-probed, array-backed WSAF (the In-DRAM table, vectorized).

:class:`BatchedWSAFTable` keeps the scalar :class:`~repro.core.wsaf.WSAFTable`
semantics — same probe sequence, same eviction policies, same opportunistic
GC, same counters — but stores the columns as NumPy arrays and applies
delegated update batches with **cohort-based batch probing**:

1. Sort the batch stably by flow key, so all updates of one flow form a
   *cohort* that costs one probe plus one add-chain.
2. Compute every cohort's full probe window at once — a ``(cohorts,
   probe_limit)`` slot matrix from the triangular-number sequence — and
   resolve hits and first-free slots with array gathers.
3. Classify cohorts: *pure hits* (key present) and *pure inserts* (key
   absent, empty slot in window) commit vectorized; anything that could
   take the eviction/GC path — no free slot, an expired entry in the
   window, two cohorts racing for one insert slot — falls back to the
   inherited scalar logic.
4. A conflict fixpoint demotes any pure cohort whose probe window
   intersects a scalar cohort's window, so the scalar path sees exactly
   the intermediate states it would have seen in event order.  After the
   fixpoint, pure windows and scalar windows are disjoint, which makes
   the two groups commute; within the pure group, hit updates and
   first-free inserts are mutually non-interfering (a free slot earlier
   in another cohort's window would have *been* that cohort's target).

Per-event running totals are reproduced with a sequential add loop over
within-cohort positions (vectorized **across** cohorts), because float
addition is not associative and the contract is bit-identical results.

The pass is staged through overridable hooks so storage variants can
reuse the cohort machinery: :meth:`~BatchedWSAFTable._order_risk_demotions`
lets a subclass demote extra cohorts whose commits would be order-sensitive
under *its* storage rules (re-running the conflict fixpoint after each
round), and :meth:`~BatchedWSAFTable._resolved_chains` /
:meth:`~BatchedWSAFTable._commit_resolved_extra` let it substitute its own
add-chain arithmetic and commit side state.
:class:`BatchedIceBucketsWSAFTable` uses exactly these three hooks to run
the ICE-Buckets quantized counters (per-bucket scale gather, quantized
vectorized adds, overflow screening) through the same plan.

The scalar fallback is exercised constantly by the equivalence suite
(``tests/test_wsaf_batched.py``) — under adversarial same-window cohorts
and tiny tables everything demotes, and the result must still match the
scalar table slot for slot.
"""

from __future__ import annotations

from itertools import accumulate

import numpy as np

from repro.core.wsaf import WSAFTable
from repro.core.wsaf_icebuckets import _IceMixin
from repro.memmodel import AccessAccountant

#: Below this many events the NumPy staging costs more than it saves.
_SCALAR_CUTOFF = 8


class _BatchPlan:
    """Mutable staging state for one cohort-batched accumulate pass.

    Built by :meth:`BatchedWSAFTable._build_batch_plan`; the demotion
    stages shrink ``pure_hit``/``pure_ins`` (growing ``scalar_set``) in
    place, and subclasses may hang extra fields off it (the ICE overflow
    screen caches its simulated chains here).
    """


class BatchedWSAFTable(WSAFTable):
    """A :class:`WSAFTable` with NumPy columns and batched accumulation.

    State-identical to the scalar table for every operation; only the
    execution strategy of :meth:`accumulate_batch` (and the storage of the
    columns) differs.  Scalar entry points (:meth:`accumulate`,
    :meth:`lookup`, sweeps) are inherited and operate on the array columns
    element-wise.
    """

    def __init__(
        self,
        num_entries: int = 1 << 20,
        probe_limit: int = 16,
        gc_timeout: "float | None" = None,
        accountant: "AccessAccountant | None" = None,
        eviction_policy: str = "second-chance",
    ) -> None:
        super().__init__(
            num_entries=num_entries,
            probe_limit=probe_limit,
            gc_timeout=gc_timeout,
            accountant=accountant,
            eviction_policy=eviction_policy,
        )
        # Replace the list columns with a struct-of-arrays layout.  The
        # packed 5-tuple stays a Python list: it is a 104-bit integer (or
        # None), which no fixed-width dtype holds.
        self._occupied = np.zeros(num_entries, dtype=bool)
        self._keys = np.zeros(num_entries, dtype=np.uint64)
        self._packets = np.zeros(num_entries, dtype=np.float64)
        self._bytes = np.zeros(num_entries, dtype=np.float64)
        self._timestamps = np.zeros(num_entries, dtype=np.float64)
        self._chance = np.zeros(num_entries, dtype=bool)
        #: Triangular probe offsets (i + i²)/2 for the whole window.
        self._tri = np.array(
            [(i + i * i) >> 1 for i in range(self.probe_limit)], dtype=np.uint64
        )

    # -- batched accumulation ----------------------------------------------

    def accumulate_batch(
        self,
        events,
        on_accumulate=None,
    ) -> "list[tuple[float, float]]":
        """Apply many accumulate events, cohort-batched.

        Same contract as :meth:`WSAFTable.accumulate_batch` — same final
        table state, same counters, same per-event running totals, same
        callback order — resolved with vectorized probing wherever event
        order provably cannot matter.
        """
        events = events if isinstance(events, list) else list(events)
        n = len(events)
        if n < _SCALAR_CUTOFF:
            return super().accumulate_batch(events, on_accumulate)

        keys = np.fromiter((e[0] for e in events), dtype=np.uint64, count=n)
        pkts = np.fromiter((e[1] for e in events), dtype=np.float64, count=n)
        byts = np.fromiter((e[2] for e in events), dtype=np.float64, count=n)
        stamps = np.fromiter((e[3] for e in events), dtype=np.float64, count=n)
        tuples = [e[4] for e in events]
        return self.accumulate_batch_arrays(
            keys, pkts, byts, stamps, tuples, on_accumulate
        )

    def accumulate_batch_arrays(
        self,
        keys,
        packets,
        bytes_,
        timestamps,
        tuples,
        on_accumulate=None,
        collect_totals: bool = True,
    ) -> "list[tuple[float, float]] | None":
        """Column-array form of :meth:`accumulate_batch`.

        ``keys``/``packets``/``bytes_``/``timestamps`` are parallel arrays
        (one entry per event, original order); ``tuples`` is the matching
        sequence of packed 5-tuples.  This is the delegated kernel's entry
        point — it hands its decoded estimates over without a Python
        tuple-list round trip.  With ``collect_totals=False`` the per-event
        totals list is not materialised and ``None`` is returned (the
        callback, if any, still fires with the exact running totals).
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        pkts = np.ascontiguousarray(packets, dtype=np.float64)
        byts = np.ascontiguousarray(bytes_, dtype=np.float64)
        stamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        n = len(keys)
        if n < _SCALAR_CUTOFF:
            accumulate = self.accumulate
            totals = []
            for key, est_p, est_b, stamp, packed in zip(
                keys.tolist(),
                pkts.tolist(),
                byts.tolist(),
                stamps.tolist(),
                tuples,
            ):
                total = accumulate(key, est_p, est_b, stamp, packed)
                totals.append(total)
                if on_accumulate is not None:
                    on_accumulate(key, total[0], total[1], stamp)
            return totals if collect_totals else None

        plan = self._build_batch_plan(keys, pkts, byts, stamps)
        self._conflict_fixpoint(plan)
        while True:
            # Storage-specific demotions (no-op for the flat table): any
            # round that demotes re-runs the slot-level fixpoint, since the
            # newly scalar windows may collide with surviving pure ones.
            demote = self._order_risk_demotions(plan)
            if demote is None or not demote.any():
                break
            plan.pure_hit &= ~demote
            plan.pure_ins &= ~demote
            plan.scalar_set |= demote
            self._conflict_fixpoint(plan)

        counts = plan.counts
        run_starts = plan.run_starts
        totals_packets = np.empty(n, dtype=np.float64)
        totals_bytes = np.empty(n, dtype=np.float64)
        resolved = plan.pure_hit | plan.pure_ins
        res = np.flatnonzero(resolved)

        if res.size:
            cohort_rows = np.arange(len(plan.ukeys))
            res_slot = np.where(plan.pure_hit, plan.hit_slot, plan.ins_target)[
                res
            ]
            sorted_tot_p = np.empty(n, dtype=np.float64)
            sorted_tot_b = np.empty(n, dtype=np.float64)
            running_packets, running_bytes = self._resolved_chains(
                plan, res, res_slot, sorted_tot_p, sorted_tot_b
            )

            sorted_stamps = plan.sorted_stamps
            last_pos = run_starts + counts - 1
            hit_of_res = plan.pure_hit[res]
            ins_of_res = ~hit_of_res

            hit_cohorts = res[hit_of_res]
            hit_slots = res_slot[hit_of_res]
            self._packets[hit_slots] = running_packets[hit_of_res]
            self._bytes[hit_slots] = running_bytes[hit_of_res]
            self._timestamps[hit_slots] = sorted_stamps[last_pos[hit_cohorts]]
            self._chance[hit_slots] = True
            hit_events = int(counts[hit_cohorts].sum())
            self.updates += hit_events

            ins_cohorts = res[ins_of_res]
            ins_slots = res_slot[ins_of_res]
            self._occupied[ins_slots] = True
            self._keys[ins_slots] = plan.ukeys[ins_cohorts]
            self._packets[ins_slots] = running_packets[ins_of_res]
            self._bytes[ins_slots] = running_bytes[ins_of_res]
            self._timestamps[ins_slots] = sorted_stamps[last_pos[ins_cohorts]]
            self._chance[ins_slots] = True
            first_event = plan.order[run_starts[ins_cohorts]]
            for slot, event_index in zip(
                ins_slots.tolist(), first_event.tolist()
            ):
                self._tuples[slot] = tuples[event_index]
                self._occupied_slots.add(slot)
            self.size += len(ins_cohorts)
            self.insertions += len(ins_cohorts)
            follow_ups = counts[ins_cohorts] - 1
            self.updates += int(follow_ups.sum())

            self._commit_resolved_extra(plan, res, res_slot)

            if self.accountant is not None:
                # Hits probe to the hit round; an insert's first event
                # walks the whole window, its follow-ups hit at the target.
                reads = int(
                    (
                        counts[hit_cohorts]
                        * (plan.hit_round[hit_cohorts] + 1)
                    ).sum()
                )
                reads += len(ins_cohorts) * self.probe_limit
                reads += int(
                    (follow_ups * (plan.free_round[ins_cohorts] + 1)).sum()
                )
                writes = hit_events + len(ins_cohorts) + int(follow_ups.sum())
                self.accountant.record("wsaf", reads=reads, writes=writes)

            member_res = np.repeat(resolved, counts)
            original_idx = plan.order[member_res]
            totals_packets[original_idx] = sorted_tot_p[member_res]
            totals_bytes[original_idx] = sorted_tot_b[member_res]

        if plan.scalar_set.any():
            self._replay_scalar_events(
                plan, keys, pkts, byts, stamps, tuples,
                totals_packets, totals_bytes,
            )

        if on_accumulate is not None:
            for key, stamp, total_p, total_b in zip(
                keys.tolist(),
                stamps.tolist(),
                totals_packets.tolist(),
                totals_bytes.tolist(),
            ):
                on_accumulate(key, total_p, total_b, stamp)
        if not collect_totals:
            return None
        return list(zip(totals_packets.tolist(), totals_bytes.tolist()))

    def _replay_scalar_events(
        self, plan, keys, pkts, byts, stamps, tuples,
        totals_packets, totals_bytes,
    ) -> None:
        """Replay the plan's order-sensitive leftovers.

        Through the scalar accumulate, in original event order (their
        windows are disjoint from every vectorized cohort's, so
        interleaving with the vectorized commits is immaterial).
        Storage subclasses may override to peel off cohorts they can
        replay faster without changing the sequential outcome.
        """
        member_scalar = np.repeat(plan.scalar_set, plan.counts)
        scalar_original = np.sort(plan.order[member_scalar])
        scalar_accumulate = self.accumulate
        for i in scalar_original.tolist():
            total_p, total_b = scalar_accumulate(
                int(keys[i]),
                float(pkts[i]),
                float(byts[i]),
                float(stamps[i]),
                tuples[i],
            )
            totals_packets[i] = total_p
            totals_bytes[i] = total_b

    # -- batch staging (the overridable stages) -----------------------------

    def _build_batch_plan(self, keys, pkts, byts, stamps) -> _BatchPlan:
        """Stage a batch: cohorts, probe windows, and the pure/scalar split.

        Everything downstream — demotion stages, chain evaluation, the
        commit — reads from the returned plan.  The classification here is
        exactly the scalar-equivalence argument from the module docstring,
        including the contested-insert-target demotion.
        """
        n = len(keys)
        # Cohorts: stable sort keeps each flow's events in original order.
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        run_starts = np.flatnonzero(
            np.concatenate(([True], skeys[1:] != skeys[:-1]))
        )
        counts = np.diff(np.append(run_starts, n))
        ukeys = skeys[run_starts]
        num_cohorts = len(ukeys)

        mask64 = np.uint64(self._mask)
        slots = (
            ((ukeys & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        occ = self._occupied[slots]
        hit_matrix = occ & (self._keys[slots] == ukeys[:, None])
        hit_any = hit_matrix.any(axis=1)
        hit_round = np.where(hit_any, hit_matrix.argmax(axis=1), 0)
        free_matrix = ~occ
        free_any = free_matrix.any(axis=1)
        free_round = np.where(free_any, free_matrix.argmax(axis=1), 0)

        sorted_stamps = stamps[order]
        if self.gc_timeout is None:
            gc_risk = np.zeros(num_cohorts, dtype=bool)
        else:
            # Conservative: an entry expired at the cohort's latest event
            # is the only way probe-time GC could fire for any of them
            # (timestamps only grow, so expiry at an earlier event implies
            # expiry at the latest).
            cohort_max_ts = np.maximum.reduceat(sorted_stamps, run_starts)
            gc_risk = (
                occ
                & (
                    cohort_max_ts[:, None] - self._timestamps[slots]
                    > self.gc_timeout
                )
            ).any(axis=1)

        pure_hit = hit_any & ~gc_risk
        pure_ins = (~hit_any) & (~gc_risk) & free_any
        scalar_set = ~(pure_hit | pure_ins)

        cohort_rows = np.arange(num_cohorts)
        ins_target = slots[cohort_rows, free_round]
        hit_slot = slots[cohort_rows, hit_round]

        # Two cohorts racing for the same first-free slot must apply in
        # event order: demote every contender to the scalar path.
        if pure_ins.any():
            targets = ins_target[pure_ins]
            unique_targets, target_counts = np.unique(
                targets, return_counts=True
            )
            contested = unique_targets[target_counts > 1]
            if contested.size:
                demote = pure_ins & np.isin(ins_target, contested)
                scalar_set |= demote
                pure_ins &= ~demote

        plan = _BatchPlan()
        plan.n = n
        plan.order = order
        plan.run_starts = run_starts
        plan.counts = counts
        plan.ukeys = ukeys
        plan.slots = slots
        plan.hit_round = hit_round
        plan.free_round = free_round
        plan.hit_slot = hit_slot
        plan.ins_target = ins_target
        plan.pure_hit = pure_hit
        plan.pure_ins = pure_ins
        plan.scalar_set = scalar_set
        plan.sorted_pkts = pkts[order]
        plan.sorted_byts = byts[order]
        plan.sorted_stamps = sorted_stamps
        return plan

    def _conflict_fixpoint(self, plan: _BatchPlan) -> None:
        """Demote pure cohorts whose windows intersect scalar windows.

        Scalar cohorts may read/write anything inside their probe windows
        (eviction scans, GC reclaims, victim writes), so a pure cohort
        overlapping such a window is order-sensitive and demotes — which
        adds *its* window to the conflict set, possibly cascading.
        Idempotent, so the demotion loop may re-run it freely.
        """
        if plan.scalar_set.any() and (
            plan.pure_hit.any() or plan.pure_ins.any()
        ):
            conflict = np.zeros(self.num_entries, dtype=bool)
            pending = plan.scalar_set
            while True:
                conflict[plan.slots[pending].ravel()] = True
                demote = (plan.pure_hit | plan.pure_ins) & conflict[
                    plan.slots
                ].any(axis=1)
                if not demote.any():
                    break
                plan.pure_hit &= ~demote
                plan.pure_ins &= ~demote
                plan.scalar_set |= demote
                pending = demote

    def _order_risk_demotions(self, plan: _BatchPlan) -> "np.ndarray | None":
        """Extra cohorts this *storage* needs replayed scalar; None if none.

        Hook for subclasses whose commits couple slots beyond the probe
        windows (the ICE bucket upscale sweeps a whole bucket).  Called
        after every conflict fixpoint until it reports no demotions; the
        flat table has no such coupling.
        """
        return None

    def _resolved_chains(
        self, plan: _BatchPlan, res, res_slot, sorted_tot_p, sorted_tot_b
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Evaluate the resolved cohorts' add chains.

        Fills ``sorted_tot_p``/``sorted_tot_b`` (per-event running totals,
        at sorted positions) for every resolved member and returns the
        final ``(packets, bytes)`` per resolved cohort, aligned with
        ``res``.  Subclasses with non-plain-addition counters override
        this (the ICE table substitutes its quantized chains).
        """
        # Per-event running totals, bit-identical to sequential adds:
        # float addition is non-associative, so the add chains must run
        # in within-cohort order.  Lay the resolved cohorts out as rows
        # of a zero-padded (cohorts x max_count) matrix and accumulate
        # along the rows — padding zeros leave the running value
        # unchanged (x + 0.0 == x for the non-negative totals here), so
        # one ``np.add.accumulate`` reproduces every chain exactly.
        # (Empty insert targets hold 0.0, so the gathered base is right
        # for both hits and inserts.)
        sorted_pkts = plan.sorted_pkts
        sorted_byts = plan.sorted_byts
        running_packets = self._packets[res_slot].copy()
        running_bytes = self._bytes[res_slot].copy()
        starts_res = plan.run_starts[res]
        counts_res = plan.counts[res]
        max_count = int(counts_res.max())
        budget = max(16 * plan.n, 1 << 16)

        def matrix_chains(sub: "np.ndarray") -> None:
            starts_sub = starts_res[sub]
            counts_sub = counts_res[sub]
            width = int(counts_sub.max())
            row_of = np.repeat(np.arange(sub.size), counts_sub)
            within = np.arange(len(row_of)) - np.repeat(
                np.cumsum(counts_sub) - counts_sub, counts_sub
            )
            member_idx = np.repeat(starts_sub, counts_sub) + within
            chain_p = np.zeros((sub.size, width), dtype=np.float64)
            chain_b = np.zeros((sub.size, width), dtype=np.float64)
            chain_p[row_of, within] = sorted_pkts[member_idx]
            chain_b[row_of, within] = sorted_byts[member_idx]
            chain_p[:, 0] += running_packets[sub]
            chain_b[:, 0] += running_bytes[sub]
            np.add.accumulate(chain_p, axis=1, out=chain_p)
            np.add.accumulate(chain_b, axis=1, out=chain_b)
            sorted_tot_p[member_idx] = chain_p[row_of, within]
            sorted_tot_b[member_idx] = chain_b[row_of, within]
            rows = np.arange(sub.size)
            running_packets[sub] = chain_p[rows, counts_sub - 1]
            running_bytes[sub] = chain_b[rows, counts_sub - 1]

        if res.size * max_count <= budget:
            matrix_chains(np.arange(res.size))
        else:
            # A heavy-tailed batch: a few giant cohorts would blow the
            # matrix up.  Evaluate those chains in plain Python —
            # ``itertools.accumulate`` over C doubles runs the identical
            # add sequence, and a cohort's members are contiguous in the
            # sorted layout, so the totals land as one slice store — and
            # keep the one-shot matrix for the bulk of small cohorts.
            cutoff = max(budget // res.size, 8)
            giant = counts_res > cutoff
            small = np.flatnonzero(~giant)
            if small.size:
                matrix_chains(small)
            pkts_list = sorted_pkts.tolist()
            byts_list = sorted_byts.tolist()
            for j in np.flatnonzero(giant).tolist():
                start = int(starts_res[j])
                end = start + int(counts_res[j])
                chain = list(
                    accumulate(
                        pkts_list[start:end],
                        initial=float(running_packets[j]),
                    )
                )[1:]
                sorted_tot_p[start:end] = chain
                running_packets[j] = chain[-1]
                chain = list(
                    accumulate(
                        byts_list[start:end],
                        initial=float(running_bytes[j]),
                    )
                )[1:]
                sorted_tot_b[start:end] = chain
                running_bytes[j] = chain[-1]
        return running_packets, running_bytes

    def _commit_resolved_extra(self, plan: _BatchPlan, res, res_slot) -> None:
        """Commit storage-specific side state for the resolved slots.

        Runs after the float columns / occupancy commit; the flat table
        has none (the ICE table scatters its quantized counter planes)."""

    # -- snapshots ----------------------------------------------------------

    def estimates(
        self, flow_keys=None
    ) -> "dict[int, tuple[float, float]]":
        """Vectorized :meth:`WSAFTable.estimates` (same mapping, native
        Python keys/values)."""
        if flow_keys is None:
            occupied_slots = np.flatnonzero(self._occupied)
            return {
                key: (packets, bytes_)
                for key, packets, bytes_ in zip(
                    self._keys[occupied_slots].tolist(),
                    self._packets[occupied_slots].tolist(),
                    self._bytes[occupied_slots].tolist(),
                )
            }
        query = np.asarray(
            flow_keys
            if isinstance(flow_keys, np.ndarray)
            else list(flow_keys),
            dtype=np.uint64,
        )
        if query.size == 0:
            return {}
        mask64 = np.uint64(self._mask)
        slots = (
            ((query & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        found = self._occupied[slots] & (self._keys[slots] == query[:, None])
        rows = np.flatnonzero(found.any(axis=1))
        hit_slots = slots[rows, found[rows].argmax(axis=1)]
        return {
            key: (packets, bytes_)
            for key, packets, bytes_ in zip(
                query[rows].tolist(),
                self._packets[hit_slots].tolist(),
                self._bytes[hit_slots].tolist(),
            )
        }

    def estimates_arrays(
        self, flow_keys
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-flow (packets, bytes) float arrays aligned with ``flow_keys``.

        Missing flows read 0.0 — the array form of :meth:`estimates`, with
        no intermediate dict for callers that want columns back.
        """
        query = np.asarray(
            flow_keys
            if isinstance(flow_keys, np.ndarray)
            else list(flow_keys),
            dtype=np.uint64,
        )
        est_packets = np.zeros(query.size)
        est_bytes = np.zeros(query.size)
        if query.size == 0:
            return est_packets, est_bytes
        mask64 = np.uint64(self._mask)
        slots = (
            ((query & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        found = self._occupied[slots] & (self._keys[slots] == query[:, None])
        rows = np.flatnonzero(found.any(axis=1))
        hit_slots = slots[rows, found[rows].argmax(axis=1)]
        est_packets[rows] = self._packets[hit_slots]
        est_bytes[rows] = self._bytes[hit_slots]
        return est_packets, est_bytes

    def remove_batch(
        self, keys
    ) -> "list":
        """Bulk :meth:`WSAFTable.remove`: one probe matrix, same end state.

        Removals of distinct keys commute — a removal never relocates
        another record, and probe walks test occupancy + key only — so
        probing a snapshot of the table and clearing every hit at once is
        bit-identical to sequential removes, accountant tally included
        (a hit reads its probe round + 1 slots, a miss the whole window).
        Returns one ``(packets, bytes, last_update, five_tuple_packed)``
        tuple — or ``None`` — per key, aligned with ``keys`` (raw record
        columns, not :class:`~repro.core.wsaf.WSAFEntry`, so bulk
        promotions skip the per-entry dataclass cost).  The tiered
        backend's bulk promotion primitive.
        """
        query = np.asarray(keys, dtype=np.uint64)
        entries: "list" = [None] * query.size
        if query.size == 0:
            return entries
        mask64 = np.uint64(self._mask)
        slots = (
            ((query & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        found = self._occupied[slots] & (self._keys[slots] == query[:, None])
        rows = np.flatnonzero(found.any(axis=1))
        hit_round = found[rows].argmax(axis=1)
        if rows.size:
            hit_slots = slots[rows, hit_round]
            hit_packets = self._packets[hit_slots].tolist()
            hit_bytes = self._bytes[hit_slots].tolist()
            hit_stamps = self._timestamps[hit_slots].tolist()
            tuples = self._tuples
            discard = self._occupied_slots.discard
            for i, (row, slot) in enumerate(
                zip(rows.tolist(), hit_slots.tolist())
            ):
                entries[row] = (
                    hit_packets[i],
                    hit_bytes[i],
                    hit_stamps[i],
                    tuples[slot],
                )
                tuples[slot] = None
                discard(slot)
            self._occupied[hit_slots] = False
            self._keys[hit_slots] = 0
            self._packets[hit_slots] = 0.0
            self._bytes[hit_slots] = 0.0
            self._timestamps[hit_slots] = 0.0
            self._chance[hit_slots] = False
            self._clear_batch_extra(hit_slots)
            self.size -= int(rows.size)
        if self.accountant is not None:
            reads = int(hit_round.sum()) + int(rows.size)
            reads += (int(query.size) - int(rows.size)) * self.probe_limit
            self.accountant.record("wsaf", reads=reads, writes=int(rows.size))
        return entries

    def _clear_batch_extra(self, slots: "np.ndarray") -> None:
        """Clear storage-specific columns for bulk-removed ``slots``.

        The flat table has none; the ICE table zeroes its quantized
        counter planes (mirroring its scalar ``_clear`` override)."""

    def place_record_batch(self, records, now: float) -> int:
        """Bulk :meth:`WSAFTable.place_record`, sequential semantics kept.

        ``records`` is a sequence of ``(key, packets, bytes, timestamp,
        chance, five_tuple_packed)`` tuples applied in order — the tiered
        backend's bulk demotion primitive.  One probe matrix finds each
        record's first free-or-expired slot against a snapshot of the
        table.  That snapshot answer equals the sequential one whenever
        every record has such a candidate and no two records claim the
        same slot: placements only ever *fill* slots, so the occupied
        prefix a later record skips over is unchanged by earlier
        placements, and an earlier record's claimed slot was free at the
        snapshot — it can only sit at or after a later record's own first
        candidate, never before it.  If any record's window is full
        (eviction policy territory) or any two candidates collide, the
        whole batch replays through the scalar :meth:`place_record` in
        order instead — rare at sane load factors, and policy semantics
        are preserved exactly.  Returns the number of records placed.
        """
        k = len(records)
        if k == 0:
            return 0
        keys = np.fromiter(
            (record[0] for record in records), dtype=np.uint64, count=k
        )
        mask64 = np.uint64(self._mask)
        slots = (
            ((keys & mask64)[:, None] + self._tri[None, :]) & mask64
        ).astype(np.intp)
        occ = self._occupied[slots]
        if self.gc_timeout is not None:
            ok = ~occ | (
                occ & ((now - self._timestamps[slots]) > self.gc_timeout)
            )
        else:
            ok = ~occ
        has_slot = ok.any(axis=1)
        rows = np.arange(k)
        cand_round = ok.argmax(axis=1)
        target = slots[rows, cand_round]
        if not has_slot.all() or np.unique(target).size != k:
            placed = 0
            place_record = self.place_record
            for key, packets, bytes_, timestamp, chance, packed in records:
                if place_record(
                    key, packets, bytes_, timestamp, chance, packed, now
                ):
                    placed += 1
            return placed
        reclaimed = occ[rows, cand_round]
        n_reclaimed = int(reclaimed.sum())
        if n_reclaimed:
            # The chosen slot held an expired record: the scalar loop
            # clears it (counted) before re-filling it below.
            self._clear_batch_extra(target[reclaimed])
            self.gc_reclaimed += n_reclaimed
        self._occupied[target] = True
        self._keys[target] = keys
        self._packets[target] = np.fromiter(
            (record[1] for record in records), dtype=np.float64, count=k
        )
        self._bytes[target] = np.fromiter(
            (record[2] for record in records), dtype=np.float64, count=k
        )
        self._timestamps[target] = np.fromiter(
            (record[3] for record in records), dtype=np.float64, count=k
        )
        self._chance[target] = np.fromiter(
            (record[4] for record in records), dtype=bool, count=k
        )
        tuples = self._tuples
        for slot, record in zip(target.tolist(), records):
            tuples[slot] = record[5]
        self._occupied_slots.update(target.tolist())
        self.size += k - n_reclaimed
        if self.accountant is not None:
            self.accountant.record(
                "wsaf", reads=int(cand_round.sum()) + k, writes=k
            )
        return k

    # -- state transfer ------------------------------------------------------

    def export_state(self):
        """Array-gather :meth:`WSAFTable.export_state` (identical snapshot).

        The occupied slots come straight off the boolean column and every
        numeric column gathers in one fancy index; only the 5-tuple list
        (104-bit Python ints) walks a loop.
        """
        from repro.state.snapshot import WSAFState, pack_tuple_columns

        slots = np.flatnonzero(self._occupied)
        lo, hi, present = pack_tuple_columns(
            [self._tuples[s] for s in slots.tolist()]
        )
        return WSAFState(
            num_entries=self.num_entries,
            probe_limit=self.probe_limit,
            eviction_policy=self.eviction_policy,
            size=self.size,
            insertions=self.insertions,
            updates=self.updates,
            evictions=self.evictions,
            gc_reclaimed=self.gc_reclaimed,
            rejected=self.rejected,
            slots=slots.astype(np.int64),
            keys=self._keys[slots].copy(),
            packets=self._packets[slots].copy(),
            bytes=self._bytes[slots].copy(),
            timestamps=self._timestamps[slots].copy(),
            chance=self._chance[slots].copy(),
            tuple_lo=lo,
            tuple_hi=hi,
            tuple_present=present,
        )


class BatchedIceBucketsWSAFTable(_IceMixin, BatchedWSAFTable):
    """ICE-Buckets compressed counters over the batch-probed array table.

    Same quantized semantics as the scalar
    :class:`~repro.core.wsaf_icebuckets.IceBucketsWSAFTable` — bucket-shared
    scale exponents, upscale-on-overflow, dequantized float columns — and
    the same cohort-batched execution as :class:`BatchedWSAFTable`, joined
    through the three staging hooks:

    * :meth:`_order_risk_demotions` gathers each resolved cohort's bucket
      scale and demotes any cohort whose bucket a scalar-path store might
      upscale (upscale sweeps the whole bucket, coupling slots beyond the
      probe windows), then *simulates* the surviving quantized add chains
      at fixed scales — any counter that would overflow demotes its whole
      bucket (the real commit would upscale mid-batch) and the screen
      re-runs until a pass is overflow-free.
    * :meth:`_resolved_chains` reuses the screened simulation's per-event
      and final values verbatim (``round``/``np.rint`` are both
      round-half-even on the same float64, so the simulated chain is
      bit-identical to the scalar ``_store`` sequence).
    * :meth:`_commit_resolved_extra` scatters the simulated integer
      counters into the quantized planes alongside the float commit.

    Cohorts demoted by the screen replay through the inherited scalar
    ICE ``accumulate``, which performs the actual upscale exactly where
    the sequential run would.
    """

    #: Below this many still-active cohorts the vectorized position walk
    #: pays more in per-step numpy dispatch than the work itself; the
    #: remaining (long) chains finish in a plain Python loop running the
    #: identical ``round((v + e) / step)`` arithmetic.
    _WALK_CUTOFF = 16

    def _new_qplane(self):
        return np.zeros(self.num_entries, dtype=np.int64)

    def _scale_arrays(self):
        """The per-bucket scale lists as int64 arrays, cached.

        The lists are shared with the scalar mixin (which mutates them
        in place on upscale), so the cache invalidates on every
        :meth:`_upscale` and on :meth:`load_state`.
        """
        cached = getattr(self, "_scale_arr_cache", None)
        if cached is None:
            cached = (
                np.asarray(self._scale_packets, dtype=np.int64),
                np.asarray(self._scale_bytes, dtype=np.int64),
            )
            self._scale_arr_cache = cached
        return cached

    def _upscale(self, bucket, plane_scales, plane_q, plane_values):
        self._scale_arr_cache = None
        plane_scales[bucket] += 1
        scale_value = float(1 << plane_scales[bucket])
        begin = bucket * self.bucket_slots
        end = min(begin + self.bucket_slots, self.num_entries)
        # Slice-wide version of the scalar sweep: unoccupied counters are
        # zero and (0 + 1) >> 1 is zero again, so halving the whole slice
        # rewrites exactly the occupied entries' values.
        q = (plane_q[begin:end] + 1) >> 1
        plane_q[begin:end] = q
        plane_values[begin:end] = q * scale_value
        self.upscales += 1
        if self.accountant is not None:
            touched = int(self._occupied[begin:end].sum())
            if touched:
                self.accountant.record("wsaf", reads=touched, writes=touched)

    def load_state(self, state):
        self._scale_arr_cache = None
        super().load_state(state)

    def _clear_batch_extra(self, slots):
        # Mirror the scalar ``_clear`` override: a removed record's
        # quantized counters must vanish with it.
        self._qpackets[slots] = 0
        self._qbytes[slots] = 0

    def place_record_batch(self, records, now):
        # Placements must commit through per-bucket quantization (and may
        # upscale a whole bucket); keep them sequential here.
        placed = 0
        place_record = self.place_record
        for key, packets, bytes_, timestamp, chance, packed in records:
            if place_record(
                key, packets, bytes_, timestamp, chance, packed, now
            ):
                placed += 1
        return placed

    def _replay_scalar_events(
        self, plan, keys, pkts, byts, stamps, tuples,
        totals_packets, totals_bytes,
    ) -> None:
        """Replay demoted cohorts, peeling off the bucket-isolated ones.

        A demoted cohort whose probe window touches only buckets no
        *other* demoted cohort's window touches cannot observe — or be
        observed by — any other replayed event: probe walks, stores
        (hits, inserts, GC reclaims, eviction victims) and the buckets
        its stores can upscale all stay inside its own window's buckets,
        and surviving vectorized cohorts were already demoted out of
        every scalar-window bucket.  Such a cohort's events replay
        consecutively: the first through the real scalar
        :meth:`~repro.core.wsaf_icebuckets._IceMixin.accumulate`
        (insert, GC, eviction and rejection handled for real), the rest
        through the bare ``_store`` arithmetic on Python locals with the
        plane writes deferred to the cohort's end — invisible, since
        nothing else reads the bucket mid-cohort, and the mid-chain
        upscale halvings of the resident slot are overwritten by the
        very next committed store exactly as in the sequential run.
        Bucket-sharing cohorts replay first through the base class's
        ordered per-event loop (any interleaving with the isolated
        cohorts is equivalent, by the same disjointness).
        """
        scal = np.flatnonzero(plan.scalar_set)
        if scal.size == 0:
            return
        scal_slots = plan.slots[scal]
        if self.gc_timeout is None:
            # Without probe-time GC, a replayed cohort only touches (or
            # observes) its window up to its landing slot: a hit's walk
            # ends at the resident slot, an insert's outcome is fixed by
            # the slots up to its first free one, and a full window scans
            # (and may evict inside) all of it.  Occupancy inside scalar
            # windows is still the batch-entry snapshot here — vectorized
            # commits write only into their own, disjoint windows.
            occ_win = self._occupied[scal_slots]
            hit_matrix = occ_win & (
                self._keys[scal_slots] == plan.ukeys[scal][:, None]
            )
            hit_any = hit_matrix.any(axis=1)
            free_matrix = ~occ_win
            free_any = free_matrix.any(axis=1)
            claim_len = np.where(
                hit_any,
                hit_matrix.argmax(axis=1) + 1,
                np.where(
                    free_any,
                    free_matrix.argmax(axis=1) + 1,
                    self.probe_limit,
                ),
            )
            claim_mask = (
                np.arange(self.probe_limit)[None, :] < claim_len[:, None]
            )
            claim_rows = np.repeat(np.arange(scal.size), claim_len)
            claim_buckets = scal_slots[claim_mask] // self.bucket_slots
        else:
            # Probe-time GC can read — and reclaim — anywhere in the
            # window, so every window slot's bucket is claimed.
            claim_rows = np.repeat(np.arange(scal.size), self.probe_limit)
            claim_buckets = (scal_slots // self.bucket_slots).ravel()
        owner_pairs = np.unique(
            claim_rows.astype(np.int64) * self.num_buckets + claim_buckets
        )
        buckets_used, owners = np.unique(
            owner_pairs % self.num_buckets, return_counts=True
        )
        shared = buckets_used[owners > 1]
        isolated = np.ones(scal.size, dtype=bool)
        if shared.size:
            isolated[
                claim_rows[np.isin(claim_buckets, shared)]
            ] = False
        if not isolated.all():
            entangled = np.zeros(len(plan.ukeys), dtype=bool)
            entangled[scal[~isolated]] = True
            member = np.repeat(entangled, plan.counts)
            accumulate = self.accumulate
            for i in np.sort(plan.order[member]).tolist():
                total_p, total_b = accumulate(
                    int(keys[i]),
                    float(pkts[i]),
                    float(byts[i]),
                    float(stamps[i]),
                    tuples[i],
                )
                totals_packets[i] = total_p
                totals_bytes[i] = total_b
        fast = scal[isolated]
        if fast.size == 0:
            return

        accumulate = self.accumulate
        occupied = self._occupied
        keys_col = self._keys
        packets_col = self._packets
        bytes_col = self._bytes
        stamps_col = self._timestamps
        qpackets = self._qpackets
        qbytes = self._qbytes
        scale_packets = self._scale_packets
        scale_bytes = self._scale_bytes
        bucket_slots = self.bucket_slots
        counter_max = self._counter_max
        mask = self._mask
        gc_timeout = self.gc_timeout
        run_starts = plan.run_starts
        counts = plan.counts
        order_arr = plan.order
        sp = plan.sorted_pkts.tolist()
        sb = plan.sorted_byts.tolist()
        ss = plan.sorted_stamps.tolist()
        accountant = self.accountant
        for j in fast.tolist():
            start = int(run_starts[j])
            count = int(counts[j])
            orig = order_arr[start : start + count]
            key = int(plan.ukeys[j])
            total_p, total_b = accumulate(
                key, sp[start], sb[start], ss[start], tuples[orig[0]]
            )
            totals_packets[orig[0]] = total_p
            totals_bytes[orig[0]] = total_b
            if count == 1:
                continue
            base = key & mask
            slot = -1
            prefix: "list[int]" = []
            for r in range(self.probe_limit):
                probe = (base + ((r + r * r) >> 1)) & mask
                if occupied[probe] and int(keys_col[probe]) == key:
                    slot = probe
                    hit_round = r
                    break
                prefix.append(probe)
            if slot < 0:
                # The insert was rejected (full window, policy spared
                # everything): each remaining event retries for real.
                for pos in range(start + 1, start + count):
                    i = orig[pos - start]
                    total_p, total_b = accumulate(
                        key, sp[pos], sb[pos], ss[pos], tuples[i]
                    )
                    totals_packets[i] = total_p
                    totals_bytes[i] = total_b
                continue
            bucket = slot // bucket_slots
            vp = total_p
            vb = total_b
            qp = int(qpackets[slot])
            qb = int(qbytes[slot])
            step_p = float(1 << scale_packets[bucket])
            step_b = float(1 << scale_bytes[bucket])
            check_gc = gc_timeout is not None and bool(prefix)
            tot_p: "list[float]" = []
            tot_b: "list[float]" = []
            for pos in range(start + 1, start + count):
                if check_gc:
                    # The hit walk clears at most one expired slot per
                    # event: the first expired-occupied prefix slot, and
                    # only if no free prefix slot precedes it.
                    stamp = ss[pos]
                    for probe in prefix:
                        if occupied[probe]:
                            if stamp - float(stamps_col[probe]) > gc_timeout:
                                self._clear(probe)
                                self.gc_reclaimed += 1
                                break
                        else:
                            break
                target = vp + sp[pos]
                q = round(target / step_p)
                while q > counter_max:
                    self._upscale(
                        bucket, scale_packets, qpackets, packets_col
                    )
                    step_p = float(1 << scale_packets[bucket])
                    q = round(target / step_p)
                qp = q
                vp = q * step_p
                tot_p.append(vp)
                target = vb + sb[pos]
                q = round(target / step_b)
                while q > counter_max:
                    self._upscale(bucket, scale_bytes, qbytes, bytes_col)
                    step_b = float(1 << scale_bytes[bucket])
                    q = round(target / step_b)
                qb = q
                vb = q * step_b
                tot_b.append(vb)
            packets_col[slot] = vp
            bytes_col[slot] = vb
            qpackets[slot] = qp
            qbytes[slot] = qb
            stamps_col[slot] = ss[start + count - 1]
            self._chance[slot] = True
            self.updates += count - 1
            if accountant is not None:
                accountant.record(
                    "wsaf",
                    reads=(count - 1) * (hit_round + 1),
                    writes=count - 1,
                )
            rest = orig[1:]
            totals_packets[rest] = tot_p
            totals_bytes[rest] = tot_b

    def _order_risk_demotions(self, plan):
        pure = plan.pure_hit | plan.pure_ins
        if not pure.any():
            return None
        bucket_slots = self.bucket_slots
        forced = getattr(plan, "ice_forced_buckets", None)
        if forced is None:
            forced = np.zeros(self.num_buckets, dtype=bool)
            plan.ice_forced_buckets = forced
        risky = forced.copy()
        if plan.scalar_set.any():
            # A scalar cohort may store to any slot in its window (hit,
            # insert, GC reclaim, eviction victim), and any such store can
            # upscale — i.e. rewrite — that slot's entire bucket.
            risky[
                (plan.slots[plan.scalar_set] // bucket_slots).ravel()
            ] = True
        res_slot_all = np.where(plan.pure_hit, plan.hit_slot, plan.ins_target)
        res_bucket_all = res_slot_all // bucket_slots
        demote = pure & risky[res_bucket_all]
        if demote.any():
            return demote
        overflow_buckets = self._screen_quantized_chains(plan)
        if overflow_buckets is not None:
            forced |= overflow_buckets
            return pure & forced[res_bucket_all]
        return None

    def _screen_quantized_chains(self, plan):
        """Simulate the resolved quantized chains; cache or flag overflow.

        Runs every currently-resolved cohort's add chain at its bucket's
        *current* scales (fixed for the whole batch: the demotion stage
        already removed every cohort whose bucket anything else could
        upscale).  If no counter overflows, the per-event totals, final
        values, and final integer counters are cached on the plan for
        :meth:`_resolved_chains` / :meth:`_commit_resolved_extra`.
        Otherwise returns the bucket mask that must demote — committing
        those cohorts would upscale mid-batch, which is order-sensitive.
        """
        resolved = plan.pure_hit | plan.pure_ins
        res = np.flatnonzero(resolved)
        n = plan.n
        plan.ice_tot_p = np.empty(n, dtype=np.float64)
        plan.ice_tot_b = np.empty(n, dtype=np.float64)
        if not res.size:
            empty_f = np.empty(0, dtype=np.float64)
            empty_q = np.empty(0, dtype=np.int64)
            plan.ice_final = (empty_f, empty_f)
            plan.ice_q = (empty_q, empty_q)
            return None
        res_slot = np.where(plan.pure_hit, plan.hit_slot, plan.ins_target)[res]
        bucket = res_slot // self.bucket_slots
        scale_p, scale_b = self._scale_arrays()
        step_p = np.ldexp(1.0, scale_p[bucket])
        step_b = np.ldexp(1.0, scale_b[bucket])
        counter_max = float(self._counter_max)
        v_p = self._packets[res_slot].astype(np.float64, copy=True)
        v_b = self._bytes[res_slot].astype(np.float64, copy=True)
        overflow = np.zeros(res.size, dtype=bool)
        starts_res = plan.run_starts[res]
        counts_res = plan.counts[res]
        sorted_pkts = plan.sorted_pkts
        sorted_byts = plan.sorted_byts
        # Position walk, vectorized across cohorts: each step is exactly
        # the scalar ``_store`` arithmetic — add the exact estimate, divide
        # by the (power-of-two) step, round half-even, rescale.
        active = np.flatnonzero(counts_res)
        position = 0
        while active.size > self._WALK_CUTOFF:
            event_idx = starts_res[active] + position
            q = np.rint((v_p[active] + sorted_pkts[event_idx]) / step_p[active])
            overflow[active] |= q > counter_max
            v_p[active] = q * step_p[active]
            plan.ice_tot_p[event_idx] = v_p[active]
            q = np.rint((v_b[active] + sorted_byts[event_idx]) / step_b[active])
            overflow[active] |= q > counter_max
            v_b[active] = q * step_b[active]
            plan.ice_tot_b[event_idx] = v_b[active]
            position += 1
            active = active[counts_res[active] > position]
        # The few survivors are the longest chains; each finishes in a
        # scalar loop running the identical round-half-even arithmetic
        # (``round`` on a float64 == ``np.rint``), cheaper per step than
        # a numpy dispatch over a near-empty lane set.
        tot_p, tot_b = plan.ice_tot_p, plan.ice_tot_b
        for j in active.tolist():
            vp, vb = v_p[j], v_b[j]
            sp, sb = step_p[j], step_b[j]
            start = starts_res[j]
            over = False
            for idx in range(start + position, start + counts_res[j]):
                q = round((vp + sorted_pkts[idx]) / sp)
                over |= q > counter_max
                vp = q * sp
                tot_p[idx] = vp
                q = round((vb + sorted_byts[idx]) / sb)
                over |= q > counter_max
                vb = q * sb
                tot_b[idx] = vb
            v_p[j], v_b[j] = vp, vb
            overflow[j] |= over
        if overflow.any():
            mask = np.zeros(self.num_buckets, dtype=bool)
            mask[bucket[overflow]] = True
            return mask
        plan.ice_final = (v_p, v_b)
        # q·2^scale is exact in float64, so the division recovers the
        # integer counters exactly.
        plan.ice_q = (
            np.rint(v_p / step_p).astype(np.int64),
            np.rint(v_b / step_b).astype(np.int64),
        )
        return None

    def _resolved_chains(self, plan, res, res_slot, sorted_tot_p, sorted_tot_b):
        # The overflow screen's last pass simulated exactly this resolved
        # set (the demotion loop only exits after a clean screen, and
        # nothing shrinks the set afterwards); reuse its chains.
        member_res = np.repeat(plan.pure_hit | plan.pure_ins, plan.counts)
        sorted_tot_p[member_res] = plan.ice_tot_p[member_res]
        sorted_tot_b[member_res] = plan.ice_tot_b[member_res]
        return plan.ice_final

    def _commit_resolved_extra(self, plan, res, res_slot):
        q_p, q_b = plan.ice_q
        self._qpackets[res_slot] = q_p
        self._qbytes[res_slot] = q_b
