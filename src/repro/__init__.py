"""InstaMeasure reproduction — instant per-flow detection with an In-DRAM WSAF.

A from-scratch Python implementation of *InstaMeasure: Instant Per-flow
Detection Using Large In-DRAM Working Set of Active Flows* (ICDCS 2019):
the two-layer FlowRegulator sketch, the In-DRAM WSAF table, single- and
multi-core measurement engines, detection applications, comparison
baselines, and the substrates (traffic synthesis, memory/timing models)
needed to regenerate the paper's evaluation.

Quickstart::

    from repro import InstaMeasure, InstaMeasureConfig
    from repro.traffic import build_caida_like_trace, CaidaLikeConfig

    trace = build_caida_like_trace(CaidaLikeConfig(num_flows=20_000))
    engine = InstaMeasure(InstaMeasureConfig(l1_memory_bytes=8192))
    result = engine.process_trace(trace)
    print(f"regulation rate: {result.regulation_rate:.2%}")
    est_packets, est_bytes = engine.estimates_for(trace)
"""

from repro.core import (
    FlowRegulator,
    InstaMeasure,
    InstaMeasureConfig,
    MeasurementResult,
    MultiCoreInstaMeasure,
    MultiCoreResult,
    RCCSketch,
    WSAFTable,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    DecodeError,
    ReproError,
    TraceFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "CapacityError",
    "ConfigurationError",
    "DecodeError",
    "FlowRegulator",
    "InstaMeasure",
    "InstaMeasureConfig",
    "MeasurementResult",
    "MultiCoreInstaMeasure",
    "MultiCoreResult",
    "RCCSketch",
    "ReproError",
    "TraceFormatError",
    "WSAFTable",
    "__version__",
]
