"""Named memory technologies with latency and cost parameters.

Latencies are representative random-access figures for commodity parts of
the paper's era (2018-2019): DRAM random access ≈ 60 ns (row miss), on-chip
SRAM ≈ 3-6 ns, TCAM lookup ≈ 2 ns.  The ratios — DRAM 10-20× slower than
SRAM — are what the paper's Section II reasoning relies on, and what the
defaults here encode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryTechnology:
    """A memory technology the WSAF or a sketch can live in.

    Attributes:
        name: human-readable name.
        access_ns: latency of one random access (read or write), ns.
        cost_per_mb_usd: rough part cost per megabyte (drives the paper's
            cost-effectiveness argument for large In-DRAM WSAFs).
        typical_capacity_mb: capacity a single measurement device would
            realistically dedicate.
    """

    name: str
    access_ns: float
    cost_per_mb_usd: float
    typical_capacity_mb: float

    def __post_init__(self) -> None:
        if self.access_ns <= 0:
            raise ConfigurationError(f"{self.name}: access_ns must be positive")
        if self.cost_per_mb_usd < 0 or self.typical_capacity_mb <= 0:
            raise ConfigurationError(f"{self.name}: invalid cost/capacity")

    def accesses_per_second(self) -> float:
        """How many random accesses per second the technology sustains."""
        return 1e9 / self.access_ns

    def speed_ratio(self, other: "MemoryTechnology") -> float:
        """How many times faster ``self`` is than ``other`` (>1 = faster)."""
        return other.access_ns / self.access_ns


DRAM = MemoryTechnology(
    name="DRAM", access_ns=60.0, cost_per_mb_usd=0.005, typical_capacity_mb=16_384.0
)
SRAM = MemoryTechnology(
    name="SRAM", access_ns=4.0, cost_per_mb_usd=10.0, typical_capacity_mb=32.0
)
TCAM = MemoryTechnology(
    name="TCAM", access_ns=2.0, cost_per_mb_usd=100.0, typical_capacity_mb=2.0
)

_BY_NAME = {tech.name.lower(): tech for tech in (DRAM, SRAM, TCAM)}


def technology_by_name(name: str) -> MemoryTechnology:
    """Look up a built-in technology by case-insensitive name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown memory technology {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
