"""Memory-technology model (DRAM vs SRAM vs TCAM).

The paper's central argument is arithmetic over memory speeds: a WSAF in
DRAM can only absorb insertions at some fraction of the packet arrival rate
("SRAM is 10-20 times faster than DRAM"), so the FlowRegulator must push the
insertion rate below that margin.  This package makes that arithmetic an
explicit, testable model:

* :class:`~repro.memmodel.technology.MemoryTechnology` — named technologies
  with access latency and cost per MB.
* :class:`~repro.memmodel.accounting.AccessAccountant` — counts structure
  accesses and converts them to time on a given technology.
* :func:`~repro.memmodel.accounting.ips_margin` — the maximum insertion rate
  a WSAF on a technology can sustain, as a fraction of a reference pps.
"""

from repro.memmodel.technology import (
    DRAM,
    SRAM,
    TCAM,
    MemoryTechnology,
    technology_by_name,
)
from repro.memmodel.accounting import AccessAccountant, ips_margin, sustainable_ips

__all__ = [
    "DRAM",
    "SRAM",
    "TCAM",
    "AccessAccountant",
    "MemoryTechnology",
    "ips_margin",
    "sustainable_ips",
    "technology_by_name",
]
