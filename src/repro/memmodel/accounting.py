"""Access accounting and ips/pps margin arithmetic.

Section II frames the design constraint as ``ips = pps``: a WSAF must absorb
one insertion/lookup per arriving packet.  FlowRegulator relaxes this by
regulating the insertion stream down to ~1 % of pps.  These helpers express
the two sides of that inequality:

* :func:`sustainable_ips` — insertions/second a WSAF on a technology can
  absorb, given how many memory accesses one insertion costs (probing).
* :func:`ips_margin` — the same, as a fraction of a reference packet rate;
  a regulator is feasible on a technology iff its measured regulation rate
  is below this margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memmodel.technology import MemoryTechnology


def sustainable_ips(
    technology: MemoryTechnology, accesses_per_insertion: float = 2.0
) -> float:
    """Insertions per second a table on ``technology`` sustains.

    ``accesses_per_insertion`` is the average number of random memory
    accesses one table operation costs (≥1; ~2 for a lightly loaded
    open-addressing table: one probe read plus the write).
    """
    if accesses_per_insertion < 1.0:
        raise ConfigurationError("an insertion costs at least one access")
    return technology.accesses_per_second() / accesses_per_insertion


def ips_margin(
    technology: MemoryTechnology,
    reference_pps: float,
    accesses_per_insertion: float = 2.0,
) -> float:
    """Maximum regulation rate (ips/pps) feasible on ``technology``.

    A FlowRegulator whose measured regulation rate is below this value can
    feed a WSAF on ``technology`` without the table becoming the bottleneck
    at ``reference_pps`` packets per second.
    """
    if reference_pps <= 0:
        raise ConfigurationError("reference_pps must be positive")
    return sustainable_ips(technology, accesses_per_insertion) / reference_pps


@dataclass
class AccessAccountant:
    """Counts memory accesses of a structure and prices them on a technology.

    Data-plane structures accept an optional accountant and call
    :meth:`record` on every random access; experiments then read total
    modelled time.  Keeping the accountant separate from the structures
    keeps the hot path allocation-free when accounting is off.

    ``technologies`` maps access labels (or label prefixes, longest match
    wins) to the technology that structure lives in; unmapped labels price
    at the default ``technology``.  This is how a tiered WSAF is costed:
    the hot-cache tier records under ``"wsaf.cache"`` (SRAM) while the
    backing table records under ``"wsaf"`` (DRAM), and
    :meth:`modelled_seconds` prices each at its own latency.
    """

    technology: MemoryTechnology
    technologies: "dict[str, MemoryTechnology]" = field(default_factory=dict)
    reads: int = 0
    writes: int = 0
    _label_counts: "dict[str, int]" = field(default_factory=dict)

    def record(self, label: str, reads: int = 0, writes: int = 0) -> None:
        """Record ``reads``/``writes`` random accesses attributed to ``label``."""
        self.reads += reads
        self.writes += writes
        if reads or writes:
            self._label_counts[label] = (
                self._label_counts.get(label, 0) + reads + writes
            )

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    def technology_for(self, label: str) -> MemoryTechnology:
        """The technology pricing ``label``'s accesses.

        Exact label match first, then the longest mapped prefix ending at
        a ``.`` boundary (``"wsaf"`` prices ``"wsaf.cache"`` unless the
        cache has its own entry), then the accountant-wide default.
        """
        if label in self.technologies:
            return self.technologies[label]
        best: "MemoryTechnology | None" = None
        best_len = -1
        for prefix, technology in self.technologies.items():
            if label.startswith(prefix + ".") and len(prefix) > best_len:
                best = technology
                best_len = len(prefix)
        return best if best is not None else self.technology

    def modelled_seconds(self, labels=None) -> float:
        """Total time the recorded accesses take, per-label priced.

        With ``labels`` (an iterable of label names), only those labels'
        accesses are summed — experiments use this to isolate one stage
        (e.g. the WSAF path) from the rest of the pipeline.  Accesses
        counted on ``reads``/``writes`` without label attribution price
        at the accountant-wide default technology.
        """
        if labels is not None:
            wanted = set(labels)
            return sum(
                count * self.technology_for(label).access_ns * 1e-9
                for label, count in self._label_counts.items()
                if label in wanted
            )
        total = sum(
            count * self.technology_for(label).access_ns * 1e-9
            for label, count in self._label_counts.items()
        )
        unlabelled = self.total_accesses - sum(self._label_counts.values())
        if unlabelled > 0:
            total += unlabelled * self.technology.access_ns * 1e-9
        return total

    def by_label(self) -> "dict[str, int]":
        """Access counts per structure label (copy)."""
        return dict(self._label_counts)

    def reset(self) -> None:
        """Zero all counters and per-label attribution."""
        self.reads = 0
        self.writes = 0
        self._label_counts.clear()
