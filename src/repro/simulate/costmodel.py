"""Per-packet cycle/latency cost model (the Fig 9(a) substitute).

The paper measures 18.88 / 25.48 / 36.19 / 46.32 Mpps on 1-4 Atom cores.
Those numbers are produced by per-packet work that this reproduction also
performs — one 5-tuple hash, one L1 word access, an L2 access on L1
saturation, a WSAF probe-and-write on L2 saturation — plus fixed packet-I/O
overhead.  The model prices each component in nanoseconds and combines them
with *measured* rates (L1 saturation rate, regulation rate, dispatch load
shares) from the actual data path, so everything that can be measured is
measured and only raw silicon speed is assumed.

Defaults are calibrated so a single modelled core lands at ≈19 Mpps on a
CAIDA-like mix, and multi-core scaling is sublinear through the two
mechanisms the paper's numbers imply: imperfect popcount load balance and
shared-memory contention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class CycleCostModel:
    """Nanosecond prices of the InstaMeasure per-packet pipeline.

    Attributes:
        parse_ns: packet RX + header parse (DPDK burst amortized).
        hash_ns: one 5-tuple hash (shared by L1/L2 placement).
        overhead_ns: fixed per-packet framework overhead (queueing, loop).
        sketch_access_ns: one sketch word access.  Sketches are small and
            hot, so this is a DRAM row-buffer/L2-cache hit, not a 60 ns
            random DRAM access.
        wsaf_access_ns: one WSAF access (random DRAM).
        wsaf_accesses_per_insertion: average probes + write per insertion.
        manager_ns: manager-core work per packet (popcount + enqueue).
        contention_per_worker: fractional slowdown each additional worker
            adds through shared memory/bus contention.
    """

    parse_ns: float = 10.0
    hash_ns: float = 12.0
    overhead_ns: float = 12.0
    sketch_access_ns: float = 16.0
    wsaf_access_ns: float = 60.0
    wsaf_accesses_per_insertion: float = 3.0
    manager_ns: float = 6.0
    contention_per_worker: float = 0.18

    def __post_init__(self) -> None:
        for name in (
            "parse_ns",
            "hash_ns",
            "overhead_ns",
            "sketch_access_ns",
            "wsaf_access_ns",
            "wsaf_accesses_per_insertion",
            "manager_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.contention_per_worker < 0:
            raise ConfigurationError("contention_per_worker must be >= 0")

    def packet_cost_ns(self, l1_saturation_rate: float, regulation_rate: float) -> float:
        """Expected worker nanoseconds per packet.

        Args:
            l1_saturation_rate: measured L1 saturations per packet (adds the
                L2 access).
            regulation_rate: measured WSAF insertions per packet (adds the
                WSAF probe/write).
        """
        if not 0.0 <= regulation_rate <= l1_saturation_rate <= 1.0:
            raise ConfigurationError(
                "need 0 <= regulation_rate <= l1_saturation_rate <= 1"
            )
        return (
            self.parse_ns
            + self.hash_ns
            + self.overhead_ns
            + self.sketch_access_ns  # L1, every packet
            + l1_saturation_rate * self.sketch_access_ns  # L2 on saturation
            + regulation_rate
            * self.wsaf_accesses_per_insertion
            * self.wsaf_access_ns
        )

    def single_core_pps(
        self, l1_saturation_rate: float, regulation_rate: float
    ) -> float:
        """Modelled single-worker throughput in packets per second."""
        return 1e9 / self.packet_cost_ns(l1_saturation_rate, regulation_rate)

    def manager_pps(self) -> float:
        """Modelled manager-core dispatch capacity."""
        return 1e9 / self.manager_ns

    def multicore_pps(
        self,
        num_workers: int,
        max_load_share: float,
        l1_saturation_rate: float,
        regulation_rate: float,
    ) -> float:
        """Modelled system throughput with ``num_workers`` workers.

        The system saturates when its busiest worker does — so capacity is
        ``worker_rate / max_load_share`` — degraded by memory contention and
        capped by the manager core (the single-worker case has no manager).
        """
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if not 0.0 < max_load_share <= 1.0:
            raise ConfigurationError("max_load_share must be in (0, 1]")
        if max_load_share < 1.0 / num_workers:
            raise ConfigurationError(
                "max_load_share cannot be below 1/num_workers"
            )
        worker_rate = self.single_core_pps(l1_saturation_rate, regulation_rate)
        contention = 1.0 + self.contention_per_worker * (num_workers - 1)
        capacity = worker_rate / max_load_share / contention
        if num_workers == 1:
            return worker_rate
        return min(capacity, self.manager_pps())

    def utilization(
        self,
        offered_pps: float,
        l1_saturation_rate: float,
        regulation_rate: float,
    ) -> float:
        """Fraction of one worker core busy at ``offered_pps`` (clamped to 1)."""
        if offered_pps < 0:
            raise ConfigurationError("offered_pps must be >= 0")
        busy = offered_pps * self.packet_cost_ns(
            l1_saturation_rate, regulation_rate
        ) * 1e-9
        return min(1.0, busy)
