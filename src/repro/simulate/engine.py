"""Discrete-time queue/utilization simulation (Fig 12(c) substitute).

The multi-core system of Section IV-C is a manager feeding per-worker FIFO
queues.  Given a trace, a dispatch assignment and a per-worker service rate,
this module plays the arrival process against the service process in fixed
time buckets, producing the utilization and queue-depth time series the
paper plots for the 113-hour run ("the core's workload matches the traffic
pattern, and the core usage did not go over 40 %; the queue did not grow
noticeably").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


@dataclass
class QueueSeries:
    """Per-bucket time series of a queue simulation.

    Attributes:
        times: bucket start times, shape (T,).
        offered: packets offered per worker per bucket, shape (W, T).
        utilization: busy fraction per worker per bucket, shape (W, T),
            clamped to 1.0.
        queue_depth: backlog (packets) per worker at each bucket end (W, T).
    """

    times: np.ndarray
    offered: np.ndarray
    utilization: np.ndarray
    queue_depth: np.ndarray

    @property
    def num_workers(self) -> int:
        return self.offered.shape[0]

    def peak_utilization(self) -> float:
        """Highest per-worker utilization over the whole run."""
        return float(self.utilization.max()) if self.utilization.size else 0.0

    def peak_queue_depth(self) -> float:
        """Deepest per-worker backlog (packets) over the whole run."""
        return float(self.queue_depth.max()) if self.queue_depth.size else 0.0

    def mean_wait_seconds(self, bucket_seconds: float) -> float:
        """Average queueing delay via Little's law (W = L / λ).

        ``L`` is the time-averaged backlog across workers and ``λ`` the
        aggregate arrival rate; zero when nothing was offered.
        """
        total_offered = float(self.offered.sum())
        if total_offered == 0.0 or self.queue_depth.size == 0:
            return 0.0
        mean_backlog = float(self.queue_depth.sum(axis=0).mean())
        arrival_rate = total_offered / (self.offered.shape[1] * bucket_seconds)
        return mean_backlog / arrival_rate


def simulate_queues(
    trace: Trace,
    assignment: np.ndarray,
    num_workers: int,
    service_pps: float,
    bucket_seconds: float,
) -> QueueSeries:
    """Play ``trace`` through per-worker FIFO queues.

    Args:
        trace: arrival process (timestamps define the buckets).
        assignment: per-packet worker index (e.g. from
            :meth:`MultiCoreInstaMeasure.dispatch`).
        num_workers: worker count.
        service_pps: packets per second one worker can drain.
        bucket_seconds: time-bucket width.

    Each bucket drains ``service_pps * bucket_seconds`` packets per worker
    from backlog + arrivals; the remainder carries over as queue depth.
    Utilization is work performed over capacity.
    """
    if num_workers < 1:
        raise ConfigurationError("num_workers must be >= 1")
    if service_pps <= 0:
        raise ConfigurationError("service_pps must be positive")
    if bucket_seconds <= 0:
        raise ConfigurationError("bucket_seconds must be positive")
    if len(assignment) != trace.num_packets:
        raise ConfigurationError("assignment length must match the trace")

    if trace.num_packets == 0:
        empty = np.zeros((num_workers, 0))
        return QueueSeries(np.array([]), empty, empty, empty)

    start = float(trace.timestamps[0])
    bucket_of_packet = ((trace.timestamps - start) / bucket_seconds).astype(np.int64)
    num_buckets = int(bucket_of_packet.max()) + 1

    offered = np.zeros((num_workers, num_buckets))
    for worker in range(num_workers):
        mask = assignment == worker
        if mask.any():
            offered[worker] = np.bincount(
                bucket_of_packet[mask], minlength=num_buckets
            )

    capacity = service_pps * bucket_seconds
    utilization = np.zeros_like(offered)
    queue_depth = np.zeros_like(offered)
    backlog = np.zeros(num_workers)
    for bucket in range(num_buckets):
        workload = backlog + offered[:, bucket]
        served = np.minimum(workload, capacity)
        backlog = workload - served
        utilization[:, bucket] = served / capacity
        queue_depth[:, bucket] = backlog

    times = start + bucket_seconds * np.arange(num_buckets)
    return QueueSeries(
        times=times,
        offered=offered,
        utilization=utilization,
        queue_depth=queue_depth,
    )
