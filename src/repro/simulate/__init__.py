"""Simulation substrate: timing, link, and queueing models.

Pure Python cannot hit the paper's 18.88 Mpps per Atom core, so the timing
side of the evaluation (Fig 9(a), Fig 12(c)) is reproduced with explicit
models fed by *measured* algorithmic quantities (saturation rates, load
shares) from the real data-path implementation:

* :class:`~repro.simulate.costmodel.CycleCostModel` — per-packet nanosecond
  cost of the InstaMeasure pipeline, calibrated to the paper's single-core
  throughput.
* :class:`~repro.simulate.linkmodel.MirrorPort` — the gateway mirror port
  that "starts to drop packets when port capacity is exceeded".
* :func:`~repro.simulate.engine.simulate_queues` — a discrete-time
  queue/utilization simulation of the manager/worker system.
"""

from repro.simulate.costmodel import CycleCostModel
from repro.simulate.linkmodel import MirrorPort, MirrorPortStats
from repro.simulate.engine import QueueSeries, simulate_queues

__all__ = [
    "CycleCostModel",
    "MirrorPort",
    "MirrorPortStats",
    "QueueSeries",
    "simulate_queues",
]
