"""Mirror-port model (the campus experiment's observation point).

The paper taps the campus gateway through a mirroring port that "starts to
drop packets when port capacity is exceeded", and evaluates estimation
accuracy against ground truth recorded *after* those drops.  This module is
that port: a token bucket at the port's line rate with a small port buffer.
Applying it to a trace yields the post-drop trace both the estimator and
the ground-truth recorder observe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


@dataclass
class MirrorPortStats:
    """Outcome of pushing a trace through a mirror port."""

    offered_packets: int
    delivered_packets: int
    dropped_packets: int

    @property
    def drop_rate(self) -> float:
        if self.offered_packets == 0:
            return 0.0
        return self.dropped_packets / self.offered_packets


class MirrorPort:
    """A mirroring port with finite line rate and buffer.

    Modelled as a byte token bucket: tokens refill at ``capacity_bps / 8``
    bytes per second up to ``buffer_bytes``; a packet is forwarded iff the
    bucket holds its size, else it is dropped (mirror ports do not
    backpressure the switch).

    Args:
        capacity_bps: mirror port line rate in bits per second; must be
            a positive finite number (a zero or negative rate would
            make the token-bucket refill meaningless, so it raises
            :class:`~repro.errors.ConfigurationError` — a
            ``ValueError`` subclass — up front rather than silently
            dropping everything or dividing by zero downstream).
        buffer_bytes: port buffer depth in bytes; positive and finite
            for the same reason.
    """

    def __init__(self, capacity_bps: float, buffer_bytes: int = 512 * 1024) -> None:
        if not isinstance(capacity_bps, (int, float)) or not math.isfinite(
            capacity_bps
        ):
            raise ConfigurationError(
                f"capacity_bps must be a finite number, got {capacity_bps!r}"
            )
        if capacity_bps <= 0:
            raise ConfigurationError(
                "capacity_bps must be positive (a mirror port with no line "
                f"rate delivers nothing), got {capacity_bps}"
            )
        if not isinstance(buffer_bytes, (int, float)) or not math.isfinite(
            buffer_bytes
        ):
            raise ConfigurationError(
                f"buffer_bytes must be a finite number, got {buffer_bytes!r}"
            )
        if buffer_bytes <= 0:
            raise ConfigurationError(
                "buffer_bytes must be positive (a bufferless port cannot "
                f"forward any packet), got {buffer_bytes}"
            )
        self.capacity_bps = capacity_bps
        self.buffer_bytes = buffer_bytes

    def apply(self, trace: Trace) -> "tuple[Trace, MirrorPortStats]":
        """The post-drop trace and drop statistics for ``trace``.

        An empty trace is well-defined: it passes through unchanged
        with all-zero stats (``drop_rate`` reports 0.0, not a division
        by zero).
        """
        num_packets = trace.num_packets
        if num_packets == 0:
            return trace, MirrorPortStats(0, 0, 0)

        refill_per_second = self.capacity_bps / 8.0
        depth = float(self.buffer_bytes)
        tokens = depth
        last_time = float(trace.timestamps[0])

        timestamps = trace.timestamps.tolist()
        sizes = trace.sizes.tolist()
        keep = np.ones(num_packets, dtype=bool)
        dropped = 0
        for p in range(num_packets):
            now = timestamps[p]
            tokens = min(depth, tokens + (now - last_time) * refill_per_second)
            last_time = now
            size = sizes[p]
            if tokens >= size:
                tokens -= size
            else:
                keep[p] = False
                dropped += 1

        delivered = Trace(
            timestamps=trace.timestamps[keep],
            flow_ids=trace.flow_ids[keep],
            sizes=trace.sizes[keep],
            flows=trace.flows,
        )
        stats = MirrorPortStats(
            offered_packets=num_packets,
            delivered_packets=num_packets - dropped,
            dropped_packets=dropped,
        )
        return delivered, stats
