"""Indexed families of seeded hash functions."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.mix import (
    MASK64,
    hash_u64,
    mix64_array,
    splitmix64,
    splitmix64_array,
)


class HashFamily:
    """A family of ``k`` independent-looking 64-bit hash functions.

    Each member is the seeded mixer :func:`repro.hashing.mix.hash_u64` with a
    per-member seed derived from the family seed via splitmix64.  Sketches
    that need several hash functions (e.g. CSM's counter selection, the WSAF
    probe hash, RCC's index/offset split) take a family and index into it, so
    all randomness in an experiment flows from a single seed.
    """

    def __init__(self, size: int, seed: int = 0) -> None:
        if size <= 0:
            raise ConfigurationError(f"hash family size must be positive, got {size}")
        self._seeds = []
        state = seed & MASK64
        for _ in range(size):
            state = splitmix64(state)
            self._seeds.append(state)
        # Pre-mixed per-member seeds: hash_u64(v, s) = mix64(splitmix64(v)
        # ^ splitmix64(s)), so the member only contributes this constant.
        self._seed_mixes = np.array(
            [splitmix64(s) for s in self._seeds], dtype=np.uint64
        )

    def __len__(self) -> int:
        return len(self._seeds)

    def hash(self, index: int, value: int) -> int:
        """Apply the ``index``-th member to ``value`` (64-bit output)."""
        return hash_u64(value, self._seeds[index])

    def hash_mod(self, index: int, value: int, modulus: int) -> int:
        """Apply the ``index``-th member and reduce modulo ``modulus``."""
        return self.hash(index, value) % modulus

    def hash_array(self, index: int, values: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`hash`: the ``index``-th member over a
        ``uint64`` array (bit-identical to the scalar member)."""
        if not 0 <= index < len(self._seeds):
            raise ConfigurationError(f"no member {index} in a family of {len(self)}")
        values = np.asarray(values, dtype=np.uint64)
        return mix64_array(splitmix64_array(values) ^ self._seed_mixes[index])

    def hash_matrix(self, values: "np.ndarray") -> "np.ndarray":
        """All members over ``values`` at once: a ``(len(values),
        len(self))`` uint64 matrix whose column ``j`` equals
        ``hash_array(j, values)``.

        The splitmix64 pre-mix of the values is shared across members, so
        this is cheaper than ``len(self)`` separate :meth:`hash_array`
        calls — the shape CSM's per-flow counter placement wants.
        """
        values = np.asarray(values, dtype=np.uint64)
        premixed = splitmix64_array(values)
        return mix64_array(premixed[:, None] ^ self._seed_mixes[None, :])

    def seed_of(self, index: int) -> int:
        """The derived seed of the ``index``-th member (for vectorized use)."""
        return self._seeds[index]
