"""Indexed families of seeded hash functions."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hashing.mix import MASK64, hash_u64, splitmix64


class HashFamily:
    """A family of ``k`` independent-looking 64-bit hash functions.

    Each member is the seeded mixer :func:`repro.hashing.mix.hash_u64` with a
    per-member seed derived from the family seed via splitmix64.  Sketches
    that need several hash functions (e.g. CSM's counter selection, the WSAF
    probe hash, RCC's index/offset split) take a family and index into it, so
    all randomness in an experiment flows from a single seed.
    """

    def __init__(self, size: int, seed: int = 0) -> None:
        if size <= 0:
            raise ConfigurationError(f"hash family size must be positive, got {size}")
        self._seeds = []
        state = seed & MASK64
        for _ in range(size):
            state = splitmix64(state)
            self._seeds.append(state)

    def __len__(self) -> int:
        return len(self._seeds)

    def hash(self, index: int, value: int) -> int:
        """Apply the ``index``-th member to ``value`` (64-bit output)."""
        return hash_u64(value, self._seeds[index])

    def hash_mod(self, index: int, value: int, modulus: int) -> int:
        """Apply the ``index``-th member and reduce modulo ``modulus``."""
        return self.hash(index, value) % modulus

    def seed_of(self, index: int) -> int:
        """The derived seed of the ``index``-th member (for vectorized use)."""
        return self._seeds[index]
