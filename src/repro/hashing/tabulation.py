"""Simple tabulation hashing.

Tabulation hashing is 3-wise independent (and in practice behaves far
better), which makes it a good reference hash for property tests that probe
the statistical assumptions of the sketches: if a sketch misbehaves under
both the mixer family and tabulation hashing, the sketch is at fault, not
the hash.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.errors import ConfigurationError


class TabulationHash:
    """Tabulation hash of fixed-width integer keys to 64-bit values.

    The key is split into ``key_bytes`` 8-bit characters; each character
    indexes a per-position table of random 64-bit words, and the words are
    XORed together.
    """

    def __init__(self, key_bytes: int = 8, seed: int = 0) -> None:
        if not 1 <= key_bytes <= 16:
            raise ConfigurationError(f"key_bytes must be in [1, 16], got {key_bytes}")
        rng = np.random.default_rng(seed)
        self.key_bytes = key_bytes
        self._tables = rng.integers(
            0, 1 << 64, size=(key_bytes, 256), dtype=np.uint64
        )

    def hash(self, key: int) -> int:
        """Hash an integer key (must fit in ``key_bytes`` bytes)."""
        if key < 0 or key >> (8 * self.key_bytes):
            raise ConfigurationError(
                f"key {key:#x} does not fit in {self.key_bytes} bytes"
            )
        acc = 0
        for position in range(self.key_bytes):
            char = (key >> (8 * position)) & 0xFF
            acc ^= int(self._tables[position, char])
        return acc

    def hash_many(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`hash` over a ``uint64`` key array.

        Views the keys as a ``uint8`` byte matrix and XOR-folds one table
        gather per byte position — the same LUT walk as the scalar path,
        array-at-a-time.  Only defined for ``key_bytes <= 8`` (one machine
        word per key); wider keys keep the scalar path.
        """
        if self.key_bytes > 8:
            raise ConfigurationError(
                f"hash_many requires key_bytes <= 8, got {self.key_bytes}"
            )
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.uint64)
        if self.key_bytes < 8 and int(keys.max()) >> (8 * self.key_bytes):
            raise ConfigurationError(
                f"some keys do not fit in {self.key_bytes} bytes"
            )
        chars = keys.view(np.uint8).reshape(-1, 8)
        if sys.byteorder != "little":  # pragma: no cover - x86/ARM are little
            chars = chars[:, ::-1]
        acc = self._tables[0][chars[:, 0]].copy()
        for position in range(1, self.key_bytes):
            acc ^= self._tables[position][chars[:, position]]
        return acc

    def __call__(self, key: int) -> int:
        return self.hash(key)
