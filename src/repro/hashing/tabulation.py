"""Simple tabulation hashing.

Tabulation hashing is 3-wise independent (and in practice behaves far
better), which makes it a good reference hash for property tests that probe
the statistical assumptions of the sketches: if a sketch misbehaves under
both the mixer family and tabulation hashing, the sketch is at fault, not
the hash.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class TabulationHash:
    """Tabulation hash of fixed-width integer keys to 64-bit values.

    The key is split into ``key_bytes`` 8-bit characters; each character
    indexes a per-position table of random 64-bit words, and the words are
    XORed together.
    """

    def __init__(self, key_bytes: int = 8, seed: int = 0) -> None:
        if not 1 <= key_bytes <= 16:
            raise ConfigurationError(f"key_bytes must be in [1, 16], got {key_bytes}")
        rng = np.random.default_rng(seed)
        self.key_bytes = key_bytes
        self._tables = rng.integers(
            0, 1 << 64, size=(key_bytes, 256), dtype=np.uint64
        )

    def hash(self, key: int) -> int:
        """Hash an integer key (must fit in ``key_bytes`` bytes)."""
        if key < 0 or key >> (8 * self.key_bytes):
            raise ConfigurationError(
                f"key {key:#x} does not fit in {self.key_bytes} bytes"
            )
        acc = 0
        for position in range(self.key_bytes):
            char = (key >> (8 * position)) & 0xFF
            acc ^= int(self._tables[position, char])
        return acc

    def __call__(self, key: int) -> int:
        return self.hash(key)
