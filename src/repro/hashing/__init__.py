"""Hashing substrate.

InstaMeasure's data-plane structures (RCC sketches, the WSAF table, the
multi-core dispatcher) all need cheap, deterministic, well-mixed hash
functions that are independent of Python's randomized ``hash()``.  This
package provides:

* :func:`splitmix64` / :func:`mix64` — fast 64-bit finalizer-style mixers.
* :func:`hash_bytes` / :func:`hash_u64` — seeded stable hashes.
* :class:`HashFamily` — an indexed family of pairwise-independent-ish hashes
  built from seeded mixers, used wherever a structure needs ``k`` hash
  functions.
* :class:`TabulationHash` — 4-wise independent tabulation hashing for the
  property tests that need stronger independence guarantees.
* :func:`popcount32` — the source-IP population count used by the multi-core
  dispatcher (Section IV-C of the paper).
"""

from repro.hashing.mix import (
    MASK64,
    hash_bytes,
    hash_u64,
    hash_u64_array,
    mix64,
    mix64_array,
    popcount32,
    splitmix64,
    splitmix64_array,
)
from repro.hashing.family import HashFamily
from repro.hashing.tabulation import TabulationHash

__all__ = [
    "MASK64",
    "HashFamily",
    "TabulationHash",
    "hash_bytes",
    "hash_u64",
    "hash_u64_array",
    "mix64",
    "mix64_array",
    "popcount32",
    "splitmix64",
    "splitmix64_array",
]
