"""64-bit integer mixers and stable seeded hashes.

These are pure-Python ports of well-known public-domain mixing functions
(splitmix64 and the murmur3/xxhash finalizers).  They are deterministic
across processes, which matters for reproducible experiments — Python's
built-in ``hash()`` is salted per process and therefore unusable here.
"""

from __future__ import annotations

import numpy as np

MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """One round of the splitmix64 generator/finalizer.

    Maps a 64-bit integer to a well-mixed 64-bit integer.  Bijective, so it
    never introduces collisions of its own.
    """
    x = (x + _GOLDEN) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def mix64(x: int) -> int:
    """The murmur3 64-bit finalizer (a bijective avalanche mixer)."""
    x &= MASK64
    x = ((x ^ (x >> 33)) * 0xFF51AFD7ED558CCD) & MASK64
    x = ((x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53) & MASK64
    return x ^ (x >> 33)


def hash_u64(value: int, seed: int = 0) -> int:
    """Stable seeded hash of an integer to 64 bits."""
    return mix64(splitmix64(value & MASK64) ^ splitmix64(seed))


def hash_bytes(data: bytes, seed: int = 0) -> int:
    """Stable seeded hash of a byte string to 64 bits.

    Processes 8-byte lanes through the splitmix64 mixer; this is an FNV-style
    lane fold, not a cryptographic hash, which is the right trade-off for a
    data-plane sketch.
    """
    acc = splitmix64(seed ^ (len(data) * _GOLDEN & MASK64))
    for offset in range(0, len(data), 8):
        lane = int.from_bytes(data[offset : offset + 8], "little")
        acc = splitmix64(acc ^ lane)
    return mix64(acc)


def splitmix64_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`splitmix64` over a ``uint64`` array."""
    x = values.astype(np.uint64) + np.uint64(_GOLDEN)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def mix64_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`mix64` over a ``uint64`` array."""
    x = values.astype(np.uint64)
    x = (x ^ (x >> np.uint64(33))) * np.uint64(0xFF51AFD7ED558CCD)
    x = (x ^ (x >> np.uint64(33))) * np.uint64(0xC4CEB9FE1A85EC53)
    return x ^ (x >> np.uint64(33))


def hash_u64_array(values: "np.ndarray", seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`hash_u64`; bit-identical to the scalar version."""
    seed_mix = np.uint64(splitmix64(seed))
    return mix64_array(splitmix64_array(values) ^ seed_mix)


def popcount32(value: int) -> int:
    """Population count of the low 32 bits.

    This is the dispatch key the paper's manager core computes over the
    source IP address to pick a worker queue (Section IV-C).
    """
    return (value & 0xFFFFFFFF).bit_count()
