"""SuperSpreader detection from WSAF records.

A *superspreader* is a source that contacts many distinct destinations
(scanners, worms, P2P supernodes).  The paper lists it among the
applications that need the WSAF's sample of mice flows ("it is essential
for some applications to have samples of mice flows (e.g., DDoS attack,
SuperSpreader and entropy etc.)").  Because every WSAF record carries the
full 104-bit 5-tuple, fan-out per source can be computed directly from the
table — no extra data structure on the data path.

Note the honest caveat, inherited from the design: the FlowRegulator
retains most mice flows, so the WSAF sees only the (probabilistic) sample
of a scanner's flows that leaked through.  Detection therefore needs either
a scan heavy enough to push flows through, or thresholds calibrated to the
leak-through rate — exactly the trade-off the paper alludes to.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.wsaf import WSAFTable
from repro.errors import ConfigurationError
from repro.traffic.packet import FiveTuple, Trace


def fanout_by_source(wsaf: WSAFTable) -> "dict[int, int]":
    """Distinct destination IPs per source IP, from WSAF records.

    Records without a stored 5-tuple (inserted through the low-level API)
    are skipped.
    """
    destinations: "dict[int, set[int]]" = defaultdict(set)
    for entry in wsaf.entries():
        if entry.five_tuple_packed is None:
            continue
        five_tuple = FiveTuple.unpack(entry.five_tuple_packed)
        destinations[five_tuple.src_ip].add(five_tuple.dst_ip)
    return {src: len(dsts) for src, dsts in destinations.items()}


def detect_superspreaders(
    wsaf: WSAFTable, min_destinations: int
) -> "dict[int, int]":
    """Sources whose observed fan-out reaches ``min_destinations``."""
    if min_destinations < 1:
        raise ConfigurationError("min_destinations must be >= 1")
    return {
        src: count
        for src, count in fanout_by_source(wsaf).items()
        if count >= min_destinations
    }


def ground_truth_fanout(trace: Trace) -> "dict[int, int]":
    """Exact distinct-destination counts per source over a trace."""
    destinations: "dict[int, set[int]]" = defaultdict(set)
    src = trace.flows.src_ip.tolist()
    dst = trace.flows.dst_ip.tolist()
    for flow in range(trace.num_flows):
        destinations[src[flow]].add(dst[flow])
    return {source: len(dsts) for source, dsts in destinations.items()}
