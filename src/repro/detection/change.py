"""Traffic change detection (EWMA-based volume anomalies).

The paper motivates instant measurement with "anomalies (e.g., congestion,
link failure, DDoS attack, and so on)".  Heavy hitters cover per-flow
volume; this module covers *aggregate* change: an exponentially-weighted
moving average with a variance-tracked band flags time buckets whose
packet (or byte) volume deviates by more than ``threshold_sigmas`` from the
forecast — the classic lightweight detector for link failures (volume
collapse) and volumetric attacks (volume spike).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


@dataclass
class ChangeEvent:
    """One flagged time bucket."""

    time: float
    observed: float
    expected: float
    sigmas: float

    @property
    def is_spike(self) -> bool:
        return self.observed > self.expected

    @property
    def is_collapse(self) -> bool:
        return self.observed < self.expected


class EwmaChangeDetector:
    """Streaming EWMA detector over per-bucket volumes.

    Args:
        alpha: EWMA smoothing factor (0 < alpha < 1); higher = more
            reactive forecast.
        threshold_sigmas: deviation (in tracked standard deviations) that
            flags a bucket.
        warmup_buckets: buckets consumed before flagging starts (the
            forecast needs history).
    """

    def __init__(
        self,
        alpha: float = 0.2,
        threshold_sigmas: float = 4.0,
        warmup_buckets: int = 5,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")
        if threshold_sigmas <= 0:
            raise ConfigurationError("threshold_sigmas must be positive")
        if warmup_buckets < 1:
            raise ConfigurationError("warmup_buckets must be >= 1")
        self.alpha = alpha
        self.threshold_sigmas = threshold_sigmas
        self.warmup_buckets = warmup_buckets
        self._mean: "float | None" = None
        self._variance = 0.0
        self._seen = 0
        self.events: "list[ChangeEvent]" = []

    def observe(self, time: float, value: float) -> "ChangeEvent | None":
        """Feed one bucket volume; returns an event if it is anomalous.

        Anomalous buckets do **not** update the forecast (otherwise a
        sustained attack would quickly look normal).
        """
        self._seen += 1
        if self._mean is None:
            self._mean = float(value)
            return None
        deviation = value - self._mean
        sigma = math.sqrt(self._variance) if self._variance > 0 else 0.0
        event: "ChangeEvent | None" = None
        if (
            self._seen > self.warmup_buckets
            and sigma > 0
            and abs(deviation) > self.threshold_sigmas * sigma
        ):
            event = ChangeEvent(
                time=time,
                observed=float(value),
                expected=self._mean,
                sigmas=abs(deviation) / sigma,
            )
            self.events.append(event)
            return event
        # Normal bucket: update forecast and variance.
        self._mean += self.alpha * deviation
        self._variance = (1 - self.alpha) * (
            self._variance + self.alpha * deviation * deviation
        )
        return event

    def reset(self) -> None:
        """Forget the forecast, variance, and recorded events."""
        self._mean = None
        self._variance = 0.0
        self._seen = 0
        self.events = []


def detect_volume_changes(
    trace: Trace,
    bucket_seconds: float,
    metric: str = "packets",
    alpha: float = 0.2,
    threshold_sigmas: float = 4.0,
    warmup_buckets: int = 5,
) -> "list[ChangeEvent]":
    """Run the EWMA detector over a trace's per-bucket volume series.

    Args:
        trace: input packets.
        bucket_seconds: bucket width.
        metric: ``"packets"`` or ``"bytes"``.
    """
    if metric == "packets":
        times, values = trace.packets_per_bucket(bucket_seconds)
    elif metric == "bytes":
        times, values = trace.bytes_per_bucket(bucket_seconds)
    else:
        raise ConfigurationError(f"unknown metric {metric!r}")
    detector = EwmaChangeDetector(
        alpha=alpha,
        threshold_sigmas=threshold_sigmas,
        warmup_buckets=warmup_buckets,
    )
    for time, value in zip(times, np.asarray(values, dtype=np.float64)):
        detector.observe(float(time), float(value))
    return detector.events
