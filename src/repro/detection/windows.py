"""Windowed (periodic) measurement.

The paper updates its Top-K lists "every 10 minutes" from the running WSAF
without resetting the sketches — long-term measurement is the whole point
of the In-DRAM design ("we can store much more flows; thereby, we do not
need a remote collector").  This module runs an engine over consecutive
time windows and snapshots a quality metric at each boundary, producing
the recall-over-time series behind Fig 10/11's Top-K panels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instameasure import InstaMeasure, InstaMeasureConfig
from repro.detection.topk import topk_recall
from repro.errors import ConfigurationError
from repro.pipeline import Pipeline
from repro.traffic.packet import Trace


@dataclass
class WindowSnapshot:
    """State of the measurement at one window boundary."""

    end_time: float
    packets_so_far: int
    wsaf_flows: int
    recalls: "dict[int, float]"


def windowed_topk_recall(
    trace: Trace,
    window_seconds: float,
    ks: "list[int]",
    config: "InstaMeasureConfig | None" = None,
) -> "list[WindowSnapshot]":
    """Measure ``trace`` window by window, snapshotting Top-K recall.

    A pipeline epoch consumer: the chunk source splits on window
    boundaries and the driver fires once per window (empty windows
    included), where the current WSAF packet estimates are scored against
    the exact counts of everything seen *so far* (cumulative ground truth,
    as an operator refreshing a dashboard would experience).

    Args:
        trace: input packets.
        window_seconds: snapshot period (the paper uses 10 minutes).
        ks: Top-K sizes to score.
        config: engine configuration (defaults otherwise).
    """
    if window_seconds <= 0:
        raise ConfigurationError("window_seconds must be positive")
    if not ks or any(k < 1 for k in ks):
        raise ConfigurationError("ks must be non-empty positive integers")
    if trace.num_packets == 0:
        return []

    engine = InstaMeasure(config)
    end = float(trace.timestamps[-1])
    snapshots: "list[WindowSnapshot]" = []

    def on_window(record, measurer) -> None:
        # Packets strictly before the boundary — windows are half-open,
        # matching ``Trace.time_slice``.
        upto = int(np.searchsorted(trace.timestamps, record.end_time, side="left"))
        cumulative_truth = np.bincount(
            trace.flow_ids[:upto], minlength=trace.num_flows
        ).astype(np.float64)
        est, _ = measurer.estimates_for(trace, include_residual=True)
        seen = cumulative_truth > 0
        recalls = {}
        for k in ks:
            if seen.sum() == 0:
                recalls[k] = 1.0
            else:
                recalls[k] = topk_recall(est[seen], cumulative_truth[seen], k)
        snapshots.append(
            WindowSnapshot(
                end_time=min(record.end_time, end),
                packets_so_far=upto,
                wsaf_flows=len(measurer.wsaf),
                recalls=recalls,
            )
        )

    Pipeline(engine, epoch_seconds=window_seconds, on_epoch=on_window).run(trace)
    return snapshots
