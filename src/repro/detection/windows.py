"""Windowed (periodic) measurement.

The paper updates its Top-K lists "every 10 minutes" from the running WSAF
without resetting the sketches — long-term measurement is the whole point
of the In-DRAM design ("we can store much more flows; thereby, we do not
need a remote collector").  This module runs an engine over consecutive
time windows and snapshots a quality metric at each boundary, producing
the recall-over-time series behind Fig 10/11's Top-K panels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instameasure import InstaMeasure, InstaMeasureConfig
from repro.detection.topk import topk_recall
from repro.errors import ConfigurationError
from repro.pipeline import Pipeline
from repro.traffic.packet import Trace


@dataclass
class WindowSnapshot:
    """State of the measurement at one window boundary."""

    end_time: float
    packets_so_far: int
    wsaf_flows: int
    recalls: "dict[int, float]"


def _window_estimates(measurer, trace: Trace, record) -> np.ndarray:
    """Per-flow packet estimates at a window boundary, any measurer.

    When the boundary fired the measurer's ``rotate`` hook, its snapshot
    (taken *before* any flush/ship) is what the system reports for the
    window; otherwise the live estimates are read — through the engines'
    vectorized ``estimates_for`` when available, through the protocol's
    ``estimates`` mapping for everything else.
    """
    table = record.snapshot
    if table is None:
        estimates_for = getattr(measurer, "estimates_for", None)
        if estimates_for is not None:
            try:
                est, _ = estimates_for(trace, include_residual=True)
            except TypeError:  # e.g. the multi-core manager: no residual
                est, _ = estimates_for(trace)
            return est
        table = measurer.estimates(flow_keys=trace.flows.key64)
    est = np.zeros(trace.num_flows)
    for flow_index, key in enumerate(trace.flows.key64.tolist()):
        value = table.get(key)
        if value is not None:
            est[flow_index] = value[0]
    return est


def windowed_topk_recall(
    trace: Trace,
    window_seconds: float,
    ks: "list[int]",
    config: "InstaMeasureConfig | None" = None,
    measurer=None,
    rotate: bool = False,
) -> "list[WindowSnapshot]":
    """Measure ``trace`` window by window, snapshotting Top-K recall.

    A pipeline epoch consumer: the chunk source splits on window
    boundaries and the driver fires once per window (empty windows
    included), where the current per-flow packet estimates are scored
    against the exact counts of everything seen *so far* (cumulative
    ground truth, as an operator refreshing a dashboard would experience).

    Args:
        trace: input packets.
        window_seconds: snapshot period (the paper uses 10 minutes).
        ks: Top-K sizes to score.
        config: engine configuration when no ``measurer`` is given.
        measurer: any :class:`~repro.pipeline.protocol.StreamingMeasurer`
            to evaluate instead of a fresh :class:`InstaMeasure` — the
            NetFlow cache, the delegation loop, and the sketch baselines
            all produce a comparable recall-over-time series.
        rotate: fire the measurer's ``rotate(end_time)`` hook at each
            boundary and score its returned snapshot (NetFlow flushes its
            active-timeout entries, delegation ships completed epochs) —
            the realistic windowed-operation mode for those systems.
    """
    if window_seconds <= 0:
        raise ConfigurationError("window_seconds must be positive")
    if not ks or any(k < 1 for k in ks):
        raise ConfigurationError("ks must be non-empty positive integers")
    if config is not None and measurer is not None:
        raise ConfigurationError("pass either config or measurer, not both")
    if trace.num_packets == 0:
        return []

    engine = measurer if measurer is not None else InstaMeasure(config)
    end = float(trace.timestamps[-1])
    snapshots: "list[WindowSnapshot]" = []

    def on_window(record, measurer) -> None:
        # Packets strictly before the boundary — windows are half-open,
        # matching ``Trace.time_slice``.
        upto = int(np.searchsorted(trace.timestamps, record.end_time, side="left"))
        cumulative_truth = np.bincount(
            trace.flow_ids[:upto], minlength=trace.num_flows
        ).astype(np.float64)
        est = _window_estimates(measurer, trace, record)
        seen = cumulative_truth > 0
        recalls = {}
        for k in ks:
            if seen.sum() == 0:
                recalls[k] = 1.0
            else:
                recalls[k] = topk_recall(est[seen], cumulative_truth[seen], k)
        wsaf = getattr(measurer, "wsaf", None)
        snapshots.append(
            WindowSnapshot(
                end_time=min(record.end_time, end),
                packets_so_far=upto,
                wsaf_flows=(
                    len(wsaf) if wsaf is not None else int(np.count_nonzero(est))
                ),
                recalls=recalls,
            )
        )

    Pipeline(
        engine, epoch_seconds=window_seconds, on_epoch=on_window, rotate=rotate
    ).run(trace)
    return snapshots
