"""Windowed (periodic) measurement.

The paper updates its Top-K lists "every 10 minutes" from the running WSAF
without resetting the sketches — long-term measurement is the whole point
of the In-DRAM design ("we can store much more flows; thereby, we do not
need a remote collector").  This module runs an engine over consecutive
time windows and snapshots a quality metric at each boundary, producing
the recall-over-time series behind Fig 10/11's Top-K panels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instameasure import InstaMeasure, InstaMeasureConfig
from repro.detection.topk import topk_recall
from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


@dataclass
class WindowSnapshot:
    """State of the measurement at one window boundary."""

    end_time: float
    packets_so_far: int
    wsaf_flows: int
    recalls: "dict[int, float]"


def windowed_topk_recall(
    trace: Trace,
    window_seconds: float,
    ks: "list[int]",
    config: "InstaMeasureConfig | None" = None,
) -> "list[WindowSnapshot]":
    """Measure ``trace`` window by window, snapshotting Top-K recall.

    At each boundary the current WSAF packet estimates are scored against
    the exact counts of everything seen *so far* (cumulative ground truth,
    as an operator refreshing a dashboard would experience).

    Args:
        trace: input packets.
        window_seconds: snapshot period (the paper uses 10 minutes).
        ks: Top-K sizes to score.
        config: engine configuration (defaults otherwise).
    """
    if window_seconds <= 0:
        raise ConfigurationError("window_seconds must be positive")
    if not ks or any(k < 1 for k in ks):
        raise ConfigurationError("ks must be non-empty positive integers")
    if trace.num_packets == 0:
        return []

    engine = InstaMeasure(config)
    start = float(trace.timestamps[0])
    end = float(trace.timestamps[-1])
    snapshots: "list[WindowSnapshot]" = []
    packets_so_far = 0
    cumulative_truth = np.zeros(trace.num_flows)

    window_start = start
    while window_start <= end:
        window_end = window_start + window_seconds
        window = trace.time_slice(window_start, window_end)
        if window.num_packets:
            engine.process_trace(window)
            packets_so_far += window.num_packets
            cumulative_truth += window.ground_truth_packets()
        est, _ = engine.estimates_for(trace, include_residual=True)
        seen = cumulative_truth > 0
        recalls = {}
        for k in ks:
            if seen.sum() == 0:
                recalls[k] = 1.0
            else:
                recalls[k] = topk_recall(est[seen], cumulative_truth[seen], k)
        snapshots.append(
            WindowSnapshot(
                end_time=min(window_end, end),
                packets_so_far=packets_so_far,
                wsaf_flows=len(engine.wsaf),
                recalls=recalls,
            )
        )
        window_start = window_end
    return snapshots
