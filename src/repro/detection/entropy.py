"""Flow-size entropy estimation.

Entropy of the per-flow traffic shares is a standard anomaly signal (a DDoS
collapses it); the paper lists it among the applications that need mice-flow
samples ("it is essential for some applications to have samples of mice
flows (e.g., DDoS attack, SuperSpreader and entropy etc.)").  These helpers
compute the entropy of a flow-size vector — exact on ground truth, or
approximate on WSAF estimates (which carry a sample of mice flows precisely
because the FlowRegulator leaks some of them through).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def flow_size_entropy(flow_sizes: np.ndarray) -> float:
    """Shannon entropy (bits) of the per-flow traffic share distribution.

    ``H = -Σ p_f log2 p_f`` with ``p_f = size_f / Σ size``.  Zero-size flows
    are ignored.
    """
    sizes = np.asarray(flow_sizes, dtype=np.float64)
    sizes = sizes[sizes > 0]
    if len(sizes) == 0:
        raise ConfigurationError("entropy of an empty flow set is undefined")
    shares = sizes / sizes.sum()
    return float(-(shares * np.log2(shares)).sum())


def normalized_entropy(flow_sizes: np.ndarray) -> float:
    """Entropy normalized to [0, 1] by the uniform maximum ``log2(n)``.

    1.0 means perfectly even traffic; values near 0 indicate concentration
    (e.g. a volumetric attack dominating the link).
    """
    sizes = np.asarray(flow_sizes, dtype=np.float64)
    sizes = sizes[sizes > 0]
    if len(sizes) == 0:
        raise ConfigurationError("entropy of an empty flow set is undefined")
    if len(sizes) == 1:
        return 0.0
    return flow_size_entropy(sizes) / float(np.log2(len(sizes)))
