"""Detection-latency experiment (Fig 9(b)) and the decoding taxonomies.

Section II distinguishes three decoding strategies:

* **packet-arrival-based** — decode on every packet; exact, used as the
  ground-truth baseline (infeasible in deployment).
* **saturation-based** — InstaMeasure: decode when the FlowRegulator's L2
  saturates.  The lag is the time to accumulate one retention quantum, so
  it shrinks as the attacker speeds up ("significant attackers … can be
  caught earlier than slow attackers").
* **delegation-based** — ship the sketch to a remote collector every epoch;
  detection happens at the end of the epoch containing the crossing, plus
  network delay ("tens of milliseconds").

:func:`detection_latency_experiment` injects constant-rate flows into
background traffic, runs a real engine with a real detector, and reports
per-rate latencies for the saturation and delegation strategies relative to
the packet-arrival baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.instameasure import InstaMeasure, InstaMeasureConfig
from repro.detection.heavy_hitter import (
    HeavyHitterDetector,
    ground_truth_detection_times,
)
from repro.errors import ConfigurationError
from repro.pipeline import run_pipeline
from repro.traffic.attack import AttackConfig, inject_attack_flows
from repro.traffic.packet import Trace


@dataclass
class DelegationModel:
    """Periodic sketch shipping to a remote collector.

    Args:
        epoch_seconds: how often the sketch is flushed to the collector.
        network_delay_seconds: one-way transfer + decode delay at the
            collector.
    """

    epoch_seconds: float = 0.02
    network_delay_seconds: float = 0.02

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0 or self.network_delay_seconds < 0:
            raise ConfigurationError("invalid delegation parameters")

    def detection_time(self, crossing_time: float) -> float:
        """When a crossing at ``crossing_time`` is noticed at the collector."""
        epoch_end = math.ceil(crossing_time / self.epoch_seconds) * self.epoch_seconds
        return epoch_end + self.network_delay_seconds


@dataclass
class LatencySample:
    """One point of the Fig 9(b) curve."""

    rate_pps: float
    ground_truth_time: float
    saturation_time: "float | None"
    delegation_time: float

    @property
    def saturation_latency(self) -> "float | None":
        """Saturation-based detection lag behind packet-arrival-based."""
        if self.saturation_time is None:
            return None
        return self.saturation_time - self.ground_truth_time

    @property
    def delegation_latency(self) -> float:
        return self.delegation_time - self.ground_truth_time


def detection_latency_experiment(
    background: Trace,
    rates_pps: "list[float]",
    threshold_packets: float,
    engine_config: "InstaMeasureConfig | None" = None,
    delegation: "DelegationModel | None" = None,
    attack_duration: float = 2.0,
    attack_start: float = 0.5,
    seed: int = 7,
) -> "list[LatencySample]":
    """Measure heavy-hitter detection latency at each attack rate.

    One attack flow per rate is injected into ``background``; the engine
    processes the merged trace with a saturation-based detector attached;
    latencies are scored against exact crossing times.  Flows whose rate
    cannot reach the threshold within ``attack_duration`` are skipped.
    """
    if threshold_packets <= 0:
        raise ConfigurationError("threshold_packets must be positive")
    if not rates_pps:
        raise ConfigurationError("rates_pps must not be empty")
    delegation = delegation or DelegationModel()

    merged, injected = inject_attack_flows(
        background,
        AttackConfig(
            rates_pps=list(rates_pps),
            duration=attack_duration,
            start_time=attack_start,
            seed=seed,
        ),
    )
    truth_times, _ = ground_truth_detection_times(
        merged, threshold_packets=threshold_packets
    )

    detector = HeavyHitterDetector(threshold_packets=threshold_packets)
    engine = InstaMeasure(engine_config or InstaMeasureConfig())
    run_pipeline(engine, merged, on_accumulate=detector.on_accumulate)

    samples: "list[LatencySample]" = []
    for rate, flow_index in zip(rates_pps, injected):
        if flow_index not in truth_times:
            continue  # too slow to cross the threshold in the window
        flow_key = int(merged.flows.key64[flow_index])
        ground_truth = truth_times[flow_index]
        samples.append(
            LatencySample(
                rate_pps=rate,
                ground_truth_time=ground_truth,
                saturation_time=detector.packet_detections.get(flow_key),
                delegation_time=delegation.detection_time(ground_truth),
            )
        )
    return samples
