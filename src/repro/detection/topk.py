"""Top-K identification and recall scoring (Fig 10/11, right panels).

InstaMeasure serves packet Top-K and byte Top-K lists simultaneously from
the WSAF.  The standard recall metric scores an estimated Top-K list
against the exact one: |estimated ∩ true| / K.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def topk_flows(values: np.ndarray, k: int) -> "set[int]":
    """Indices of the ``k`` largest entries of ``values``.

    Ties at the boundary resolve by index order (deterministic).
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    values = np.asarray(values)
    k = min(k, len(values))
    if k == 0:
        return set()
    # argsort descending, stable for determinism on ties.
    order = np.argsort(-values, kind="stable")
    return set(order[:k].tolist())


def topk_recall(estimated: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Recall of the estimated Top-K against the exact Top-K.

    Both arrays must be index-aligned per flow (e.g. packet estimates vs
    packet ground truth over the same flow table).
    """
    if len(estimated) != len(truth):
        raise ConfigurationError("estimated and truth must be index-aligned")
    true_top = topk_flows(truth, k)
    estimated_top = topk_flows(estimated, k)
    if not true_top:
        return 1.0
    return len(true_top & estimated_top) / len(true_top)


def topk_recall_series(
    estimated: np.ndarray, truth: np.ndarray, ks: "list[int]"
) -> "dict[int, float]":
    """Recall at each K in ``ks`` (one pass per K)."""
    return {k: topk_recall(estimated, truth, k) for k in ks}
