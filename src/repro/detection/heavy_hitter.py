"""Heavy-hitter detection (packet- and byte-based).

Saturation-based detection subscribes to WSAF accumulations: whenever a
flow's accumulated packet (or byte) total first crosses the threshold, the
flow is declared a heavy hitter at that packet's timestamp.  The
packet-arrival-based baseline computes exact crossing times directly from
the trace; the difference between the two is the detection latency the
paper bounds at 10 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


class HeavyHitterDetector:
    """Online threshold detector over WSAF accumulations.

    Pass :meth:`on_accumulate` as the engine's accumulation callback.  A
    flow is reported once per metric, at the first accumulation whose total
    crosses the corresponding threshold.

    Args:
        threshold_packets: packet-count threshold (None disables).
        threshold_bytes: byte-volume threshold (None disables).
    """

    def __init__(
        self,
        threshold_packets: "float | None" = None,
        threshold_bytes: "float | None" = None,
    ) -> None:
        if threshold_packets is None and threshold_bytes is None:
            raise ConfigurationError("at least one threshold is required")
        if threshold_packets is not None and threshold_packets <= 0:
            raise ConfigurationError("threshold_packets must be positive")
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ConfigurationError("threshold_bytes must be positive")
        self.threshold_packets = threshold_packets
        self.threshold_bytes = threshold_bytes
        #: flow key → first detection time, per metric.
        self.packet_detections: "dict[int, float]" = {}
        self.byte_detections: "dict[int, float]" = {}

    def on_accumulate(
        self, flow_key: int, packets: float, bytes_: float, timestamp: float
    ) -> None:
        """Observe one WSAF accumulation (engine callback)."""
        if (
            self.threshold_packets is not None
            and packets >= self.threshold_packets
            and flow_key not in self.packet_detections
        ):
            self.packet_detections[flow_key] = timestamp
        if (
            self.threshold_bytes is not None
            and bytes_ >= self.threshold_bytes
            and flow_key not in self.byte_detections
        ):
            self.byte_detections[flow_key] = timestamp


def _per_flow_segments(trace: Trace) -> "tuple[np.ndarray, np.ndarray]":
    """(sort order grouping packets by flow, segment boundaries).

    The stable sort preserves timestamp order within each flow's segment.
    """
    order = np.argsort(trace.flow_ids, kind="stable")
    boundaries = np.searchsorted(
        trace.flow_ids[order], np.arange(trace.num_flows + 1)
    )
    return order, boundaries


def ground_truth_detection_times(
    trace: Trace,
    threshold_packets: "float | None" = None,
    threshold_bytes: "float | None" = None,
) -> "tuple[dict[int, float], dict[int, float]]":
    """Exact crossing times under packet-arrival-based decoding.

    Returns:
        (packet crossings, byte crossings): flow index → timestamp of the
        packet whose arrival pushed the flow's exact running total to the
        threshold.  Flows that never cross are absent.
    """
    if threshold_packets is None and threshold_bytes is None:
        raise ConfigurationError("at least one threshold is required")
    order, boundaries = _per_flow_segments(trace)
    ts_sorted = trace.timestamps[order]
    sizes_sorted = trace.sizes[order]

    packet_times: "dict[int, float]" = {}
    byte_times: "dict[int, float]" = {}
    for flow in range(trace.num_flows):
        lo, hi = boundaries[flow], boundaries[flow + 1]
        count = hi - lo
        if count == 0:
            continue
        if threshold_packets is not None and count >= threshold_packets:
            crossing = lo + int(np.ceil(threshold_packets)) - 1
            packet_times[flow] = float(ts_sorted[crossing])
        if threshold_bytes is not None:
            cumulative = np.cumsum(sizes_sorted[lo:hi])
            if cumulative[-1] >= threshold_bytes:
                crossing = int(np.searchsorted(cumulative, threshold_bytes))
                byte_times[flow] = float(ts_sorted[lo + crossing])
    return packet_times, byte_times


def ground_truth_heavy_hitters(
    trace: Trace,
    threshold_packets: "float | None" = None,
    threshold_bytes: "float | None" = None,
) -> "tuple[set[int], set[int]]":
    """Flow indices whose exact totals meet each threshold."""
    if threshold_packets is None and threshold_bytes is None:
        raise ConfigurationError("at least one threshold is required")
    packets = trace.ground_truth_packets()
    volumes = trace.ground_truth_bytes()
    packet_hh: "set[int]" = set()
    byte_hh: "set[int]" = set()
    if threshold_packets is not None:
        packet_hh = set(np.flatnonzero(packets >= threshold_packets).tolist())
    if threshold_bytes is not None:
        byte_hh = set(np.flatnonzero(volumes >= threshold_bytes).tolist())
    return packet_hh, byte_hh


@dataclass
class DetectionOutcome:
    """Confusion-matrix view of a detection run (Fig 14)."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int
    detected_keys: "set[int]" = field(default_factory=set)

    @property
    def false_positive_rate(self) -> float:
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0

    @property
    def false_negative_rate(self) -> float:
        positives = self.true_positives + self.false_negatives
        return self.false_negatives / positives if positives else 0.0

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else 1.0


def keys_to_flow_indices(trace: Trace, keys: "set[int]") -> "set[int]":
    """Map measurement-plane flow keys (key64) back to trace flow indices.

    Detector callbacks see hashed flow keys; ground truth is per flow index.
    Distinct flows colliding on key64 would merge here — with 64-bit keys
    that is vanishingly rare at trace scale.
    """
    index_of = {int(key): index for index, key in enumerate(trace.flows.key64)}
    return {index_of[key] for key in keys if key in index_of}


def classify_detections(
    detected: "set[int]", truth: "set[int]", population: int
) -> DetectionOutcome:
    """Score ``detected`` flows against ``truth`` over ``population`` flows."""
    if population < len(truth | detected):
        raise ConfigurationError("population smaller than observed flows")
    true_positives = len(detected & truth)
    false_positives = len(detected - truth)
    false_negatives = len(truth - detected)
    true_negatives = population - true_positives - false_positives - false_negatives
    return DetectionOutcome(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        true_negatives=true_negatives,
        detected_keys=set(detected),
    )
