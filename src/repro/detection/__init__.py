"""Detection applications built on InstaMeasure.

* :class:`~repro.detection.heavy_hitter.HeavyHitterDetector` — online
  threshold detection fed by WSAF accumulations (the paper's flagship use
  case, detected "with 99 % accuracy and within 10 ms").
* :func:`~repro.detection.heavy_hitter.ground_truth_detection_times` — the
  packet-arrival-based decoding baseline (exact crossing times).
* :class:`~repro.detection.latency.DelegationModel` /
  :func:`~repro.detection.latency.detection_latency_experiment` — the three
  decoding taxonomies of Section II compared on injected attack flows
  (Fig 9(b)).
* :mod:`~repro.detection.topk` — packet/byte Top-K identification and
  recall scoring (Fig 10/11).
* :mod:`~repro.detection.entropy` — flow-size entropy estimation, one of
  the secondary applications the paper motivates ("DDoS attack,
  SuperSpreader and entropy etc.").
"""

from repro.detection.heavy_hitter import (
    DetectionOutcome,
    HeavyHitterDetector,
    classify_detections,
    ground_truth_detection_times,
    ground_truth_heavy_hitters,
    keys_to_flow_indices,
)
from repro.detection.latency import (
    DelegationModel,
    LatencySample,
    detection_latency_experiment,
)
from repro.detection.topk import topk_flows, topk_recall
from repro.detection.entropy import flow_size_entropy, normalized_entropy
from repro.detection.superspreader import (
    detect_superspreaders,
    fanout_by_source,
    ground_truth_fanout,
)
from repro.detection.windows import WindowSnapshot, windowed_topk_recall
from repro.detection.change import (
    ChangeEvent,
    EwmaChangeDetector,
    detect_volume_changes,
)

__all__ = [
    "ChangeEvent",
    "DelegationModel",
    "DetectionOutcome",
    "EwmaChangeDetector",
    "detect_volume_changes",
    "HeavyHitterDetector",
    "LatencySample",
    "WindowSnapshot",
    "detect_superspreaders",
    "fanout_by_source",
    "ground_truth_fanout",
    "windowed_topk_recall",
    "classify_detections",
    "detection_latency_experiment",
    "flow_size_entropy",
    "ground_truth_detection_times",
    "ground_truth_heavy_hitters",
    "keys_to_flow_indices",
    "normalized_entropy",
    "topk_flows",
    "topk_recall",
]
