"""Trace replay utilities: time scaling, thinning, concatenation.

Experiment harnesses keep needing the same transformations of a recorded
trace — play it faster or slower (the paper's traffic generator sweeps
10-200 kpps), sample it down (NetFlow-style 1-in-N), or loop it to extend a
run.  These helpers produce new :class:`Trace` objects without touching the
flow table.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import FlowTable, Trace


def scale_rate(trace: Trace, factor: float) -> Trace:
    """Replay ``trace`` at ``factor``× its original packet rate.

    Timestamps are compressed (factor > 1 speeds the trace up) around the
    trace start; flow mix and packet order are untouched.
    """
    if factor <= 0:
        raise ConfigurationError("factor must be positive")
    if trace.num_packets == 0:
        return trace
    start = trace.timestamps[0]
    return Trace(
        timestamps=start + (trace.timestamps - start) / factor,
        flow_ids=trace.flow_ids.copy(),
        sizes=trace.sizes.copy(),
        flows=trace.flows,
    )


def thin(trace: Trace, keep_probability: float, seed: int = 0) -> Trace:
    """Independently keep each packet with ``keep_probability``.

    The packet-sampling primitive NetFlow-style systems rely on; estimates
    from a thinned trace must be scaled back up by ``1/keep_probability``.
    """
    if not 0.0 < keep_probability <= 1.0:
        raise ConfigurationError("keep_probability must be in (0, 1]")
    if keep_probability == 1.0 or trace.num_packets == 0:
        return trace
    rng = np.random.default_rng(seed)
    keep = rng.random(trace.num_packets) < keep_probability
    return Trace(
        timestamps=trace.timestamps[keep],
        flow_ids=trace.flow_ids[keep],
        sizes=trace.sizes[keep],
        flows=trace.flows,
    )


def loop(trace: Trace, repetitions: int, gap_seconds: float = 0.0) -> Trace:
    """Concatenate ``repetitions`` back-to-back copies of ``trace``.

    Flow identities persist across repetitions (the same flows come back),
    which is how long-lived services look in a long capture.
    """
    if repetitions < 1:
        raise ConfigurationError("repetitions must be >= 1")
    if gap_seconds < 0:
        raise ConfigurationError("gap_seconds must be >= 0")
    if repetitions == 1 or trace.num_packets == 0:
        return trace
    span = trace.duration + gap_seconds
    timestamps = np.concatenate(
        [trace.timestamps + r * span for r in range(repetitions)]
    )
    return Trace(
        timestamps=timestamps,
        flow_ids=np.tile(trace.flow_ids, repetitions),
        sizes=np.tile(trace.sizes, repetitions),
        flows=trace.flows,
    )


def restrict_flows(trace: Trace, flow_indices: "list[int]") -> Trace:
    """Keep only packets of the given flows (flow table re-indexed)."""
    if not flow_indices:
        raise ConfigurationError("flow_indices must not be empty")
    wanted = np.zeros(trace.num_flows, dtype=bool)
    for flow in flow_indices:
        if not 0 <= flow < trace.num_flows:
            raise ConfigurationError(f"flow index {flow} out of range")
        wanted[flow] = True
    keep = wanted[trace.flow_ids]
    remap = -np.ones(trace.num_flows, dtype=np.int64)
    kept_flows = np.flatnonzero(wanted)
    remap[kept_flows] = np.arange(len(kept_flows))
    flows = FlowTable(
        src_ip=trace.flows.src_ip[kept_flows],
        dst_ip=trace.flows.dst_ip[kept_flows],
        src_port=trace.flows.src_port[kept_flows],
        dst_port=trace.flows.dst_port[kept_flows],
        protocol=trace.flows.protocol[kept_flows],
        hash_seed=trace.flows.hash_seed,
    )
    return Trace(
        timestamps=trace.timestamps[keep],
        flow_ids=remap[trace.flow_ids[keep]],
        sizes=trace.sizes[keep],
        flows=flows,
    )
