"""Campus-gateway trace builder (the 113-hour real-world dataset stand-in).

The paper's second dataset is a 113-hour capture at a campus backbone
gateway (9.1 B packets, Zipf-like mix, strong diurnal pattern: daytime peaks,
quiet nights and weekends — Fig 12(a)).  This builder reproduces those
properties on a compressed timeline: each modelled hour is ``seconds_per_hour``
simulated seconds, and the hourly arrival intensity follows a
weekday/weekend day/night profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import PROTO_TCP, PROTO_UDP, FlowTable, Trace
from repro.traffic.synth import MAX_PACKET_BYTES, MIN_PACKET_BYTES
from repro.traffic.zipf import ZipfFlowSizes


@dataclass
class CampusConfig:
    """Parameters of the campus trace generator.

    Attributes:
        hours: number of modelled wall-clock hours (paper: 113).
        seconds_per_hour: simulated seconds per modelled hour (time
            compression; 3600 would be real time).
        num_flows: distinct flows over the whole run.
        zipf_alpha / max_flow_size: flow-size distribution.
        start_hour_of_week: hour-of-week at which the capture starts
            (0 = Monday 00:00), so weekends land where the profile says.
        night_level / weekend_factor: relative intensity of nights and
            weekends (daytime weekday peak is 1.0).
        udp_fraction: paper reports 6.4 % UDP / 93.6 % TCP.
        seed / hash_seed: generator and measurement-plane seeds.
    """

    hours: int = 113
    seconds_per_hour: float = 10.0
    num_flows: int = 60_000
    zipf_alpha: float = 1.8
    max_flow_size: int = 200_000
    start_hour_of_week: int = 9
    night_level: float = 0.25
    weekend_factor: float = 0.45
    udp_fraction: float = 0.064
    seed: int = 1
    hash_seed: int = 0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid parameter combinations."""
        if self.hours <= 0:
            raise ConfigurationError("hours must be positive")
        if self.seconds_per_hour <= 0:
            raise ConfigurationError("seconds_per_hour must be positive")
        if self.num_flows <= 0:
            raise ConfigurationError("num_flows must be positive")
        if not 0.0 <= self.udp_fraction <= 1.0:
            raise ConfigurationError("udp_fraction must be in [0, 1]")


def hourly_intensity(config: CampusConfig) -> np.ndarray:
    """Relative arrival intensity for each modelled hour (length ``hours``).

    Weekday daytime (09:00-18:00) peaks at 1.0 with a smooth sinusoidal
    shoulder; nights sit at ``night_level``; Saturday/Sunday are scaled by
    ``weekend_factor``.
    """
    config.validate()
    intensity = np.empty(config.hours, dtype=np.float64)
    for hour in range(config.hours):
        hour_of_week = (config.start_hour_of_week + hour) % (24 * 7)
        day = hour_of_week // 24
        hour_of_day = hour_of_week % 24
        # Smooth day curve peaking at 13:00.
        phase = (hour_of_day - 13.0) / 24.0 * 2.0 * math.pi
        day_curve = config.night_level + (1.0 - config.night_level) * max(
            0.0, math.cos(phase)
        )
        if day >= 5:
            day_curve *= config.weekend_factor
        intensity[hour] = day_curve
    return intensity


def build_campus_trace(config: "CampusConfig | None" = None) -> Trace:
    """Generate the diurnal campus trace from ``config`` (defaults if omitted)."""
    config = config or CampusConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    sampler = ZipfFlowSizes(alpha=config.zipf_alpha, max_size=config.max_flow_size)
    flow_sizes = sampler.sample(config.num_flows, rng)
    total_packets = int(flow_sizes.sum())

    # Campus-side sources live in one /16; remote destinations are diverse.
    campus_prefix = np.uint32(0x0A650000)  # 10.101.0.0/16
    src_ip = campus_prefix | rng.integers(0, 1 << 16, size=config.num_flows, dtype=np.uint32)
    dst_ip = rng.integers(0, 1 << 32, size=config.num_flows, dtype=np.uint32)
    src_port = rng.integers(1024, 1 << 16, size=config.num_flows, dtype=np.uint16)
    dst_port = rng.integers(1, 1 << 16, size=config.num_flows, dtype=np.uint16)
    protocol = np.where(
        rng.random(config.num_flows) < config.udp_fraction, PROTO_UDP, PROTO_TCP
    ).astype(np.uint8)
    flows = FlowTable(
        src_ip, dst_ip, src_port, dst_port, protocol, hash_seed=config.hash_seed
    )

    # Flow start hours follow the diurnal intensity profile.
    intensity = hourly_intensity(config)
    hour_probability = intensity / intensity.sum()
    start_hour = rng.choice(config.hours, size=config.num_flows, p=hour_probability)
    start = (start_hour + rng.random(config.num_flows)) * config.seconds_per_hour

    # Flows live for at most a few modelled hours.
    horizon = config.hours * config.seconds_per_hour
    span = np.minimum(
        horizon - start,
        config.seconds_per_hour
        * rng.uniform(0.1, 3.0, config.num_flows)
        * np.minimum(1.0, np.log1p(flow_sizes) / 8.0 + 0.05),
    )
    span = np.maximum(span, 1e-3)

    flow_ids = np.repeat(np.arange(config.num_flows, dtype=np.int64), flow_sizes)
    timestamps = np.repeat(start, flow_sizes) + rng.random(total_packets) * np.repeat(
        span, flow_sizes
    )

    large_mode = rng.random(config.num_flows) < 0.45
    flow_mean = np.clip(
        np.where(
            large_mode,
            rng.normal(1150.0, 180.0, config.num_flows),
            rng.normal(150.0, 80.0, config.num_flows),
        ),
        MIN_PACKET_BYTES,
        MAX_PACKET_BYTES,
    )
    sizes = np.clip(
        np.repeat(flow_mean, flow_sizes) * rng.normal(1.0, 0.12, total_packets),
        MIN_PACKET_BYTES,
        MAX_PACKET_BYTES,
    ).astype(np.int64)

    order = np.argsort(timestamps, kind="stable")
    return Trace(
        timestamps=timestamps[order],
        flow_ids=flow_ids[order],
        sizes=sizes[order],
        flows=flows,
    )
