"""CAIDA-like synthetic trace builder.

The paper's lab experiments use a one-hour CAIDA Equinix-Chicago trace
(3.7 B packets, 78 M L4 flows, 1.5 Mpps peak).  We cannot ship that data, so
this module generates traces that preserve the properties the experiments
actually exercise:

* Zipf-like flow-size distribution dominated by mice flows (Fig 6).
* Skewed source-address popularity (so the popcount dispatcher of the
  multi-core system sees realistic load imbalance, Fig 9(a)).
* Realistic protocol mix and bimodal packet sizes (so the sampling-based
  byte counter of Section III-C is genuinely stressed).
* Flows interleaved in time at an approximately constant aggregate rate.

Scale is configurable; experiments shrink both the trace and the sketch
memory by the same factor (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    FlowTable,
    Trace,
)
from repro.traffic.zipf import ZipfFlowSizes

_POPULAR_DST_PORTS = np.array([80, 443, 53, 22, 25, 123, 8080, 3389], dtype=np.uint16)

MIN_PACKET_BYTES = 40
MAX_PACKET_BYTES = 1514


@dataclass
class CaidaLikeConfig:
    """Parameters of the CAIDA-like trace generator.

    Attributes:
        num_flows: number of distinct L4 flows.
        duration: trace span in seconds (sets the aggregate pps).
        zipf_alpha: flow-size power-law exponent.
        max_flow_size: truncation point of the flow-size distribution.
        tcp_fraction / udp_fraction: protocol mix (remainder is ICMP).
        num_src_prefixes: number of popular source /16 prefixes.
        prefix_alpha: popularity skew across source prefixes.
        seed: generator seed (all randomness derives from it).
        hash_seed: seed for flow-key hashing inside the measurement plane.
    """

    num_flows: int = 50_000
    duration: float = 60.0
    zipf_alpha: float = 1.8
    max_flow_size: int = 200_000
    tcp_fraction: float = 0.90
    udp_fraction: float = 0.08
    num_src_prefixes: int = 256
    prefix_alpha: float = 1.2
    seed: int = 0
    hash_seed: int = 0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid parameter combinations."""
        if self.num_flows <= 0:
            raise ConfigurationError("num_flows must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not 0.0 <= self.tcp_fraction + self.udp_fraction <= 1.0:
            raise ConfigurationError("protocol fractions must sum to <= 1")
        if self.num_src_prefixes <= 0:
            raise ConfigurationError("num_src_prefixes must be positive")


def _skewed_prefix_choice(
    rng: np.random.Generator, count: int, num_prefixes: int, alpha: float
) -> np.ndarray:
    """Choose a prefix index per flow with Zipf(alpha) popularity."""
    weights = np.arange(1, num_prefixes + 1, dtype=np.float64) ** (-alpha)
    weights /= weights.sum()
    return rng.choice(num_prefixes, size=count, p=weights)


def _build_five_tuples(
    rng: np.random.Generator, config: CaidaLikeConfig
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Vectorized 5-tuple synthesis for all flows."""
    n = config.num_flows
    prefix_values = rng.integers(0, 1 << 16, size=config.num_src_prefixes)
    prefix_index = _skewed_prefix_choice(
        rng, n, config.num_src_prefixes, config.prefix_alpha
    )
    src_ip = (prefix_values[prefix_index].astype(np.uint32) << np.uint32(16)) | rng.integers(
        0, 1 << 16, size=n, dtype=np.uint32
    )
    dst_ip = rng.integers(0, 1 << 32, size=n, dtype=np.uint32)

    protocol = np.full(n, PROTO_ICMP, dtype=np.uint8)
    draw = rng.random(n)
    protocol[draw < config.tcp_fraction] = PROTO_TCP
    udp_mask = (draw >= config.tcp_fraction) & (
        draw < config.tcp_fraction + config.udp_fraction
    )
    protocol[udp_mask] = PROTO_UDP

    src_port = rng.integers(1024, 1 << 16, size=n, dtype=np.uint16)
    popular = rng.random(n) < 0.7
    dst_port = rng.integers(1, 1 << 16, size=n, dtype=np.uint16)
    dst_port[popular] = rng.choice(_POPULAR_DST_PORTS, size=int(popular.sum()))
    icmp = protocol == PROTO_ICMP
    src_port[icmp] = 0
    dst_port[icmp] = 0
    return src_ip, dst_ip, src_port, dst_port, protocol


def _packet_sizes(
    rng: np.random.Generator, flow_sizes: np.ndarray, total_packets: int
) -> np.ndarray:
    """Bimodal per-packet sizes: small control/ACK packets vs MTU-ish data.

    Each flow draws a mean from the small or large mode; per-packet sizes
    jitter around that mean.  The byte counter samples the packet that
    triggers L2 saturation, so per-flow size variance is what its accuracy
    claim is actually about.
    """
    num_flows = len(flow_sizes)
    large_mode = rng.random(num_flows) < 0.4
    flow_mean = np.where(
        large_mode,
        rng.normal(1200.0, 150.0, size=num_flows),
        rng.normal(120.0, 60.0, size=num_flows),
    )
    flow_mean = np.clip(flow_mean, MIN_PACKET_BYTES, MAX_PACKET_BYTES)
    mean_rep = np.repeat(flow_mean, flow_sizes)
    jitter = rng.normal(1.0, 0.12, size=total_packets)
    sizes = np.clip(mean_rep * jitter, MIN_PACKET_BYTES, MAX_PACKET_BYTES)
    return sizes.astype(np.int64)


def build_caida_like_trace(config: "CaidaLikeConfig | None" = None) -> Trace:
    """Generate a CAIDA-like trace from ``config`` (defaults if omitted)."""
    config = config or CaidaLikeConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    sampler = ZipfFlowSizes(alpha=config.zipf_alpha, max_size=config.max_flow_size)
    flow_sizes = sampler.sample(config.num_flows, rng)
    total_packets = int(flow_sizes.sum())

    src_ip, dst_ip, src_port, dst_port, protocol = _build_five_tuples(rng, config)
    flows = FlowTable(
        src_ip, dst_ip, src_port, dst_port, protocol, hash_seed=config.hash_seed
    )

    # Flow activity windows: start uniformly in the trace; a flow stays
    # active for a window that grows with its size so elephants persist
    # (as on a real link) while mice come and go.
    starts = rng.random(config.num_flows) * config.duration * 0.95
    span_scale = np.minimum(1.0, np.log1p(flow_sizes) / np.log(config.max_flow_size + 1))
    spans = np.maximum(
        1e-3, span_scale * (config.duration - starts) * rng.uniform(0.3, 1.0, config.num_flows)
    )

    flow_ids = np.repeat(np.arange(config.num_flows, dtype=np.int64), flow_sizes)
    starts_rep = np.repeat(starts, flow_sizes)
    spans_rep = np.repeat(spans, flow_sizes)
    timestamps = starts_rep + rng.random(total_packets) * spans_rep
    sizes = _packet_sizes(rng, flow_sizes, total_packets)

    order = np.argsort(timestamps, kind="stable")
    return Trace(
        timestamps=timestamps[order],
        flow_ids=flow_ids[order],
        sizes=sizes[order],
        flows=flows,
    )
