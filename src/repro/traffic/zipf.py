"""Zipf-distributed flow sizes.

"Today's Internet traffic follows a Zipf-like distribution, and mice flows
(e.g., 1-10 packets flows) are the majority of network flows" (Section III).
The generators here sample flow sizes from a truncated discrete power law
``P(size = k) ∝ k^-alpha`` for ``k`` in ``[1, max_size]`` via inverse-CDF,
which keeps the tail bounded (numpy's ``rng.zipf`` occasionally emits
astronomically large samples that would swamp a scaled-down trace).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ZipfFlowSizes:
    """Sampler for truncated Zipf flow sizes.

    Args:
        alpha: power-law exponent (> 1 for a mice-dominated mix; the paper's
            traces look like alpha ≈ 1.6-2.0).
        max_size: largest sampleable flow size in packets.
    """

    def __init__(self, alpha: float = 1.8, max_size: int = 1_000_000) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        if max_size < 1:
            raise ConfigurationError(f"max_size must be >= 1, got {max_size}")
        self.alpha = alpha
        self.max_size = max_size
        weights = np.arange(1, max_size + 1, dtype=np.float64) ** (-alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def pmf(self, k: int) -> float:
        """Probability of a flow having exactly ``k`` packets."""
        if not 1 <= k <= self.max_size:
            return 0.0
        if k == 1:
            return float(self._cdf[0])
        return float(self._cdf[k - 1] - self._cdf[k - 2])

    def mean(self) -> float:
        """Expected flow size in packets."""
        sizes = np.arange(1, self.max_size + 1, dtype=np.float64)
        pmf = np.diff(self._cdf, prepend=0.0)
        return float(np.dot(sizes, pmf))

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` flow sizes (int64 array, each in [1, max_size])."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        uniforms = rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64) + 1


def zipf_sizes(
    count: int,
    alpha: float = 1.8,
    max_size: int = 1_000_000,
    seed: int = 0,
) -> np.ndarray:
    """Convenience wrapper: ``count`` truncated-Zipf flow sizes."""
    sampler = ZipfFlowSizes(alpha=alpha, max_size=max_size)
    return sampler.sample(count, np.random.default_rng(seed))
