"""Trace statistics (Fig 6: dataset distributions).

Summaries and distribution fits used both to report the synthetic datasets
the way the paper reports CAIDA/campus (flow-size distribution, mice share,
Zipf exponent) and to sanity-check that the generators produced the intended
traffic shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import Trace


@dataclass
class TraceSummary:
    """Headline statistics of a trace, in the paper's reporting vocabulary."""

    num_packets: int
    num_flows: int
    total_bytes: int
    duration: float
    mean_pps: float
    mean_flow_size: float
    mice_fraction: float
    top_1pct_packet_share: float
    zipf_exponent: float

    def rows(self) -> "list[tuple[str, str]]":
        """(name, value) rows for tabular printing."""
        return [
            ("packets", f"{self.num_packets:,}"),
            ("L4 flows", f"{self.num_flows:,}"),
            ("bytes", f"{self.total_bytes:,}"),
            ("duration (s)", f"{self.duration:.2f}"),
            ("mean pps", f"{self.mean_pps:,.0f}"),
            ("mean flow size (pkts)", f"{self.mean_flow_size:.1f}"),
            ("mice flows (<=10 pkts)", f"{self.mice_fraction:.1%}"),
            ("top-1% flows' packet share", f"{self.top_1pct_packet_share:.1%}"),
            ("fitted Zipf exponent", f"{self.zipf_exponent:.2f}"),
        ]


def fit_zipf_exponent(flow_sizes: np.ndarray) -> float:
    """Least-squares slope of the log-log rank-size curve (Zipf exponent).

    A Zipf-like trace has ``size(rank) ∝ rank^-s``; the returned value is
    ``s`` (positive for a decaying distribution).
    """
    sizes = np.sort(np.asarray(flow_sizes, dtype=np.float64))[::-1]
    sizes = sizes[sizes > 0]
    if len(sizes) < 2:
        raise ConfigurationError("need at least two non-empty flows to fit")
    ranks = np.arange(1, len(sizes) + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(sizes), deg=1)
    return float(-slope)


def flow_size_ccdf(flow_sizes: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """(size, P[flow size >= size]) over the distinct sizes present."""
    sizes = np.asarray(flow_sizes, dtype=np.int64)
    if len(sizes) == 0:
        return np.array([], dtype=np.int64), np.array([])
    values, counts = np.unique(sizes, return_counts=True)
    survivors = np.cumsum(counts[::-1])[::-1]
    return values, survivors / len(sizes)


def summarize_trace(trace: Trace) -> TraceSummary:
    """Compute :class:`TraceSummary` for ``trace``."""
    flow_sizes = trace.ground_truth_packets()
    active = flow_sizes[flow_sizes > 0]
    if len(active) == 0:
        raise ConfigurationError("cannot summarize an empty trace")
    sorted_sizes = np.sort(active)[::-1]
    top = max(1, len(sorted_sizes) // 100)
    return TraceSummary(
        num_packets=trace.num_packets,
        num_flows=int(len(active)),
        total_bytes=trace.total_bytes,
        duration=trace.duration,
        mean_pps=trace.mean_pps(),
        mean_flow_size=float(active.mean()),
        mice_fraction=float((active <= 10).mean()),
        top_1pct_packet_share=float(sorted_sizes[:top].sum() / sorted_sizes.sum()),
        zipf_exponent=fit_zipf_exponent(active),
    )
